//! Same-seed determinism regression: the DES contract is that one seed
//! yields one run — the same event order, the same span stream, the same
//! counters, the same final latencies, byte for byte. Hash-order leaks
//! (the class of bug `nicbar-lint` rule ND003 guards against) break this
//! silently and intermittently; this test makes the breakage loud.
//!
//! The GM run injects loss so the NACK/retransmit machinery — the paths
//! that iterate protocol maps under a timer — is exercised, not just the
//! lossless fast path.

use nicbar::core::{elan_nic_barrier_flight, gm_nic_barrier_flight, Algorithm, FlightData, RunCfg};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};

/// Byte-exact projection of everything a run observes: trace records in
/// emission order, span summaries in completion order, histograms,
/// counters, causal packet records and the final latency statistics.
fn witness(f: &FlightData) -> String {
    format!(
        "substrate={}\nrecords={:?}\ntrace_dropped={}\nspans={:?}\nspans_dropped={}\norphaned={}\nhists={:?}\nstats={:?}\npackets={:?}\npackets_dropped={}\n",
        f.substrate, f.records, f.trace_dropped, f.spans, f.spans_dropped, f.orphaned, f.hists, f.stats, f.packets, f.packets_dropped
    )
}

fn lossy_cfg(seed: u64) -> RunCfg {
    RunCfg {
        warmup: 20,
        iters: 150,
        seed,
        skew_us: 2.0,
        drop_prob: 0.02,
        ..RunCfg::default()
    }
}

#[test]
fn gm_lossy_8_node_run_is_bit_deterministic() {
    let run = || {
        gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            8,
            Algorithm::Dissemination,
            lossy_cfg(0xD0_0DAD),
        )
    };
    let a = witness(&run());
    let b = witness(&run());
    assert!(
        a == b,
        "same seed produced different GM runs; first divergence at byte {}",
        a.bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len()))
    );
    // A different seed must actually change the run — otherwise the
    // witness is vacuous (e.g. everything empty).
    let c = witness(&gm_nic_barrier_flight(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        lossy_cfg(0xC0FFEE),
    ));
    assert!(a != c, "seed does not influence the run witness");
}

#[test]
fn elan_8_node_run_is_bit_deterministic() {
    let run = || {
        elan_nic_barrier_flight(
            ElanParams::elan3(),
            8,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 20,
                iters: 150,
                seed: 0xE1A0,
                skew_us: 2.0,
                ..RunCfg::default()
            },
        )
    };
    let a = witness(&run());
    let b = witness(&run());
    assert!(
        a == b,
        "same seed produced different Elan runs; first divergence at byte {}",
        a.bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len()))
    );
}

/// The `why-slow` report and the JSONL netdump are derived artifacts of
/// the same run; both must be byte-identical across same-seed runs, or
/// the analyzer itself has nondeterminism (map iteration, float
/// formatting drift, unordered slack).
#[test]
fn why_slow_report_is_byte_identical_across_same_seed_runs() {
    use nicbar_bench::{critpath, netdump};

    let report = || {
        let cap = gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            8,
            Algorithm::Dissemination,
            lossy_cfg(0xD0_0DAD),
        );
        let paths = critpath::analyze(&cap.packets);
        (critpath::render(&paths), netdump::jsonl(&cap.packets))
    };
    let (text_a, jsonl_a) = report();
    let (text_b, jsonl_b) = report();
    assert!(
        text_a == text_b,
        "why-slow report diverged across same-seed runs"
    );
    assert!(
        jsonl_a == jsonl_b,
        "JSONL netdump diverged across same-seed runs"
    );
    assert!(
        text_a.contains("critical path"),
        "report is non-empty: {text_a}"
    );
    assert!(
        text_a.contains("[detour]"),
        "lossy run surfaces a NACK/retransmit detour:\n{text_a}"
    );
}
