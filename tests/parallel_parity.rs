//! Rank-sharded parallel engine parity: the conservative windowed engine
//! must be an *implementation detail* — same seed, same cluster, same
//! byte-exact observable run as the sequential engine, at any shard count.
//!
//! "Observable run" is the full flight capture: trace records in emission
//! order, span summaries, histograms, counters, causal packet records and
//! the final latency statistics. The parallel engine merges per-shard
//! observability streams in delivered-event order, so every byte must
//! agree, not just the aggregate latencies.

use nicbar::core::{
    build_gm_nic_cluster, elan_nic_barrier_flight, gm_nic_barrier_flight, Algorithm, FlightData,
    RunCfg,
};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};
use nicbar::sim::EngineSel;

/// Byte-exact projection of everything a run observes (same shape as
/// `tests/determinism.rs`).
fn witness(f: &FlightData) -> String {
    format!(
        "substrate={}\nrecords={:?}\ntrace_dropped={}\nspans={:?}\nspans_dropped={}\norphaned={}\nhists={:?}\nstats={:?}\npackets={:?}\npackets_dropped={}\nledger={:?}\nledger_dropped={}\n",
        f.substrate, f.records, f.trace_dropped, f.spans, f.spans_dropped, f.orphaned, f.hists, f.stats, f.packets, f.packets_dropped, f.ledger, f.ledger_dropped
    )
}

fn cfg(engine: EngineSel, shards: usize) -> RunCfg {
    RunCfg {
        warmup: 5,
        iters: 40,
        skew_us: 1.0,
        engine,
        shards,
        ..RunCfg::default()
    }
}

fn first_divergence(a: &str, b: &str) -> usize {
    a.bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

fn assert_parity(label: &str, seq: &FlightData, par: &FlightData) {
    let a = witness(seq);
    let b = witness(par);
    if a != b {
        let at = first_divergence(&a, &b);
        let lo = at.saturating_sub(120);
        panic!(
            "{label}: parallel run diverges from sequential at byte {at}\nsequential: ...{}\nparallel:   ...{}",
            &a[lo..(at + 120).min(a.len())],
            &b[lo..(at + 120).min(b.len())],
        );
    }
}

fn gm_flight(n: usize, algo: Algorithm, engine: EngineSel, shards: usize) -> FlightData {
    gm_nic_barrier_flight(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        algo,
        cfg(engine, shards),
    )
}

fn elan_flight(n: usize, algo: Algorithm, engine: EngineSel, shards: usize) -> FlightData {
    elan_nic_barrier_flight(ElanParams::elan3(), n, algo, cfg(engine, shards))
}

#[test]
fn gm_parallel_matches_sequential_byte_for_byte() {
    for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
        for n in [16, 256] {
            let seq = gm_flight(n, algo, EngineSel::Sequential, 1);
            for shards in [2, 5, 8] {
                let par = gm_flight(n, algo, EngineSel::Parallel, shards);
                assert_parity(&format!("gm {algo:?} n={n} shards={shards}"), &seq, &par);
            }
        }
    }
}

#[test]
fn elan_parallel_matches_sequential_byte_for_byte() {
    for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
        for n in [16, 256] {
            let seq = elan_flight(n, algo, EngineSel::Sequential, 1);
            for shards in [2, 5, 8] {
                let par = elan_flight(n, algo, EngineSel::Parallel, shards);
                assert_parity(&format!("elan {algo:?} n={n} shards={shards}"), &seq, &par);
            }
        }
    }
}

/// Packet loss draws happen on the receiving NIC's private RNG stream, so
/// sharding must not change which packets drop — the NACK/retransmit
/// detours have to replay identically.
#[test]
fn gm_lossy_parallel_matches_sequential() {
    let lossy = |engine, shards| {
        gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            16,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 10,
                iters: 80,
                drop_prob: 0.02,
                skew_us: 2.0,
                engine,
                shards,
                ..RunCfg::default()
            },
        )
    };
    let seq = lossy(EngineSel::Sequential, 1);
    assert!(
        seq.packets
            .iter()
            .any(|p| format!("{p:?}").contains("Drop")),
        "lossy config produced no drops; the test is vacuous"
    );
    for shards in [2, 4] {
        let par = lossy(EngineSel::Parallel, shards);
        assert_parity(&format!("gm lossy shards={shards}"), &seq, &par);
    }
}

/// Bulk-traffic scenarios: the saturating background stream exercises the
/// send-queue/packet-pool paths (and, with the ledger armed, emits
/// occupancy records from every NIC charge), so sharding must reproduce
/// the whole capture — ledger included — byte for byte on both substrates.
#[test]
fn gm_traffic_parallel_matches_sequential_byte_for_byte() {
    use nicbar::core::{gm_nic_barrier_under_traffic_flight, TrafficCfg};
    let traffic = TrafficCfg {
        msg_bytes: 4096,
        outstanding: 2,
    };
    let run = |engine, shards| {
        gm_nic_barrier_under_traffic_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            8,
            Algorithm::Dissemination,
            cfg(engine, shards),
            traffic,
        )
    };
    let seq = run(EngineSel::Sequential, 1);
    assert!(!seq.ledger.is_empty(), "traffic flight must arm the ledger");
    for shards in [2, 8] {
        let par = run(EngineSel::Parallel, shards);
        assert_parity(&format!("gm traffic shards={shards}"), &seq, &par);
    }
}

#[test]
fn elan_traffic_parallel_matches_sequential_byte_for_byte() {
    use nicbar::core::{elan_contend_flight, TrafficCfg};
    let traffic = TrafficCfg {
        msg_bytes: 4096,
        outstanding: 2,
    };
    // One group + the forwarding-ring tport stream: the Elan bulk-traffic
    // scenario (the multi-group contend gate covers the M-group case).
    let run = |engine, shards| {
        elan_contend_flight(
            ElanParams::elan3(),
            8,
            1,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 2,
                iters: 8,
                skew_us: 1.0,
                engine,
                shards,
                ..RunCfg::default()
            },
            traffic,
        )
    };
    let seq = run(EngineSel::Sequential, 1);
    assert!(!seq.ledger.is_empty(), "contend flight must arm the ledger");
    for shards in [2, 8] {
        let par = run(EngineSel::Parallel, shards);
        assert_parity(&format!("elan traffic shards={shards}"), &seq, &par);
    }
}

/// `Auto` with one shard must take the sequential fast path — no worker
/// threads, no windowing — while `Parallel` at one shard goes through the
/// parallel machinery and still reproduces the same run.
#[test]
fn one_shard_engine_selection() {
    let auto = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        &cfg(EngineSel::Auto, 1),
        false,
    );
    assert_eq!(auto.engine.kind(), "sequential");

    let par = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        &cfg(EngineSel::Parallel, 1),
        false,
    );
    assert_eq!(par.engine.kind(), "parallel");

    let seq = gm_flight(16, Algorithm::Dissemination, EngineSel::Sequential, 1);
    let one = gm_flight(16, Algorithm::Dissemination, EngineSel::Parallel, 1);
    assert_parity("gm 1-shard degenerate", &seq, &one);
}

/// Drop every line that carries the engine stamp — the one *intentional*
/// difference between exporter outputs of different engines.
fn strip_engine_stamp(text: &str) -> String {
    text.lines()
        .filter(|l| !l.trim_start().starts_with("engine: ") && !l.contains(":engine\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The rendered exporter artifacts — flight breakdown, Chrome trace,
/// critical-path report, packet JSONL — must be byte-identical across
/// engines once the self-describing engine-stamp line is removed, and that
/// stamp must name the actual producer.
#[test]
fn exporter_output_is_byte_identical_across_engines() {
    use nicbar_bench::{critpath, flight, netdump};

    type FlightRun = fn(EngineSel, usize) -> FlightData;
    let cases: [(&str, FlightRun); 2] = [
        ("gm", |e, s| gm_flight(16, Algorithm::Dissemination, e, s)),
        ("elan", |e, s| {
            elan_flight(16, Algorithm::Dissemination, e, s)
        }),
    ];
    for (substrate, run) in cases {
        let seq = run(EngineSel::Sequential, 1);
        let seq_breakdown = flight::breakdown(&seq);
        let seq_chrome = flight::chrome_trace(std::slice::from_ref(&seq));
        let seq_crit = critpath::render(&critpath::analyze(&seq.packets));
        let seq_jsonl = netdump::jsonl(&seq.packets);
        assert!(
            seq_breakdown.contains("engine: sequential"),
            "{substrate}: breakdown lacks the sequential stamp"
        );
        assert!(seq_chrome.contains("\"0:engine\": \"sequential\""));

        for shards in [2, 8] {
            let par = run(EngineSel::Parallel, shards);
            let label = format!("{substrate} shards={shards}");
            let par_breakdown = flight::breakdown(&par);
            assert!(
                par_breakdown.contains(&format!("engine: parallel({shards})")),
                "{label}: breakdown lacks the parallel stamp:\n{par_breakdown}"
            );
            assert_eq!(
                strip_engine_stamp(&seq_breakdown),
                strip_engine_stamp(&par_breakdown),
                "{label}: breakdown differs beyond the engine stamp"
            );

            let par_chrome = flight::chrome_trace(std::slice::from_ref(&par));
            assert!(par_chrome.contains(&format!("\"0:engine\": \"parallel({shards})\"")));
            assert_eq!(
                strip_engine_stamp(&seq_chrome),
                strip_engine_stamp(&par_chrome),
                "{label}: Chrome trace differs beyond the engine stamp"
            );

            // The critical-path report and the packet JSONL carry no stamp
            // at all: byte-identical, full stop.
            assert_eq!(
                seq_crit,
                critpath::render(&critpath::analyze(&par.packets)),
                "{label}: critical-path report differs"
            );
            assert_eq!(
                seq_jsonl,
                netdump::jsonl(&par.packets),
                "{label}: packet JSONL differs"
            );
        }
    }
}

/// Shard counts beyond the rank count clamp to the rank count — excess
/// shards would sit empty yet still pay every window barrier — and the
/// clamped run still reproduces the sequential bytes.
#[test]
fn oversharded_run_clamps_and_matches_sequential() {
    let seq = gm_flight(16, Algorithm::Dissemination, EngineSel::Sequential, 1);
    let par = gm_flight(16, Algorithm::Dissemination, EngineSel::Parallel, 64);
    // The breakdown stamp names the *effective* shard count.
    let stamp = nicbar_bench::flight::breakdown(&par);
    assert!(
        stamp.contains("engine: parallel(16)"),
        "shards=64 on n=16 should clamp to 16 shards, got:\n{stamp}"
    );
    assert_parity("gm shards=64 clamped to n=16", &seq, &par);
}

/// A hand-built `Weighted` partition — deliberately lumpy weights and
/// boundary costs, so the cut points move away from the contiguous
/// default — must be invisible in the observable run: partitioning only
/// redistributes work across workers, never reorders delivered events.
#[test]
fn weighted_partition_matches_sequential_byte_for_byte() {
    use nicbar::sim::PartitionSel;
    let sel = PartitionSel::Weighted {
        weights: (0..16u64).map(|j| 1 + (j % 5) * 7).collect(),
        boundary_cost: (0..16u64).map(|j| (j * 13) % 11).collect(),
    };
    let run = |engine, shards, partition| {
        gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            16,
            Algorithm::Dissemination,
            RunCfg {
                partition,
                ..cfg(engine, shards)
            },
        )
    };
    let seq = run(EngineSel::Sequential, 1, PartitionSel::Contiguous);
    for shards in [2, 5, 8] {
        let par = run(EngineSel::Parallel, shards, sel.clone());
        assert_parity(&format!("gm weighted shards={shards}"), &seq, &par);
    }
}

/// The full profile-guided loop: a real `engine_prof` capture (the
/// committed PR-7 baseline) feeds `partition_from_profile`, and the
/// resulting partition must preserve byte-identity. The profile was taken
/// at a different node count — `balanced_by_weight` resamples it — which
/// is exactly how a stale profile will be used in practice.
#[test]
fn profile_guided_partition_matches_sequential() {
    use nicbar::sim::PartitionSel;
    use nicbar_bench::engineprof::partition_from_profile;
    let sel = partition_from_profile("results/engine_prof_pr7.json").unwrap_or_else(|| {
        // Tree without the committed capture: a synthetic ramp profile
        // keeps the parity claim under test.
        PartitionSel::Weighted {
            weights: (0..64u64).map(|j| 1 + j / 4).collect(),
            boundary_cost: (0..64u64).map(|j| j % 9).collect(),
        }
    });
    assert!(
        matches!(sel, PartitionSel::Weighted { .. }),
        "profile must produce a weighted partition"
    );
    let run = |engine, shards, partition| {
        elan_nic_barrier_flight(
            ElanParams::elan3(),
            16,
            Algorithm::Dissemination,
            RunCfg {
                partition,
                ..cfg(engine, shards)
            },
        )
    };
    let seq = run(EngineSel::Sequential, 1, PartitionSel::Contiguous);
    for shards in [3, 8] {
        let par = run(EngineSel::Parallel, shards, sel.clone());
        assert_parity(&format!("elan profile-guided shards={shards}"), &seq, &par);
    }
}
