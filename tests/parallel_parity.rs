//! Rank-sharded parallel engine parity: the conservative windowed engine
//! must be an *implementation detail* — same seed, same cluster, same
//! byte-exact observable run as the sequential engine, at any shard count.
//!
//! "Observable run" is the full flight capture: trace records in emission
//! order, span summaries, histograms, counters, causal packet records and
//! the final latency statistics. The parallel engine merges per-shard
//! observability streams in delivered-event order, so every byte must
//! agree, not just the aggregate latencies.

use nicbar::core::{
    build_gm_nic_cluster, elan_nic_barrier_flight, gm_nic_barrier_flight, Algorithm, FlightData,
    RunCfg,
};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};
use nicbar::sim::EngineSel;

/// Byte-exact projection of everything a run observes (same shape as
/// `tests/determinism.rs`).
fn witness(f: &FlightData) -> String {
    format!(
        "substrate={}\nrecords={:?}\ntrace_dropped={}\nspans={:?}\nspans_dropped={}\norphaned={}\nhists={:?}\nstats={:?}\npackets={:?}\npackets_dropped={}\n",
        f.substrate, f.records, f.trace_dropped, f.spans, f.spans_dropped, f.orphaned, f.hists, f.stats, f.packets, f.packets_dropped
    )
}

fn cfg(engine: EngineSel, shards: usize) -> RunCfg {
    RunCfg {
        warmup: 5,
        iters: 40,
        skew_us: 1.0,
        engine,
        shards,
        ..RunCfg::default()
    }
}

fn first_divergence(a: &str, b: &str) -> usize {
    a.bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

fn assert_parity(label: &str, seq: &FlightData, par: &FlightData) {
    let a = witness(seq);
    let b = witness(par);
    if a != b {
        let at = first_divergence(&a, &b);
        let lo = at.saturating_sub(120);
        panic!(
            "{label}: parallel run diverges from sequential at byte {at}\nsequential: ...{}\nparallel:   ...{}",
            &a[lo..(at + 120).min(a.len())],
            &b[lo..(at + 120).min(b.len())],
        );
    }
}

fn gm_flight(n: usize, algo: Algorithm, engine: EngineSel, shards: usize) -> FlightData {
    gm_nic_barrier_flight(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        algo,
        cfg(engine, shards),
    )
}

fn elan_flight(n: usize, algo: Algorithm, engine: EngineSel, shards: usize) -> FlightData {
    elan_nic_barrier_flight(ElanParams::elan3(), n, algo, cfg(engine, shards))
}

#[test]
fn gm_parallel_matches_sequential_byte_for_byte() {
    for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
        for n in [16, 256] {
            let seq = gm_flight(n, algo, EngineSel::Sequential, 1);
            for shards in [2, 5, 8] {
                let par = gm_flight(n, algo, EngineSel::Parallel, shards);
                assert_parity(&format!("gm {algo:?} n={n} shards={shards}"), &seq, &par);
            }
        }
    }
}

#[test]
fn elan_parallel_matches_sequential_byte_for_byte() {
    for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
        for n in [16, 256] {
            let seq = elan_flight(n, algo, EngineSel::Sequential, 1);
            for shards in [2, 5, 8] {
                let par = elan_flight(n, algo, EngineSel::Parallel, shards);
                assert_parity(&format!("elan {algo:?} n={n} shards={shards}"), &seq, &par);
            }
        }
    }
}

/// Packet loss draws happen on the receiving NIC's private RNG stream, so
/// sharding must not change which packets drop — the NACK/retransmit
/// detours have to replay identically.
#[test]
fn gm_lossy_parallel_matches_sequential() {
    let lossy = |engine, shards| {
        gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            16,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 10,
                iters: 80,
                drop_prob: 0.02,
                skew_us: 2.0,
                engine,
                shards,
                ..RunCfg::default()
            },
        )
    };
    let seq = lossy(EngineSel::Sequential, 1);
    assert!(
        seq.packets
            .iter()
            .any(|p| format!("{p:?}").contains("Drop")),
        "lossy config produced no drops; the test is vacuous"
    );
    for shards in [2, 4] {
        let par = lossy(EngineSel::Parallel, shards);
        assert_parity(&format!("gm lossy shards={shards}"), &seq, &par);
    }
}

/// `Auto` with one shard must take the sequential fast path — no worker
/// threads, no windowing — while `Parallel` at one shard goes through the
/// parallel machinery and still reproduces the same run.
#[test]
fn one_shard_engine_selection() {
    let auto = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        &cfg(EngineSel::Auto, 1),
        false,
    );
    assert_eq!(auto.engine.kind(), "sequential");

    let par = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        &cfg(EngineSel::Parallel, 1),
        false,
    );
    assert_eq!(par.engine.kind(), "parallel");

    let seq = gm_flight(16, Algorithm::Dissemination, EngineSel::Sequential, 1);
    let one = gm_flight(16, Algorithm::Dissemination, EngineSel::Parallel, 1);
    assert_parity("gm 1-shard degenerate", &seq, &one);
}
