//! End-to-end scheduler parity: the paper's figure pipelines must produce
//! bit-identical simulated results on the timing wheel (the default), the
//! indexed 4-ary event queue, and the classic `BinaryHeap` baseline they
//! replaced. Only wall-clock time is allowed to differ between them.

use nicbar_core::{elan_nic_barrier, gm_nic_barrier, Algorithm, BarrierStats, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::SchedulerKind;

fn cfg(kind: SchedulerKind) -> RunCfg {
    RunCfg {
        warmup: 5,
        iters: 50,
        scheduler: kind,
        ..RunCfg::default()
    }
}

fn assert_parity(a: &BarrierStats, b: &BarrierStats, what: &str) {
    assert_eq!(a.n, b.n, "{what}: node count");
    assert_eq!(a.mean_us, b.mean_us, "{what}: mean latency diverged");
    assert_eq!(
        a.per_iter_us, b.per_iter_us,
        "{what}: per-iteration latencies diverged"
    );
    assert_eq!(
        a.wire_per_barrier, b.wire_per_barrier,
        "{what}: wire traffic diverged"
    );
    assert_eq!(a.counters, b.counters, "{what}: counter reports diverged");
}

#[test]
fn fig5_gm_point_is_identical_across_schedulers() {
    let run = |kind| {
        gm_nic_barrier(
            GmParams::lanai_9_1(),
            CollFeatures::paper(),
            16,
            Algorithm::Dissemination,
            cfg(kind),
        )
    };
    let wheel = run(SchedulerKind::TimingWheel);
    let indexed = run(SchedulerKind::Indexed4);
    let classic = run(SchedulerKind::ClassicBinaryHeap);
    assert_parity(&wheel, &classic, "fig5 n=16 (wheel)");
    assert_parity(&indexed, &classic, "fig5 n=16 (indexed4)");
}

#[test]
fn fig7_elan_point_is_identical_across_schedulers() {
    let run = |kind| elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::Dissemination, cfg(kind));
    let wheel = run(SchedulerKind::TimingWheel);
    let indexed = run(SchedulerKind::Indexed4);
    let classic = run(SchedulerKind::ClassicBinaryHeap);
    assert_parity(&wheel, &classic, "fig7 n=8 (wheel)");
    assert_parity(&indexed, &classic, "fig7 n=8 (indexed4)");
}

/// The counter report surfaced through `BarrierStats` stays name-ordered —
/// interning must not leak first-touch order into user-visible output.
#[test]
fn barrier_stats_counters_are_name_ordered() {
    let stats = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg(SchedulerKind::default()),
    );
    let names: Vec<&str> = stats
        .counters
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "BarrierStats counters must be name-ordered");
    assert!(!names.is_empty(), "a barrier run must report counters");
}
