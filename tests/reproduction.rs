//! Regression tests for the paper's headline results: these pin the
//! reproduced numbers (within tolerance bands) so calibration drift is
//! caught. Paper anchors from the abstract and §8.

use nicbar::core::{
    elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier, gm_host_barrier, gm_nic_barrier,
    Algorithm, RunCfg,
};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};

fn cfg() -> RunCfg {
    RunCfg {
        warmup: 50,
        iters: 500,
        ..RunCfg::default()
    }
}

fn within(value: f64, target: f64, tol_frac: f64) -> bool {
    (value - target).abs() <= target * tol_frac
}

#[test]
fn quadrics_8_node_nic_barrier_near_5_60us() {
    let s = elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::Dissemination, cfg());
    assert!(
        within(s.mean_us, 5.60, 0.15),
        "Quadrics NIC barrier @8 = {:.2}µs (paper 5.60)",
        s.mean_us
    );
}

#[test]
fn quadrics_improvement_over_tree_barrier_near_2_48x() {
    let nic = elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::Dissemination, cfg());
    let tree = elan_gsync_barrier(ElanParams::elan3(), 8, 4, cfg());
    let factor = tree.mean_us / nic.mean_us;
    assert!(
        within(factor, 2.48, 0.20),
        "Quadrics improvement factor = {factor:.2} (paper 2.48)"
    );
}

#[test]
fn quadrics_hw_barrier_near_4_20us_and_flat() {
    let hw8 = elan_hw_barrier(ElanParams::elan3(), 8, cfg());
    assert!(
        within(hw8.mean_us, 4.20, 0.10),
        "hw barrier @8 = {:.2}µs (paper 4.20)",
        hw8.mean_us
    );
    let hw2 = elan_hw_barrier(ElanParams::elan3(), 2, cfg());
    assert!(
        (hw8.mean_us - hw2.mean_us).abs() < 1.0,
        "hw barrier should be nearly flat: {:.2} vs {:.2}",
        hw2.mean_us,
        hw8.mean_us
    );
}

#[test]
fn myrinet_xp_8_node_nic_barrier_near_14_20us() {
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg(),
    );
    assert!(
        within(s.mean_us, 14.20, 0.15),
        "XP NIC barrier @8 = {:.2}µs (paper 14.20)",
        s.mean_us
    );
}

#[test]
fn myrinet_xp_improvement_near_2_64x() {
    let nic = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg(),
    );
    let host = gm_host_barrier(GmParams::lanai_xp(), 8, Algorithm::Dissemination, cfg());
    let factor = host.mean_us / nic.mean_us;
    assert!(
        within(factor, 2.64, 0.15),
        "XP improvement factor = {factor:.2} (paper 2.64)"
    );
}

#[test]
fn myrinet_91_16_node_nic_barrier_near_25_72us() {
    let s = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        cfg(),
    );
    assert!(
        within(s.mean_us, 25.72, 0.15),
        "9.1 NIC barrier @16 = {:.2}µs (paper 25.72)",
        s.mean_us
    );
}

#[test]
fn myrinet_91_improvement_near_3_38x() {
    let nic = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        cfg(),
    );
    let host = gm_host_barrier(GmParams::lanai_9_1(), 16, Algorithm::Dissemination, cfg());
    let factor = host.mean_us / nic.mean_us;
    assert!(
        within(factor, 3.38, 0.15),
        "9.1 improvement factor = {factor:.2} (paper 3.38)"
    );
}

#[test]
fn direct_scheme_improvement_near_1_86x() {
    // §8.1: the earlier direct NIC-based scheme achieved 1.86× on the same
    // cluster — the gap to 3.38× is the value of the separate protocol.
    let direct = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::direct(),
        16,
        Algorithm::Dissemination,
        cfg(),
    );
    let host = gm_host_barrier(GmParams::lanai_9_1(), 16, Algorithm::Dissemination, cfg());
    let factor = host.mean_us / direct.mean_us;
    assert!(
        within(factor, 1.86, 0.20),
        "direct-scheme factor = {factor:.2} (paper 1.86)"
    );
}

#[test]
fn thousand_node_projections_have_the_right_magnitude() {
    let big = RunCfg {
        warmup: 10,
        iters: 100,
        ..RunCfg::default()
    };
    let q = elan_nic_barrier(
        ElanParams::elan3(),
        1024,
        Algorithm::Dissemination,
        big.clone(),
    );
    let m = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        1024,
        Algorithm::Dissemination,
        big,
    );
    // Paper model: 22.13 and 38.94 µs. The simulation adds real hop growth
    // and NIC serialization the closed-form model ignores, so the band is
    // wider — but the magnitude and the Quadrics < Myrinet ordering must
    // hold.
    assert!(
        (14.0..30.0).contains(&q.mean_us),
        "Quadrics @1024 = {:.2}µs (paper model 22.13)",
        q.mean_us
    );
    assert!(
        (31.0..56.0).contains(&m.mean_us),
        "Myrinet @1024 = {:.2}µs (paper model 38.94)",
        m.mean_us
    );
    assert!(q.mean_us < m.mean_us);
}

#[test]
fn thousand_node_dissemination_matches_the_log2_staircase_model() {
    // EXPERIMENTS.md refits the paper's `T = A + (⌈log₂N⌉−1)·T_trig` to
    // the simulated 2–1024 sweeps: Quadrics A=2.72, T_trig=1.59; Myrinet
    // A=5.01, T_trig=4.67 (both R² > 0.99). The 1024-node point must stay
    // on those staircases — this is the scalability regression gate.
    let big = RunCfg {
        warmup: 10,
        iters: 100,
        ..RunCfg::default()
    };
    let refit_quadrics = nicbar::model::BarrierModel {
        t_init: 2.72,
        t_trig: 1.59,
        t_adj: 0.0,
    };
    let refit_myrinet = nicbar::model::BarrierModel {
        t_init: 5.01,
        t_trig: 4.67,
        t_adj: 0.0,
    };
    let q = elan_nic_barrier(
        ElanParams::elan3(),
        1024,
        Algorithm::Dissemination,
        big.clone(),
    );
    assert!(
        within(q.mean_us, refit_quadrics.predict(1024), 0.10),
        "Quadrics @1024 = {:.2}µs vs staircase model {:.2}µs",
        q.mean_us,
        refit_quadrics.predict(1024)
    );
    let m = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        1024,
        Algorithm::Dissemination,
        big,
    );
    assert!(
        within(m.mean_us, refit_myrinet.predict(1024), 0.10),
        "Myrinet @1024 = {:.2}µs vs staircase model {:.2}µs",
        m.mean_us,
        refit_myrinet.predict(1024)
    );
}

#[test]
fn pe_is_bumpy_at_non_powers_of_two_on_myrinet() {
    // §8.1: "The pairwise-exchange algorithm tends to have a larger latency
    // over non-power of two number of nodes for the extra step it takes."
    let pe6 = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        6,
        Algorithm::PairwiseExchange,
        cfg(),
    );
    let ds6 = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        6,
        Algorithm::Dissemination,
        cfg(),
    );
    let pe8 = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::PairwiseExchange,
        cfg(),
    );
    let ds8 = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg(),
    );
    assert!(
        pe6.mean_us > ds6.mean_us,
        "PE must pay its extra steps at n=6"
    );
    assert!(
        (pe8.mean_us - ds8.mean_us).abs() < 0.5,
        "PE and DS coincide at powers of two"
    );
}

#[test]
fn improvement_factor_is_larger_on_the_slower_cluster() {
    // §8.1: the XP cluster's faster host CPU and PCI-X bus shrink the
    // benefit relative to the 9.1 cluster.
    let f = |params: GmParams, n: usize| {
        let nic = gm_nic_barrier(
            params.clone(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg(),
        );
        let host = gm_host_barrier(params, n, Algorithm::Dissemination, cfg());
        host.mean_us / nic.mean_us
    };
    let xp = f(GmParams::lanai_xp(), 8);
    let old = f(GmParams::lanai_9_1(), 8);
    assert!(
        old > xp,
        "9.1 cluster factor ({old:.2}) must exceed XP's ({xp:.2})"
    );
}

#[test]
fn gather_broadcast_is_the_worst_algorithm() {
    // §5.2: gather-broadcast takes more steps and performs worse — the
    // reason the paper implements only PE and DS.
    let gb = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::GatherBroadcast { degree: 2 },
        cfg(),
    );
    let ds = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg(),
    );
    assert!(
        gb.mean_us > ds.mean_us * 1.3,
        "GB ({:.2}) should clearly lose to DS ({:.2})",
        gb.mean_us,
        ds.mean_us
    );
}
