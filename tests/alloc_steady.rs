//! Zero-allocation steady state, proven with a counting global allocator.
//!
//! The protocol engine, NIC models, and host dispatch all recycle scratch
//! buffers, so after warm-up a NIC-based barrier epoch must not touch the
//! heap at all. The proof is a delta measurement: drain one cluster
//! configured for K measured iterations and one for 2K, counting allocator
//! calls during each drain (construction excluded). Any per-epoch
//! allocation would make the second count strictly larger; equality means
//! the K extra epochs allocated exactly nothing.
//!
//! This lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide, and the single `#[test]` keeps
//! the measurement windows free of concurrent test threads.

use nicbar_core::{build_elan_nic_cluster, build_gm_nic_cluster, Algorithm, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::RunOutcome;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a call counter (allocations and reallocations;
/// frees are irrelevant to the gate).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 8;
const WARMUP: u64 = 50;

fn cfg(iters: u64) -> RunCfg {
    RunCfg {
        warmup: WARMUP,
        iters,
        ..RunCfg::default()
    }
}

/// Allocator calls made while *draining* (not building) a GM NIC-DS run.
fn gm_drain_allocs(algo: Algorithm, iters: u64) -> u64 {
    let cfg = cfg(iters);
    let mut cluster = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        N,
        algo,
        &cfg,
        false,
    );
    let deadline = cfg.deadline();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let outcome = cluster.run_until(deadline);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(outcome, RunOutcome::Idle, "gm run did not drain");
    after - before
}

/// Allocator calls made while draining an Elan NIC-DS run.
fn elan_drain_allocs(algo: Algorithm, iters: u64) -> u64 {
    let cfg = cfg(iters);
    let mut cluster = build_elan_nic_cluster(ElanParams::elan3(), N, algo, &cfg, false);
    let deadline = cfg.deadline();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let outcome = cluster.run_until(deadline);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(outcome, RunOutcome::Idle, "elan run did not drain");
    after - before
}

fn assert_delta_free(substrate: &str, measure: impl Fn(u64) -> u64) {
    // Throwaway run: pays every process-global one-time allocation
    // (counter-name interning, lazy statics) outside the windows. Its
    // count being nonzero also proves the counting allocator is live —
    // a cold cluster must grow the event queue during its first epochs.
    let first = measure(20);
    assert!(first > 0, "{substrate}: counting allocator saw no traffic");
    let base = measure(100);
    let double = measure(200);
    assert_eq!(
        double,
        base,
        "{substrate}: 100 extra steady-state barriers allocated {} times \
         ({base} calls at 100 iters, {double} at 200) — the hot path must \
         not touch the heap after warm-up",
        double.saturating_sub(base)
    );
}

#[test]
fn steady_state_barrier_allocates_nothing() {
    // Dissemination is the paper's headline algorithm; both substrates
    // must run it allocation-free in the steady state.
    assert_delta_free("gm NIC-DS", |iters| {
        gm_drain_allocs(Algorithm::Dissemination, iters)
    });
    assert_delta_free("elan NIC-DS", |iters| {
        elan_drain_allocs(Algorithm::Dissemination, iters)
    });
    // Pairwise exchange exercises the multi-peer rounds at n = 8 too.
    assert_delta_free("gm NIC-PE", |iters| {
        gm_drain_allocs(Algorithm::PairwiseExchange, iters)
    });
    assert_delta_free("elan NIC-PE", |iters| {
        elan_drain_allocs(Algorithm::PairwiseExchange, iters)
    });
}
