//! Zero-allocation steady state, proven with a counting global allocator.
//!
//! The protocol engine, NIC models, and host dispatch all recycle scratch
//! buffers, so after warm-up a NIC-based barrier epoch must not touch the
//! heap at all. The proof is a delta measurement: drain one cluster
//! configured for K measured iterations and one for 2K, counting allocator
//! calls during each drain (construction excluded). Any per-epoch
//! allocation would make the second count strictly larger; equality means
//! the K extra epochs allocated exactly nothing.
//!
//! This lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide, and the single `#[test]` keeps
//! the measurement windows free of concurrent test threads.

use nicbar_core::{build_elan_nic_cluster, build_gm_nic_cluster, Algorithm, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::{EngineSel, RunOutcome};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator with a call counter (allocations and reallocations;
/// frees are irrelevant to the gate).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 8;
const WARMUP: u64 = 50;

fn cfg(iters: u64, engine: EngineSel, shards: usize) -> RunCfg {
    RunCfg {
        warmup: WARMUP,
        iters,
        engine,
        shards,
        ..RunCfg::default()
    }
}

/// Allocator calls made while *draining* (not building) a GM NIC-DS run.
fn gm_drain_allocs(algo: Algorithm, iters: u64, engine: EngineSel, shards: usize) -> u64 {
    let cfg = cfg(iters, engine, shards);
    let mut cluster = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        N,
        algo,
        &cfg,
        false,
    );
    let deadline = cfg.deadline();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let outcome = cluster.run_until(deadline);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(outcome, RunOutcome::Idle, "gm run did not drain");
    after - before
}

/// Allocator calls made while draining an Elan NIC-DS run.
fn elan_drain_allocs(algo: Algorithm, iters: u64, engine: EngineSel, shards: usize) -> u64 {
    let cfg = cfg(iters, engine, shards);
    let mut cluster = build_elan_nic_cluster(ElanParams::elan3(), N, algo, &cfg, false);
    let deadline = cfg.deadline();
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let outcome = cluster.run_until(deadline);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(outcome, RunOutcome::Idle, "elan run did not drain");
    after - before
}

fn assert_delta_free(substrate: &str, measure: impl Fn(u64) -> u64) {
    // Throwaway run: pays every process-global one-time allocation
    // (counter-name interning, lazy statics) outside the windows. Its
    // count being nonzero also proves the counting allocator is live —
    // a cold cluster must grow the event queue during its first epochs.
    let first = measure(20);
    assert!(first > 0, "{substrate}: counting allocator saw no traffic");
    // The counting allocator is process-wide, so a window can be
    // contaminated by the *harness*: libtest's main thread sits blocked in
    // a channel `recv` while the test thread runs, and lazily allocates
    // its receiver context (two small allocations) at a
    // scheduler-dependent moment — on a busy one-CPU host that can land
    // tens of milliseconds in, i.e. inside any window. Every such
    // contaminant is one-shot and additive, so the minimum of two runs
    // per window is the uncontaminated count; a real per-epoch allocation
    // inflates every run and still trips the gate.
    let base = measure(100).min(measure(100));
    let double = measure(200).min(measure(200));
    assert_eq!(
        double,
        base,
        "{substrate}: 100 extra steady-state barriers allocated {} times \
         ({base} calls at 100 iters, {double} at 200) — the hot path must \
         not touch the heap after warm-up",
        double.saturating_sub(base)
    );
}

#[test]
fn steady_state_barrier_allocates_nothing() {
    // Dissemination is the paper's headline algorithm; both substrates
    // must run it allocation-free in the steady state.
    assert_delta_free("gm NIC-DS", |iters| {
        gm_drain_allocs(Algorithm::Dissemination, iters, EngineSel::Sequential, 1)
    });
    assert_delta_free("elan NIC-DS", |iters| {
        elan_drain_allocs(Algorithm::Dissemination, iters, EngineSel::Sequential, 1)
    });
    // Pairwise exchange exercises the multi-peer rounds at n = 8 too.
    assert_delta_free("gm NIC-PE", |iters| {
        gm_drain_allocs(Algorithm::PairwiseExchange, iters, EngineSel::Sequential, 1)
    });
    assert_delta_free("elan NIC-PE", |iters| {
        elan_drain_allocs(Algorithm::PairwiseExchange, iters, EngineSel::Sequential, 1)
    });
    // The rank-sharded parallel engine must hold the same property: after
    // warm-up its windows run out of recycled scratch buffers and settled
    // queues, so extra steady-state epochs allocate exactly nothing on any
    // worker thread (the counting allocator is process-wide).
    assert_delta_free("gm NIC-DS parallel x2", |iters| {
        gm_drain_allocs(Algorithm::Dissemination, iters, EngineSel::Parallel, 2)
    });
    assert_delta_free("elan NIC-DS parallel x2", |iters| {
        elan_drain_allocs(Algorithm::Dissemination, iters, EngineSel::Parallel, 2)
    });
}
