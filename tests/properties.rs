//! Property-based tests (proptest): barrier safety and liveness under
//! arbitrary group sizes, seeds, skews and loss rates; schedule-generator
//! invariants; model-fit sanity.

use nicbar::core::schedule::{disseminates, validate, Schedule};
use nicbar::core::{
    elan_nic_barrier, gm_host_barrier, gm_nic_barrier, schedules_for, Algorithm, RunCfg,
};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};
use proptest::prelude::*;

fn arb_algo() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Dissemination),
        Just(Algorithm::PairwiseExchange),
        (2usize..5).prop_map(|degree| Algorithm::GatherBroadcast { degree }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated schedule set is globally consistent and actually
    /// disseminates (barrier correctness condition).
    #[test]
    fn schedules_are_consistent_and_disseminate(
        n in 1usize..40,
        algo in arb_algo(),
    ) {
        let all = schedules_for(algo, n);
        prop_assert!(validate(&all).is_ok(), "{:?}", validate(&all));
        prop_assert!(disseminates(&all));
    }

    /// Dissemination round count is exactly ⌈log₂N⌉ and each round has one
    /// send and one receive.
    #[test]
    fn dissemination_shape(n in 2usize..64, rank in 0usize..64) {
        prop_assume!(rank < n);
        let s = Schedule::dissemination(n, rank);
        prop_assert_eq!(s.num_rounds(), nicbar::core::ceil_log2(n));
        for r in &s.rounds {
            prop_assert_eq!(r.sends.len(), 1);
            prop_assert_eq!(r.recv_from.len(), 1);
        }
    }

    /// Binomial broadcast from any root is consistent.
    #[test]
    fn broadcast_schedules_consistent(n in 1usize..32, root_seed in 0usize..32) {
        let root = root_seed % n;
        let all: Vec<Schedule> = (0..n)
            .map(|r| Schedule::binomial_broadcast(n, r, root))
            .collect();
        prop_assert!(validate(&all).is_ok());
    }
}

proptest! {
    // Full-cluster simulations are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The GM NIC barrier completes (liveness) and never releases early
    /// (safety — asserted inside the driver) for arbitrary sizes, seeds,
    /// algorithms, skew, placement and mild loss.
    #[test]
    fn gm_nic_barrier_safe_and_live(
        n in 2usize..14,
        seed in 0u64..1000,
        algo in arb_algo(),
        skew_us in prop_oneof![Just(0.0), 1.0f64..30.0],
        drop in prop_oneof![Just(0.0), Just(0.01), Just(0.05)],
        permute in any::<bool>(),
    ) {
        let cfg = RunCfg {
            warmup: 3,
            iters: 15,
            seed,
            skew_us,
            drop_prob: drop,
            permute,
            ..RunCfg::default()
        };
        let s = gm_nic_barrier(GmParams::lanai_xp(), CollFeatures::paper(), n, algo, cfg);
        prop_assert!(s.mean_us > 0.0);
    }

    /// Same for the host-based baseline (exercises the p2p reliability
    /// machinery under loss).
    #[test]
    fn gm_host_barrier_safe_and_live(
        n in 2usize..10,
        seed in 0u64..1000,
        algo in arb_algo(),
        drop in prop_oneof![Just(0.0), Just(0.02)],
    ) {
        let cfg = RunCfg {
            warmup: 2,
            iters: 10,
            seed,
            drop_prob: drop,
            ..RunCfg::default()
        };
        let s = gm_host_barrier(GmParams::lanai_xp(), n, algo, cfg);
        prop_assert!(s.mean_us > 0.0);
    }

    /// The chained-RDMA Elan barrier is safe and live for arbitrary sizes,
    /// algorithms, skew and placement (the fabric is hardware-reliable).
    #[test]
    fn elan_nic_barrier_safe_and_live(
        n in 2usize..14,
        seed in 0u64..1000,
        algo in arb_algo(),
        skew_us in prop_oneof![Just(0.0), 1.0f64..30.0],
        permute in any::<bool>(),
    ) {
        let cfg = RunCfg {
            warmup: 3,
            iters: 15,
            seed,
            skew_us,
            drop_prob: 0.0,
            permute,
            ..RunCfg::default()
        };
        let s = elan_nic_barrier(ElanParams::elan3(), n, algo, cfg);
        prop_assert!(s.mean_us > 0.0);
    }

    /// NIC-based latency beats host-based for every configuration (the
    /// paper's central comparative claim, as an invariant).
    #[test]
    fn nic_beats_host_everywhere(
        n in 2usize..12,
        seed in 0u64..100,
        algo in prop_oneof![Just(Algorithm::Dissemination), Just(Algorithm::PairwiseExchange)],
    ) {
        let cfg = RunCfg { warmup: 5, iters: 50, seed, ..RunCfg::default() };
        let nic = gm_nic_barrier(GmParams::lanai_xp(), CollFeatures::paper(), n, algo, cfg.clone());
        let host = gm_host_barrier(GmParams::lanai_xp(), n, algo, cfg);
        prop_assert!(
            nic.mean_us < host.mean_us,
            "n={} {:?}: NIC {:.2} !< host {:.2}", n, algo, nic.mean_us, host.mean_us
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Model fitting: a latency series generated by any model is recovered
    /// exactly, and predictions are monotone in N.
    #[test]
    fn model_fit_roundtrip(
        t_init in 0.5f64..20.0,
        t_trig in 0.5f64..10.0,
    ) {
        let truth = nicbar::model::BarrierModel { t_init, t_trig, t_adj: 0.0 };
        let ns = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        let pts: Vec<(usize, f64)> = ns.iter().map(|&n| (n, truth.predict(n))).collect();
        let (fitted, q) = nicbar::model::fit(&pts);
        prop_assert!((fitted.t_trig - t_trig).abs() < 1e-6);
        prop_assert!((fitted.t_init - t_init).abs() < 1e-6);
        prop_assert!(q.rmse_us < 1e-6);
        for w in pts.windows(2) {
            prop_assert!(w[1].1 >= w[0].1, "model must be monotone in N");
        }
    }
}

mod collective_props {
    use super::*;
    use nicbar::core::{GroupOp, GroupSpec, PaperCollective, ReduceOp};
    use nicbar::gm::{GmApp, GmCluster, GmClusterSpec, GroupId, NicCollective};
    use nicbar::net::NodeId;
    use nicbar::sim::SimTime;

    const G: GroupId = GroupId(50);

    /// One-shot vector-collective app.
    struct VecApp {
        row: Vec<u64>,
        result: Option<u64>,
    }
    impl GmApp for VecApp {
        fn on_start(&mut self, api: &mut nicbar::gm::GmApi<'_>) {
            api.collective_vec(G, self.row.clone());
        }
        fn on_recv(
            &mut self,
            _api: &mut nicbar::gm::GmApi<'_>,
            _s: NodeId,
            _t: nicbar::gm::MsgTag,
            _l: u32,
        ) {
        }
        fn on_coll_done(&mut self, _api: &mut nicbar::gm::GmApi<'_>, _g: GroupId, _e: u64, v: u64) {
            self.result = Some(v);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Alltoall delivers exactly the transposed matrix for arbitrary
        /// sizes, values, seeds and mild loss.
        #[test]
        fn alltoall_transposes_exactly(
            n in 2usize..10,
            seed in 0u64..500,
            drop in prop_oneof![Just(0.0), Just(0.03)],
            base in 0u64..1_000_000,
        ) {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let spec = GmClusterSpec::new(GmParams::lanai_xp(), n)
                .with_seed(seed)
                .with_drop_prob(drop);
            let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
            let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
            for rank in 0..n {
                apps.push(Box::new(VecApp {
                    row: (0..n as u64).map(|j| base + 37 * rank as u64 + j).collect(),
                    result: None,
                }));
                colls.push(Box::new(PaperCollective::new(
                    NodeId(rank),
                    vec![GroupSpec {
                        id: G,
                        members: members.clone().into(),
                        my_rank: rank,
                        op: GroupOp::Alltoall,
                        algo: Algorithm::Dissemination,
                        timeout: SimTime::from_us(400.0),
                    }],
                )));
            }
            let mut cluster = GmCluster::build(spec, apps, colls);
            cluster.run_until(SimTime::from_us(60_000_000.0));
            for me in 0..n {
                let expect: u64 = (0..n as u64)
                    .map(|i| base + 37 * i + me as u64)
                    .fold(0, u64::wrapping_add);
                let got = cluster.app_ref::<VecApp>(me).result;
                prop_assert_eq!(got, Some(expect), "rank {}", me);
            }
        }

        /// Allreduce(Max) agrees with the host-side fold for arbitrary
        /// contributions — the NIC computes what a host loop would.
        #[test]
        fn allreduce_matches_reference_fold(
            contributions in prop::collection::vec(0u64..1_000_000, 2..12),
            seed in 0u64..500,
        ) {
            use nicbar::core::host_app::CollOpApp;
            let n = contributions.len();
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(seed);
            let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
            let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
            for (rank, &contribution) in contributions.iter().enumerate() {
                apps.push(Box::new(CollOpApp::new(G, vec![contribution])));
                colls.push(Box::new(PaperCollective::new(
                    NodeId(rank),
                    vec![GroupSpec {
                        id: G,
                        members: members.clone().into(),
                        my_rank: rank,
                        op: GroupOp::Allreduce { op: ReduceOp::Max },
                        algo: Algorithm::Dissemination,
                        timeout: SimTime::from_us(400.0),
                    }],
                )));
            }
            let mut cluster = GmCluster::build(spec, apps, colls);
            cluster.run_until(SimTime::from_us(10_000_000.0));
            let expect = contributions.iter().copied().max().unwrap();
            for rank in 0..n {
                let got = cluster.app_ref::<CollOpApp>(rank).results[0].1;
                prop_assert_eq!(got, expect, "rank {}", rank);
            }
        }
    }
}
