//! Cross-substrate comparisons: relations between the Quadrics and Myrinet
//! results that the paper's figures imply when read together.

use nicbar::core::{elan_nic_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};

fn cfg() -> RunCfg {
    RunCfg {
        warmup: 20,
        iters: 300,
        ..RunCfg::default()
    }
}

fn quadrics(n: usize) -> f64 {
    elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, cfg()).mean_us
}

fn myrinet(n: usize) -> f64 {
    gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg(),
    )
    .mean_us
}

#[test]
fn quadrics_nic_barrier_beats_myrinet_at_every_size() {
    // Fig. 7 vs Fig. 6: Elan3's chained descriptors (no per-message NIC
    // software loop) keep Quadrics ~2× faster throughout.
    for n in [2usize, 4, 8, 16, 64] {
        let q = quadrics(n);
        let m = myrinet(n);
        assert!(
            q < m,
            "n={n}: Quadrics {q:.2}µs should beat Myrinet {m:.2}µs"
        );
    }
}

#[test]
fn dissemination_latency_is_a_staircase_in_ceil_log2() {
    // DS costs depend on ⌈log₂N⌉ only; within a bucket the curve is flat
    // (to within contention noise), across buckets it steps up.
    for (lo, hi) in [(5usize, 8usize), (9, 16)] {
        for f in [quadrics as fn(usize) -> f64, myrinet as fn(usize) -> f64] {
            let a = f(lo);
            let b = f(hi);
            assert!(
                (a - b).abs() / b < 0.10,
                "latency not flat within a log bucket: {a:.2} vs {b:.2}"
            );
        }
    }
    for f in [quadrics as fn(usize) -> f64, myrinet as fn(usize) -> f64] {
        assert!(f(9) > f(8), "no step between log buckets");
    }
}

#[test]
fn both_substrates_charge_one_packet_per_schedule_send() {
    // The wire accounting is identical across substrates: n·⌈log₂n⌉
    // messages per dissemination barrier.
    let c = cfg();
    for n in [4usize, 8] {
        let q = elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, c.clone());
        let m = gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            c.clone(),
        );
        let expect = (n * nicbar::core::ceil_log2(n)) as f64;
        assert!((q.wire_per_barrier - expect).abs() < 0.01, "elan n={n}");
        assert!((m.wire_per_barrier - expect).abs() < 0.01, "gm n={n}");
    }
}

#[test]
fn elan4_projection_dominates_elan3() {
    for n in [4usize, 16, 64] {
        let e3 = elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, cfg());
        let e4 = elan_nic_barrier(
            ElanParams::elan4_projection(),
            n,
            Algorithm::Dissemination,
            cfg(),
        );
        assert!(
            e4.mean_us < e3.mean_us * 0.75,
            "n={n}: Elan4 projection {:.2} should clearly beat Elan3 {:.2}",
            e4.mean_us,
            e3.mean_us
        );
    }
}

#[test]
fn soak_thousands_of_epochs_with_loss_and_skew() {
    // A long consecutive-barrier run with loss and skew on GM, and skew on
    // Elan: the per-run safety invariant (checked inside the driver) plus
    // liveness over thousands of epochs.
    let cfg = RunCfg {
        warmup: 10,
        iters: 2_000,
        seed: 3,
        skew_us: 5.0,
        drop_prob: 0.01,
        permute: true,
        ..RunCfg::default()
    };
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    assert!(s.mean_us > 0.0);
    let elan_cfg = RunCfg {
        drop_prob: 0.0,
        ..cfg
    };
    let s = elan_nic_barrier(
        ElanParams::elan3(),
        8,
        Algorithm::PairwiseExchange,
        elan_cfg,
    );
    assert!(s.mean_us > 0.0);
}
