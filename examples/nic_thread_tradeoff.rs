//! The §7 design choice, quantified: chained RDMA descriptors vs the Elan
//! thread processor.
//!
//! "Although Elan threads can be created and executed by the thread
//! processor …, an extra thread does increase the processing load to the
//! Elan NIC. …we have chosen not to set up an additional thread" — §7.
//! But data collectives (Moody et al., the paper's ref [14]) *need* the
//! thread: chains move no data and compute nothing.
//!
//! ```text
//! cargo run --release --example nic_thread_tradeoff
//! ```

use nicbar::core::{
    elan_nic_barrier, elan_thread_allreduce, elan_thread_barrier, Algorithm, ReduceOp, RunCfg,
};
use nicbar::elan::ElanParams;

fn main() {
    let cfg = RunCfg {
        warmup: 20,
        iters: 500,
        ..RunCfg::default()
    };

    println!("Quadrics/Elan3: chained descriptors vs the thread processor\n");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>16}",
        "nodes", "chain barrier", "thread barrier", "overhead", "thread allreduce"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let chain = elan_nic_barrier(
            ElanParams::elan3(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let thread = elan_thread_barrier(ElanParams::elan3(), n, cfg.clone());
        let (reduce, _) = elan_thread_allreduce(
            ElanParams::elan3(),
            n,
            cfg.clone(),
            ReduceOp::Max,
            |r, _| r as u64,
        );
        println!(
            "{n:>6} {:>12.2}µs {:>12.2}µs {:>9.0}% {:>14.2}µs",
            chain.mean_us,
            thread.mean_us,
            (thread.mean_us / chain.mean_us - 1.0) * 100.0,
            reduce.mean_us,
        );
    }

    println!("\nFor the barrier the thread only adds processing load — §7's choice");
    println!("of pure chained descriptors is right. For allreduce the thread is");
    println!("the *only* NIC-resident option (chains cannot combine values), and");
    println!("it still costs barely more than the thread barrier itself — the");
    println!("case ref [14] makes for NIC-based reductions.");
}
