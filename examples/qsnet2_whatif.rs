//! The §9 what-if: how does the chained-RDMA barrier scale on QsNet-II
//! (Elan4) hardware? The paper could not run this ("As QsNet-II … become
//! available to us, we are planning to investigate"); the simulated
//! substrate can. Compares Elan3 measurements with the Elan4 projection
//! preset across cluster sizes.
//!
//! ```text
//! cargo run --release --example qsnet2_whatif
//! ```

use nicbar::core::{elan_nic_barrier, Algorithm, RunCfg};
use nicbar::elan::ElanParams;
use nicbar::model::fit;

fn main() {
    let ns = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let cfg = |n: usize| RunCfg {
        warmup: 10,
        iters: if n <= 64 { 300 } else { 100 },
        ..RunCfg::default()
    };

    println!("NIC-based dissemination barrier: Elan3 (calibrated) vs Elan4 (projection)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "nodes", "Elan3 (µs)", "Elan4 (µs)", "speedup"
    );
    let mut e3_pts = Vec::new();
    let mut e4_pts = Vec::new();
    for &n in &ns {
        let e3 = elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, cfg(n)).mean_us;
        let e4 = elan_nic_barrier(
            ElanParams::elan4_projection(),
            n,
            Algorithm::Dissemination,
            cfg(n),
        )
        .mean_us;
        println!("{n:>6} {e3:>12.2} {e4:>12.2} {:>8.2}x", e3 / e4);
        e3_pts.push((n, e3));
        e4_pts.push((n, e4));
    }

    let (m3, _) = fit(&e3_pts);
    let (m4, _) = fit(&e4_pts);
    println!(
        "\nfitted per-round trigger cost: Elan3 {:.2} µs → Elan4 {:.2} µs",
        m3.t_trig, m4.t_trig
    );
    println!("The chained-descriptor design carries over unchanged: the speedup is");
    println!("pure hardware (faster event processor + links), with the same");
    println!("⌈log₂N⌉ scaling shape — the accommodation §9 hoped for.");
}
