//! The paper's motivation (§1): "The efficiency of barrier also affects the
//! granularity of a parallel application. To support fine-grained parallel
//! applications, an efficient barrier primitive must be provided."
//!
//! This example simulates a BSP-style application — compute for `g` µs,
//! barrier, repeat — on the LANai-XP cluster and reports parallel
//! efficiency (compute time / wall time) for the host-based and NIC-based
//! barriers across compute grains. The NIC-based barrier sustains usable
//! efficiency at grains where the host-based one burns half the machine.
//!
//! ```text
//! cargo run --release --example fine_grained_app
//! ```

use nicbar::core::{gm_host_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar::gm::{CollFeatures, GmParams};

fn main() {
    let n = 8;
    println!("BSP loop on an {n}-node LANai-XP cluster: compute(g) ; barrier ; repeat\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12}",
        "grain(µs)", "host wall(µs)", "nic wall(µs)", "host eff.", "nic eff."
    );

    for grain in [5.0f64, 10.0, 20.0, 50.0, 100.0, 200.0] {
        // Model the compute phase as a deterministic per-iteration skew of
        // exactly `grain` µs (every process computes the same amount — a
        // perfectly balanced BSP superstep).
        let cfg = RunCfg {
            warmup: 20,
            iters: 300,
            skew_us: grain, // uniform in [0, grain): average grain/2 … see note
            ..RunCfg::default()
        };
        // skew_us draws uniformly, so the expected compute per iteration is
        // grain/2; use that for the efficiency denominator.
        let compute = grain / 2.0;

        let host = gm_host_barrier(
            GmParams::lanai_xp(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let nic = gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg,
        );
        let host_eff = compute / host.mean_us;
        let nic_eff = compute / nic.mean_us;
        println!(
            "{grain:>10.0} {:>14.2} {:>14.2} {:>11.1}% {:>11.1}%",
            host.mean_us,
            nic.mean_us,
            host_eff * 100.0,
            nic_eff * 100.0
        );
    }

    println!("\nefficiency = expected compute per superstep / wall time per superstep.");
    println!("The NIC-based barrier keeps fine-grained supersteps efficient; the");
    println!("host-based barrier needs several times coarser grain for the same");
    println!("efficiency — the paper's granularity argument, quantified.");
}
