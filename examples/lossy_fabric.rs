//! Reliability economics (§6.3): sweep the fabric loss rate and compare
//! the wire traffic of the two reliability designs —
//!
//! * point-to-point (host-based barrier): every packet ACKed, sender
//!   timeout + go-back-N retransmission;
//! * receiver-driven (NIC-based collective): no ACKs at all; a stalled
//!   receiver NACKs exactly the missing sender, halving the lossless
//!   packet count.
//!
//! ```text
//! cargo run --release --example lossy_fabric
//! ```

use nicbar::core::{gm_host_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar::gm::{CollFeatures, GmParams};

fn main() {
    let n = 8;
    println!("8-node LANai-XP cluster, dissemination barrier, loss sweep\n");
    println!(
        "{:>7} | {:>11} {:>9} {:>9} | {:>11} {:>9} {:>9}",
        "loss", "host pkts/b", "retx", "lat(µs)", "nic pkts/b", "nacks", "lat(µs)"
    );

    for drop in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let cfg = RunCfg {
            warmup: 10,
            iters: 200,
            drop_prob: drop,
            seed: 99,
            ..RunCfg::default()
        };
        let host = gm_host_barrier(
            GmParams::lanai_xp(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let nic = gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let total = cfg.total() as f64;
        println!(
            "{:>6.1}% | {:>11.1} {:>9.2} {:>9.2} | {:>11.1} {:>9.2} {:>9.2}",
            drop * 100.0,
            host.wire_per_barrier,
            host.counter("gm.retransmit") as f64 / total,
            host.mean_us,
            nic.wire_per_barrier,
            nic.counter("wire.coll_nack") as f64 / total,
            nic.mean_us,
        );
    }

    println!("\npkts/b = wire packets per barrier; retx/nacks are per barrier too.");
    println!("Lossless, the collective protocol moves exactly half the packets");
    println!("(24 vs 48 at n=8). Under loss both recover; the NACK path pays only");
    println!("for what was actually lost.");
}
