//! Barrier under load — the §6.1 queuing argument, made measurable.
//!
//! Every process keeps a pipeline of bulk messages streaming to its ring
//! neighbour while running consecutive barriers. With the paper's dedicated
//! group queue, barrier messages bypass the congested per-destination
//! queues; in the direct scheme and the host-based barrier they wait their
//! round-robin turn behind 4 KB transfers.
//!
//! ```text
//! cargo run --release --example congested_cluster
//! ```

use nicbar::core::{
    gm_host_barrier, gm_host_barrier_under_traffic, gm_nic_barrier, gm_nic_barrier_under_traffic,
    Algorithm, RunCfg, TrafficCfg,
};
use nicbar::gm::{CollFeatures, GmParams};

fn main() {
    let n = 8;
    let cfg = RunCfg {
        warmup: 20,
        iters: 300,
        ..RunCfg::default()
    };

    println!("8-node LANai-XP cluster, dissemination barrier, ring bulk traffic\n");
    println!(
        "{:<26} {:>10} {:>12} {:>10}",
        "barrier implementation", "quiet(µs)", "loaded(µs)", "slowdown"
    );

    let quiet_nic = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg.clone(),
    )
    .mean_us;
    let quiet_direct = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::direct(),
        n,
        Algorithm::Dissemination,
        cfg.clone(),
    )
    .mean_us;
    let quiet_host = gm_host_barrier(
        GmParams::lanai_xp(),
        n,
        Algorithm::Dissemination,
        cfg.clone(),
    )
    .mean_us;

    for outstanding in [2u32, 4, 8] {
        let traffic = TrafficCfg {
            msg_bytes: 4096,
            outstanding,
        };
        let nic = gm_nic_barrier_under_traffic(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
            traffic,
        )
        .mean_us;
        let direct = gm_nic_barrier_under_traffic(
            GmParams::lanai_xp(),
            CollFeatures::direct(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
            traffic,
        )
        .mean_us;
        let host = gm_host_barrier_under_traffic(
            GmParams::lanai_xp(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
            traffic,
        )
        .mean_us;

        println!("--- {outstanding} × 4 KB bulk messages in flight per process ---");
        println!(
            "{:<26} {quiet_nic:>10.2} {nic:>12.2} {:>9.2}x",
            "NIC (paper protocol)",
            nic / quiet_nic
        );
        println!(
            "{:<26} {quiet_direct:>10.2} {direct:>12.2} {:>9.2}x",
            "NIC (direct scheme)",
            direct / quiet_direct
        );
        println!(
            "{:<26} {quiet_host:>10.2} {host:>12.2} {:>9.2}x",
            "host-based",
            host / quiet_host
        );
    }

    println!("\nThe dedicated group queue keeps the barrier's slowdown small under");
    println!("load; the direct scheme and host-based barrier queue behind the bulk");
    println!("transfers — the delay §6.1 sets out to eliminate.");
}
