//! Quickstart: simulate the paper's headline experiment — an 8-node
//! Myrinet LANai-XP cluster running consecutive NIC-based barriers — and
//! print the latency, the improvement factor over the host-based baseline,
//! and the wire-level accounting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nicbar::core::{gm_host_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar::gm::{CollFeatures, GmParams};

fn main() {
    let cfg = RunCfg {
        warmup: 100,
        iters: 2000,
        ..RunCfg::default()
    };
    let n = 8;

    println!(
        "simulating {n}-node Myrinet (LANai-XP) cluster, {} barriers...\n",
        cfg.total()
    );

    let nic = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    let host = gm_host_barrier(GmParams::lanai_xp(), n, Algorithm::Dissemination, cfg);

    println!(
        "NIC-based barrier (dissemination):  {:>6.2} µs",
        nic.mean_us
    );
    println!(
        "host-based barrier (dissemination): {:>6.2} µs",
        host.mean_us
    );
    println!(
        "improvement factor:                 {:>6.2}x   (paper: 2.64x)",
        host.mean_us / nic.mean_us
    );
    println!();
    println!("wire packets per barrier:");
    println!(
        "  NIC-based:  {:>5.1}  (collective packets only — no ACKs, §6.3)",
        nic.wire_per_barrier
    );
    println!(
        "  host-based: {:>5.1}  (data + one ACK each)",
        host.wire_per_barrier
    );
    println!();
    println!("interesting counters (NIC-based run):");
    for key in [
        "wire.coll",
        "wire.coll_nack",
        "gm.coll_recv",
        "gm.host_coll",
    ] {
        println!("  {key:<16} {}", nic.counter(key));
    }
}
