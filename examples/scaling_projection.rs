//! The paper's §8.3 exercise end-to-end: sweep the NIC-based dissemination
//! barrier to 1024 nodes on both simulated interconnects, fit the
//! analytical model `T = T_init + (⌈log₂N⌉−1)·T_trig + T_adj` to the sweep,
//! and compare with the paper's fitted constants.
//!
//! ```text
//! cargo run --release --example scaling_projection
//! ```

use nicbar::core::{elan_nic_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar::elan::ElanParams;
use nicbar::gm::{CollFeatures, GmParams};
use nicbar::model::{fit, BarrierModel};

fn main() {
    let ns = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let cfg = |n: usize| RunCfg {
        warmup: 10,
        iters: if n <= 64 { 300 } else { 100 },
        ..RunCfg::default()
    };

    println!("sweeping the NIC-based dissemination barrier to 1024 nodes...\n");
    let mut quadrics = Vec::new();
    let mut myrinet = Vec::new();
    for &n in &ns {
        let q = elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, cfg(n));
        let m = gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg(n),
        );
        quadrics.push((n, q.mean_us));
        myrinet.push((n, m.mean_us));
        println!(
            "  n={n:>5}: Quadrics {:>6.2} µs   Myrinet {:>6.2} µs",
            q.mean_us, m.mean_us
        );
    }

    let (qf, qq) = fit(&quadrics);
    let (mf, mq) = fit(&myrinet);
    let qp = BarrierModel::paper_quadrics_elan3();
    let mp = BarrierModel::paper_myrinet_xp();

    println!("\nfitted models (T = A + (⌈log₂N⌉−1)·T_trig, µs):");
    println!(
        "  Quadrics: A = {:.2}, T_trig = {:.2}  (R² {:.4})   paper: A = {:.2}, T_trig = {:.2}",
        qf.t_init,
        qf.t_trig,
        qq.r_squared,
        qp.t_init + qp.t_adj,
        qp.t_trig
    );
    println!(
        "  Myrinet:  A = {:.2}, T_trig = {:.2}  (R² {:.4})   paper: A = {:.2}, T_trig = {:.2}",
        mf.t_init,
        mf.t_trig,
        mq.r_squared,
        mp.t_init + mp.t_adj,
        mp.t_trig
    );
    println!(
        "\n1024-node latency: Quadrics {:.2} µs (paper model 22.13), Myrinet {:.2} µs (paper model 38.94)",
        quadrics.last().unwrap().1,
        myrinet.last().unwrap().1
    );
}
