//! The §9 future-work collectives, running today: NIC-based broadcast,
//! allreduce and allgather over the same collective protocol (static
//! packets, bit vectors, receiver-driven NACKs) on the simulated Myrinet
//! cluster.
//!
//! ```text
//! cargo run --release --example collective_ops
//! ```

use nicbar::core::host_app::CollOpApp;
use nicbar::core::{Algorithm, GroupOp, GroupSpec, PaperCollective, ReduceOp};
use nicbar::gm::{GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, NicCollective};
use nicbar::net::NodeId;
use nicbar::sim::SimTime;

const GROUP: GroupId = GroupId(77);

fn run(n: usize, op: GroupOp, contribution: impl Fn(usize) -> u64) -> (f64, Vec<u64>) {
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(5);
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for rank in 0..n {
        apps.push(Box::new(CollOpApp::new(GROUP, vec![contribution(rank)])));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            vec![GroupSpec {
                id: GROUP,
                members: members.clone().into(),
                my_rank: rank,
                op,
                algo: Algorithm::Dissemination,
                timeout: SimTime::from_us(400.0),
            }],
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    cluster.run_until(SimTime::from_us(1_000_000.0));
    let latency = (0..n)
        .map(|r| cluster.app_ref::<CollOpApp>(r).results[0].0)
        .max()
        .unwrap()
        .as_us();
    let values = (0..n)
        .map(|r| cluster.app_ref::<CollOpApp>(r).results[0].1)
        .collect();
    (latency, values)
}

/// Alltoall needs a vector operand; run it through a dedicated tiny app.
fn run_alltoall(n: usize) -> (f64, Vec<u64>) {
    struct A2A {
        group: GroupId,
        row: Vec<u64>,
        result: Option<(SimTime, u64)>,
    }
    impl GmApp for A2A {
        fn on_start(&mut self, api: &mut nicbar::gm::GmApi<'_>) {
            api.collective_vec(self.group, self.row.clone());
        }
        fn on_recv(
            &mut self,
            _api: &mut nicbar::gm::GmApi<'_>,
            _s: NodeId,
            _t: nicbar::gm::MsgTag,
            _l: u32,
        ) {
        }
        fn on_coll_done(&mut self, api: &mut nicbar::gm::GmApi<'_>, _g: GroupId, _e: u64, v: u64) {
            self.result = Some((api.now(), v));
        }
    }
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(6);
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for rank in 0..n {
        apps.push(Box::new(A2A {
            group: GROUP,
            row: (0..n as u64).map(|j| 1000 * rank as u64 + j).collect(),
            result: None,
        }));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            vec![GroupSpec {
                id: GROUP,
                members: members.clone().into(),
                my_rank: rank,
                op: GroupOp::Alltoall,
                algo: Algorithm::Dissemination,
                timeout: SimTime::from_us(400.0),
            }],
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    cluster.run_until(SimTime::from_us(1_000_000.0));
    let latency = (0..n)
        .map(|r| cluster.app_ref::<A2A>(r).result.unwrap().0)
        .max()
        .unwrap()
        .as_us();
    let values = (0..n)
        .map(|r| cluster.app_ref::<A2A>(r).result.unwrap().1)
        .collect();
    (latency, values)
}

fn main() {
    let n = 8;
    println!("NIC-based extension collectives on an {n}-node LANai-XP cluster\n");

    let (t, vals) = run(n, GroupOp::Broadcast { root: 3 }, |rank| {
        if rank == 3 {
            424242
        } else {
            0
        }
    });
    println!(
        "broadcast(root=3, value=424242):  {t:>6.2} µs   everyone got {:?}",
        vals[0]
    );
    assert!(vals.iter().all(|&v| v == 424242));

    let (t, vals) = run(n, GroupOp::Allreduce { op: ReduceOp::Sum }, |rank| {
        rank as u64 + 1
    });
    println!(
        "allreduce(sum of 1..=8):          {t:>6.2} µs   everyone got {:?}",
        vals[0]
    );
    assert!(vals.iter().all(|&v| v == 36));

    let (t, vals) = run(n, GroupOp::Allreduce { op: ReduceOp::Max }, |rank| {
        10 * rank as u64
    });
    println!(
        "allreduce(max of 0,10,..,70):     {t:>6.2} µs   everyone got {:?}",
        vals[0]
    );
    assert!(vals.iter().all(|&v| v == 70));

    let (t, vals) = run(n, GroupOp::Allgather, |rank| 1 << rank);
    println!(
        "allgather(2^rank), sum-folded:    {t:>6.2} µs   everyone got {:?} (= 2^8 - 1)",
        vals[0]
    );
    assert!(vals.iter().all(|&v| v == 255));

    let (t, vals) = run_alltoall(n);
    let expect: u64 = (0..n as u64).map(|i| 1000 * i).sum::<u64>(); // row fold at rank 0
    println!(
        "alltoall(1000*rank + dst), folded:{t:>6.2} µs   rank 0 got {:?} (= {expect})",
        vals[0]
    );
    assert_eq!(vals[0], expect);

    println!("\nAll of these run on the identical protocol machinery the barrier uses —");
    println!("the generalization the paper's §9 proposes (\"such as Allgather or Alltoall\").");
}
