//! A STORM-style resource-management scenario (paper §9: "we intend to
//! incorporate this NIC-based barrier, along with the NIC-based broadcast,
//! into a resource management framework (e.g., STORM) to investigate their
//! benefits in increasing resource utilization").
//!
//! The job-launch protocol of a STORM-like manager, expressed as an MPI
//! program over the simulated cluster:
//!
//! 1. the management node **broadcasts** the launch descriptor,
//! 2. every node stages the binary (compute phase) and enters a **barrier**
//!    so the job starts simultaneously,
//! 3. the job runs BSP supersteps (compute + barrier),
//! 4. exit statuses are combined with an **allreduce** (max = worst status).
//!
//! Run with the paper's collective protocol vs the direct scheme to see
//! what the NIC collectives buy a resource manager in launch turnaround.
//!
//! ```text
//! cargo run --release --example storm_launcher
//! ```

use nicbar::core::ReduceOp;
use nicbar::gm::CollFeatures;
use nicbar::mpi::{MpiOp, MpiProgram, MpiWorld};

fn launch_program(rank: usize, supersteps: u32) -> MpiProgram {
    let mut ops = Vec::new();
    // 1. Launch descriptor from the manager (rank 0).
    ops.push(MpiOp::SetValue(if rank == 0 { 0x1057 } else { 0 }));
    ops.push(MpiOp::Bcast { root: 0 });
    ops.push(MpiOp::StoreResult);
    // 2. Stage-in (every node unpacks for 50 µs), then synchronized start.
    ops.push(MpiOp::Compute { us: 50.0 });
    ops.push(MpiOp::Barrier);
    // 3. The job: fine-grained BSP supersteps.
    for _ in 0..supersteps {
        ops.push(MpiOp::Compute { us: 10.0 });
        ops.push(MpiOp::Barrier);
    }
    // 4. Exit-status combine (rank 3 "fails" with status 1).
    ops.push(MpiOp::SetValue(u64::from(rank == 3)));
    ops.push(MpiOp::Allreduce { op: ReduceOp::Max });
    ops.push(MpiOp::StoreResult);
    MpiProgram::new(ops)
}

fn main() {
    let n = 8;
    let supersteps = 100;

    println!("STORM-style job launch on an {n}-node LANai-XP cluster");
    println!("(bcast descriptor → stage-in → barrier → {supersteps} BSP supersteps → status allreduce)\n");

    for (label, features) in [
        ("NIC collectives (paper protocol)", CollFeatures::paper()),
        ("direct scheme (ref [3])", CollFeatures::direct()),
    ] {
        let report = MpiWorld::new(n)
            .with_features(features)
            .programs_from(|rank| launch_program(rank, supersteps))
            .run();
        // Everyone saw the descriptor and the aggregated exit status.
        for rank in 0..n {
            assert_eq!(report.results[rank][0], 0x1057, "descriptor lost");
            assert_eq!(report.results[rank][1], 1, "failed status not aggregated");
        }
        println!(
            "{label:<36} makespan {:>9.1} µs   ({:.1} µs per superstep)",
            report.makespan_us,
            report.makespan_us / f64::from(supersteps)
        );
    }

    println!("\nThe launch is collective-bound: faster NIC collectives translate");
    println!("directly into job-turnaround — the utilization argument of §9.");
}
