//! NIC ↔ collective-engine contract tests, using a scripted stub engine:
//! doorbell dispatch, action execution order, timer arming, host
//! completion delivery, and the ablation paths (queued collective tokens,
//! per-packet ACK traffic).
#![allow(clippy::unwrap_used)] // test code: panicking on bad state is the point

use nicbar_gm::{
    ActionBuf, CollAction, CollFeatures, CollKind, CollPacket, GmApi, GmApp, GmCluster,
    GmClusterSpec, GmParams, GroupId, MsgTag, NicCollective,
};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};

const G: GroupId = GroupId(1);

/// A scripted collective engine: the doorbell broadcasts one packet to
/// every peer; receiving `n-1` packets completes the operation. Exercises
/// the NIC glue without the real protocol's machinery.
struct ScriptedColl {
    node: NodeId,
    n: usize,
    got: usize,
    epoch: u64,
    armed_deadline: Option<SimTime>,
    timer_calls: u64,
}

impl ScriptedColl {
    fn new(node: NodeId, n: usize) -> Self {
        ScriptedColl {
            node,
            n,
            got: 0,
            epoch: 0,
            armed_deadline: None,
            timer_calls: 0,
        }
    }
}

impl NicCollective for ScriptedColl {
    fn on_doorbell(
        &mut self,
        now: SimTime,
        group: GroupId,
        epoch: u64,
        _operand: &nicbar_gm::CollOperand,
        cause: nicbar_sim::CauseId,
        actions: &mut ActionBuf,
    ) {
        let _ = cause;
        assert_eq!(group, G);
        self.epoch = epoch;
        self.armed_deadline = Some(now + SimTime::from_us(10_000.0));
        for d in (0..self.n).filter(|&d| d != self.node.0) {
            actions.push(CollAction::Send {
                dst: NodeId(d),
                pkt: CollPacket {
                    src: self.node,
                    group: G,
                    epoch,
                    round: 0,
                    kind: CollKind::Barrier,
                },
                retx: false,
                cause: nicbar_sim::CauseId::NONE,
            });
        }
    }

    fn on_packet(
        &mut self,
        _now: SimTime,
        pkt: &CollPacket,
        _cause: nicbar_sim::CauseId,
        actions: &mut ActionBuf,
    ) {
        assert_eq!(pkt.group, G);
        self.got += 1;
        if self.got == self.n - 1 {
            self.armed_deadline = None;
            actions.push(CollAction::HostDone {
                group: G,
                epoch: self.epoch,
                value: 7,
                cause: nicbar_sim::CauseId::NONE,
            });
        }
    }

    fn on_timer(&mut self, _now: SimTime, _actions: &mut ActionBuf) {
        self.timer_calls += 1;
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.armed_deadline
    }
}

/// Host app: one doorbell, records the completion.
struct OneShot {
    done: Option<(u64, u64, SimTime)>,
}

impl GmApp for OneShot {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        api.collective(G, 0);
    }
    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
        panic!("unexpected p2p message");
    }
    fn on_coll_done(&mut self, api: &mut GmApi<'_>, _g: GroupId, epoch: u64, value: u64) {
        assert!(self.done.is_none());
        self.done = Some((epoch, value, api.now()));
    }
}

fn run(features: CollFeatures, n: usize) -> GmCluster {
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n)
        .with_seed(8)
        .with_features(features);
    let apps: Vec<Box<dyn GmApp>> = (0..n)
        .map(|_| Box::new(OneShot { done: None }) as Box<dyn GmApp>)
        .collect();
    let colls: Vec<Box<dyn NicCollective>> = (0..n)
        .map(|i| Box::new(ScriptedColl::new(NodeId(i), n)) as Box<dyn NicCollective>)
        .collect();
    let mut cluster = GmCluster::build(spec, apps, colls);
    let outcome = cluster.run_until(SimTime::from_us(100_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    cluster
}

#[test]
fn doorbell_actions_reach_every_peer_and_complete_hosts() {
    let cluster = run(CollFeatures::paper(), 4);
    for i in 0..4 {
        let (epoch, value, _) = cluster
            .app_ref::<OneShot>(i)
            .done
            .expect("host saw completion");
        assert_eq!(epoch, 0);
        assert_eq!(value, 7);
    }
    // All-to-all: 4 × 3 collective packets on the wire, no ACKs.
    assert_eq!(cluster.engine.counters().get("wire.coll"), 12);
    assert_eq!(cluster.engine.counters().get("wire.coll_ack"), 0);
}

#[test]
fn ablated_reliability_acks_every_collective_packet() {
    let cluster = run(
        CollFeatures {
            recv_driven_retx: false,
            ..CollFeatures::paper()
        },
        4,
    );
    assert_eq!(cluster.engine.counters().get("wire.coll"), 12);
    assert_eq!(cluster.engine.counters().get("wire.coll_ack"), 12);
}

#[test]
fn ablated_group_queue_routes_through_token_queues_but_still_completes() {
    let cluster = run(
        CollFeatures {
            group_queue: false,
            ..CollFeatures::paper()
        },
        4,
    );
    for i in 0..4 {
        assert!(cluster.app_ref::<OneShot>(i).done.is_some(), "host {i}");
    }
    assert_eq!(cluster.engine.counters().get("wire.coll"), 12);
}

#[test]
fn queued_collective_sends_are_slower_than_bypass() {
    let t_of = |cluster: &GmCluster| {
        (0..4)
            .map(|i| cluster.app_ref::<OneShot>(i).done.unwrap().2)
            .max()
            .unwrap()
    };
    let bypass = t_of(&run(CollFeatures::paper(), 4));
    let queued = t_of(&run(
        CollFeatures {
            group_queue: false,
            ..CollFeatures::paper()
        },
        4,
    ));
    assert!(
        queued > bypass,
        "queued path ({queued}) should be slower than bypass ({bypass})"
    );
}

#[test]
fn timer_fires_while_a_deadline_is_armed() {
    // One node rings the doorbell; its peers never respond (their engines
    // are separate instances that never see a doorbell), so the deadline
    // stays armed and the NIC's sweep must call on_timer.
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), 2).with_seed(9);
    struct Quiet;
    impl GmApp for Quiet {
        fn on_start(&mut self, _api: &mut GmApi<'_>) {}
        fn on_recv(&mut self, _api: &mut GmApi<'_>, _s: NodeId, _t: MsgTag, _l: u32) {}
    }
    let apps: Vec<Box<dyn GmApp>> = vec![Box::new(OneShot { done: None }), Box::new(Quiet)];
    let colls: Vec<Box<dyn NicCollective>> = (0..2)
        .map(|i| Box::new(ScriptedColl::new(NodeId(i), 2)) as Box<dyn NicCollective>)
        .collect();
    let mut cluster = GmCluster::build(spec, apps, colls);
    let _ = cluster.run_until(SimTime::from_us(500.0));
    let nic0 = cluster.nics[0];
    let nic = cluster
        .engine
        .component_mut::<nicbar_gm::LanaiNic>(nic0)
        .unwrap();
    let coll = nic.collective_mut();
    let scripted = coll.as_any_mut().downcast_mut::<ScriptedColl>().unwrap();
    assert!(
        scripted.timer_calls > 0,
        "timer sweep never invoked the collective engine"
    );
}
