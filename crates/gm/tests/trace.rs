//! Trace-level protocol assertions: the event trace proves *how* the
//! protocol behaved, not just that it completed — e.g. that with the
//! dedicated group queue no collective message ever waited in a
//! destination queue.

use nicbar_gm::{
    ActionBuf, CollAction, CollFeatures, CollKind, CollPacket, GmApi, GmApp, GmCluster,
    GmClusterSpec, GmParams, GroupId, MsgTag, NicCollective,
};
use nicbar_net::NodeId;
use nicbar_sim::SimTime;

const G: GroupId = GroupId(4);

/// Minimal all-to-all collective engine (same as in coll_hook.rs).
struct AllToAll {
    node: NodeId,
    n: usize,
    got: usize,
    epoch: u64,
}

impl NicCollective for AllToAll {
    fn on_doorbell(
        &mut self,
        _now: SimTime,
        _g: GroupId,
        epoch: u64,
        _operand: &nicbar_gm::CollOperand,
        cause: nicbar_sim::CauseId,
        actions: &mut ActionBuf,
    ) {
        let _ = cause;
        self.epoch = epoch;
        for d in (0..self.n).filter(|&d| d != self.node.0) {
            actions.push(CollAction::Send {
                dst: NodeId(d),
                pkt: CollPacket {
                    src: self.node,
                    group: G,
                    epoch,
                    round: 0,
                    kind: CollKind::Barrier,
                },
                retx: false,
                cause: nicbar_sim::CauseId::NONE,
            });
        }
    }
    fn on_packet(
        &mut self,
        _now: SimTime,
        _pkt: &CollPacket,
        _cause: nicbar_sim::CauseId,
        actions: &mut ActionBuf,
    ) {
        self.got += 1;
        if self.got == self.n - 1 {
            actions.push(CollAction::HostDone {
                group: G,
                epoch: self.epoch,
                value: 0,
                cause: nicbar_sim::CauseId::NONE,
            });
        }
    }
    fn on_timer(&mut self, _now: SimTime, _actions: &mut ActionBuf) {}
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

struct Driver {
    done: bool,
}

impl GmApp for Driver {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        // Saturate the queue towards the ring neighbour first, then ring
        // the doorbell.
        let peer = NodeId((api.node().0 + 1) % api.num_nodes());
        for _ in 0..4 {
            api.send(peer, 4096, MsgTag(9));
        }
        api.collective(G, 0);
    }
    fn on_recv(&mut self, _api: &mut GmApi<'_>, _s: NodeId, _t: MsgTag, _l: u32) {}
    fn on_coll_done(&mut self, _api: &mut GmApi<'_>, _g: GroupId, _e: u64, _v: u64) {
        self.done = true;
    }
}

fn run(features: CollFeatures) -> GmCluster {
    let n = 4;
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n)
        .with_seed(21)
        .with_features(features);
    let apps: Vec<Box<dyn GmApp>> = (0..n)
        .map(|_| Box::new(Driver { done: false }) as Box<dyn GmApp>)
        .collect();
    let colls: Vec<Box<dyn NicCollective>> = (0..n)
        .map(|i| {
            Box::new(AllToAll {
                node: NodeId(i),
                n,
                got: 0,
                epoch: 0,
            }) as Box<dyn NicCollective>
        })
        .collect();
    let mut cluster = GmCluster::build(spec, apps, colls);
    cluster.engine.enable_trace();
    cluster.run_until(SimTime::from_us(100_000.0));
    cluster
}

#[test]
fn dedicated_queue_never_queues_a_collective_message() {
    let cluster = run(CollFeatures::paper());
    let trace = cluster.engine.trace();
    assert!(trace.count("fire") > 0, "no bypass fire events recorded");
    assert_eq!(
        trace.count("enqueue"),
        0,
        "a collective message waited in a destination queue despite the group queue"
    );
    for i in 0..4 {
        assert!(cluster.app_ref::<Driver>(i).done, "node {i} incomplete");
    }
}

#[test]
fn ablated_queue_makes_collectives_wait_behind_bulk_tokens() {
    let cluster = run(CollFeatures {
        group_queue: false,
        ..CollFeatures::paper()
    });
    let trace = cluster.engine.trace();
    let queued = trace.count("enqueue");
    assert!(
        queued > 0,
        "collective tokens never went through the queues"
    );
    // Every launched collective packet must have been enqueued first: the
    // ablated path has no bypass, so launches (fire/nack) match enqueues.
    assert_eq!(queued, trace.count("fire") + trace.count("nack"));
    // At least one collective token towards node 1 must have seen the bulk
    // backlog (non-zero queue depth at enqueue time).
    let saw_backlog = trace.with_label("enqueue").any(|r| r.a() == 1 && r.b() > 0);
    assert!(
        saw_backlog,
        "no collective token ever waited behind the pre-loaded bulk queue"
    );
    for i in 0..4 {
        assert!(cluster.app_ref::<Driver>(i).done, "node {i} incomplete");
    }
}
