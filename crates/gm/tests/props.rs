//! Property tests for the GM point-to-point substrate: arbitrary message
//! sizes (MTU boundaries included), loss rates and seeds must never break
//! delivery, ordering, or reassembly.

use nicbar_gm::{GmApi, GmApp, GmCluster, GmClusterSpec, GmParams, MsgId, MsgTag};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};
use proptest::prelude::*;

/// Sends a scripted list of messages to node 1; node 1 records what it
/// receives, in order.
struct Sender {
    sizes: Vec<u32>,
    next: usize,
    inflight: u32,
    window: u32,
}

impl GmApp for Sender {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        // Pipeline up to `window` messages; tags carry the sequence index.
        while self.next < self.sizes.len() && self.inflight < self.window {
            api.send(NodeId(1), self.sizes[self.next], MsgTag(self.next as u32));
            self.next += 1;
            self.inflight += 1;
        }
    }
    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {}
    fn on_send_done(&mut self, api: &mut GmApi<'_>, _msg_id: MsgId) {
        self.inflight -= 1;
        while self.next < self.sizes.len() && self.inflight < self.window {
            api.send(NodeId(1), self.sizes[self.next], MsgTag(self.next as u32));
            self.next += 1;
            self.inflight += 1;
        }
    }
}

struct Receiver {
    got: Vec<(u32, u32)>, // (tag, len)
}

impl GmApp for Receiver {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        api.post_recv(64);
    }
    fn on_recv(&mut self, _api: &mut GmApi<'_>, src: NodeId, tag: MsgTag, len: u32) {
        assert_eq!(src, NodeId(0));
        self.got.push((tag.0, len));
    }
}

fn run_transfer(sizes: Vec<u32>, drop: f64, seed: u64) -> Vec<(u32, u32)> {
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), 2)
        .with_seed(seed)
        .with_drop_prob(drop);
    let mut cluster = GmCluster::build_p2p(
        spec,
        vec![
            Box::new(Sender {
                sizes: sizes.clone(),
                next: 0,
                inflight: 0,
                window: 8,
            }),
            Box::new(Receiver { got: Vec::new() }),
        ],
    );
    let outcome = cluster
        .engine
        .run_bounded(SimTime::from_us(60_000_000.0), 500_000_000);
    assert_eq!(outcome, RunOutcome::Idle, "transfer wedged");
    cluster.app_ref::<Receiver>(1).got.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message arrives exactly once, in order, with its full length —
    /// across MTU-straddling sizes and loss.
    #[test]
    fn messages_deliver_in_order_intact(
        sizes in prop::collection::vec(
            prop_oneof![
                1u32..64,              // tiny
                4095u32..4098,         // MTU boundary (mtu = 4096)
                8191u32..8194,         // two-packet boundary
                1u32..20_000,          // anything
            ],
            1..20
        ),
        drop in prop_oneof![Just(0.0), Just(0.02), Just(0.10)],
        seed in 0u64..500,
    ) {
        let got = run_transfer(sizes.clone(), drop, seed);
        let expect: Vec<(u32, u32)> =
            sizes.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn mtu_exact_multiples_round_trip() {
    // Deterministic spot-checks of the packetization boundaries.
    let sizes = vec![4096, 8192, 12288, 4097, 8193, 1, 4095];
    let got = run_transfer(sizes.clone(), 0.0, 3);
    assert_eq!(got.len(), sizes.len());
    for (i, &(tag, len)) in got.iter().enumerate() {
        assert_eq!(tag, i as u32);
        assert_eq!(len, sizes[i]);
    }
}
