//! End-to-end tests of the GM point-to-point protocol: ping-pong latency,
//! multi-packet messages, loss recovery, flow control.
#![allow(clippy::unwrap_used)] // test code: panicking on bad state is the point

use nicbar_gm::{GmApi, GmApp, GmCluster, GmClusterSpec, GmParams, MsgId, MsgTag};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};

const TAG: MsgTag = MsgTag(7);

/// Classic ping-pong: node 0 sends, node 1 echoes, `rounds` times.
struct PingPong {
    me: usize,
    peer: NodeId,
    rounds: u32,
    len: u32,
    completed: u32,
    finish_time: Option<SimTime>,
    recv_lens: Vec<u32>,
    sends_done: u32,
}

impl PingPong {
    fn new(me: usize, peer: usize, rounds: u32, len: u32) -> Self {
        PingPong {
            me,
            peer: NodeId(peer),
            rounds,
            len,
            completed: 0,
            finish_time: None,
            recv_lens: Vec::new(),
            sends_done: 0,
        }
    }
}

impl GmApp for PingPong {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        if self.me == 0 {
            api.send(self.peer, self.len, TAG);
        }
    }

    fn on_recv(&mut self, api: &mut GmApi<'_>, src: NodeId, tag: MsgTag, len: u32) {
        assert_eq!(src, self.peer);
        assert_eq!(tag, TAG);
        self.recv_lens.push(len);
        self.completed += 1;
        if self.completed >= self.rounds {
            self.finish_time = Some(api.now());
            return;
        }
        api.send(self.peer, self.len, TAG);
    }

    fn on_send_done(&mut self, _api: &mut GmApi<'_>, _msg_id: MsgId) {
        self.sends_done += 1;
    }
}

fn pingpong_cluster(rounds: u32, len: u32, drop: f64, seed: u64) -> GmCluster {
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), 2)
        .with_seed(seed)
        .with_drop_prob(drop);
    GmCluster::build_p2p(
        spec,
        vec![
            Box::new(PingPong::new(0, 1, rounds, len)),
            Box::new(PingPong::new(1, 0, rounds, len)),
        ],
    )
}

#[test]
fn pingpong_completes_and_measures_sane_latency() {
    let mut cluster = pingpong_cluster(100, 4, 0.0, 1);
    let outcome = cluster.run_until(SimTime::from_us(1_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    let app1 = cluster.app_ref::<PingPong>(1);
    let t = app1.finish_time.expect("node 1 finished");
    // 100 round trips = 200 one-way messages; GM-era short-message one-way
    // latency is of order 5–10 µs, so the total must land well inside
    // 200 × [3, 25] µs.
    let one_way = t.as_us() / 200.0;
    assert!(
        (3.0..25.0).contains(&one_way),
        "one-way short-message latency {one_way:.2}us out of the plausible GM range"
    );
    // Both sides eventually observe every send acknowledged.
    assert_eq!(cluster.app_ref::<PingPong>(0).sends_done, 100);
}

#[test]
fn multi_packet_message_is_reassembled() {
    // 10 KB message over a 4 KB MTU = 3 packets, delivered as one message.
    let mut cluster = pingpong_cluster(2, 10_000, 0.0, 2);
    let outcome = cluster.run_until(SimTime::from_us(100_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    let app1 = cluster.app_ref::<PingPong>(1);
    assert_eq!(app1.recv_lens, vec![10_000, 10_000]);
    // Node 0 sends 2 pings, node 1 echoes once (it stops at round 2):
    // 3 messages × 3 packets each.
    assert_eq!(cluster.engine.counters().get("wire.data"), 9);
    assert_eq!(cluster.engine.counters().get("gm.msg_delivered"), 3);
}

#[test]
fn every_data_packet_is_acked_when_lossless() {
    let mut cluster = pingpong_cluster(50, 4, 0.0, 3);
    cluster.run_until(SimTime::from_us(1_000_000.0));
    let c = cluster.engine.counters();
    // 50 pings + 49 echoes (the echoer stops at its round limit).
    assert_eq!(c.get("wire.data"), 99);
    assert_eq!(c.get("wire.ack"), 99, "GM acks every data packet");
    assert_eq!(c.get("gm.retransmit"), 0);
}

#[test]
fn loss_is_recovered_by_timeout_retransmission() {
    let mut cluster = pingpong_cluster(50, 4, 0.05, 4);
    let outcome = cluster.run_until(SimTime::from_us(10_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle, "protocol wedged under loss");
    let app1 = cluster.app_ref::<PingPong>(1);
    assert_eq!(app1.completed, 50, "all rounds completed despite loss");
    let c = cluster.engine.counters();
    assert!(
        c.get("gm.retransmit") > 0,
        "5% loss over ~200 packets must trigger at least one retransmission"
    );
    assert_eq!(c.get("gm.msg_delivered"), 99);
}

#[test]
fn heavy_loss_still_converges() {
    let mut cluster = pingpong_cluster(10, 4, 0.30, 5);
    let outcome = cluster.run_until(SimTime::from_us(60_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    assert_eq!(cluster.app_ref::<PingPong>(1).completed, 10);
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |seed| {
        let mut cluster = pingpong_cluster(30, 4, 0.10, seed);
        cluster.run_until(SimTime::from_us(10_000_000.0));
        let t = cluster.app_ref::<PingPong>(1).finish_time;
        let snap: Vec<(&str, u64)> = cluster.engine.counters().iter().collect();
        (t, format!("{snap:?}"))
    };
    assert_eq!(run(9), run(9));
    assert_ne!(
        run(9).1,
        run(10).1,
        "different seeds should differ under loss"
    );
}

/// A sender that fires `count` messages at once (stresses the send-packet
/// pool and the per-destination window).
struct Burst {
    me: usize,
    count: u32,
    received: u32,
    done: u32,
}

impl GmApp for Burst {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        if self.me == 0 {
            for _ in 0..self.count {
                api.send(NodeId(1), 4096, TAG);
            }
        } else {
            // Make sure the receiver has enough buffers for the burst.
            api.post_recv(self.count);
        }
    }
    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
        self.received += 1;
    }
    fn on_send_done(&mut self, _api: &mut GmApi<'_>, _msg_id: MsgId) {
        self.done += 1;
    }
}

#[test]
fn burst_respects_pool_and_window_but_completes() {
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), 2).with_seed(6);
    let mut cluster = GmCluster::build_p2p(
        spec,
        vec![
            Box::new(Burst {
                me: 0,
                count: 100,
                received: 0,
                done: 0,
            }),
            Box::new(Burst {
                me: 1,
                count: 100,
                received: 0,
                done: 0,
            }),
        ],
    );
    let outcome = cluster.run_until(SimTime::from_us(10_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    assert_eq!(cluster.app_ref::<Burst>(1).received, 100);
    assert_eq!(cluster.app_ref::<Burst>(0).done, 100);
    // The window (8) must have throttled the sender at least once.
    assert_eq!(cluster.engine.counters().get("wire.data"), 100);
}

#[test]
fn all_to_one_hotspot_serializes_at_receiver() {
    // 7 senders hit node 0 simultaneously; the receiving NIC's serial
    // processor must stretch the completion spread.
    struct OneShot {
        me: usize,
        received: u32,
        last_recv: Option<SimTime>,
    }
    impl GmApp for OneShot {
        fn on_start(&mut self, api: &mut GmApi<'_>) {
            if self.me != 0 {
                api.send(NodeId(0), 4, TAG);
            }
        }
        fn on_recv(&mut self, api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
            self.received += 1;
            self.last_recv = Some(api.now());
        }
    }
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), 8).with_seed(7);
    let apps: Vec<Box<dyn GmApp>> = (0..8)
        .map(|i| {
            Box::new(OneShot {
                me: i,
                received: 0,
                last_recv: None,
            }) as Box<dyn GmApp>
        })
        .collect();
    let mut cluster = GmCluster::build_p2p(spec, apps);
    cluster.run_until(SimTime::from_us(100_000.0));
    let app0 = cluster.app_ref::<OneShot>(0);
    assert_eq!(app0.received, 7);
    let spread = app0.last_recv.unwrap().as_us();
    // 7 arrivals each needing ≥ ~1.5 µs of NIC processing + DMA: the last
    // delivery must be several µs after t=0, demonstrating serialization.
    assert!(spread > 8.0, "hot-spot spread {spread:.2}us too small");
}

/// Receive-buffer exhaustion: GM drops in-order packets when no receive
/// token is posted, and the sender's timeout recovers them once the host
/// reposts (§4.2's "An unexpected packet is dropped immediately" plus the
/// drop-on-no-token path).
struct StarvedReceiver {
    me: usize,
    received: u32,
    reposted: bool,
}

impl GmApp for StarvedReceiver {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        if self.me == 0 {
            // Burst of 8 messages at a receiver with only 2 buffers.
            for _ in 0..8 {
                api.send(NodeId(1), 512, TAG);
            }
        }
    }
    fn on_recv(&mut self, api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
        self.received += 1;
        if !self.reposted {
            // Late repost: plenty of buffers once the app gets around to it.
            self.reposted = true;
            api.post_recv(16);
        }
    }
}

#[test]
fn receive_buffer_exhaustion_recovers_via_retransmission() {
    let mut spec = GmClusterSpec::new(GmParams::lanai_xp(), 2).with_seed(31);
    spec.initial_recv_tokens = 2;
    let mut cluster = GmCluster::build_p2p(
        spec,
        vec![
            Box::new(StarvedReceiver {
                me: 0,
                received: 0,
                reposted: false,
            }),
            Box::new(StarvedReceiver {
                me: 1,
                received: 0,
                reposted: false,
            }),
        ],
    );
    let outcome = cluster.run_until(SimTime::from_us(10_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    assert_eq!(cluster.app_ref::<StarvedReceiver>(1).received, 8);
    let c = cluster.engine.counters();
    assert!(
        c.get("gm.drop_no_token") > 0,
        "the buffer-starved path never triggered"
    );
    assert!(
        c.get("gm.retransmit") > 0,
        "recovery must use retransmission"
    );
}
