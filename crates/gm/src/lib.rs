//! # nicbar-gm — the Myrinet/GM substrate
//!
//! A deterministic discrete-event model of a Myrinet 2000 cluster running a
//! GM-like user-level protocol, structured after the Myrinet Control
//! Program description in §4.2 of the paper:
//!
//! * [`host::GmHost`] — the host library: send/receive events, polling,
//!   doorbells over a modeled PCI/PCI-X bus, and the application trait
//!   ([`host::GmApp`]).
//! * [`nic::LanaiNic`] — the MCP state machine: per-destination send-token
//!   queues with round-robin scheduling, a bounded send-packet pool, MTU
//!   packetization with host↔NIC DMA, per-packet send records,
//!   ACK/timeout/go-back-N retransmission, and receive-token matching.
//! * the wire model ([`nicbar_net::WireModel`] / [`nicbar_net::WireRx`]) —
//!   wormhole routing shared by every NIC, with destination-port contention
//!   and loss injection resolved at each receiving NIC. There is no central
//!   fabric component, so clusters shard cleanly across the parallel engine.
//! * [`collective::NicCollective`] — the hook where `nicbar-core` plugs the
//!   paper's NIC-based collective protocol into the NIC, with
//!   [`params::CollFeatures`] ablation toggles.
//! * [`cluster::GmCluster`] — assembly and run helpers.
//!
//! Two parameter presets reproduce the paper's clusters:
//! [`params::GmParams::lanai_xp`] (8-node 2.4 GHz Xeon, PCI-X, LANai-XP) and
//! [`params::GmParams::lanai_9_1`] (16-node 700 MHz P-III, PCI, LANai 9.1).

#![warn(missing_docs)]

pub mod cluster;
pub mod collective;
pub mod events;
pub mod host;
pub mod nic;
pub mod params;
pub mod types;

pub use cluster::{GmCluster, GmClusterSpec};
pub use collective::{ActionBuf, CollAction, CollOperand, NicCollective, NullCollective};
pub use events::GmEvent;
pub use host::{GmApi, GmApp, GmHost};
pub use nic::LanaiNic;
pub use params::{CollFeatures, GmParams};
pub use types::{
    AllToAllItem, CollKind, CollPacket, GroupId, MsgId, MsgTag, Packet, PacketKind, BULK_TAG,
};
