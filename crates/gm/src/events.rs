//! The event vocabulary of the GM simulation.
//!
//! Every interaction between hosts, NICs and the fabric is one of these
//! events; see the flow diagrams in `nic.rs` for who sends what to whom.

use crate::collective::CollOperand;
use crate::types::{GroupId, MsgId, MsgTag, Packet, SendToken};
use nicbar_net::NodeId;
use nicbar_sim::CauseId;

/// Events exchanged between the components of a GM cluster simulation.
#[derive(Clone, Debug)]
pub enum GmEvent {
    // ------------------------------------------------------------------
    // Host-bound events
    // ------------------------------------------------------------------
    /// Kick the application's `on_start`.
    AppStart,
    /// A host-level timer set by the application fired.
    AppTimer,
    /// The NIC delivered a complete message to a host receive buffer.
    RecvDelivered {
        /// Sending NIC.
        src: NodeId,
        /// User tag of the message.
        tag: MsgTag,
        /// Message length.
        len: u32,
    },
    /// The NIC retired a send token (message fully acknowledged).
    SendDone {
        /// The host's message id.
        msg_id: MsgId,
    },
    /// The NIC completed a collective operation for the host.
    CollDone {
        /// Process group.
        group: GroupId,
        /// Epoch (operation count) within the group.
        epoch: u64,
        /// Operation result (0 for barrier; reduced value for allreduce,
        /// broadcast payload for bcast).
        value: u64,
        /// Netdump id of the NIC's `notify` record (the host's `host-exit`
        /// record parents here).
        cause: CauseId,
    },

    // ------------------------------------------------------------------
    // NIC-bound events
    // ------------------------------------------------------------------
    /// Host posted a send event (already past the PIO doorbell delay).
    SendPost(SendToken),
    /// Host posted `count` receive buffers of `capacity` bytes each.
    RecvPost {
        /// Number of buffers.
        count: u32,
        /// Capacity of each buffer.
        capacity: u32,
    },
    /// Host posted a collective doorbell (barrier or extension collective).
    CollPost {
        /// Process group.
        group: GroupId,
        /// Operation epoch.
        epoch: u64,
        /// Host-contributed operand.
        operand: CollOperand,
        /// Netdump id of the host's `host-enter` record.
        cause: CauseId,
    },
    /// Continuation of the NIC send scheduler (self-scheduled).
    SendWork,
    /// Host→NIC payload DMA finished for the packet being built.
    DmaToNicDone {
        /// Destination of the packet being built.
        dst: NodeId,
        /// The token's message id.
        msg_id: MsgId,
        /// First byte carried.
        offset: u32,
        /// Payload length.
        payload: u32,
        /// Total message length.
        total_len: u32,
        /// User tag.
        tag: MsgTag,
        /// Netdump id of the `dma-start` record for this transfer.
        cause: CauseId,
    },
    /// NIC→host payload DMA finished for a received packet.
    DmaToHostDone {
        /// Sending NIC.
        src: NodeId,
        /// Sequence number of the packet whose payload landed.
        seq: u32,
        /// User tag.
        tag: MsgTag,
        /// Payload length of this packet.
        payload: u32,
        /// Total message length.
        total_len: u32,
        /// First byte carried by this packet.
        offset: u32,
        /// Netdump id of the `dma-start` record for this transfer.
        cause: CauseId,
    },
    /// A packet cleared this NIC's input port (wire flight + contention).
    Arrive(Packet),
    /// Periodic retransmission sweep.
    TimerCheck,

    // ------------------------------------------------------------------
    // Destination-NIC-bound events
    // ------------------------------------------------------------------
    /// A packet presents at the destination NIC's input port after its
    /// routed flight; the receiver resolves port contention and loss.
    Inject(Packet),
}
