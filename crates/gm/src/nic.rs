//! The LANai NIC model — a faithful-in-structure rendition of the Myrinet
//! Control Program's communication processing (§4.2 of the paper), plus the
//! hook for the NIC-based collective protocol (§3/§6).
//!
//! ## Point-to-point send path
//!
//! ```text
//! host SendPost ─► token create ─► per-destination FIFO queue
//!                 ─► round-robin scheduler pass (SendWork)
//!                 ─► claim send packet buffer (bounded pool)
//!                 ─► DMA payload host→NIC        (DmaToNicDone)
//!                 ─► create send record, inject  (Inject → fabric)
//! ```
//!
//! The receiver checks the sequence number, consumes a receive token, DMAs
//! the payload to host memory (`DmaToHostDone`), generates a cumulative ACK
//! from the per-peer static packet, and raises a receive event to the host.
//! ACKs retire send records and release packet buffers; a periodic timer
//! sweep retransmits unacked packets (go-back-N), so the protocol survives
//! the fabric's loss injection.
//!
//! ## Collective path
//!
//! A `CollPost` doorbell or an arriving collective packet is handed to the
//! installed [`NicCollective`] engine. Executing its actions costs
//! `nic_coll_send` / `nic_coll_recv` only — the dedicated group queue,
//! static packet and bit-vector record mean no queue traversal, no buffer
//! claim, no payload DMA and no per-packet record churn. Ablation flags
//! ([`CollFeatures`]) add those point-to-point surcharges back one by one.
//!
//! ## Resource model
//!
//! The LANai processor is a *serial* resource (`cpu_free`): every processing
//! step starts no earlier than the previous one finished. This is what makes
//! concurrent arrivals serialize at a hot-spot NIC — the effect the paper
//! cites to explain pairwise-exchange's behaviour on Myrinet. The DMA engine
//! is a second serial resource that overlaps the CPU.

use crate::collective::{ActionBuf, CollAction, NicCollective};
use crate::events::GmEvent;
use crate::params::{CollFeatures, GmParams};
use crate::types::{
    CollKind, CollPacket, MsgTag, Packet, PacketKind, SendRecord, SendToken, BULK_TAG,
};
use nicbar_net::{NodeId, WireModel, WireRx};
use nicbar_sim::counter_id;
use nicbar_sim::{
    CausalKind, CauseId, Component, ComponentId, Ctx, Occ, Owner, PacketLog, ResKind, SimTime,
    SpanEvent,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-source reassembly state for a partially received message.
#[derive(Clone, Copy, Debug)]
struct Assembly {
    received: u32,
    total_len: u32,
}

/// Point-to-point protocol state: per-peer queues and sequence tracking,
/// O(n) per NIC and therefore O(n²) per cluster. Allocated lazily on the
/// first p2p stimulus, so a collective-only simulation (the paper's barrier,
/// and the 4096-node `fig_scale` sweep) keeps every NIC at O(1) memory.
struct P2pState {
    // --- send side ---
    send_queues: Vec<VecDeque<SendToken>>,
    rr_cursor: usize,
    next_seq: Vec<u32>,
    inflight: Vec<VecDeque<SendRecord>>,

    // --- receive side ---
    expect_seq: Vec<u32>,
    /// Per-source FIFO of messages being reassembled. Packets from one
    /// source arrive in seq order and host DMAs complete in order, so the
    /// front entry is always the message whose payload lands next.
    assembling: Vec<VecDeque<Assembly>>,
}

impl P2pState {
    fn new(n: usize) -> Self {
        P2pState {
            send_queues: (0..n).map(|_| VecDeque::new()).collect(),
            rr_cursor: 0,
            next_seq: vec![0; n],
            inflight: (0..n).map(|_| VecDeque::new()).collect(),
            expect_seq: vec![0; n],
            assembling: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Is the front token of queue `d` launchable right now?
    fn queue_eligible(
        &self,
        d: usize,
        window: usize,
        free_packets: usize,
        static_packet: bool,
    ) -> bool {
        let Some(front) = self.send_queues[d].front() else {
            return false;
        };
        if front.coll.is_some() {
            // A collective token riding the p2p queues (group-queue
            // ablation): its payload is NIC-resident, so it only needs a
            // buffer when the static packet is also ablated.
            static_packet || free_packets > 0
        } else {
            self.inflight[d].len() < window && free_packets > 0
        }
    }
}

/// Occupancy-ledger owner of a point-to-point stream, by its user tag:
/// the traffic generator's [`BULK_TAG`] marks first-class background
/// traffic; anything else is an ordinary p2p message.
fn stream_owner(tag: MsgTag, rank: u32) -> Owner {
    if tag == BULK_TAG {
        Owner::traffic(rank)
    } else {
        Owner::p2p(rank)
    }
}

/// Occupancy-ledger owner of a collective packet. Protocol plumbing
/// (collective ACKs and NACKs) bills to the fabric bucket: it is
/// reliability overhead, not the operation's own progress.
fn coll_owner(cp: &CollPacket) -> Owner {
    match cp.kind {
        CollKind::Ack | CollKind::Nack => Owner::fabric(cp.src.0 as u32),
        CollKind::Barrier
        | CollKind::Bcast { .. }
        | CollKind::Reduce { .. }
        | CollKind::Gather { .. }
        | CollKind::AllToAll { .. } => Owner::coll(cp.group.0 as u64, cp.epoch, cp.src.0 as u32),
    }
}

/// Occupancy-ledger owner of a wire packet, classified at the receiving
/// port: data by its stream tag, collectives by `(group, epoch)`, ACKs as
/// fabric overhead.
fn packet_owner(pkt: &Packet) -> Owner {
    match &pkt.kind {
        PacketKind::Data { tag, .. } => stream_owner(*tag, pkt.src.0 as u32),
        PacketKind::Ack { .. } => Owner::fabric(pkt.src.0 as u32),
        PacketKind::Coll(cp) => coll_owner(cp),
    }
}

/// The Myrinet LANai NIC component.
pub struct LanaiNic {
    node: NodeId,
    n: usize,
    params: GmParams,
    features: CollFeatures,
    /// This NIC's wire receive port (shared routing model + private
    /// destination-port contention state).
    wire: WireRx,
    /// Component id of NIC 0; NIC `d` is `nic0 + d` (contiguous layout).
    nic0: ComponentId,
    host: ComponentId,

    /// LANai processor busy-until (serial resource).
    cpu_free: SimTime,
    /// DMA engine busy-until (serial resource, overlaps the CPU).
    dma_free: SimTime,

    // --- point-to-point (lazy: None until the first p2p stimulus) ---
    p2p: Option<Box<P2pState>>,
    free_packets: usize,
    work_scheduled: bool,
    recv_tokens: u32,

    // --- collective ---
    coll: Box<dyn NicCollective>,
    /// Reusable scratch the collective engine fills and
    /// [`LanaiNic::run_coll_actions`] drains; taken out of `self` around
    /// each engine call (leaving an empty, allocation-free placeholder) and
    /// put back with its capacity intact.
    coll_buf: ActionBuf,
    /// Reusable scratch for message ids completed by a cumulative ACK.
    ack_scratch: Vec<u64>,

    // --- timer ---
    timer_armed: bool,
}

impl LanaiNic {
    /// Build a NIC for `node` in an `n`-node cluster.
    ///
    /// `initial_recv_tokens` models the host library pre-posting receive
    /// buffers at startup (as GM applications do).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        n: usize,
        params: GmParams,
        features: CollFeatures,
        wire: WireRx,
        nic0: ComponentId,
        host: ComponentId,
        coll: Box<dyn NicCollective>,
        initial_recv_tokens: u32,
    ) -> Self {
        LanaiNic {
            node,
            n,
            free_packets: params.send_packet_pool,
            params,
            features,
            wire,
            nic0,
            host,
            cpu_free: SimTime::ZERO,
            dma_free: SimTime::ZERO,
            p2p: None,
            work_scheduled: false,
            recv_tokens: initial_recv_tokens,
            coll,
            coll_buf: ActionBuf::new(),
            ack_scratch: Vec::new(),
            timer_armed: false,
        }
    }

    /// The p2p state, allocated on first use.
    fn p2p_mut(&mut self) -> &mut P2pState {
        let n = self.n;
        self.p2p.get_or_insert_with(|| Box::new(P2pState::new(n)))
    }

    /// Claim the NIC processor for `cost`, starting no earlier than `now`;
    /// returns `(start, done)`.
    fn cpu_claim(&mut self, now: SimTime, cost: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.cpu_free);
        self.cpu_free = start + cost;
        (start, self.cpu_free)
    }

    /// Occupy the NIC processor for `cost` on `owner`'s behalf, starting no
    /// earlier than `now`; returns the completion time. Every charge emits
    /// a ledger hold (and a wait when the processor was busy), so the holds
    /// tile each busy period exactly — the invariant the interference
    /// attribution's coverage gate relies on.
    fn cpu(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        now: SimTime,
        cost: SimTime,
        owner: Owner,
    ) -> SimTime {
        let (start, done) = self.cpu_claim(now, cost);
        let node = self.node.0 as u32;
        if start > now {
            ctx.ledger(Occ::wait(ResKind::NicCpu, now, start, node, owner));
        }
        ctx.ledger(Occ::hold(ResKind::NicCpu, start, done, node, owner));
        done
    }

    /// Claim the DMA engine for a `bytes` transfer starting no earlier than
    /// `now`; returns `(start, done)`.
    fn dma_claim(&mut self, now: SimTime, bytes: u32) -> (SimTime, SimTime) {
        let start = now.max(self.dma_free);
        self.dma_free = start + self.params.dma_time(bytes);
        (start, self.dma_free)
    }

    /// Occupy the DMA engine for a `bytes` transfer on `owner`'s behalf,
    /// starting no earlier than `now`; returns the completion time. Ledger
    /// semantics as for [`LanaiNic::cpu`].
    fn dma(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        now: SimTime,
        bytes: u32,
        owner: Owner,
    ) -> SimTime {
        let (start, done) = self.dma_claim(now, bytes);
        let node = self.node.0 as u32;
        if start > now {
            ctx.ledger(Occ::wait(ResKind::DmaEngine, now, start, node, owner));
        }
        ctx.ledger(Occ::hold(ResKind::DmaEngine, start, done, node, owner));
        done
    }

    /// Arm the periodic timer sweep if there is anything to watch.
    fn ensure_timer(&mut self, ctx: &mut Ctx<'_, GmEvent>) {
        if self.timer_armed {
            return;
        }
        let p2p_pending = self
            .p2p
            .as_ref()
            .is_some_and(|p| p.inflight.iter().any(|q| !q.is_empty()));
        if p2p_pending || self.coll.next_deadline().is_some() {
            self.timer_armed = true;
            ctx.send_self(self.params.timer_interval, GmEvent::TimerCheck);
        }
    }

    /// Kick the send scheduler (idempotent: at most one `SendWork` pending).
    fn kick_scheduler(&mut self, ctx: &mut Ctx<'_, GmEvent>) {
        if !self.work_scheduled {
            self.work_scheduled = true;
            // The pass itself runs on the NIC CPU; schedule it at the point
            // the CPU can take it.
            let at = ctx.now().max(self.cpu_free);
            ctx.send_at(at, ctx.self_id(), GmEvent::SendWork);
        }
    }

    /// One scheduler pass: launch at most one packet, then reschedule if
    /// more work is eligible.
    fn send_work(&mut self, ctx: &mut Ctx<'_, GmEvent>) {
        // Take the p2p box out of `self` for the pass: the scheduler reads
        // its queues while also charging `self.cpu`, and the split keeps
        // both borrows legal without cloning anything.
        let Some(mut p2p) = self.p2p.take() else {
            return; // no p2p state yet: nothing can be queued
        };
        self.send_work_inner(ctx, &mut p2p);
        self.p2p = Some(p2p);
    }

    fn send_work_inner(&mut self, ctx: &mut Ctx<'_, GmEvent>, p2p: &mut P2pState) {
        let now = ctx.now();
        let n = self.n;
        let window = self.params.window;
        let static_packet = self.features.static_packet;
        // Round-robin scan for a destination with an eligible token.
        let mut chosen: Option<usize> = None;
        for k in 0..n {
            let d = (p2p.rr_cursor + k) % n;
            if p2p.queue_eligible(d, window, self.free_packets, static_packet) {
                chosen = Some(d);
                break;
            }
            if !p2p.send_queues[d].is_empty() {
                // Head-of-line token blocked on the packet pool or window —
                // the waiting the paper's §6.1/§6.2 machinery eliminates.
                ctx.count_id(counter_id!("gm.packet_wait"), 1);
            }
        }
        let Some(dst) = chosen else {
            return; // nothing eligible; re-kicked on token/ACK arrival
        };
        p2p.rr_cursor = (dst + 1) % n;

        if p2p.send_queues[dst]
            .front()
            .expect("eligible queue")
            .coll
            .is_some()
        {
            // Launch a queued collective token: no payload DMA (the value
            // lives in NIC memory); buffer claim only under static-packet
            // ablation.
            let token = p2p.send_queues[dst].pop_front().expect("checked");
            let pkt = token.coll.expect("checked");
            let owner = coll_owner(&pkt);
            let mut cost = self.params.nic_sched_pass + self.params.nic_coll_send;
            if !self.features.static_packet {
                cost += self.params.nic_packet_claim.scale(0.5);
            }
            if !self.features.bitvec_bookkeeping {
                cost += self.params.nic_record_create;
            }
            let t = self.cpu(ctx, now, cost, owner);
            ctx.ledger(
                Occ::release(ResKind::SendQueue, t, self.node.0 as u32, owner).unit(dst as u64),
            );
            let is_nack = matches!(pkt.kind, CollKind::Nack);
            ctx.count_id(
                if is_nack {
                    counter_id!("gm.nack_sent")
                } else {
                    counter_id!("gm.coll_sent")
                },
                1,
            );
            // Span: the queued token finally launches. The retx flag did
            // not survive the SendToken wrapping, so a NACK-triggered
            // resend on this ablated path reports as a fire/nack.
            if is_nack {
                ctx.span(SpanEvent::Nack {
                    dst: dst as u64,
                    round: pkt.round as u64,
                });
            } else {
                ctx.span(SpanEvent::Fire {
                    unit: pkt.group.0 as u64,
                    dst: dst as u64,
                });
            }
            // Netdump: the token's stored cause covers the queuing wait —
            // the edge from protocol decision to actual launch.
            let fire = ctx.packet(
                PacketLog::new(
                    token.cause,
                    if is_nack {
                        CausalKind::Nack
                    } else {
                        CausalKind::Fire
                    },
                )
                .nodes(self.node.0 as u32, dst as u32)
                .key(pkt.group.0 as u64, pkt.epoch)
                .detail(pkt.round as u64, 0),
            );
            self.inject(
                ctx,
                t,
                Packet {
                    src: self.node,
                    dst: NodeId(dst),
                    kind: PacketKind::Coll(pkt),
                    cause: fire,
                },
            );
        } else {
            let token = p2p.send_queues[dst].front_mut().expect("checked above");
            let owner = stream_owner(token.tag, self.node.0 as u32);
            let payload = (token.len - token.offset).min(self.params.mtu);
            let (msg_id, offset, total_len, tag, token_cause) = (
                token.msg_id,
                token.offset,
                token.len,
                token.tag,
                token.cause,
            );
            token.offset += payload;
            let msg_exhausted = token.offset >= token.len;
            if msg_exhausted {
                p2p.send_queues[dst].pop_front();
            }

            // Scheduler pass + buffer claim burn NIC cycles.
            let t = self.cpu(
                ctx,
                now,
                self.params.nic_sched_pass + self.params.nic_packet_claim,
                owner,
            );
            self.free_packets -= 1;
            ctx.ledger(
                Occ::acquire(ResKind::PacketPool, t, self.node.0 as u32, owner)
                    .unit(self.free_packets as u64),
            );
            if msg_exhausted {
                ctx.ledger(
                    Occ::release(ResKind::SendQueue, t, self.node.0 as u32, owner).unit(dst as u64),
                );
            }

            // Netdump: payload DMA begins (parent: the host post).
            let dma_cause = ctx.packet(
                PacketLog::new(token_cause, CausalKind::DmaStart)
                    .nodes(self.node.0 as u32, dst as u32)
                    .detail(payload as u64, 0),
            );

            // Payload crosses the I/O bus into the claimed buffer.
            let dma_done = self.dma(ctx, t, payload, owner);
            ctx.send_at(
                dma_done,
                ctx.self_id(),
                GmEvent::DmaToNicDone {
                    dst: NodeId(dst),
                    msg_id,
                    offset,
                    payload,
                    total_len,
                    tag,
                    cause: dma_cause,
                },
            );
        }

        // More eligible work? Keep the scheduler hot.
        let more = (0..n).any(|d| p2p.queue_eligible(d, window, self.free_packets, static_packet));
        if more {
            self.work_scheduled = true;
            ctx.send_at(
                self.cpu_free.max(ctx.now()),
                ctx.self_id(),
                GmEvent::SendWork,
            );
        }
    }

    /// Packet build finished: create the send record and inject.
    #[allow(clippy::too_many_arguments)]
    fn on_dma_to_nic_done(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        dst: NodeId,
        msg_id: u64,
        offset: u32,
        payload: u32,
        total_len: u32,
        tag: crate::types::MsgTag,
        cause: CauseId,
    ) {
        let now = ctx.now();
        let owner = stream_owner(tag, self.node.0 as u32);
        let t = self.cpu(
            ctx,
            now,
            self.params.nic_record_create + self.params.nic_inject,
            owner,
        );
        let seq = {
            let p2p = self.p2p_mut();
            let seq = p2p.next_seq[dst.0];
            p2p.next_seq[dst.0] += 1;
            seq
        };
        // Netdump: DMA completed, then the packet commits to the fabric.
        let dma_done = ctx.packet(
            PacketLog::new(cause, CausalKind::DmaDone)
                .nodes(self.node.0 as u32, dst.0 as u32)
                .detail(payload as u64, 0),
        );
        let fire = ctx.packet(
            PacketLog::new(dma_done, CausalKind::Fire)
                .nodes(self.node.0 as u32, dst.0 as u32)
                .detail(seq as u64, 0),
        );
        self.p2p_mut().inflight[dst.0].push_back(SendRecord {
            seq,
            msg_id,
            end_offset: offset + payload,
            total_len,
            tag,
            payload,
            sent_at: t,
            retries: 0,
            cause: fire,
        });
        let pkt = Packet {
            src: self.node,
            dst,
            kind: PacketKind::Data {
                seq,
                msg_id,
                offset,
                payload,
                total_len,
                tag,
            },
            cause: fire,
        };
        ctx.count_id(counter_id!("gm.data_sent"), 1);
        self.inject(ctx, t, pkt);
        self.ensure_timer(ctx);
    }

    /// An in-order data packet was accepted; move its payload to the host.
    #[allow(clippy::too_many_arguments)]
    fn accept_data(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        after: SimTime,
        src: NodeId,
        seq: u32,
        offset: u32,
        payload: u32,
        total_len: u32,
        tag: crate::types::MsgTag,
        cause: CauseId,
    ) {
        let owner = stream_owner(tag, src.0 as u32);
        let t = self.cpu(ctx, after, self.params.nic_recv_match, owner);
        if offset == 0 {
            // New message: reserve the receive buffer.
            self.recv_tokens -= 1;
            ctx.ledger(
                Occ::acquire(ResKind::RecvTokens, t, self.node.0 as u32, owner)
                    .unit(self.recv_tokens as u64),
            );
            self.p2p_mut().assembling[src.0].push_back(Assembly {
                received: 0,
                total_len,
            });
        }
        // Netdump: NIC→host payload DMA begins.
        let dma_cause = ctx.packet(
            PacketLog::new(cause, CausalKind::DmaStart)
                .nodes(src.0 as u32, self.node.0 as u32)
                .detail(payload as u64, 0),
        );
        let dma_done = self.dma(ctx, t, payload, owner);
        ctx.send_at(
            dma_done,
            ctx.self_id(),
            GmEvent::DmaToHostDone {
                src,
                seq,
                tag,
                payload,
                total_len,
                offset,
                cause: dma_cause,
            },
        );
    }

    /// Send a cumulative ACK to `dst` from the per-peer static packet.
    /// `cause` is the netdump record the ACK responds to.
    fn send_ack(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        after: SimTime,
        dst: NodeId,
        upto: u32,
        cause: CauseId,
    ) {
        let t = self.cpu(
            ctx,
            after,
            self.params.nic_ack_gen,
            Owner::fabric(self.node.0 as u32),
        );
        let fire = ctx.packet(
            PacketLog::new(cause, CausalKind::Fire)
                .nodes(self.node.0 as u32, dst.0 as u32)
                .detail(upto as u64, 0),
        );
        let pkt = Packet {
            src: self.node,
            dst,
            kind: PacketKind::Ack { upto },
            cause: fire,
        };
        ctx.count_id(counter_id!("gm.ack_sent"), 1);
        self.inject(ctx, t, pkt);
    }

    fn on_arrive(&mut self, ctx: &mut Ctx<'_, GmEvent>, pkt: Packet) {
        let now = ctx.now();
        match pkt.kind {
            PacketKind::Data {
                seq,
                offset,
                payload,
                total_len,
                tag,
                ..
            } => {
                let src = pkt.src;
                let t = self.cpu(
                    ctx,
                    now,
                    self.params.nic_seq_check,
                    stream_owner(tag, src.0 as u32),
                );
                let arrive = ctx.packet(
                    PacketLog::new(pkt.cause, CausalKind::Arrive)
                        .nodes(src.0 as u32, self.node.0 as u32)
                        .detail(seq as u64, 0),
                );
                let expected = self.p2p_mut().expect_seq[src.0];
                if seq == expected {
                    if offset == 0 && self.recv_tokens == 0 {
                        // No receive buffer: GM drops the packet; the
                        // sender's timeout recovers it.
                        ctx.count_id(counter_id!("gm.drop_no_token"), 1);
                        return;
                    }
                    self.p2p_mut().expect_seq[src.0] = expected + 1;
                    self.accept_data(ctx, t, src, seq, offset, payload, total_len, tag, arrive);
                } else if seq < expected {
                    // Duplicate from a retransmission: re-ACK so the sender
                    // advances past it (covers lost-ACK cases).
                    ctx.count_id(counter_id!("gm.duplicate"), 1);
                    self.send_ack(ctx, t, src, expected.wrapping_sub(1), arrive);
                } else {
                    // A gap: an earlier packet was lost. GM drops unexpected
                    // packets immediately (§4.2).
                    ctx.count_id(counter_id!("gm.drop_unexpected"), 1);
                }
            }
            PacketKind::Ack { upto } => {
                let src = pkt.src;
                let t = self.cpu(
                    ctx,
                    now,
                    self.params.nic_ack_process,
                    Owner::fabric(src.0 as u32),
                );
                ctx.packet(
                    PacketLog::new(pkt.cause, CausalKind::Arrive)
                        .nodes(src.0 as u32, self.node.0 as u32)
                        .detail(upto as u64, 0),
                );
                // Reusable scratch for completed message ids: ACK bursts in
                // steady state must not touch the heap.
                let mut completed = std::mem::take(&mut self.ack_scratch);
                let mut freed = 0;
                {
                    let q = &mut self.p2p_mut().inflight[src.0];
                    while let Some(front) = q.front() {
                        if front.seq > upto {
                            break;
                        }
                        let rec = q.pop_front().expect("front checked");
                        freed += 1;
                        if rec.end_offset >= rec.total_len {
                            completed.push(rec.msg_id);
                        }
                    }
                }
                self.free_packets += freed;
                if freed > 0 {
                    // One release per cumulative ACK; `unit` carries the
                    // pool level after the return.
                    ctx.ledger(
                        Occ::release(
                            ResKind::PacketPool,
                            t,
                            self.node.0 as u32,
                            Owner::fabric(src.0 as u32),
                        )
                        .unit(self.free_packets as u64),
                    );
                }
                for &msg_id in completed.iter() {
                    ctx.send_at(
                        t + self.params.host_event_dma,
                        self.host,
                        GmEvent::SendDone { msg_id },
                    );
                }
                completed.clear();
                self.ack_scratch = completed;
                self.kick_scheduler(ctx);
            }
            PacketKind::Coll(cp) => {
                if matches!(cp.kind, CollKind::Ack) {
                    // NIC-level collective ACK (ablation mode only): retire
                    // the per-message record; carries no protocol state.
                    let _ = self.cpu(
                        ctx,
                        now,
                        self.params.nic_ack_process,
                        Owner::fabric(cp.src.0 as u32),
                    );
                    ctx.count_id(counter_id!("gm.coll_ack_recv"), 1);
                    return;
                }
                let t = self.cpu(ctx, now, self.params.nic_coll_recv, coll_owner(&cp));
                ctx.count_id(counter_id!("gm.coll_recv"), 1);
                // Span: collective packet accepted (info = epoch).
                ctx.span(SpanEvent::Arrive {
                    src: cp.src.0 as u64,
                    info: cp.epoch,
                });
                // Netdump: the arrival record is the cause handed to the
                // protocol engine — every action it enables chains here.
                let arrive = ctx.packet(
                    PacketLog::new(pkt.cause, CausalKind::Arrive)
                        .nodes(cp.src.0 as u32, self.node.0 as u32)
                        .key(cp.group.0 as u64, cp.epoch)
                        .detail(cp.round as u64, 0),
                );
                let mut buf = std::mem::take(&mut self.coll_buf);
                self.coll.on_packet(t, &cp, arrive, &mut buf);
                let needs_ack =
                    !self.features.recv_driven_retx && !matches!(cp.kind, CollKind::Nack);
                self.run_coll_actions(ctx, t, &mut buf);
                self.coll_buf = buf;
                if needs_ack {
                    // Ablated reliability: acknowledge every collective
                    // packet like a point-to-point message would be. The
                    // ACK is generated after any triggered sends (the MCP
                    // forwards first), so it burns NIC cycles without
                    // sitting directly on the trigger path.
                    let ack = crate::types::CollPacket {
                        src: self.node,
                        group: cp.group,
                        epoch: cp.epoch,
                        round: cp.round,
                        kind: CollKind::Ack,
                    };
                    let after_sends = ctx.now();
                    let ta = self.cpu(
                        ctx,
                        after_sends,
                        self.params.nic_ack_gen,
                        Owner::fabric(self.node.0 as u32),
                    );
                    ctx.count_id(counter_id!("gm.coll_ack_sent"), 1);
                    let ack_fire = ctx.packet(
                        PacketLog::new(arrive, CausalKind::Fire)
                            .nodes(self.node.0 as u32, cp.src.0 as u32)
                            .key(cp.group.0 as u64, cp.epoch)
                            .detail(cp.round as u64, 0),
                    );
                    self.inject(
                        ctx,
                        ta,
                        Packet {
                            src: self.node,
                            dst: cp.src,
                            kind: PacketKind::Coll(ack),
                            cause: ack_fire,
                        },
                    );
                }
            }
        }
    }

    /// Execute the actions the collective engine buffered, charging the
    /// collective (or ablated) cost model. Drains `actions` in place; the
    /// caller owns the buffer (normally `self.coll_buf`, taken out around
    /// the engine call) and puts it back to keep its capacity.
    fn run_coll_actions(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        after: SimTime,
        actions: &mut ActionBuf,
    ) {
        let mut at = after;
        for action in actions.drain() {
            match action {
                CollAction::Send {
                    dst,
                    pkt,
                    retx,
                    cause,
                } => {
                    assert_ne!(dst, self.node, "collective self-send");
                    let owner = coll_owner(&pkt);
                    if !self.features.group_queue {
                        // Group-queue ablation: the collective message is
                        // enqueued as an ordinary send token and takes its
                        // round-robin turn behind whatever else is queued
                        // to this destination (§6.1's problem, structural).
                        let t = self.cpu(ctx, at, self.params.nic_token_create.scale(0.5), owner);
                        ctx.ledger(
                            Occ::acquire(ResKind::SendQueue, t, self.node.0 as u32, owner)
                                .unit(dst.0 as u64),
                        );
                        // Span: queue depth the collective token waits
                        // behind.
                        ctx.span(SpanEvent::Enqueue {
                            dst: dst.0 as u64,
                            depth: self.p2p_mut().send_queues[dst.0].len() as u64,
                        });
                        // The fire record is emitted when the token finally
                        // launches (`send_work`), so the queuing wait shows
                        // up as the edge from `cause` to that record.
                        self.p2p_mut().send_queues[dst.0].push_back(SendToken {
                            msg_id: 0,
                            dst,
                            len: 0,
                            tag: crate::types::MsgTag(0),
                            offset: 0,
                            coll: Some(pkt),
                            cause,
                        });
                        at = t;
                        self.kick_scheduler(ctx);
                        continue;
                    }
                    // Dedicated group queue: one token per operation, always
                    // at the front of its own queue — emit immediately from
                    // the static packet.
                    let mut cost = self.params.nic_coll_send;
                    if !self.features.static_packet {
                        // Claim and fill a send buffer like a regular
                        // message (§6.2). Barrier payloads fit the small
                        // packet pool, so the claim is about half a
                        // full-size claim; release folds in.
                        cost += self.params.nic_packet_claim.scale(0.5);
                    }
                    if !self.features.bitvec_bookkeeping {
                        // One send record per message instead of one bit
                        // vector per operation (§6.3).
                        cost += self.params.nic_record_create;
                    }
                    at = self.cpu(ctx, at, cost, owner);
                    let is_nack = matches!(pkt.kind, CollKind::Nack);
                    ctx.count_id(
                        if is_nack {
                            counter_id!("gm.nack_sent")
                        } else {
                            counter_id!("gm.coll_sent")
                        },
                        1,
                    );
                    // Span: the §6.1 bypass in action, attributed to the
                    // retransmit / nack / fire phase as appropriate.
                    if retx {
                        ctx.span(SpanEvent::Retransmit {
                            dst: dst.0 as u64,
                            round: pkt.round as u64,
                        });
                    } else if is_nack {
                        ctx.span(SpanEvent::Nack {
                            dst: dst.0 as u64,
                            round: pkt.round as u64,
                        });
                    } else {
                        ctx.span(SpanEvent::Fire {
                            unit: pkt.group.0 as u64,
                            dst: dst.0 as u64,
                        });
                    }
                    // Netdump: NACK-triggered resends and the NACKs
                    // themselves are distinct kinds, so the analyzer can
                    // name the recovery detour on a critical path.
                    let fire = ctx.packet(
                        PacketLog::new(
                            cause,
                            if retx {
                                CausalKind::Retransmit
                            } else if is_nack {
                                CausalKind::Nack
                            } else {
                                CausalKind::Fire
                            },
                        )
                        .nodes(self.node.0 as u32, dst.0 as u32)
                        .key(pkt.group.0 as u64, pkt.epoch)
                        .detail(pkt.round as u64, 0),
                    );
                    self.inject(
                        ctx,
                        at,
                        Packet {
                            src: self.node,
                            dst,
                            kind: PacketKind::Coll(pkt),
                            cause: fire,
                        },
                    );
                }
                CollAction::HostDone {
                    group,
                    epoch,
                    value,
                    cause,
                } => {
                    // Span: completion event DMAed up to the host.
                    ctx.span(SpanEvent::Notify {
                        unit: group.0 as u64,
                        cookie: epoch,
                    });
                    let notify = ctx.packet(
                        PacketLog::new(cause, CausalKind::Notify)
                            .at_node(self.node.0 as u32)
                            .key(group.0 as u64, epoch)
                            .detail(value, 0),
                    );
                    ctx.send_at(
                        at + self.params.host_event_dma,
                        self.host,
                        GmEvent::CollDone {
                            group,
                            epoch,
                            value,
                            cause: notify,
                        },
                    );
                }
            }
        }
        self.ensure_timer(ctx);
    }

    /// Periodic sweep: go-back-N retransmission for the point-to-point
    /// protocol, then the collective engine's own timer.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, GmEvent>) {
        self.timer_armed = false;
        let now = ctx.now();
        let timeout = self.params.ack_timeout;
        if let Some(mut p2p) = self.p2p.take() {
            self.retransmit_sweep(ctx, &mut p2p, now, timeout);
            self.p2p = Some(p2p);
        }
        let mut buf = std::mem::take(&mut self.coll_buf);
        self.coll.on_timer(now.max(self.cpu_free), &mut buf);
        self.run_coll_actions(ctx, now.max(self.cpu_free), &mut buf);
        self.coll_buf = buf;
        self.ensure_timer(ctx);
    }

    fn retransmit_sweep(
        &mut self,
        ctx: &mut Ctx<'_, GmEvent>,
        p2p: &mut P2pState,
        now: SimTime,
        timeout: SimTime,
    ) {
        for d in 0..p2p.inflight.len() {
            let overdue = p2p.inflight[d]
                .front()
                .map(|r| now.saturating_sub(r.sent_at) >= timeout)
                .unwrap_or(false);
            if !overdue {
                continue;
            }
            // Go-back-N: re-inject every unacked packet to this destination
            // (payloads are still in the NIC's claimed buffers).
            for i in 0..p2p.inflight[d].len() {
                let t = self.cpu(
                    ctx,
                    now,
                    self.params.nic_inject,
                    Owner::fabric(self.node.0 as u32),
                );
                let rec = &mut p2p.inflight[d][i];
                rec.sent_at = t;
                rec.retries += 1;
                let (seq, orig_cause) = (rec.seq, rec.cause);
                let mut pkt = Packet {
                    src: self.node,
                    dst: NodeId(d),
                    kind: PacketKind::Data {
                        seq: rec.seq,
                        msg_id: rec.msg_id,
                        offset: rec.end_offset - rec.payload,
                        payload: rec.payload,
                        total_len: rec.total_len,
                        tag: rec.tag,
                    },
                    cause: CauseId::NONE,
                };
                ctx.count_id(counter_id!("gm.retransmit"), 1);
                // Span: go-back-N re-injection (round = wire sequence).
                ctx.span(SpanEvent::Retransmit {
                    dst: d as u64,
                    round: seq as u64,
                });
                // Netdump: the detour parents on the original injection.
                pkt.cause = ctx.packet(
                    PacketLog::new(orig_cause, CausalKind::Retransmit)
                        .nodes(self.node.0 as u32, d as u32)
                        .detail(seq as u64, 0),
                );
                self.inject(ctx, t, pkt);
            }
        }
    }

    /// Commit `pkt` to the wire at time `t`: the routed flight latency
    /// comes from the shared (immutable) wire model, and the packet
    /// presents at the destination NIC's input port as a
    /// [`GmEvent::Inject`]. Contention and the loss draw resolve there,
    /// in [`LanaiNic::on_inject`] — the receiver owns the wire's only
    /// mutable state, which is what lets clusters shard.
    fn inject(&mut self, ctx: &mut Ctx<'_, GmEvent>, t: SimTime, pkt: Packet) {
        let flight = self.wire.model().flight(pkt.src, pkt.dst, pkt.wire_bytes());
        let target = ComponentId(self.nic0.0 + pkt.dst.0);
        ctx.send_at(t + flight, target, GmEvent::Inject(pkt));
    }

    /// A packet presents at this NIC's input port after its routed
    /// flight. Port contention (arrival order at *this* port), the loss
    /// draw (this NIC's RNG), the wire counters, and the wire/drop
    /// netdump records all happen here at the receiver.
    fn on_inject(&mut self, ctx: &mut Ctx<'_, GmEvent>, mut pkt: Packet) {
        debug_assert_eq!(pkt.dst, self.node, "packet presented at the wrong NIC");
        let label = match &pkt.kind {
            PacketKind::Data { .. } => counter_id!("wire.data"),
            PacketKind::Ack { .. } => counter_id!("wire.ack"),
            PacketKind::Coll(c) => match c.kind {
                CollKind::Nack => counter_id!("wire.coll_nack"),
                CollKind::Ack => counter_id!("wire.coll_ack"),
                CollKind::Barrier
                | CollKind::Bcast { .. }
                | CollKind::Reduce { .. }
                | CollKind::Gather { .. }
                | CollKind::AllToAll { .. } => counter_id!("wire.coll"),
            },
        };
        ctx.count_id(label, 1);
        ctx.count_id(counter_id!("wire.total"), 1);
        let bytes = pkt.wire_bytes();
        // Span: the wire crossing (emitted before the loss draw so dropped
        // packets still show their attempt).
        ctx.span(SpanEvent::Wire {
            src: pkt.src.0 as u64,
            dst: pkt.dst.0 as u64,
            bytes: bytes as u64,
        });
        // Loss is drawn before the port admission: a dropped packet never
        // occupies the port (it died somewhere in the switch stages).
        let p = self.wire.model().drop_prob();
        let dropped = p > 0.0 && ctx.rng().chance(p);
        let admitted = if dropped {
            None
        } else {
            Some(self.wire.admit(ctx.now(), bytes))
        };
        if let Some(a) = admitted {
            // Ledger: the admitted packet's owner occupies this rx port for
            // `[arrive, until)`; a queued packet also waited behind earlier
            // holders.
            let owner = packet_owner(&pkt);
            let node = self.node.0 as u32;
            let routed = ctx.now();
            if a.port_wait > SimTime::ZERO {
                ctx.ledger(
                    Occ::wait(ResKind::LinkPort, routed, a.arrive, node, owner)
                        .unit(self.node.0 as u64),
                );
            }
            ctx.ledger(
                Occ::hold(ResKind::LinkPort, a.arrive, a.until, node, owner)
                    .unit(self.node.0 as u64),
            );
        }
        // Netdump: the wire record carries the link-occupancy tag (bytes +
        // destination-port queuing wait), so the analyzer can separate
        // "slow link" from "busy port".
        let mut log = PacketLog::new(pkt.cause, CausalKind::Wire)
            .nodes(pkt.src.0 as u32, pkt.dst.0 as u32)
            .detail(bytes as u64, admitted.map_or(0, |a| a.port_wait.as_ns()));
        if let PacketKind::Coll(c) = &pkt.kind {
            log = log.key(c.group.0 as u64, c.epoch);
        }
        let wire = ctx.packet(log);
        let Some(admission) = admitted else {
            ctx.count_id(counter_id!("wire.dropped"), 1);
            ctx.packet(
                PacketLog::new(wire, CausalKind::Drop).nodes(pkt.src.0 as u32, pkt.dst.0 as u32),
            );
            return;
        };
        pkt.cause = wire;
        ctx.send_at(admission.arrive, ctx.self_id(), GmEvent::Arrive(pkt));
    }

    /// Swap in a different wire model (topology ablations). The new model
    /// must cover the same node count; receive-port state resets.
    pub fn set_wire_model(&mut self, model: Arc<WireModel>) {
        assert_eq!(
            model.topology().num_nodes(),
            self.wire.model().topology().num_nodes(),
            "replacement wire model must cover the same nodes"
        );
        self.wire = WireRx::new(model);
    }

    /// The shared wire model this NIC sends through.
    pub fn wire_model(&self) -> &Arc<WireModel> {
        self.wire.model()
    }

    /// The installed collective engine (downcast access for tests).
    pub fn collective_mut(&mut self) -> &mut dyn NicCollective {
        self.coll.as_mut()
    }

    /// Number of free send-packet buffers (test observability).
    pub fn free_packets(&self) -> usize {
        self.free_packets
    }

    /// Number of posted receive tokens (test observability).
    pub fn recv_tokens(&self) -> u32 {
        self.recv_tokens
    }
}

impl Component<GmEvent> for LanaiNic {
    fn handle(&mut self, msg: GmEvent, ctx: &mut Ctx<'_, GmEvent>) {
        match msg {
            GmEvent::SendPost(token) => {
                let now = ctx.now();
                let owner = match &token.coll {
                    Some(cp) => coll_owner(cp),
                    None => stream_owner(token.tag, self.node.0 as u32),
                };
                let t = self.cpu(ctx, now, self.params.nic_token_create, owner);
                ctx.ledger(
                    Occ::acquire(ResKind::SendQueue, t, self.node.0 as u32, owner)
                        .unit(token.dst.0 as u64),
                );
                self.p2p_mut().send_queues[token.dst.0].push_back(token);
                ctx.count_id(counter_id!("gm.token_posted"), 1);
                self.kick_scheduler(ctx);
            }
            GmEvent::RecvPost { count, .. } => {
                self.recv_tokens += count;
                // Host replenish is protocol plumbing: no single stream to
                // bill. `unit` carries the pool level after the post.
                let now = ctx.now();
                ctx.ledger(
                    Occ::release(
                        ResKind::RecvTokens,
                        now,
                        self.node.0 as u32,
                        Owner::fabric(self.node.0 as u32),
                    )
                    .unit(self.recv_tokens as u64),
                );
            }
            GmEvent::CollPost {
                group,
                epoch,
                operand,
                cause,
            } => {
                let now = ctx.now();
                // Doorbell decode: one token for the whole operation, front
                // of its own queue (§6.1). Under the group-queue ablation
                // the per-message queue costs are charged structurally when
                // each send takes its round-robin turn.
                let t = self.cpu(
                    ctx,
                    now,
                    self.params.nic_coll_send.scale(0.5),
                    Owner::coll(group.0 as u64, epoch, self.node.0 as u32),
                );
                let dispatch = ctx.packet(
                    PacketLog::new(cause, CausalKind::NicDispatch)
                        .at_node(self.node.0 as u32)
                        .key(group.0 as u64, epoch),
                );
                let mut buf = std::mem::take(&mut self.coll_buf);
                self.coll
                    .on_doorbell(t, group, epoch, &operand, dispatch, &mut buf);
                self.run_coll_actions(ctx, t, &mut buf);
                self.coll_buf = buf;
            }
            GmEvent::SendWork => {
                self.work_scheduled = false;
                self.send_work(ctx);
            }
            GmEvent::DmaToNicDone {
                dst,
                msg_id,
                offset,
                payload,
                total_len,
                tag,
                cause,
            } => {
                self.on_dma_to_nic_done(ctx, dst, msg_id, offset, payload, total_len, tag, cause);
            }
            GmEvent::DmaToHostDone {
                src,
                seq,
                tag,
                payload,
                total_len,
                offset,
                cause,
            } => {
                let now = ctx.now();
                let dma_done = ctx.packet(
                    PacketLog::new(cause, CausalKind::DmaDone)
                        .nodes(src.0 as u32, self.node.0 as u32)
                        .detail(payload as u64, 0),
                );
                self.send_ack(ctx, now, src, seq, dma_done);
                let done = {
                    let asm = self.p2p_mut().assembling[src.0]
                        .front_mut()
                        .expect("assembly state for arriving payload");
                    asm.received += payload;
                    debug_assert_eq!(asm.received, offset + payload);
                    asm.received >= asm.total_len
                };
                if done {
                    self.p2p_mut().assembling[src.0].pop_front();
                    ctx.count_id(counter_id!("gm.msg_delivered"), 1);
                    ctx.send_at(
                        self.cpu_free + self.params.host_event_dma,
                        self.host,
                        GmEvent::RecvDelivered {
                            src,
                            tag,
                            len: total_len,
                        },
                    );
                }
            }
            GmEvent::Inject(pkt) => self.on_inject(ctx, pkt),
            GmEvent::Arrive(pkt) => self.on_arrive(ctx, pkt),
            GmEvent::TimerCheck => self.on_timer(ctx),
            other => panic!("NIC {:?} got unexpected event {other:?}", self.node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::NullCollective;
    use crate::params::{CollFeatures, GmParams};
    use crate::types::{MsgTag, Packet};
    use nicbar_net::{LinkTiming, WormholeClos};
    use nicbar_sim::Engine;

    fn wire_model(n: usize) -> Arc<WireModel> {
        Arc::new(WireModel::new(
            Box::new(WormholeClos::myrinet2000(n)),
            LinkTiming::myrinet2000(),
            GmParams::lanai_xp().hotspot_ns,
        ))
    }

    fn nic() -> LanaiNic {
        LanaiNic::new(
            NodeId(0),
            4,
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            WireRx::new(wire_model(4)),
            ComponentId(100),
            ComponentId(200),
            Box::new(NullCollective),
            16,
        )
    }

    /// A host stand-in that swallows every completion event.
    struct SinkHost;
    impl Component<GmEvent> for SinkHost {
        fn handle(&mut self, _msg: GmEvent, _ctx: &mut Ctx<'_, GmEvent>) {}
    }

    /// Minimal two-NIC engine: NICs at components 0 and 1, sink hosts at
    /// 2 and 3.
    fn two_nics(model: Arc<WireModel>) -> Engine<GmEvent> {
        let mut engine: Engine<GmEvent> = Engine::new(7);
        for node in 0..2usize {
            let id = engine.add(LanaiNic::new(
                NodeId(node),
                2,
                GmParams::lanai_xp(),
                CollFeatures::paper(),
                WireRx::new(Arc::clone(&model)),
                ComponentId(0),
                ComponentId(2 + node),
                Box::new(NullCollective),
                16,
            ));
            assert_eq!(id, ComponentId(node));
        }
        engine.add(SinkHost);
        engine.add(SinkHost);
        engine
    }

    fn data_packet(src: usize, dst: usize) -> Packet {
        Packet {
            src: NodeId(src),
            dst: NodeId(dst),
            kind: PacketKind::Data {
                seq: 0,
                msg_id: 1,
                offset: 0,
                payload: 4,
                total_len: 4,
                tag: MsgTag(0),
            },
            cause: CauseId::NONE,
        }
    }

    #[test]
    fn wire_counts_and_delivery() {
        let model = wire_model(2);
        let mut engine = two_nics(Arc::clone(&model));
        let flight = model.flight(NodeId(0), NodeId(1), data_packet(0, 1).wire_bytes());
        // Present a data packet at NIC 1's port, as `inject` would.
        engine.schedule_at(flight, ComponentId(1), GmEvent::Inject(data_packet(0, 1)));
        engine.run();
        assert_eq!(engine.counters().get("wire.data"), 1);
        // The receiver's cumulative ACK crosses the wire back.
        assert_eq!(engine.counters().get("wire.ack"), 1);
        assert_eq!(engine.counters().get("wire.total"), 2);
        assert_eq!(engine.counters().get("wire.dropped"), 0);
        // The packet was admitted and processed (sequence check counts it).
        assert_eq!(engine.counters().get("gm.msg_delivered"), 1);
    }

    #[test]
    fn dropped_packets_never_arrive() {
        let model = Arc::new(
            WireModel::new(
                Box::new(WormholeClos::myrinet2000(2)),
                LinkTiming::myrinet2000(),
                0,
            )
            .with_drop_prob(1.0),
        );
        let mut engine = two_nics(model);
        engine.schedule_at(
            SimTime::from_ns(500),
            ComponentId(1),
            GmEvent::Inject(data_packet(0, 1)),
        );
        engine.run();
        assert_eq!(engine.counters().get("wire.data"), 1);
        assert_eq!(engine.counters().get("wire.dropped"), 1);
        assert_eq!(
            engine.counters().get("gm.msg_delivered"),
            0,
            "a dropped packet must never reach the protocol"
        );
    }

    #[test]
    fn cpu_is_a_serial_resource() {
        let mut n = nic();
        let c = SimTime::from_us(1.0);
        // Two requests at t=0 serialize.
        let t1 = n.cpu_claim(SimTime::ZERO, c).1;
        let t2 = n.cpu_claim(SimTime::ZERO, c).1;
        assert_eq!(t1, SimTime::from_us(1.0));
        assert_eq!(t2, SimTime::from_us(2.0));
        // A request far in the future starts at its own time.
        let t3 = n.cpu_claim(SimTime::from_us(10.0), c).1;
        assert_eq!(t3, SimTime::from_us(11.0));
    }

    #[test]
    fn dma_engine_overlaps_cpu() {
        let mut n = nic();
        let cpu_done = n.cpu_claim(SimTime::ZERO, SimTime::from_us(5.0)).1;
        // DMA starting at t=0 is not delayed by the busy CPU.
        let dma_done = n.dma_claim(SimTime::ZERO, 0).1;
        assert!(dma_done < cpu_done);
    }

    #[test]
    fn dma_cost_scales_with_bytes() {
        let mut n = nic();
        let small = n.dma_claim(SimTime::ZERO, 0).1;
        let mut n2 = nic();
        let big = n2.dma_claim(SimTime::ZERO, 4096).1;
        assert!(big > small);
        // XP preset: 1 ns/byte.
        assert_eq!(big - small, SimTime::from_ns(4096));
    }

    #[test]
    fn initial_resources_match_params() {
        let n = nic();
        assert_eq!(n.free_packets(), 16);
        assert_eq!(n.recv_tokens(), 16);
    }

    #[test]
    fn queue_eligibility_rules() {
        let window = GmParams::lanai_xp().window;
        let mut p2p = P2pState::new(4);
        // Empty queues: nothing eligible.
        assert!(!p2p.queue_eligible(1, window, 16, false));
        // A data token is eligible while packets and window allow.
        p2p.send_queues[1].push_back(SendToken {
            msg_id: 1,
            dst: NodeId(1),
            len: 100,
            tag: crate::types::MsgTag(0),
            offset: 0,
            coll: None,
            cause: CauseId::NONE,
        });
        assert!(p2p.queue_eligible(1, window, 16, false));
        // Exhaust the packet pool: data token blocked…
        assert!(!p2p.queue_eligible(1, window, 0, false));
        // …but a collective token with the static packet still flies.
        p2p.send_queues[2].push_back(SendToken {
            msg_id: 0,
            dst: NodeId(2),
            len: 0,
            tag: crate::types::MsgTag(0),
            offset: 0,
            coll: Some(crate::types::CollPacket {
                src: NodeId(0),
                group: crate::types::GroupId(1),
                epoch: 0,
                round: 0,
                kind: CollKind::Barrier,
            }),
            cause: CauseId::NONE,
        });
        assert!(p2p.queue_eligible(2, window, 0, true));
    }

    #[test]
    fn p2p_state_is_lazy() {
        let n = nic();
        assert!(
            n.p2p.is_none(),
            "a freshly built NIC must not pay the O(n) p2p footprint"
        );
    }
}
