//! The host side of GM: a user-level library model and the application
//! trait.
//!
//! A [`GmHost`] owns one application ([`GmApp`]) — the simulated process on
//! that node. Applications are event-driven state machines: callbacks fire
//! on message delivery, send completion, collective completion and timers,
//! and issue new operations through the [`GmApi`] handle. The host charges
//! library CPU costs and doorbell (PIO) latencies before anything reaches
//! the NIC — exactly the overhead the NIC-based barrier keeps off the
//! critical path after initiation.

use crate::collective::CollOperand;
use crate::events::GmEvent;
use crate::params::GmParams;
use crate::types::{GroupId, MsgId, MsgTag, SendToken};
use nicbar_net::NodeId;
use nicbar_sim::counter_id;
use nicbar_sim::engine::AsAny;
use nicbar_sim::{
    CausalKind, CauseId, Component, ComponentId, Ctx, PacketLog, SimRng, SimTime, SpanEvent,
};
use std::collections::BTreeMap;

/// Actions an application can request during a callback.
enum HostAction {
    Send {
        dst: NodeId,
        len: u32,
        tag: MsgTag,
        msg_id: MsgId,
    },
    Collective {
        group: GroupId,
        operand: CollOperand,
    },
    PostRecv {
        count: u32,
    },
    Timer {
        delay: SimTime,
    },
}

/// The API surface an application sees during a callback — a small model of
/// the GM user library plus the paper's proposed collective API (§3).
pub struct GmApi<'a> {
    now: SimTime,
    node: NodeId,
    n: usize,
    rng: &'a mut SimRng,
    actions: Vec<HostAction>,
    next_msg_id: &'a mut MsgId,
}

impl<'a> GmApi<'a> {
    /// Simulated time at which the callback runs (library costs already
    /// charged).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Workload randomness (deterministic per run seed).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Send `len` bytes to `dst` with `tag`; returns the message id passed
    /// to `on_send_done` when the message is fully acknowledged.
    pub fn send(&mut self, dst: NodeId, len: u32, tag: MsgTag) -> MsgId {
        let msg_id = *self.next_msg_id;
        *self.next_msg_id += 1;
        self.actions.push(HostAction::Send {
            dst,
            len,
            tag,
            msg_id,
        });
        msg_id
    }

    /// Enter a NIC-based collective operation on `group`. For a barrier,
    /// `value` is ignored; for reduce it is this process's contribution; for
    /// broadcast it is the payload at the root. Completion arrives via
    /// `on_coll_done`.
    pub fn collective(&mut self, group: GroupId, value: u64) {
        self.actions.push(HostAction::Collective {
            group,
            operand: CollOperand::Scalar(value),
        });
    }

    /// Enter a NIC-based collective with a per-rank vector operand
    /// (alltoall: element `j` is this rank's value for rank `j`).
    pub fn collective_vec(&mut self, group: GroupId, values: Vec<u64>) {
        self.actions.push(HostAction::Collective {
            group,
            operand: CollOperand::Vector(values),
        });
    }

    /// Post `count` additional receive buffers.
    pub fn post_recv(&mut self, count: u32) {
        self.actions.push(HostAction::PostRecv { count });
    }

    /// Arrange an `on_timer` callback after `delay` (models a compute
    /// phase).
    pub fn set_timer(&mut self, delay: SimTime) {
        self.actions.push(HostAction::Timer { delay });
    }
}

/// A simulated application process. All callbacks receive the [`GmApi`] to
/// issue further operations.
///
/// The `AsAny` supertrait lets harnesses downcast a finished application to
/// its concrete type to read out measurements.
pub trait GmApp: AsAny + Send + 'static {
    /// The process started (t = 0).
    fn on_start(&mut self, api: &mut GmApi<'_>);
    /// A message arrived.
    fn on_recv(&mut self, api: &mut GmApi<'_>, src: NodeId, tag: MsgTag, len: u32);
    /// A send was fully acknowledged.
    fn on_send_done(&mut self, api: &mut GmApi<'_>, msg_id: MsgId) {
        let _ = (api, msg_id);
    }
    /// A NIC-based collective completed.
    fn on_coll_done(&mut self, api: &mut GmApi<'_>, group: GroupId, epoch: u64, value: u64) {
        let _ = (api, group, epoch, value);
    }
    /// A timer set via [`GmApi::set_timer`] fired.
    fn on_timer(&mut self, api: &mut GmApi<'_>) {
        let _ = api;
    }
}

/// The host component: runs the application, charges library costs, and
/// talks to the NIC over the modeled I/O bus.
pub struct GmHost {
    node: NodeId,
    n: usize,
    nic: ComponentId,
    params: GmParams,
    app: Box<dyn GmApp>,
    /// Host CPU busy-until (the process is single-threaded).
    cpu_free: SimTime,
    next_msg_id: MsgId,
    coll_epochs: BTreeMap<GroupId, u64>,
    /// Reusable buffer for the actions an application requests during one
    /// callback. Lent to [`GmApi`] via `mem::take`, drained here, and put
    /// back so its capacity is reused — in the steady state a dispatch does
    /// not allocate.
    action_scratch: Vec<HostAction>,
}

impl GmHost {
    /// Build the host for `node` with its application.
    pub fn new(
        node: NodeId,
        n: usize,
        nic: ComponentId,
        params: GmParams,
        app: Box<dyn GmApp>,
    ) -> Self {
        GmHost {
            node,
            n,
            nic,
            params,
            app,
            cpu_free: SimTime::ZERO,
            next_msg_id: 1,
            coll_epochs: BTreeMap::new(),
            action_scratch: Vec::new(),
        }
    }

    /// Downcast the application to its concrete type (post-run inspection).
    pub fn app_ref<T: 'static>(&self) -> Option<&T> {
        // Deref the box first so `as_any` dispatches through the vtable
        // rather than matching the blanket impl on the `Box` itself.
        (*self.app).as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of the application.
    pub fn app_mut<T: 'static>(&mut self) -> Option<&mut T> {
        (*self.app).as_any_mut().downcast_mut::<T>()
    }

    /// Charge host CPU for `cost` starting no earlier than `now`.
    fn cpu(&mut self, now: SimTime, cost: SimTime) -> SimTime {
        let start = now.max(self.cpu_free);
        self.cpu_free = start + cost;
        self.cpu_free
    }

    /// Run one application callback and translate its requested actions
    /// into NIC doorbells, charging library + PIO costs.
    fn dispatch<F>(&mut self, ctx: &mut Ctx<'_, GmEvent>, entry_cost: SimTime, f: F)
    where
        F: FnOnce(&mut dyn GmApp, &mut GmApi<'_>),
    {
        let at = self.cpu(ctx.now(), entry_cost);
        let mut api = GmApi {
            now: at,
            node: self.node,
            n: self.n,
            rng: ctx.rng(),
            actions: std::mem::take(&mut self.action_scratch),
            next_msg_id: &mut self.next_msg_id,
        };
        f(self.app.as_mut(), &mut api);
        let mut actions = api.actions;
        for action in actions.drain(..) {
            match action {
                HostAction::Send {
                    dst,
                    len,
                    tag,
                    msg_id,
                } => {
                    let t = self.cpu(ctx.now(), self.params.host_send_overhead);
                    ctx.count_id(counter_id!("gm.host_send"), 1);
                    // Netdump: chain root for this message's data packets.
                    let cause = ctx.packet(
                        PacketLog::new(CauseId::NONE, CausalKind::HostPost)
                            .nodes(self.node.0 as u32, dst.0 as u32)
                            .detail(len as u64, 0),
                    );
                    ctx.send_at(
                        t + self.params.pio_write,
                        self.nic,
                        GmEvent::SendPost(SendToken {
                            msg_id,
                            dst,
                            len,
                            tag,
                            offset: 0,
                            coll: None,
                            cause,
                        }),
                    );
                }
                HostAction::Collective { group, operand } => {
                    let epoch = self.coll_epochs.entry(group).or_insert(0);
                    let this_epoch = *epoch;
                    *epoch += 1;
                    let t = self.cpu(ctx.now(), self.params.host_coll_call);
                    ctx.count_id(counter_id!("gm.host_coll"), 1);
                    // Span: this host enters epoch `this_epoch` of `group`.
                    ctx.span(SpanEvent::OpBegin {
                        group: group.0 as u64,
                        seq: this_epoch,
                    });
                    // Netdump: chain root of this rank's contribution to the
                    // barrier DAG.
                    let cause = ctx.packet(
                        PacketLog::new(CauseId::NONE, CausalKind::HostEnter)
                            .at_node(self.node.0 as u32)
                            .key(group.0 as u64, this_epoch),
                    );
                    ctx.send_at(
                        t + self.params.pio_write,
                        self.nic,
                        GmEvent::CollPost {
                            group,
                            epoch: this_epoch,
                            operand,
                            cause,
                        },
                    );
                }
                HostAction::PostRecv { count } => {
                    let t = self.cpu(ctx.now(), self.params.host_repost);
                    ctx.send_at(
                        t + self.params.pio_write,
                        self.nic,
                        GmEvent::RecvPost {
                            count,
                            capacity: self.params.mtu,
                        },
                    );
                }
                HostAction::Timer { delay } => {
                    ctx.send_at(self.cpu_free + delay, ctx.self_id(), GmEvent::AppTimer);
                }
            }
        }
        self.action_scratch = actions;
    }
}

impl Component<GmEvent> for GmHost {
    fn handle(&mut self, msg: GmEvent, ctx: &mut Ctx<'_, GmEvent>) {
        match msg {
            GmEvent::AppStart => {
                self.dispatch(ctx, SimTime::ZERO, |app, api| app.on_start(api));
            }
            GmEvent::AppTimer => {
                self.dispatch(ctx, SimTime::ZERO, |app, api| app.on_timer(api));
            }
            GmEvent::RecvDelivered { src, tag, len } => {
                // Poll + dispatch, then repost the consumed buffer (library
                // housekeeping real GM apps do).
                let poll = self.params.host_recv_poll;
                self.dispatch(ctx, poll, |app, api| {
                    api.post_recv(1);
                    app.on_recv(api, src, tag, len);
                });
            }
            GmEvent::SendDone { msg_id } => {
                let poll = self.params.host_recv_poll;
                self.dispatch(ctx, poll, |app, api| app.on_send_done(api, msg_id));
            }
            GmEvent::CollDone {
                group,
                epoch,
                value,
                cause,
            } => {
                // Span: completion observed, before the app callback so a
                // re-entering app's next op.begin follows its op.end.
                ctx.span(SpanEvent::OpEnd {
                    group: group.0 as u64,
                    seq: epoch,
                });
                // Netdump: this rank's chain ends here; the analyzer keys
                // spans off these records.
                ctx.packet(
                    PacketLog::new(cause, CausalKind::HostExit)
                        .at_node(self.node.0 as u32)
                        .key(group.0 as u64, epoch)
                        .detail(value, 0),
                );
                let poll = self.params.host_recv_poll;
                self.dispatch(ctx, poll, |app, api| {
                    app.on_coll_done(api, group, epoch, value)
                });
            }
            other => panic!("host {:?} got unexpected event {other:?}", self.node),
        }
    }
}
