//! Cluster assembly: wire hosts and NICs into one engine (sequential or
//! rank-sharded parallel — the wire model has no central component, so the
//! choice is free).

use crate::collective::{NicCollective, NullCollective};
use crate::events::GmEvent;
use crate::host::{GmApp, GmHost};
use crate::nic::LanaiNic;
use crate::params::{CollFeatures, GmParams};
use nicbar_net::{NodeId, WireModel, WireRx, WormholeClos};
use nicbar_sim::{
    ComponentId, Engine, EngineSel, ExecEngine, LatencyMatrix, ParallelEngine, PartitionSel,
    RunOutcome, SchedulerKind, SimTime,
};
use std::sync::Arc;

/// Static description of a GM cluster simulation.
#[derive(Clone, Debug)]
pub struct GmClusterSpec {
    /// Timing/sizing parameter set (see [`GmParams`] presets).
    pub params: GmParams,
    /// Collective-protocol feature toggles (ablation).
    pub features: CollFeatures,
    /// Number of nodes.
    pub n: usize,
    /// Master seed for all randomness in the run.
    pub seed: u64,
    /// Wire loss-injection probability.
    pub drop_prob: f64,
    /// Receive buffers pre-posted per NIC at startup.
    pub initial_recv_tokens: u32,
    /// Event-queue implementation for the engine (differential testing of
    /// the indexed scheduler against the classic binary heap).
    pub scheduler: SchedulerKind,
    /// Which engine flavour to build ([`EngineSel::Auto`]: parallel iff
    /// `shards > 1`).
    pub engine: EngineSel,
    /// Worker shards for the parallel engine (clamped to `[1, n]`).
    pub shards: usize,
    /// Component-to-shard partition strategy for the parallel engine.
    pub partition: PartitionSel,
}

impl GmClusterSpec {
    /// A cluster of `n` nodes with the given parameter preset and defaults
    /// elsewhere.
    pub fn new(params: GmParams, n: usize) -> Self {
        GmClusterSpec {
            params,
            features: CollFeatures::paper(),
            n,
            seed: 0xC0FFEE,
            drop_prob: 0.0,
            initial_recv_tokens: 64,
            scheduler: SchedulerKind::default(),
            engine: EngineSel::Auto,
            shards: 1,
            partition: PartitionSel::Contiguous,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable loss injection.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Replace the collective feature set.
    pub fn with_features(mut self, features: CollFeatures) -> Self {
        self.features = features;
        self
    }

    /// Select the engine's event-queue implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Select the engine flavour.
    pub fn with_engine(mut self, engine: EngineSel) -> Self {
        self.engine = engine;
        self
    }

    /// Request `shards` parallel worker shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Select the component-to-shard partition strategy.
    pub fn with_partition(mut self, partition: PartitionSel) -> Self {
        self.partition = partition;
        self
    }
}

/// A built GM cluster: the engine plus the component directory.
pub struct GmCluster {
    /// The discrete-event engine (sequential or parallel); run it with
    /// [`GmCluster::run_until`] or directly.
    pub engine: ExecEngine<GmEvent>,
    /// Host components by node index.
    pub hosts: Vec<ComponentId>,
    /// NIC components by node index.
    pub nics: Vec<ComponentId>,
    /// Number of nodes.
    pub n: usize,
}

impl GmCluster {
    /// Assemble a cluster. `apps[i]` runs on node `i`; `colls[i]` is node
    /// `i`'s NIC-resident collective engine (use [`NullCollective`] boxes
    /// when the run is point-to-point only). `AppStart` is scheduled for
    /// every host at t = 0.
    pub fn build(
        spec: GmClusterSpec,
        apps: Vec<Box<dyn GmApp>>,
        colls: Vec<Box<dyn NicCollective>>,
    ) -> Self {
        assert_eq!(apps.len(), spec.n, "one app per node");
        assert_eq!(colls.len(), spec.n, "one collective engine per node");
        let mut engine: Engine<GmEvent> = Engine::with_scheduler(spec.seed, spec.scheduler);

        let host_ids: Vec<ComponentId> = (0..spec.n).map(|_| engine.reserve_id()).collect();
        let nic_ids: Vec<ComponentId> = (0..spec.n).map(|_| engine.reserve_id()).collect();

        let model = Arc::new(
            WireModel::new(
                Box::new(WormholeClos::myrinet2000(spec.n)),
                spec.params.link,
                spec.params.hotspot_ns,
            )
            .with_drop_prob(spec.drop_prob),
        );

        let mut colls = colls;
        let mut apps = apps;
        // Install back-to-front so `pop` hands out the right boxes.
        for i in (0..spec.n).rev() {
            let coll = colls.pop().expect("length checked");
            let app = apps.pop().expect("length checked");
            engine.install(
                nic_ids[i],
                LanaiNic::new(
                    NodeId(i),
                    spec.n,
                    spec.params.clone(),
                    spec.features,
                    WireRx::new(Arc::clone(&model)),
                    nic_ids[0],
                    host_ids[i],
                    coll,
                    spec.initial_recv_tokens,
                ),
            );
            engine.install(
                host_ids[i],
                GmHost::new(NodeId(i), spec.n, nic_ids[i], spec.params.clone(), app),
            );
        }
        for &h in &host_ids {
            engine.schedule_at(SimTime::ZERO, h, GmEvent::AppStart);
        }

        // Layout is [hosts 0..n][NICs n..2n], so a component's node is its
        // id mod n. Host↔NIC traffic is zero-lookahead and must co-locate;
        // only the wire crossing (≥ min_latency) goes cross-shard. Shard
        // requests beyond the node count clamp to it — the excess shards
        // would sit empty yet still pay every window barrier.
        let (parallel, shards) = spec.engine.resolve(spec.shards.min(spec.n));
        let engine = if parallel {
            let map = spec
                .partition
                .map(2 * spec.n, spec.n, shards, |c| c % spec.n);
            let latency = model.lookahead_for(&map, spec.n);
            ExecEngine::Par(ParallelEngine::with_latency(engine, map, latency))
        } else {
            ExecEngine::Seq(engine)
        };

        GmCluster {
            engine,
            hosts: host_ids,
            nics: nic_ids,
            n: spec.n,
        }
    }

    /// Convenience constructor for clusters with no collective engines.
    pub fn build_p2p(spec: GmClusterSpec, apps: Vec<Box<dyn GmApp>>) -> Self {
        let n = spec.n;
        let colls: Vec<Box<dyn NicCollective>> = (0..n)
            .map(|_| Box::new(NullCollective) as Box<dyn NicCollective>)
            .collect();
        Self::build(spec, apps, colls)
    }

    /// Run until `deadline` with an event-budget backstop; panics on budget
    /// exhaustion (always a protocol bug, e.g. a retransmission storm).
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        let outcome = self.engine.run_bounded(deadline, 2_000_000_000);
        assert_ne!(
            outcome,
            RunOutcome::BudgetExhausted,
            "event budget exhausted — runaway protocol loop?"
        );
        outcome
    }

    /// Swap every NIC onto a different wire model (topology ablations).
    /// On the parallel engine the shard windows' lookahead bounds are
    /// rebuilt from the replacement's global minimum latency: the old
    /// per-pair bounds may be unsound for the new topology, so exactness
    /// is dropped and correctness kept.
    pub fn set_wire_model(&mut self, model: Arc<WireModel>) {
        if let ExecEngine::Par(par) = &mut self.engine {
            par.set_latency(LatencyMatrix::uniform(par.shards(), model.min_latency()));
        }
        for &nic in &self.nics {
            self.engine
                .component_mut::<LanaiNic>(nic)
                .expect("NIC component")
                .set_wire_model(Arc::clone(&model));
        }
    }

    /// Downcast host `i`'s application.
    pub fn app_ref<T: 'static>(&self, i: usize) -> &T {
        self.engine
            .component_ref::<GmHost>(self.hosts[i])
            .expect("host component")
            .app_ref::<T>()
            .expect("app type mismatch")
    }

    /// Mutable downcast of host `i`'s application.
    pub fn app_mut<T: 'static>(&mut self, i: usize) -> &mut T {
        self.engine
            .component_mut::<GmHost>(self.hosts[i])
            .expect("host component")
            .app_mut::<T>()
            .expect("app type mismatch")
    }
}
