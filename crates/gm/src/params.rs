//! Timing parameters for the GM substrate, with presets for the paper's two
//! Myrinet clusters.
//!
//! Each cost names one unit of work the Myrinet Control Program (or the host
//! library / PCI bus) performs. NIC costs are expressed in nanoseconds *at a
//! reference LANai clock* and scaled by the actual clock when a preset is
//! built, which is how the LANai-9.1 (133 MHz) and LANai-XP (225 MHz)
//! presets differ on the NIC side; host-side costs differ with the host CPU
//! (700 MHz P-III vs 2.4 GHz Xeon) and the bus (66 MHz PCI vs PCI-X).
//!
//! **Calibration.** The absolute values are chosen so the simulated
//! host-based and NIC-based barrier latencies land near the paper's measured
//! curves (Figs. 5–6); see `EXPERIMENTS.md` for the paper-vs-simulated
//! comparison. The *structure* (which costs the collective protocol skips)
//! is what produces the NIC-vs-host gap; the constants only set the scale.

use nicbar_net::LinkTiming;
use nicbar_sim::SimTime;

/// All timing and sizing parameters of a GM/Myrinet cluster model.
#[derive(Clone, Debug)]
pub struct GmParams {
    // --- Host library -----------------------------------------------------
    /// Host CPU cost of a `gm_send` call (descriptor build).
    pub host_send_overhead: SimTime,
    /// Host CPU cost of polling + dispatching one receive event.
    pub host_recv_poll: SimTime,
    /// Host CPU cost of posting a collective (barrier) doorbell.
    pub host_coll_call: SimTime,
    /// Host CPU cost to repost a receive buffer.
    pub host_repost: SimTime,

    // --- PCI / PCI-X bus --------------------------------------------------
    /// Programmed-I/O write crossing the bus (doorbells).
    pub pio_write: SimTime,
    /// Fixed DMA setup cost per transfer (either direction).
    pub dma_setup: SimTime,
    /// DMA cost per byte moved across the bus.
    pub dma_ns_per_byte: f64,
    /// Cost for the NIC to DMA a completion/receive event record to host
    /// memory where polling finds it.
    pub host_event_dma: SimTime,

    // --- LANai processor (point-to-point protocol work) --------------------
    /// Translate a host send event into a send token and enqueue it.
    pub nic_token_create: SimTime,
    /// One pass of the round-robin destination scheduler.
    pub nic_sched_pass: SimTime,
    /// Claim (and later release) a send packet buffer.
    pub nic_packet_claim: SimTime,
    /// Final header fixup + injection of a packet into the wire.
    pub nic_inject: SimTime,
    /// Sequence-number check on an arriving packet.
    pub nic_seq_check: SimTime,
    /// Locate and consume a receive token.
    pub nic_recv_match: SimTime,
    /// Create a send record for one outgoing packet.
    pub nic_record_create: SimTime,
    /// Generate an ACK (written into the per-peer static packet).
    pub nic_ack_gen: SimTime,
    /// Process an incoming ACK (retire send records, free buffers).
    pub nic_ack_process: SimTime,

    // --- LANai processor (collective protocol work) ------------------------
    /// Emit one collective packet from the group's static packet (no queue
    /// traversal, no buffer claim).
    pub nic_coll_send: SimTime,
    /// Receive one collective packet: bit-vector update + trigger check.
    pub nic_coll_recv: SimTime,

    // --- Sizing -----------------------------------------------------------
    /// Send packet buffers in NIC SRAM.
    pub send_packet_pool: usize,
    /// Maximum unacknowledged data packets per destination.
    pub window: usize,
    /// Maximum payload per data packet.
    pub mtu: u32,

    // --- Reliability ------------------------------------------------------
    /// Sender retransmission timeout for unacked data packets.
    pub ack_timeout: SimTime,
    /// Receiver-driven NACK timeout for missing collective packets.
    pub coll_timeout: SimTime,
    /// Granularity of the NIC's timer sweep.
    pub timer_interval: SimTime,

    // --- Network ----------------------------------------------------------
    /// Wormhole link/switch timing.
    pub link: LinkTiming,
    /// Extra per-packet serialization at a contended destination port
    /// (fabric-level; NIC CPU serialization is modeled separately).
    pub hotspot_ns: u64,
}

impl GmParams {
    /// The paper's 8-node cluster: dual 2.4 GHz Xeon, PCI-X 133 MHz/64-bit,
    /// LANai-XP (225 MHz) NICs, GM-2.0.3.
    pub fn lanai_xp() -> Self {
        GmParams {
            host_send_overhead: SimTime::from_us(0.60),
            host_recv_poll: SimTime::from_us(0.60),
            host_coll_call: SimTime::from_us(0.50),
            host_repost: SimTime::from_us(0.15),

            pio_write: SimTime::from_us(0.50),
            dma_setup: SimTime::from_us(1.20),
            dma_ns_per_byte: 1.0, // ~1 GB/s PCI-X
            host_event_dma: SimTime::from_us(1.10),

            nic_token_create: SimTime::from_us(1.20),
            nic_sched_pass: SimTime::from_us(0.50),
            nic_packet_claim: SimTime::from_us(1.00),
            nic_inject: SimTime::from_us(0.60),
            nic_seq_check: SimTime::from_us(0.55),
            nic_recv_match: SimTime::from_us(0.85),
            nic_record_create: SimTime::from_us(0.55),
            nic_ack_gen: SimTime::from_us(0.75),
            nic_ack_process: SimTime::from_us(0.75),

            nic_coll_send: SimTime::from_us(1.40),
            nic_coll_recv: SimTime::from_us(1.64),

            send_packet_pool: 16,
            window: 8,
            mtu: 4096,

            ack_timeout: SimTime::from_us(200.0),
            coll_timeout: SimTime::from_us(400.0),
            timer_interval: SimTime::from_us(50.0),

            link: LinkTiming::myrinet2000(),
            hotspot_ns: 0,
        }
    }

    /// The paper's 16-node cluster: quad 700 MHz P-III, 66 MHz/64-bit PCI,
    /// LANai-9.1 (133 MHz) NICs.
    ///
    /// NIC costs scale with the 225/133 clock ratio; host costs grow with
    /// the slower CPU, and bus costs with 66 MHz PCI vs PCI-X.
    pub fn lanai_9_1() -> Self {
        let xp = Self::lanai_xp();
        let nic = 225.0 / 133.0; // LANai clock ratio
        let host = 1.9; // 700 MHz P-III vs 2.4 GHz Xeon (sub-linear: memory-bound)
        let bus = 2.0; // 66 MHz PCI vs 133 MHz PCI-X
        GmParams {
            host_send_overhead: xp.host_send_overhead.scale(host),
            host_recv_poll: xp.host_recv_poll.scale(host),
            host_coll_call: xp.host_coll_call.scale(host),
            host_repost: xp.host_repost.scale(host),

            pio_write: xp.pio_write.scale(bus),
            dma_setup: xp.dma_setup.scale(bus),
            dma_ns_per_byte: xp.dma_ns_per_byte * 2.0, // ~500 MB/s PCI
            host_event_dma: xp.host_event_dma.scale(bus),

            nic_token_create: xp.nic_token_create.scale(nic),
            nic_sched_pass: xp.nic_sched_pass.scale(nic),
            nic_packet_claim: xp.nic_packet_claim.scale(nic),
            nic_inject: xp.nic_inject.scale(nic),
            nic_seq_check: xp.nic_seq_check.scale(nic),
            nic_recv_match: xp.nic_recv_match.scale(nic),
            nic_record_create: xp.nic_record_create.scale(nic),
            nic_ack_gen: xp.nic_ack_gen.scale(nic),
            nic_ack_process: xp.nic_ack_process.scale(nic),

            // The collective path scales *below* the clock ratio: its SRAM
            // accesses and static-packet writes are fixed-latency, so the
            // measured trigger-time ratio between the clusters is ~1.5.
            nic_coll_send: xp.nic_coll_send.scale(1.50),
            nic_coll_recv: xp.nic_coll_recv.scale(1.50),

            send_packet_pool: 16,
            window: 8,
            mtu: 4096,

            ack_timeout: xp.ack_timeout,
            coll_timeout: xp.coll_timeout,
            timer_interval: xp.timer_interval,

            link: LinkTiming::myrinet2000(),
            hotspot_ns: 0,
        }
    }

    /// DMA time for `bytes` across the I/O bus.
    pub fn dma_time(&self, bytes: u32) -> SimTime {
        self.dma_setup + SimTime::from_ns((f64::from(bytes) * self.dma_ns_per_byte).round() as u64)
    }
}

/// Feature toggles of the NIC-based collective protocol, for the ablation
/// study. All-on is the paper's proposed scheme; all-off approximates the
/// earlier "direct" scheme (Buntinas et al.) that layered the barrier on the
/// point-to-point machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollFeatures {
    /// Dedicated per-group queue with a single token (skip destination
    /// queues + round-robin scheduling).
    pub group_queue: bool,
    /// Static pre-built packet (skip send-buffer claim/fill/release and the
    /// host→NIC payload DMA).
    pub static_packet: bool,
    /// One send record with a bit vector (skip per-packet record churn).
    pub bitvec_bookkeeping: bool,
    /// Receiver-driven NACK retransmission (skip per-packet ACKs).
    pub recv_driven_retx: bool,
}

impl CollFeatures {
    /// The paper's proposed collective protocol (§3): everything on.
    pub fn paper() -> Self {
        CollFeatures {
            group_queue: true,
            static_packet: true,
            bitvec_bookkeeping: true,
            recv_driven_retx: true,
        }
    }

    /// The earlier direct NIC-based scheme: collective layered on the
    /// point-to-point processing (everything off).
    pub fn direct() -> Self {
        CollFeatures {
            group_queue: false,
            static_packet: false,
            bitvec_bookkeeping: false,
            recv_driven_retx: false,
        }
    }
}

impl Default for CollFeatures {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_consistently() {
        let xp = GmParams::lanai_xp();
        let old = GmParams::lanai_9_1();
        // Older NIC is slower.
        assert!(old.nic_coll_recv > xp.nic_coll_recv);
        assert!(old.nic_token_create > xp.nic_token_create);
        // Older host and bus are slower.
        assert!(old.host_recv_poll > xp.host_recv_poll);
        assert!(old.pio_write > xp.pio_write);
        assert!(old.dma_ns_per_byte > xp.dma_ns_per_byte);
    }

    #[test]
    fn dma_time_is_affine() {
        let p = GmParams::lanai_xp();
        let base = p.dma_time(0);
        assert_eq!(base, p.dma_setup);
        assert_eq!(p.dma_time(1000) - base, SimTime::from_ns(1000));
    }

    #[test]
    fn collective_work_is_cheaper_than_p2p_path() {
        // The collective send must beat token-create + sched + claim + DMA +
        // inject, otherwise the protocol would be pointless.
        let p = GmParams::lanai_xp();
        let p2p_send = p.nic_token_create
            + p.nic_sched_pass
            + p.nic_packet_claim
            + p.dma_time(4)
            + p.nic_inject
            + p.nic_record_create;
        assert!(p.nic_coll_send < p2p_send);
        let p2p_recv = p.nic_seq_check + p.nic_recv_match + p.dma_time(4) + p.nic_ack_gen;
        assert!(p.nic_coll_recv < p2p_recv);
    }

    #[test]
    fn feature_presets() {
        assert!(CollFeatures::paper().recv_driven_retx);
        assert!(!CollFeatures::direct().group_queue);
        assert_eq!(CollFeatures::default(), CollFeatures::paper());
    }
}
