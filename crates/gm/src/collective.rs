//! The NIC ↔ collective-protocol boundary.
//!
//! The paper's protocol logic (schedules, bit vectors, NACK policy) lives in
//! `nicbar-core`; the GM NIC only knows this trait. The NIC invokes the
//! engine on the three stimuli that exist at NIC level — a host doorbell, an
//! arriving collective packet, a timer sweep — and executes the returned
//! [`CollAction`]s with the *collective* cost model (dedicated queue, static
//! packet) or, under ablation, with point-to-point-equivalent surcharges.

use crate::types::{CollPacket, GroupId};
use nicbar_net::NodeId;
use nicbar_sim::engine::AsAny;
use nicbar_sim::{CauseId, SimTime};

/// The host's operand to a collective doorbell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollOperand {
    /// A single word (barrier: ignored; reduce: contribution; bcast at the
    /// root: the payload).
    Scalar(u64),
    /// A word per rank (alltoall: the personalized row).
    Vector(Vec<u64>),
}

impl CollOperand {
    /// The scalar view (panics on vectors — scalar ops must not receive
    /// vector operands).
    pub fn scalar(&self) -> u64 {
        match self {
            CollOperand::Scalar(v) => *v,
            CollOperand::Vector(_) => panic!("vector operand for a scalar collective"),
        }
    }
}

/// Actions a collective engine asks its NIC to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollAction {
    /// Transmit a collective packet (from the group's static send packet).
    Send {
        /// Destination NIC.
        dst: NodeId,
        /// The packet.
        pkt: CollPacket,
        /// True when this send repeats an earlier one (NACK-triggered
        /// retransmission) — lets the NIC attribute it to the retransmit
        /// phase instead of a first-time fire.
        retx: bool,
        /// Netdump id of the stimulus that caused this send — the record
        /// the NIC's `fire`/`nack`/`retransmit` record will parent on. For
        /// doorbell/packet-triggered sends this is the stimulus record; for
        /// timer-generated NACKs it is the record that last advanced the
        /// stalled epoch.
        cause: CauseId,
    },
    /// Deliver operation completion to the host.
    HostDone {
        /// Process group.
        group: GroupId,
        /// Completed epoch.
        epoch: u64,
        /// Result value (0 for barrier).
        value: u64,
        /// Netdump id of the stimulus that completed the operation (the
        /// last-enabling arrival or the doorbell itself).
        cause: CauseId,
    },
}

/// The reusable action scratch the NIC hands to its collective engine.
///
/// The engine appends with [`ActionBuf::push`]; the NIC drains in place with
/// [`ActionBuf::drain`] and keeps the buffer (and its capacity) for the next
/// stimulus. Ownership rule: the *caller* clears after draining — an engine
/// must never clear a buffer it is handed, only append, so callers can batch
/// several stimuli into one drain if they choose.
#[derive(Debug, Default)]
pub struct ActionBuf {
    actions: Vec<CollAction>,
}

impl ActionBuf {
    /// An empty buffer (no capacity reserved yet).
    pub fn new() -> Self {
        ActionBuf::default()
    }

    /// Append one action.
    pub fn push(&mut self, action: CollAction) {
        self.actions.push(action);
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Read-only view of the buffered actions.
    pub fn as_slice(&self) -> &[CollAction] {
        &self.actions
    }

    /// Drain all buffered actions in order, keeping the capacity.
    pub fn drain(&mut self) -> std::vec::Drain<'_, CollAction> {
        self.actions.drain(..)
    }

    /// Drop all buffered actions, keeping the capacity.
    pub fn clear(&mut self) {
        self.actions.clear();
    }
}

/// A NIC-resident collective protocol engine.
///
/// Implementations must be deterministic state machines: every method is a
/// pure transition on `(state, stimulus) → (state, actions)`, with the
/// actions appended to the caller-owned [`ActionBuf`] (steady state stays
/// allocation-free once its capacity is warm). Time-dependent behaviour (the
/// receiver-driven NACK timer) is expressed through
/// [`NicCollective::next_deadline`], which the NIC uses to arm its timer
/// sweep.
pub trait NicCollective: AsAny + Send + 'static {
    /// Host posted a collective doorbell with its operand. `cause` is the
    /// netdump id of the NIC's dispatch record for the doorbell; actions it
    /// enables must carry it (or [`CauseId::NONE`] when the dump is off).
    fn on_doorbell(
        &mut self,
        now: SimTime,
        group: GroupId,
        epoch: u64,
        operand: &CollOperand,
        cause: CauseId,
        actions: &mut ActionBuf,
    );

    /// A collective packet arrived from the wire. `cause` is the netdump id
    /// of the NIC's arrival record for this packet.
    fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &CollPacket,
        cause: CauseId,
        actions: &mut ActionBuf,
    );

    /// Timer sweep: emit NACKs for overdue expected packets, retransmit
    /// NACKed sends, etc.
    fn on_timer(&mut self, now: SimTime, actions: &mut ActionBuf);

    /// Earliest future instant at which `on_timer` needs to run, if any.
    fn next_deadline(&self) -> Option<SimTime>;
}

/// A collective engine that supports nothing — the default for NICs in
/// clusters that only exercise the point-to-point protocol.
pub struct NullCollective;

impl NicCollective for NullCollective {
    fn on_doorbell(
        &mut self,
        _now: SimTime,
        group: GroupId,
        _epoch: u64,
        _operand: &CollOperand,
        _cause: CauseId,
        _actions: &mut ActionBuf,
    ) {
        panic!("no collective engine installed on this NIC (group {group:?})");
    }

    fn on_packet(
        &mut self,
        _now: SimTime,
        pkt: &CollPacket,
        _cause: CauseId,
        _actions: &mut ActionBuf,
    ) {
        panic!("unexpected collective packet {pkt:?} on a NIC with no collective engine");
    }

    fn on_timer(&mut self, _now: SimTime, _actions: &mut ActionBuf) {}

    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_collective_times_out_quietly() {
        let mut n = NullCollective;
        let mut buf = ActionBuf::new();
        n.on_timer(SimTime::ZERO, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(n.next_deadline(), None);
    }

    #[test]
    #[should_panic(expected = "no collective engine")]
    fn null_collective_rejects_doorbells() {
        NullCollective.on_doorbell(
            SimTime::ZERO,
            GroupId(0),
            0,
            &CollOperand::Scalar(0),
            CauseId::NONE,
            &mut ActionBuf::new(),
        );
    }

    #[test]
    fn action_buf_drains_in_order_and_keeps_capacity() {
        let mut buf = ActionBuf::new();
        for epoch in 0..4 {
            buf.push(CollAction::HostDone {
                group: GroupId(1),
                epoch,
                value: 0,
                cause: CauseId::NONE,
            });
        }
        assert_eq!(buf.len(), 4);
        let epochs: Vec<u64> = buf
            .drain()
            .map(|a| match a {
                CollAction::HostDone { epoch, .. } => epoch,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(epochs, vec![0, 1, 2, 3]);
        assert!(buf.is_empty());
        assert!(buf.actions.capacity() >= 4, "capacity must be retained");
    }

    #[test]
    fn operand_scalar_view() {
        assert_eq!(CollOperand::Scalar(7).scalar(), 7);
    }

    #[test]
    #[should_panic(expected = "vector operand")]
    fn operand_vector_is_not_scalar() {
        let _ = CollOperand::Vector(vec![1, 2]).scalar();
    }
}
