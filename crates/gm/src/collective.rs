//! The NIC ↔ collective-protocol boundary.
//!
//! The paper's protocol logic (schedules, bit vectors, NACK policy) lives in
//! `nicbar-core`; the GM NIC only knows this trait. The NIC invokes the
//! engine on the three stimuli that exist at NIC level — a host doorbell, an
//! arriving collective packet, a timer sweep — and executes the returned
//! [`CollAction`]s with the *collective* cost model (dedicated queue, static
//! packet) or, under ablation, with point-to-point-equivalent surcharges.

use crate::types::{CollPacket, GroupId};
use nicbar_net::NodeId;
use nicbar_sim::engine::AsAny;
use nicbar_sim::{CauseId, SimTime};

/// The host's operand to a collective doorbell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollOperand {
    /// A single word (barrier: ignored; reduce: contribution; bcast at the
    /// root: the payload).
    Scalar(u64),
    /// A word per rank (alltoall: the personalized row).
    Vector(Vec<u64>),
}

impl CollOperand {
    /// The scalar view (panics on vectors — scalar ops must not receive
    /// vector operands).
    pub fn scalar(&self) -> u64 {
        match self {
            CollOperand::Scalar(v) => *v,
            CollOperand::Vector(_) => panic!("vector operand for a scalar collective"),
        }
    }
}

/// Actions a collective engine asks its NIC to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollAction {
    /// Transmit a collective packet (from the group's static send packet).
    Send {
        /// Destination NIC.
        dst: NodeId,
        /// The packet.
        pkt: CollPacket,
        /// True when this send repeats an earlier one (NACK-triggered
        /// retransmission) — lets the NIC attribute it to the retransmit
        /// phase instead of a first-time fire.
        retx: bool,
        /// Netdump id of the stimulus that caused this send — the record
        /// the NIC's `fire`/`nack`/`retransmit` record will parent on. For
        /// doorbell/packet-triggered sends this is the stimulus record; for
        /// timer-generated NACKs it is the record that last advanced the
        /// stalled epoch.
        cause: CauseId,
    },
    /// Deliver operation completion to the host.
    HostDone {
        /// Process group.
        group: GroupId,
        /// Completed epoch.
        epoch: u64,
        /// Result value (0 for barrier).
        value: u64,
        /// Netdump id of the stimulus that completed the operation (the
        /// last-enabling arrival or the doorbell itself).
        cause: CauseId,
    },
}

/// A NIC-resident collective protocol engine.
///
/// Implementations must be deterministic state machines: every method is a
/// pure transition on `(state, stimulus) → (state, actions)`. Time-dependent
/// behaviour (the receiver-driven NACK timer) is expressed through
/// [`NicCollective::next_deadline`], which the NIC uses to arm its timer
/// sweep.
pub trait NicCollective: AsAny + 'static {
    /// Host posted a collective doorbell with its operand. `cause` is the
    /// netdump id of the NIC's dispatch record for the doorbell; actions it
    /// enables must carry it (or [`CauseId::NONE`] when the dump is off).
    fn on_doorbell(
        &mut self,
        now: SimTime,
        group: GroupId,
        epoch: u64,
        operand: &CollOperand,
        cause: CauseId,
    ) -> Vec<CollAction>;

    /// A collective packet arrived from the wire. `cause` is the netdump id
    /// of the NIC's arrival record for this packet.
    fn on_packet(&mut self, now: SimTime, pkt: &CollPacket, cause: CauseId) -> Vec<CollAction>;

    /// Timer sweep: emit NACKs for overdue expected packets, retransmit
    /// NACKed sends, etc.
    fn on_timer(&mut self, now: SimTime) -> Vec<CollAction>;

    /// Earliest future instant at which `on_timer` needs to run, if any.
    fn next_deadline(&self) -> Option<SimTime>;
}

/// A collective engine that supports nothing — the default for NICs in
/// clusters that only exercise the point-to-point protocol.
pub struct NullCollective;

impl NicCollective for NullCollective {
    fn on_doorbell(
        &mut self,
        _now: SimTime,
        group: GroupId,
        _epoch: u64,
        _operand: &CollOperand,
        _cause: CauseId,
    ) -> Vec<CollAction> {
        panic!("no collective engine installed on this NIC (group {group:?})");
    }

    fn on_packet(&mut self, _now: SimTime, pkt: &CollPacket, _cause: CauseId) -> Vec<CollAction> {
        panic!("unexpected collective packet {pkt:?} on a NIC with no collective engine");
    }

    fn on_timer(&mut self, _now: SimTime) -> Vec<CollAction> {
        Vec::new()
    }

    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_collective_times_out_quietly() {
        let mut n = NullCollective;
        assert!(n.on_timer(SimTime::ZERO).is_empty());
        assert_eq!(n.next_deadline(), None);
    }

    #[test]
    #[should_panic(expected = "no collective engine")]
    fn null_collective_rejects_doorbells() {
        NullCollective.on_doorbell(
            SimTime::ZERO,
            GroupId(0),
            0,
            &CollOperand::Scalar(0),
            CauseId::NONE,
        );
    }

    #[test]
    fn operand_scalar_view() {
        assert_eq!(CollOperand::Scalar(7).scalar(), 7);
    }

    #[test]
    #[should_panic(expected = "vector operand")]
    fn operand_vector_is_not_scalar() {
        let _ = CollOperand::Vector(vec![1, 2]).scalar();
    }
}
