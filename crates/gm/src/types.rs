//! Wire- and descriptor-level types for the GM model.
//!
//! These mirror the Myrinet Control Program's vocabulary as described in
//! §4.2 of the paper: *send events* posted by the host become *send tokens*
//! at the NIC; tokens are packetized into *send packets* tracked by *send
//! records*; receivers match packets against *receive tokens* and return
//! ACKs.

use nicbar_net::NodeId;
use nicbar_sim::{CauseId, SimTime};

/// A collective process-group identifier (the unit the collective protocol
/// dedicates queues/records to).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// User-level message tag (GM's notion of typed receive matching, reduced
/// to an integer tag — sufficient for the barrier baselines).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgTag(pub u32);

/// Tag marking bulk-traffic messages (distinct from barrier tags, whose
/// round field never reaches 0xFF). Defined here rather than in the traffic
/// generator so the NIC can classify bulk streams as first-class owners in
/// the occupancy ledger.
pub const BULK_TAG: MsgTag = MsgTag(0xFFFF_FFFF);

/// Host-assigned id for an outstanding send (returned by `GmApi::send`).
pub type MsgId = u64;

/// A send token: the NIC-side form of a host send event.
///
/// When the collective protocol's dedicated group queue is *ablated*
/// (`CollFeatures::group_queue == false`), collective packets travel as
/// tokens through these same per-destination queues — `coll` carries the
/// packet and the packetization fields are unused. This reproduces the
/// §6.1 problem structurally: a barrier message then waits behind whatever
/// bulk traffic is queued to the same destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendToken {
    /// Host-assigned message id (0 for collective tokens).
    pub msg_id: MsgId,
    /// Destination NIC.
    pub dst: NodeId,
    /// Total message length in bytes.
    pub len: u32,
    /// User tag delivered to the receiver.
    pub tag: MsgTag,
    /// Bytes already packetized (scheduler cursor, starts at 0).
    pub offset: u32,
    /// A collective packet riding the point-to-point queues (ablation).
    pub coll: Option<CollPacket>,
    /// Causal parent for netdump records emitted when this token launches
    /// ([`CauseId::NONE`] when the netdump is off).
    pub cause: CauseId,
}

/// A posted receive buffer, NIC side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvToken {
    /// Capacity of the host buffer in bytes.
    pub capacity: u32,
}

/// Per-packet bookkeeping entry at the sender (the thing the paper's bit
/// vector replaces for collectives).
#[derive(Clone, Copy, Debug)]
pub struct SendRecord {
    /// Sequence number of the packet (per destination).
    pub seq: u32,
    /// Message this packet belongs to.
    pub msg_id: MsgId,
    /// Last byte of the message covered by this packet, exclusive.
    pub end_offset: u32,
    /// Total message length (to detect message completion on final ACK).
    pub total_len: u32,
    /// User tag (needed to rebuild the header on retransmission).
    pub tag: MsgTag,
    /// Payload length of this packet.
    pub payload: u32,
    /// When the packet was (last) injected, for the retransmission timer.
    pub sent_at: SimTime,
    /// Number of times this record has been retransmitted.
    pub retries: u32,
    /// Netdump id of the original injection — timer retransmissions parent
    /// their records here, tying the detour to the packet it repeats.
    pub cause: CauseId,
}

/// On-the-wire packet kinds of the point-to-point protocol, plus the
/// collective protocol's packet (which carries a [`CollPacket`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// A data packet of a user message.
    Data {
        /// Per-(src,dst) sequence number.
        seq: u32,
        /// Sender's message id (debug/trace aid; receivers key on seq).
        msg_id: MsgId,
        /// First byte of the message this packet carries.
        offset: u32,
        /// Payload bytes in this packet.
        payload: u32,
        /// Total message length.
        total_len: u32,
        /// User tag.
        tag: MsgTag,
    },
    /// Cumulative acknowledgment: all data packets with `seq <= upto` have
    /// been received in order. Sent from the per-peer *static packet*.
    Ack {
        /// Highest in-order sequence received.
        upto: u32,
    },
    /// A collective-protocol packet (barrier/NACK/…), carried in the padded
    /// static packet per §6.2 of the paper.
    Coll(CollPacket),
}

/// A packet in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Injecting NIC.
    pub src: NodeId,
    /// Destination NIC.
    pub dst: NodeId,
    /// Kind + kind-specific fields.
    pub kind: PacketKind,
    /// Causal netdump id of the last record describing this packet — the
    /// fabric and the receiving NIC parent their records on it, which is
    /// what stitches per-hop records into one chain.
    pub cause: CauseId,
}

/// GM wire header size (bytes) for data packets — route + type + seq etc.
pub const DATA_HEADER_BYTES: u32 = 16;
/// Size of the static ACK packet on the wire.
pub const ACK_BYTES: u32 = 16;
/// Size of the collective packet: the static ACK packet "padded with an
/// extra integer" (§6.2), plus epoch/round bookkeeping words.
pub const COLL_BASE_BYTES: u32 = 20;

impl Packet {
    /// Bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        match &self.kind {
            PacketKind::Data { payload, .. } => DATA_HEADER_BYTES + payload,
            PacketKind::Ack { .. } => ACK_BYTES,
            PacketKind::Coll(c) => c.wire_bytes(),
        }
    }
}

/// The collective message kinds the NIC-based collective protocol moves.
///
/// `Ord`/`Hash` exist for the model checker (`nicbar-verify`), which keeps
/// in-flight packets as a canonically sorted set and fingerprints protocol
/// state; the ordering itself carries no protocol meaning.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollKind {
    /// A barrier notification ("I reached round `round` of epoch `epoch`").
    Barrier,
    /// Receiver-driven retransmission request: "resend your (epoch, round)
    /// message to me".
    Nack,
    /// Per-packet acknowledgment of a collective packet — only used when the
    /// receiver-driven-retransmission feature is ablated (the direct scheme
    /// of the earlier Buntinas work).
    Ack,
    /// NIC-forwarded broadcast payload (extension collective).
    Bcast {
        /// The broadcast value.
        value: u64,
    },
    /// Combine payload for reduce/allreduce (extension collective).
    Reduce {
        /// Partial reduction value.
        value: u64,
    },
    /// Allgather block (extension collective): contributions of ranks
    /// `base_rank..base_rank+values.len()` (mod group size).
    Gather {
        /// First rank whose contribution this block carries.
        base_rank: u32,
        /// The contributions, one word per rank.
        values: Vec<u64>,
    },
    /// Bruck alltoall phase block (extension collective): personalized
    /// items in transit, each still addressed to its final rank.
    AllToAll {
        /// Items riding this phase's packet.
        items: Vec<AllToAllItem>,
    },
}

/// One personalized alltoall item in transit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllToAllItem {
    /// Originating rank.
    pub origin: u32,
    /// Final destination rank.
    pub dst: u32,
    /// The value.
    pub value: u64,
}

/// A collective-protocol packet (fits in the padded static send packet).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollPacket {
    /// Sender NIC.
    pub src: NodeId,
    /// Process group this packet belongs to.
    pub group: GroupId,
    /// Barrier/collective epoch (consecutive operations on one group).
    pub epoch: u64,
    /// Algorithm round within the epoch.
    pub round: u16,
    /// What the packet means.
    pub kind: CollKind,
}

impl CollPacket {
    /// Bytes on the wire: the padded static packet, plus payload words for
    /// the data-carrying extension collectives.
    pub fn wire_bytes(&self) -> u32 {
        match &self.kind {
            CollKind::Barrier | CollKind::Nack | CollKind::Ack => COLL_BASE_BYTES,
            CollKind::Bcast { .. } | CollKind::Reduce { .. } => COLL_BASE_BYTES + 8,
            CollKind::Gather { values, .. } => COLL_BASE_BYTES + 8 * values.len() as u32,
            CollKind::AllToAll { items } => COLL_BASE_BYTES + 16 * items.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_wire_size_includes_header() {
        let p = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Data {
                seq: 0,
                msg_id: 1,
                offset: 0,
                payload: 100,
                total_len: 100,
                tag: MsgTag(0),
            },
            cause: CauseId::NONE,
        };
        assert_eq!(p.wire_bytes(), 116);
    }

    #[test]
    fn ack_uses_static_packet_size() {
        let p = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Ack { upto: 7 },
            cause: CauseId::NONE,
        };
        assert_eq!(p.wire_bytes(), ACK_BYTES);
    }

    #[test]
    fn coll_packet_sizes() {
        let mk = |kind| CollPacket {
            src: NodeId(0),
            group: GroupId(0),
            epoch: 0,
            round: 0,
            kind,
        };
        assert_eq!(mk(CollKind::Barrier).wire_bytes(), COLL_BASE_BYTES);
        assert_eq!(mk(CollKind::Nack).wire_bytes(), COLL_BASE_BYTES);
        assert_eq!(
            mk(CollKind::Bcast { value: 9 }).wire_bytes(),
            COLL_BASE_BYTES + 8
        );
        assert_eq!(
            mk(CollKind::Gather {
                base_rank: 0,
                values: vec![1, 2, 3, 4]
            })
            .wire_bytes(),
            COLL_BASE_BYTES + 32
        );
    }

    #[test]
    fn barrier_packet_is_smaller_than_any_data_packet() {
        // The premise of §6.2: a barrier message is one integer; the static
        // packet must stay below even a zero-payload data packet + its ACK.
        let coll = CollPacket {
            src: NodeId(0),
            group: GroupId(0),
            epoch: 0,
            round: 0,
            kind: CollKind::Barrier,
        };
        assert!(coll.wire_bytes() < DATA_HEADER_BYTES + 4 + ACK_BYTES);
    }
}
