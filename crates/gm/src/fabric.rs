//! The Myrinet fabric component: wraps [`nicbar_net::FabricCore`] into the
//! GM event flow and keeps per-kind wire counters (the evidence for the
//! paper's packet-halving claim).

use crate::events::GmEvent;
use crate::types::PacketKind;
use nicbar_net::FabricCore;
use nicbar_sim::counter_id;
use nicbar_sim::{CausalKind, Component, ComponentId, Ctx, PacketLog, SpanEvent};

/// The network component of a GM cluster.
pub struct GmFabric {
    core: FabricCore,
    /// NIC component ids indexed by `NodeId`.
    nics: Vec<ComponentId>,
}

impl GmFabric {
    /// Build from a fabric core and the NIC component table.
    pub fn new(core: FabricCore, nics: Vec<ComponentId>) -> Self {
        assert_eq!(core.topology().num_nodes(), nics.len());
        GmFabric { core, nics }
    }

    /// The underlying fabric core (post-run statistics).
    pub fn core(&self) -> &FabricCore {
        &self.core
    }

    /// Mutable access to the core (tests adjust the drop probability
    /// mid-run).
    pub fn core_mut(&mut self) -> &mut FabricCore {
        &mut self.core
    }

    /// Replace the fabric core (topology ablations). The new core must
    /// cover the same node count.
    pub fn replace_core(&mut self, core: FabricCore) {
        assert_eq!(core.topology().num_nodes(), self.nics.len());
        self.core = core;
    }
}

impl Component<GmEvent> for GmFabric {
    fn handle(&mut self, msg: GmEvent, ctx: &mut Ctx<'_, GmEvent>) {
        let GmEvent::Inject(mut pkt) = msg else {
            panic!("fabric got a non-Inject event");
        };
        let label = match &pkt.kind {
            PacketKind::Data { .. } => counter_id!("wire.data"),
            PacketKind::Ack { .. } => counter_id!("wire.ack"),
            PacketKind::Coll(c) => match c.kind {
                crate::types::CollKind::Nack => counter_id!("wire.coll_nack"),
                crate::types::CollKind::Ack => counter_id!("wire.coll_ack"),
                _ => counter_id!("wire.coll"),
            },
        };
        ctx.count_id(label, 1);
        ctx.count_id(counter_id!("wire.total"), 1);
        let bytes = pkt.wire_bytes();
        // Span: committed to the wire (emitted before the loss draw so
        // dropped packets still show their wire attempt).
        ctx.span(SpanEvent::Wire {
            src: pkt.src.0 as u64,
            dst: pkt.dst.0 as u64,
            bytes: bytes as u64,
        });
        let delivery = {
            let now = ctx.now();
            let (src, dst) = (pkt.src, pkt.dst);
            // Split borrows: rng lives in ctx, core in self.
            let rng = ctx.rng();
            self.core.send(now, src, dst, bytes, rng)
        };
        // Netdump: the wire record carries the link-occupancy tag (bytes +
        // destination-port queuing wait), so the analyzer can separate
        // "slow link" from "busy port".
        let mut log = PacketLog::new(pkt.cause, CausalKind::Wire)
            .nodes(pkt.src.0 as u32, pkt.dst.0 as u32)
            .detail(
                bytes as u64,
                if delivery.dropped {
                    0
                } else {
                    delivery.port_wait.as_ns()
                },
            );
        if let PacketKind::Coll(c) = &pkt.kind {
            log = log.key(c.group.0 as u64, c.epoch);
        }
        let wire = ctx.packet(log);
        if delivery.dropped {
            ctx.count_id(counter_id!("wire.dropped"), 1);
            ctx.packet(
                PacketLog::new(wire, CausalKind::Drop).nodes(pkt.src.0 as u32, pkt.dst.0 as u32),
            );
            return;
        }
        pkt.cause = wire;
        let target = self.nics[pkt.dst.0];
        ctx.send_at(delivery.arrive, target, GmEvent::Arrive(pkt));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;
    use crate::types::{CollKind, CollPacket, GroupId, MsgTag, Packet};
    use nicbar_net::{LinkTiming, NodeId, WormholeClos};
    use nicbar_sim::{Engine, SimTime};

    /// A NIC stand-in that records arrivals.
    struct Recorder {
        got: Vec<(SimTime, Packet)>,
    }
    impl Component<GmEvent> for Recorder {
        fn handle(&mut self, msg: GmEvent, ctx: &mut Ctx<'_, GmEvent>) {
            if let GmEvent::Arrive(p) = msg {
                self.got.push((ctx.now(), p));
            }
        }
    }

    fn packet(src: usize, dst: usize, kind: PacketKind) -> Packet {
        Packet {
            src: NodeId(src),
            dst: NodeId(dst),
            kind,
            cause: nicbar_sim::CauseId::NONE,
        }
    }

    #[test]
    fn fabric_routes_and_counts() {
        let mut engine: Engine<GmEvent> = Engine::new(1);
        let r0 = engine.add(Recorder { got: Vec::new() });
        let r1 = engine.add(Recorder { got: Vec::new() });
        let core = FabricCore::new(
            Box::new(WormholeClos::myrinet2000(2)),
            LinkTiming::myrinet2000(),
            0,
        );
        let fabric = engine.add(GmFabric::new(core, vec![r0, r1]));

        let data = packet(
            0,
            1,
            PacketKind::Data {
                seq: 0,
                msg_id: 1,
                offset: 0,
                payload: 4,
                total_len: 4,
                tag: MsgTag(0),
            },
        );
        let ack = packet(1, 0, PacketKind::Ack { upto: 0 });
        let coll = packet(
            0,
            1,
            PacketKind::Coll(CollPacket {
                src: NodeId(0),
                group: GroupId(0),
                epoch: 0,
                round: 0,
                kind: CollKind::Barrier,
            }),
        );
        engine.schedule_at(SimTime::ZERO, fabric, GmEvent::Inject(data));
        engine.schedule_at(SimTime::ZERO, fabric, GmEvent::Inject(ack));
        engine.schedule_at(SimTime::ZERO, fabric, GmEvent::Inject(coll));
        engine.run();

        assert_eq!(engine.counters().get("wire.data"), 1);
        assert_eq!(engine.counters().get("wire.ack"), 1);
        assert_eq!(engine.counters().get("wire.coll"), 1);
        assert_eq!(engine.counters().get("wire.total"), 3);
        let got1 = &engine.component_ref::<Recorder>(r1).unwrap().got;
        assert_eq!(got1.len(), 2, "data + coll reach node 1");
        let got0 = &engine.component_ref::<Recorder>(r0).unwrap().got;
        assert_eq!(got0.len(), 1, "ack reaches node 0");
    }

    #[test]
    fn dropped_packets_never_arrive() {
        let mut engine: Engine<GmEvent> = Engine::new(1);
        let r0 = engine.add(Recorder { got: Vec::new() });
        let r1 = engine.add(Recorder { got: Vec::new() });
        let mut core = FabricCore::new(
            Box::new(WormholeClos::myrinet2000(2)),
            LinkTiming::myrinet2000(),
            0,
        );
        core.set_drop_prob(1.0);
        let fabric = engine.add(GmFabric::new(core, vec![r0, r1]));
        engine.schedule_at(
            SimTime::ZERO,
            fabric,
            GmEvent::Inject(packet(0, 1, PacketKind::Ack { upto: 3 })),
        );
        engine.run();
        assert_eq!(engine.counters().get("wire.dropped"), 1);
        assert!(engine.component_ref::<Recorder>(r1).unwrap().got.is_empty());
    }
}
