//! # nicbar-net — interconnect topology and timing models
//!
//! Pure (engine-independent) models of the two physical networks in the
//! paper, shared by the `nicbar-gm` (Myrinet) and `nicbar-elan` (Quadrics)
//! substrates:
//!
//! * [`crossbar::WormholeClos`] — Myrinet 2000: wormhole-routed 16-port
//!   crossbar switches arranged as a Clos/spine-leaf network.
//! * [`fattree::QuaternaryFatTree`] — Quadrics QsNet: Elite switches in a
//!   quaternary fat tree (Elite-16 is the dimension-two instance used in the
//!   paper's 8-node cluster).
//! * [`timing::LinkTiming`] — per-hop and per-byte latency for wormhole
//!   routing (one serialization, pipelined through hops).
//! * [`fabric::FabricCore`] — the deliverable-latency calculator: routing +
//!   destination-port contention (the "hot-spot" effect the paper invokes to
//!   explain why pairwise-exchange behaves differently on the two networks) +
//!   seeded packet-drop injection for reliability testing.
//! * [`wire::WireModel`] / [`wire::WireRx`] — the same physics split along
//!   ownership lines (immutable routing shared by all NICs, one receive
//!   port owned by each destination NIC) so clusters can shard across the
//!   parallel engine without cross-shard mutable state.
//! * [`permute::Permutation`] — random rank→node placements, matching the
//!   paper's randomized node-allocation methodology.
//!
//! Everything here is deterministic given a [`nicbar_sim::SimRng`]; the
//! fabric holds no interior mutability and is driven by whichever simulator
//! component owns it.

#![warn(missing_docs)]

pub mod crossbar;
pub mod fabric;
pub mod fattree;
pub mod permute;
pub mod timing;
pub mod topology;
pub mod wire;

pub use crossbar::WormholeClos;
pub use fabric::{Delivery, FabricCore};
pub use fattree::QuaternaryFatTree;
pub use permute::Permutation;
pub use timing::LinkTiming;
pub use topology::{NodeId, Topology};
pub use wire::{Admission, WireModel, WireRx};
