//! The sharded-friendly wire model: routing shared, contention per NIC.
//!
//! [`crate::fabric::FabricCore`] models the whole network as one object —
//! convenient, but a single mutable component pins every packet of an
//! N-node cluster to one engine shard. This module splits the same physics
//! along ownership lines so clusters can run on the parallel engine:
//!
//! * [`WireModel`] — the *immutable* network description (topology, link
//!   timing, hot-spot cost, loss probability), shared by every NIC through
//!   an [`Arc`]. Senders use it to compute routing latency; that latency is
//!   also the conservative lookahead that funds the parallel engine's time
//!   windows ([`WireModel::min_latency`]).
//! * [`WireRx`] — one NIC's *receive port*: the only mutable wire state a
//!   packet touches at its destination. Owned by the destination NIC
//!   component, so destination-port contention resolves wherever that NIC
//!   lives — no cross-shard mutable state.
//!
//! The physics is identical to [`FabricCore::send`]: a packet committed at
//! `t` reaches the destination port at `t + latency(hops, bytes)` (the
//! in-flight time — an event travelling NIC→NIC), and the port then admits
//! it no earlier than the previous packet's occupancy ends, charging the
//! hot-spot serialization on top. The one semantic shift: contention
//! resolves in *arrival* order at the port rather than in injection order
//! across the whole network — which is what a real input port does.
//!
//! [`FabricCore::send`]: crate::fabric::FabricCore::send

use crate::timing::LinkTiming;
use crate::topology::{NodeId, Topology};
use nicbar_sim::{LatencyMatrix, ShardMap, SimTime};
use std::sync::Arc;

/// Immutable description of the network: everything a sender needs to
/// compute in-flight latency, and everything a receive port needs to admit
/// packets. Shared by all NICs via [`Arc`] (it is `Send + Sync`).
pub struct WireModel {
    topology: Box<dyn Topology>,
    timing: LinkTiming,
    /// Extra serialization charged per packet at a busy destination port.
    hotspot: SimTime,
    /// Probability that any given packet is lost (drawn at the receiver).
    drop_prob: f64,
}

impl WireModel {
    /// Build a wire model over `topology` with the given `timing`.
    /// `hotspot_ns` is the extra per-packet serialization at a contended
    /// destination port.
    pub fn new(topology: Box<dyn Topology>, timing: LinkTiming, hotspot_ns: u64) -> Self {
        WireModel {
            topology,
            timing,
            hotspot: SimTime::from_ns(hotspot_ns),
            drop_prob: 0.0,
        }
    }

    /// Set the loss-injection probability (0 disables). Builder-style
    /// because the model is immutable once shared.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// Current loss-injection probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// The link timing parameters.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// In-flight latency of a `bytes`-byte packet from `src` to `dst`:
    /// the delay between the sender committing the packet and the packet
    /// presenting at the destination's input port.
    ///
    /// # Panics
    /// Panics on `src == dst` (NIC-local loopback never touches the wire).
    pub fn flight(&self, src: NodeId, dst: NodeId, bytes: u32) -> SimTime {
        assert_ne!(src, dst, "fabric loopback is not a thing");
        self.timing.latency(self.topology.hops(src, dst), bytes)
    }

    /// The minimum in-flight latency of *any* packet: one switch hop, zero
    /// payload. Every cross-NIC message takes at least this long, which
    /// makes it the conservative lookahead for the parallel engine.
    pub fn min_latency(&self) -> SimTime {
        self.timing.latency(1, 0)
    }

    /// The tightest sound conservative-lookahead matrix for a node
    /// partition: entry `(i, j)` is the zero-byte flight time over the
    /// closest cross-shard `(src in shard i, dst in shard j)` node pair —
    /// every real packet between the two shards crosses at least that many
    /// hops and carries at least zero bytes, and [`LinkTiming::latency`] is
    /// monotone in both. `shard_of[node]` maps nodes to shards.
    ///
    /// O(nodes²) in the topology's `hops`; builders gate on cluster size
    /// and fall back to [`LatencyMatrix::uniform`] over
    /// [`WireModel::min_latency`] beyond it.
    ///
    /// # Panics
    /// Panics if `shards < 2` (a single shard has no pairs to bound).
    pub fn shard_latency_matrix(&self, shard_of: &[u32], shards: usize) -> LatencyMatrix {
        assert!(shards > 1, "per-pair bounds need at least two shards");
        let mut min_hops = vec![u32::MAX; shards * shards];
        for (a, &sa) in shard_of.iter().enumerate() {
            let i = sa as usize;
            for (b, &sb) in shard_of.iter().enumerate() {
                let j = sb as usize;
                if i == j || a == b {
                    continue;
                }
                let h = self.topology.hops(NodeId(a), NodeId(b));
                let slot = &mut min_hops[i * shards + j];
                if h < *slot {
                    *slot = h;
                }
            }
        }
        LatencyMatrix::from_fn(shards, |i, j| match min_hops[i * shards + j] {
            // A pair with no node pair (an empty shard) carries no traffic,
            // so the global minimum is vacuously sound for it.
            u32::MAX => self.min_latency(),
            h => self.timing.latency(h, 0),
        })
    }

    /// The lookahead matrix a cluster builder should hand the parallel
    /// engine for shard map `map` over `nodes` nodes: the exact per-pair
    /// bounds ([`WireModel::shard_latency_matrix`]) when the O(nodes²)
    /// scan is affordable, the uniform global minimum beyond that (or at
    /// one shard, where no pair exists). Assumes the standard cluster
    /// layout — hosts are components `0..nodes`, co-located with their
    /// NICs, so node `j`'s shard is `map.shard_of(ComponentId(j))`.
    pub fn lookahead_for(&self, map: &ShardMap, nodes: usize) -> LatencyMatrix {
        const EXACT_SCAN_MAX_NODES: usize = 4096;
        let k = map.shards();
        if k > 1 && nodes <= EXACT_SCAN_MAX_NODES {
            let node_shard: Vec<u32> = (0..nodes)
                .map(|j| map.shard_of(nicbar_sim::ComponentId(j)))
                .collect();
            self.shard_latency_matrix(&node_shard, k)
        } else {
            LatencyMatrix::uniform(k, self.min_latency())
        }
    }
}

/// One NIC's receive port: a serial resource admitting arriving packets.
///
/// Owned by the destination NIC component; [`WireRx::admit`] replicates the
/// destination-port half of [`crate::fabric::FabricCore::send`] exactly
/// (occupancy + hot-spot serialization; a dropped packet never occupies the
/// port — the loss draw happens *before* calling `admit`).
pub struct WireRx {
    model: Arc<WireModel>,
    /// Time this input port is busy until.
    port_free: SimTime,
}

/// What the port did with one arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// When the packet is fully admitted (processing can start).
    pub arrive: SimTime,
    /// How long it queued behind earlier arrivals (zero if the port was
    /// free) — the link-occupancy tag on the causal netdump's wire records.
    pub port_wait: SimTime,
    /// When the port frees again: `arrive` plus this packet's occupancy and
    /// the hot-spot cost. The interval `[arrive, until)` is the hold this
    /// packet's owner charges to the link port in the occupancy ledger.
    pub until: SimTime,
}

impl WireRx {
    /// A receive port over the shared wire model.
    pub fn new(model: Arc<WireModel>) -> Self {
        WireRx {
            model,
            port_free: SimTime::ZERO,
        }
    }

    /// The shared wire model.
    pub fn model(&self) -> &Arc<WireModel> {
        &self.model
    }

    /// Admit a packet presenting at the port at time `routed` (its routed
    /// arrival time). The port is serially occupied for the packet's
    /// serialization plus the hot-spot cost.
    pub fn admit(&mut self, routed: SimTime, bytes: u32) -> Admission {
        let arrive = routed.max(self.port_free);
        self.port_free = arrive + self.model.timing.occupancy(bytes) + self.model.hotspot;
        Admission {
            arrive,
            port_wait: arrive - routed,
            until: self.port_free,
        }
    }

    /// Forget port-occupancy state (between benchmark phases).
    pub fn reset(&mut self) {
        self.port_free = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::WormholeClos;
    use crate::fabric::FabricCore;
    use nicbar_sim::SimRng;

    fn model() -> Arc<WireModel> {
        Arc::new(WireModel::new(
            Box::new(WormholeClos::myrinet2000(8)),
            LinkTiming::myrinet2000(),
            200,
        ))
    }

    #[test]
    fn flight_matches_fabric_routing() {
        let m = model();
        let mut fabric = FabricCore::new(
            Box::new(WormholeClos::myrinet2000(8)),
            LinkTiming::myrinet2000(),
            200,
        );
        let mut rng = SimRng::new(0);
        for (s, d, b) in [(0usize, 1usize, 8u32), (0, 5, 64), (3, 7, 0)] {
            let fab = fabric.send(SimTime::ZERO, NodeId(s), NodeId(d), b, &mut rng);
            assert_eq!(m.flight(NodeId(s), NodeId(d), b), fab.arrive);
        }
    }

    #[test]
    fn admissions_serialize_like_the_fabric_port() {
        let m = model();
        let mut rx = WireRx::new(Arc::clone(&m));
        let routed = m.flight(NodeId(1), NodeId(0), 8);
        let a1 = rx.admit(routed, 8);
        let a2 = rx.admit(routed, 8);
        let a3 = rx.admit(routed, 8);
        assert_eq!(a1.arrive, routed);
        assert_eq!(a1.port_wait, SimTime::ZERO);
        let occupancy = LinkTiming::myrinet2000().occupancy(8) + SimTime::from_ns(200);
        assert_eq!(a2.arrive - a1.arrive, occupancy);
        assert_eq!(a2.port_wait, occupancy);
        assert_eq!(a3.port_wait, occupancy + occupancy);
    }

    #[test]
    fn min_latency_is_one_hop_zero_bytes() {
        let m = model();
        assert_eq!(m.min_latency(), LinkTiming::myrinet2000().latency(1, 0));
        assert_eq!(m.min_latency().as_ns(), 450);
        // No packet can beat it.
        for d in 1..8usize {
            assert!(m.flight(NodeId(0), NodeId(d), 0) >= m.min_latency());
        }
    }

    #[test]
    fn reset_clears_the_port() {
        let m = model();
        let mut rx = WireRx::new(m);
        rx.admit(SimTime::from_ns(100), 8);
        rx.reset();
        let a = rx.admit(SimTime::from_ns(100), 8);
        assert_eq!(a.port_wait, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        model().flight(NodeId(2), NodeId(2), 8);
    }

    /// Every matrix entry must lower-bound every real cross-shard flight
    /// (soundness), and equal the tightest such bound (exactness).
    #[test]
    fn shard_latency_matrix_is_tight_and_sound() {
        let m = model();
        // Nodes 0..4 on shard 0, 4..8 on shard 1.
        let shard_of: Vec<u32> = (0..8).map(|n| (n >= 4) as u32).collect();
        let lat = m.shard_latency_matrix(&shard_of, 2);
        for (i, j) in [(0usize, 1usize), (1, 0)] {
            let mut tight = u64::MAX;
            for a in 0..8usize {
                for b in 0..8usize {
                    if a == b || shard_of[a] as usize != i || shard_of[b] as usize != j {
                        continue;
                    }
                    let f = m.flight(NodeId(a), NodeId(b), 0).as_ns();
                    assert!(f >= lat.get(i, j), "flight {a}->{b} beats the bound");
                    tight = tight.min(f);
                }
            }
            assert_eq!(lat.get(i, j), tight, "bound ({i},{j}) is not tight");
        }
        assert!(lat.min_ns() >= m.min_latency().as_ns());
    }
}
