//! Wormhole link timing.
//!
//! Both Myrinet and QsNet are wormhole-routed: the packet header cuts
//! through each switch as soon as the route is computed, and the body
//! streams behind it. End-to-end latency of a `b`-byte packet over `h`
//! switch hops is therefore
//!
//! ```text
//! T(h, b) = header + h * (switch + wire) + b * per_byte
//! ```
//!
//! — the body serialization is paid once (pipelined through the cut-through
//! switches), not once per hop.

use nicbar_sim::SimTime;

/// Per-network link/switch latency parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkTiming {
    /// Fixed cost to form and inject the routing header (ns).
    pub header_ns: u64,
    /// Routing decision + crossbar traversal per switch (ns).
    pub switch_ns: u64,
    /// Wire/cable propagation per hop (ns).
    pub wire_ns: u64,
    /// Serialization cost per payload byte (ns, fractional).
    pub ns_per_byte: f64,
}

impl LinkTiming {
    /// End-to-end wormhole latency for `bytes` of payload over `hops`
    /// switch traversals.
    pub fn latency(&self, hops: u32, bytes: u32) -> SimTime {
        let fixed = self.header_ns + u64::from(hops) * (self.switch_ns + self.wire_ns);
        let body = (f64::from(bytes) * self.ns_per_byte).round() as u64;
        SimTime::from_ns(fixed + body)
    }

    /// Time the packet occupies the destination input port (its full
    /// serialization, header + body). Used by the fabric's contention model.
    pub fn occupancy(&self, bytes: u32) -> SimTime {
        let body = (f64::from(bytes) * self.ns_per_byte).round() as u64;
        SimTime::from_ns(self.header_ns + body)
    }

    /// Myrinet 2000 era link timing: 2 Gb/s links (0.5 ns/byte each way on
    /// the 2+2 Gb/s full duplex link), sub-microsecond switch latency.
    pub fn myrinet2000() -> Self {
        LinkTiming {
            header_ns: 100,
            switch_ns: 300,
            wire_ns: 50,
            ns_per_byte: 0.5,
        }
    }

    /// QsNet/Elan3 link timing: 400 MB/s links (2.5 ns/byte), ~35 ns Elite
    /// switch latency (per the QsNet papers).
    pub fn qsnet_elan3() -> Self {
        LinkTiming {
            header_ns: 80,
            switch_ns: 35,
            wire_ns: 25,
            ns_per_byte: 2.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_affine_in_hops_and_bytes() {
        let t = LinkTiming {
            header_ns: 100,
            switch_ns: 300,
            wire_ns: 50,
            ns_per_byte: 0.5,
        };
        assert_eq!(t.latency(1, 0).as_ns(), 450);
        assert_eq!(t.latency(3, 0).as_ns(), 100 + 3 * 350);
        assert_eq!(t.latency(1, 8).as_ns(), 450 + 4);
        // serialization paid once regardless of hop count
        assert_eq!(
            t.latency(5, 64).as_ns() - t.latency(5, 0).as_ns(),
            t.latency(1, 64).as_ns() - t.latency(1, 0).as_ns()
        );
    }

    #[test]
    fn occupancy_excludes_per_hop_terms() {
        let t = LinkTiming::myrinet2000();
        assert_eq!(t.occupancy(0).as_ns(), 100);
        assert_eq!(t.occupancy(8).as_ns(), 104);
        assert!(t.occupancy(8) < t.latency(1, 8));
    }

    #[test]
    fn presets_are_sane() {
        let m = LinkTiming::myrinet2000();
        let q = LinkTiming::qsnet_elan3();
        // Quadrics switches are much faster than Myrinet crossbars…
        assert!(q.switch_ns < m.switch_ns);
        // …but its links are slower per byte (400 MB/s vs 2 Gb/s).
        assert!(q.ns_per_byte > m.ns_per_byte);
        // Small-packet one-hop latency is sub-microsecond on both.
        assert!(m.latency(1, 8).as_us() < 1.0);
        assert!(q.latency(1, 8).as_us() < 1.0);
    }
}
