//! Quadrics-style quaternary fat tree.
//!
//! QsNet interconnects Elan NICs through Elite switches arranged in a
//! quaternary (4-ary) fat tree. A *dimension-d* network supports `4^d`
//! hosts; the paper's Elite-16 switch is the dimension-two instance (16
//! hosts, 8 used). Routes climb to the lowest common ancestor level `L` and
//! descend, traversing `2·L − 1` switches.
//!
//! The Elite switches support a hardware multicast down the tree, but — as
//! the paper stresses — only to a *contiguous* range of nodes. That
//! restriction is modeled in [`Topology::supports_hw_broadcast`] and is what
//! forces `elan_hgsync()` to fall back to the software tree when the group
//! is fragmented.

use crate::topology::{is_contiguous, NodeId, Topology};

/// A 4-ary fat tree of Elite-style switches.
#[derive(Clone, Debug)]
pub struct QuaternaryFatTree {
    nodes: usize,
    dimension: u32,
}

impl QuaternaryFatTree {
    /// Fat tree with the smallest dimension that fits `nodes` hosts.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "empty network");
        let mut dimension = 1u32;
        while 4usize.pow(dimension) < nodes {
            dimension += 1;
        }
        QuaternaryFatTree { nodes, dimension }
    }

    /// Number of switch levels (the tree's dimension).
    pub fn dimension(&self) -> u32 {
        self.dimension
    }

    /// Level of the lowest common ancestor of two distinct leaves
    /// (1 = same first-level switch).
    fn lca_level(&self, a: usize, b: usize) -> u32 {
        let mut group = 4usize;
        let mut level = 1u32;
        while a / group != b / group {
            group *= 4;
            level += 1;
        }
        level
    }
}

impl Topology for QuaternaryFatTree {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.check(src);
        self.check(dst);
        if src == dst {
            return 0;
        }
        2 * self.lca_level(src.0, dst.0) - 1
    }

    fn diameter(&self) -> u32 {
        if self.nodes <= 1 {
            0
        } else {
            2 * self.lca_level(0, self.nodes - 1) - 1
        }
    }

    /// Quadrics hardware broadcast reaches any *contiguous* range of nodes.
    fn supports_hw_broadcast(&self, root: NodeId, nodes: &[NodeId]) -> bool {
        self.check(root);
        nodes.contains(&root) && is_contiguous(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_grows_with_nodes() {
        assert_eq!(QuaternaryFatTree::new(4).dimension(), 1);
        assert_eq!(QuaternaryFatTree::new(5).dimension(), 2);
        assert_eq!(QuaternaryFatTree::new(16).dimension(), 2);
        assert_eq!(QuaternaryFatTree::new(17).dimension(), 3);
        assert_eq!(QuaternaryFatTree::new(1024).dimension(), 5);
    }

    #[test]
    fn hops_in_elite16() {
        // 8-node cluster on a dimension-2 tree (the paper's Quadrics rig).
        let net = QuaternaryFatTree::new(8);
        assert_eq!(net.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(net.hops(NodeId(0), NodeId(3)), 1); // same quad
        assert_eq!(net.hops(NodeId(0), NodeId(4)), 3); // across the top
        assert_eq!(net.diameter(), 3);
    }

    #[test]
    fn hops_symmetric_and_bounded() {
        let net = QuaternaryFatTree::new(64);
        for (a, b) in [(0, 1), (0, 5), (0, 21), (17, 63)] {
            let h = net.hops(NodeId(a), NodeId(b));
            assert_eq!(h, net.hops(NodeId(b), NodeId(a)));
            assert!(h <= net.diameter());
        }
        assert_eq!(net.diameter(), 2 * 3 - 1);
    }

    #[test]
    fn hw_broadcast_requires_contiguous_range_containing_root() {
        let net = QuaternaryFatTree::new(16);
        let contiguous: Vec<NodeId> = (2..10).map(NodeId).collect();
        let holey: Vec<NodeId> = [2, 3, 5, 6].map(NodeId).to_vec();
        assert!(net.supports_hw_broadcast(NodeId(2), &contiguous));
        assert!(net.supports_hw_broadcast(NodeId(9), &contiguous));
        assert!(
            !net.supports_hw_broadcast(NodeId(0), &contiguous),
            "root outside group"
        );
        assert!(
            !net.supports_hw_broadcast(NodeId(2), &holey),
            "fragmented group"
        );
    }

    #[test]
    fn single_node_tree() {
        let net = QuaternaryFatTree::new(1);
        assert_eq!(net.diameter(), 0);
        assert_eq!(net.hops(NodeId(0), NodeId(0)), 0);
    }
}
