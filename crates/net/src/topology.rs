//! Topology abstraction.
//!
//! A topology answers one question for the timing model: how many switch
//! hops separate two NICs? Both of the paper's networks are switched
//! wormhole networks, so end-to-end latency decomposes into a per-hop
//! routing cost plus a single serialization cost (see
//! [`crate::timing::LinkTiming`]).

use std::fmt;

/// A physical node (equivalently: its NIC) in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A switched interconnect topology.
pub trait Topology: Send + Sync {
    /// Number of host nodes attached to the network.
    fn num_nodes(&self) -> usize;

    /// Number of switch traversals on the route from `src` to `dst`.
    /// `hops(x, x)` is 0 (loopback never touches the network in either
    /// substrate; NIC-local delivery is handled above this layer).
    fn hops(&self, src: NodeId, dst: NodeId) -> u32;

    /// The maximum hop count between any node pair.
    fn diameter(&self) -> u32;

    /// Whether the switch hardware can multicast from `root` to exactly the
    /// given node set in one network-level operation. Quadrics requires a
    /// *contiguous* node range (the paper's stated limitation); Myrinet has
    /// no hardware broadcast at all.
    fn supports_hw_broadcast(&self, root: NodeId, nodes: &[NodeId]) -> bool {
        let _ = (root, nodes);
        false
    }

    /// Validate a node id against this topology.
    fn check(&self, node: NodeId) {
        assert!(
            node.0 < self.num_nodes(),
            "node {node} out of range for {}-node topology",
            self.num_nodes()
        );
    }
}

/// Returns true when the sorted node ids form one contiguous run.
pub fn is_contiguous(nodes: &[NodeId]) -> bool {
    if nodes.is_empty() {
        return false;
    }
    let mut ids: Vec<usize> = nodes.iter().map(|n| n.0).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len() == nodes.len() && ids[ids.len() - 1] - ids[0] + 1 == ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(ids: &[usize]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn contiguous_detection() {
        assert!(is_contiguous(&n(&[0, 1, 2, 3])));
        assert!(is_contiguous(&n(&[5, 3, 4])));
        assert!(is_contiguous(&n(&[7])));
        assert!(!is_contiguous(&n(&[0, 2, 3])));
        assert!(!is_contiguous(&n(&[1, 1, 2])));
        assert!(!is_contiguous(&n(&[])));
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
