//! Rank → physical-node placements.
//!
//! The paper evaluates "with random permutation of the nodes" to rule out
//! placement effects; a [`Permutation`] carries that mapping. Ranks are the
//! logical process ids the barrier algorithms operate on; nodes are the
//! physical NIC positions the topology charges hops for.

use crate::topology::NodeId;
use nicbar_sim::SimRng;

/// A bijective mapping from ranks `0..n` onto a subset of physical nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    rank_to_node: Vec<NodeId>,
}

impl Permutation {
    /// The identity placement: rank `i` on node `i`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            rank_to_node: (0..n).map(NodeId).collect(),
        }
    }

    /// A uniformly random placement of `n` ranks onto nodes `0..cluster`,
    /// drawn from `rng`.
    ///
    /// # Panics
    /// Panics if `n > cluster`.
    pub fn random(n: usize, cluster: usize, rng: &mut SimRng) -> Self {
        assert!(n <= cluster, "more ranks than nodes");
        let mut nodes: Vec<NodeId> = (0..cluster).map(NodeId).collect();
        rng.shuffle(&mut nodes);
        nodes.truncate(n);
        Permutation {
            rank_to_node: nodes,
        }
    }

    /// Build from an explicit mapping.
    ///
    /// # Panics
    /// Panics if the mapping contains duplicate nodes.
    pub fn from_nodes(rank_to_node: Vec<NodeId>) -> Self {
        let mut seen = rank_to_node.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            rank_to_node.len(),
            "duplicate node in permutation"
        );
        Permutation { rank_to_node }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.rank_to_node.len()
    }

    /// True if the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.rank_to_node.is_empty()
    }

    /// Physical node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.rank_to_node[rank]
    }

    /// Rank hosted on `node`, if any (linear scan; fine for setup-time use).
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.rank_to_node.iter().position(|&n| n == node)
    }

    /// The node set, in rank order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.rank_to_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_straight_through() {
        let p = Permutation::identity(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.node_of(2), NodeId(2));
        assert_eq!(p.rank_of(NodeId(3)), Some(3));
        assert_eq!(p.rank_of(NodeId(4)), None);
    }

    #[test]
    fn random_is_a_bijection() {
        let mut rng = SimRng::new(11);
        let p = Permutation::random(8, 16, &mut rng);
        assert_eq!(p.len(), 8);
        let mut nodes: Vec<usize> = p.nodes().iter().map(|n| n.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 8);
        assert!(nodes.iter().all(|&n| n < 16));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let p1 = Permutation::random(8, 8, &mut SimRng::new(5));
        let p2 = Permutation::random(8, 8, &mut SimRng::new(5));
        let p3 = Permutation::random(8, 8, &mut SimRng::new(6));
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_nodes_rejected() {
        Permutation::from_nodes(vec![NodeId(0), NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "more ranks than nodes")]
    fn oversubscription_rejected() {
        Permutation::random(9, 8, &mut SimRng::new(0));
    }
}
