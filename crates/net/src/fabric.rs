//! The fabric core: routing + contention + loss injection.
//!
//! [`FabricCore`] turns "NIC `src` injects a `b`-byte packet at time `t`"
//! into "the packet reaches NIC `dst` at time `t'` (or is dropped)". Three
//! effects stack:
//!
//! 1. **Routing latency** — wormhole timing over the topology's hop count.
//! 2. **Destination-port contention** — each NIC input port is a serial
//!    resource: concurrent arrivals queue behind one another for the port's
//!    occupancy time plus a per-network *hot-spot serialization* cost. This
//!    is the knob behind the paper's observation that Quadrics "is very
//!    efficient in coping with hot-spot RDMA operations" while Myrinet is
//!    not: `hotspot_ns` is small for Elan, large for LANai.
//! 3. **Loss injection** — a seeded Bernoulli drop, used by the reliability
//!    tests. The Quadrics substrate runs with `drop_prob = 0` (hardware
//!    reliable delivery); GM runs with it configurable.

use crate::timing::LinkTiming;
use crate::topology::{NodeId, Topology};
use nicbar_sim::{SimRng, SimTime};

/// Result of injecting one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the destination NIC sees the packet (meaningless if `dropped`).
    pub arrive: SimTime,
    /// The packet was lost in the network.
    pub dropped: bool,
    /// How long the packet queued behind other arrivals at the destination
    /// input port (zero when the port was free). This is the link-occupancy
    /// tag the causal netdump attaches to every wire record, so the
    /// critical-path analyzer can tell "slow link" apart from "busy port".
    pub port_wait: SimTime,
}

/// Aggregate fabric statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets handed to the fabric.
    pub injected: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets dropped by loss injection.
    pub dropped: u64,
    /// Packets that had to queue behind another arrival at the destination
    /// port.
    pub contended: u64,
}

/// Deterministic packet-delivery calculator over a [`Topology`].
///
/// ```
/// use nicbar_net::{FabricCore, LinkTiming, NodeId, WormholeClos};
/// use nicbar_sim::{SimRng, SimTime};
///
/// let mut fabric = FabricCore::new(
///     Box::new(WormholeClos::myrinet2000(8)),
///     LinkTiming::myrinet2000(),
///     0,
/// );
/// let mut rng = SimRng::new(1);
/// let d = fabric.send(SimTime::ZERO, NodeId(0), NodeId(5), 16, &mut rng);
/// assert!(!d.dropped);
/// assert!(d.arrive > SimTime::ZERO);
/// ```
pub struct FabricCore {
    topology: Box<dyn Topology>,
    timing: LinkTiming,
    /// Probability that any given packet is lost.
    drop_prob: f64,
    /// Extra serialization charged per packet at a busy destination port.
    hotspot: SimTime,
    /// Time each destination input port is busy until.
    rx_port_free: Vec<SimTime>,
    stats: FabricStats,
}

impl FabricCore {
    /// Build a fabric over `topology` with the given `timing`.
    /// `hotspot_ns` is the extra per-packet serialization at a contended
    /// destination port.
    pub fn new(topology: Box<dyn Topology>, timing: LinkTiming, hotspot_ns: u64) -> Self {
        let n = topology.num_nodes();
        FabricCore {
            topology,
            timing,
            drop_prob: 0.0,
            hotspot: SimTime::from_ns(hotspot_ns),
            rx_port_free: vec![SimTime::ZERO; n],
            stats: FabricStats::default(),
        }
    }

    /// Set the loss-injection probability (0 disables).
    pub fn set_drop_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
    }

    /// Current loss-injection probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topology.as_ref()
    }

    /// The link timing parameters.
    pub fn timing(&self) -> &LinkTiming {
        &self.timing
    }

    /// Statistics so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Inject a unicast packet. Returns its delivery time at `dst`, after
    /// routing latency and destination-port queuing, or a drop.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or `src == dst` (NIC-local loopback is
    /// handled above the fabric).
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        rng: &mut SimRng,
    ) -> Delivery {
        assert_ne!(src, dst, "fabric loopback is not a thing");
        self.stats.injected += 1;
        if self.drop_prob > 0.0 && rng.chance(self.drop_prob) {
            self.stats.dropped += 1;
            return Delivery {
                arrive: SimTime::MAX,
                dropped: true,
                port_wait: SimTime::ZERO,
            };
        }
        let hops = self.topology.hops(src, dst);
        let routed = now + self.timing.latency(hops, bytes);
        // Destination input port is a serial resource.
        let port_free = self.rx_port_free[dst.0];
        let (arrive, contended) = if routed >= port_free {
            (routed, false)
        } else {
            (port_free, true)
        };
        if contended {
            self.stats.contended += 1;
        }
        self.rx_port_free[dst.0] = arrive + self.timing.occupancy(bytes) + self.hotspot;
        self.stats.delivered += 1;
        Delivery {
            arrive,
            dropped: false,
            port_wait: arrive - routed,
        }
    }

    /// Hardware multicast from `root` to every node in `group` (which must
    /// satisfy [`Topology::supports_hw_broadcast`]). Returns per-destination
    /// arrival times; the switch replicates the worm, so destinations hear
    /// it simultaneously up to hop-count differences and no port contention
    /// is charged.
    ///
    /// # Panics
    /// Panics if the topology cannot multicast to this group.
    pub fn hw_broadcast(
        &mut self,
        now: SimTime,
        root: NodeId,
        group: &[NodeId],
        bytes: u32,
    ) -> Vec<(NodeId, SimTime)> {
        assert!(
            self.topology.supports_hw_broadcast(root, group),
            "topology cannot hardware-broadcast to this group"
        );
        self.stats.injected += 1;
        group
            .iter()
            .filter(|&&n| n != root)
            .map(|&n| {
                self.stats.delivered += 1;
                let hops = self.topology.hops(root, n);
                (n, now + self.timing.latency(hops, bytes))
            })
            .collect()
    }

    /// Forget all port-occupancy state (e.g. between benchmark phases).
    pub fn reset_contention(&mut self) {
        self.rx_port_free.fill(SimTime::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::WormholeClos;
    use crate::fattree::QuaternaryFatTree;

    fn myri8() -> FabricCore {
        FabricCore::new(
            Box::new(WormholeClos::myrinet2000(8)),
            LinkTiming::myrinet2000(),
            200,
        )
    }

    #[test]
    fn unicast_latency_matches_timing() {
        let mut f = myri8();
        let mut rng = SimRng::new(0);
        let d = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 8, &mut rng);
        assert!(!d.dropped);
        assert_eq!(d.arrive, LinkTiming::myrinet2000().latency(1, 8));
    }

    #[test]
    fn concurrent_arrivals_serialize_at_dst_port() {
        let mut f = myri8();
        let mut rng = SimRng::new(0);
        let d1 = f.send(SimTime::ZERO, NodeId(1), NodeId(0), 8, &mut rng);
        let d2 = f.send(SimTime::ZERO, NodeId(2), NodeId(0), 8, &mut rng);
        let d3 = f.send(SimTime::ZERO, NodeId(3), NodeId(0), 8, &mut rng);
        assert!(d2.arrive > d1.arrive);
        assert!(d3.arrive > d2.arrive);
        let gap = d2.arrive - d1.arrive;
        let occupancy = LinkTiming::myrinet2000().occupancy(8) + SimTime::from_ns(200);
        assert_eq!(gap, occupancy);
        assert_eq!(f.stats().contended, 2);
        // The queuing wait is tagged on the delivery itself.
        assert_eq!(d1.port_wait, SimTime::ZERO);
        assert_eq!(d2.port_wait, occupancy);
        assert_eq!(d3.port_wait, occupancy + occupancy);
    }

    #[test]
    fn different_destinations_do_not_contend() {
        let mut f = myri8();
        let mut rng = SimRng::new(0);
        let d1 = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 8, &mut rng);
        let d2 = f.send(SimTime::ZERO, NodeId(2), NodeId(3), 8, &mut rng);
        assert_eq!(d1.arrive, d2.arrive);
        assert_eq!(f.stats().contended, 0);
    }

    #[test]
    fn drop_injection_loses_packets() {
        let mut f = myri8();
        f.set_drop_prob(1.0);
        let mut rng = SimRng::new(0);
        let d = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 8, &mut rng);
        assert!(d.dropped);
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.stats().delivered, 0);
    }

    #[test]
    fn drop_rate_is_roughly_calibrated() {
        let mut f = myri8();
        f.set_drop_prob(0.1);
        let mut rng = SimRng::new(42);
        let mut dropped = 0;
        for i in 0..10_000u64 {
            let t = SimTime::from_us_int(i * 100);
            if f.send(t, NodeId(0), NodeId(1), 8, &mut rng).dropped {
                dropped += 1;
            }
        }
        assert!(
            (800..1200).contains(&dropped),
            "p=0.1 dropped {dropped}/10000"
        );
    }

    #[test]
    fn hw_broadcast_reaches_group_simultaneously() {
        let mut f = FabricCore::new(
            Box::new(QuaternaryFatTree::new(8)),
            LinkTiming::qsnet_elan3(),
            0,
        );
        let group: Vec<NodeId> = (0..8).map(NodeId).collect();
        let arrivals = f.hw_broadcast(SimTime::ZERO, NodeId(0), &group, 4);
        assert_eq!(arrivals.len(), 7);
        // Same-quad nodes hear it sooner (1 hop) than cross-tree nodes (3).
        let t_near = arrivals.iter().find(|(n, _)| *n == NodeId(1)).unwrap().1;
        let t_far = arrivals.iter().find(|(n, _)| *n == NodeId(7)).unwrap().1;
        assert!(t_near < t_far);
    }

    #[test]
    #[should_panic(expected = "cannot hardware-broadcast")]
    fn hw_broadcast_rejects_fragmented_group() {
        let mut f = FabricCore::new(
            Box::new(QuaternaryFatTree::new(8)),
            LinkTiming::qsnet_elan3(),
            0,
        );
        let group = vec![NodeId(0), NodeId(2), NodeId(4)];
        f.hw_broadcast(SimTime::ZERO, NodeId(0), &group, 4);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let mut f = myri8();
        let mut rng = SimRng::new(0);
        f.send(SimTime::ZERO, NodeId(1), NodeId(1), 8, &mut rng);
    }

    #[test]
    fn reset_contention_clears_ports() {
        let mut f = myri8();
        let mut rng = SimRng::new(0);
        f.send(SimTime::ZERO, NodeId(1), NodeId(0), 8, &mut rng);
        f.send(SimTime::ZERO, NodeId(2), NodeId(0), 8, &mut rng);
        f.reset_contention();
        let d = f.send(SimTime::ZERO, NodeId(3), NodeId(0), 8, &mut rng);
        assert_eq!(d.arrive, LinkTiming::myrinet2000().latency(1, 8));
    }
}
