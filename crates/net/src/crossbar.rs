//! Myrinet-style wormhole Clos network.
//!
//! Myrinet 2000 networks are built from 16-port crossbar switches. Small
//! clusters (≤16 hosts, both clusters in the paper) hang every NIC off one
//! crossbar. Larger systems use a Clos/spine-leaf arrangement in which each
//! leaf dedicates half its ports to hosts and half to spines; recursing
//! gives 3-stage, 5-stage, ... networks. Hop counts:
//!
//! * same switch: 1 hop,
//! * same level-2 group (via one spine): 3 hops,
//! * same level-3 group: 5 hops, and so on (2·L − 1 for separation level L).
//!
//! This matches the classic Myrinet "quarter-fill rule" networks closely
//! enough for latency-shape studies: the 1024-node scalability projection in
//! the paper's Fig. 8 rides on ⌈log₂N⌉ protocol steps, with hop count a
//! second-order term.

use crate::topology::{NodeId, Topology};

/// A Clos network of `radix`-port crossbars.
#[derive(Clone, Debug)]
pub struct WormholeClos {
    nodes: usize,
    /// Hosts per leaf switch. With radix-16 crossbars and a 1:1
    /// oversubscription this is 8 beyond a single switch; a single-switch
    /// network holds up to `radix` hosts.
    leaf_capacity: usize,
    radix: usize,
}

impl WormholeClos {
    /// Build a network for `nodes` hosts out of `radix`-port crossbars.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `radix < 4`.
    pub fn new(nodes: usize, radix: usize) -> Self {
        assert!(nodes > 0, "empty network");
        assert!(radix >= 4, "crossbar radix must be at least 4");
        let leaf_capacity = if nodes <= radix { nodes } else { radix / 2 };
        WormholeClos {
            nodes,
            leaf_capacity,
            radix,
        }
    }

    /// Myrinet 2000: 16-port crossbars.
    pub fn myrinet2000(nodes: usize) -> Self {
        WormholeClos::new(nodes, 16)
    }

    /// Smallest group size (in hosts) that contains both nodes; level 1 is a
    /// single leaf switch.
    fn separation_level(&self, a: usize, b: usize) -> u32 {
        let mut group = self.leaf_capacity;
        let mut level = 1u32;
        while a / group != b / group {
            group *= self.radix / 2;
            level += 1;
        }
        level
    }
}

impl Topology for WormholeClos {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.check(src);
        self.check(dst);
        if src == dst {
            return 0;
        }
        2 * self.separation_level(src.0, dst.0) - 1
    }

    fn diameter(&self) -> u32 {
        if self.nodes <= 1 {
            0
        } else {
            2 * self.separation_level(0, self.nodes - 1) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_cluster_is_one_hop() {
        let net = WormholeClos::myrinet2000(16);
        for i in 0..16 {
            for j in 0..16 {
                let expect = if i == j { 0 } else { 1 };
                assert_eq!(net.hops(NodeId(i), NodeId(j)), expect, "{i}->{j}");
            }
        }
        assert_eq!(net.diameter(), 1);
    }

    #[test]
    fn spine_leaf_hops() {
        // 64 hosts: leaves of 8, so 0..8 share a leaf, 0 and 9 cross a spine.
        let net = WormholeClos::myrinet2000(64);
        assert_eq!(net.hops(NodeId(0), NodeId(7)), 1);
        assert_eq!(net.hops(NodeId(0), NodeId(8)), 3);
        assert_eq!(net.hops(NodeId(0), NodeId(63)), 3);
        assert_eq!(net.diameter(), 3);
    }

    #[test]
    fn large_network_levels() {
        // 1024 hosts: groups of 8, 64, 512, 4096 → up to level 4 → 7 hops.
        let net = WormholeClos::myrinet2000(1024);
        assert_eq!(net.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(net.hops(NodeId(0), NodeId(8)), 3);
        assert_eq!(net.hops(NodeId(0), NodeId(64)), 5);
        assert_eq!(net.hops(NodeId(0), NodeId(512)), 7);
        assert_eq!(net.diameter(), 7);
    }

    #[test]
    fn hops_symmetric() {
        let net = WormholeClos::myrinet2000(128);
        for (a, b) in [(0, 1), (3, 77), (12, 120), (64, 65)] {
            assert_eq!(
                net.hops(NodeId(a), NodeId(b)),
                net.hops(NodeId(b), NodeId(a))
            );
        }
    }

    #[test]
    fn no_hw_broadcast() {
        let net = WormholeClos::myrinet2000(8);
        let all: Vec<NodeId> = (0..8).map(NodeId).collect();
        assert!(!net.supports_hw_broadcast(NodeId(0), &all));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let net = WormholeClos::myrinet2000(8);
        net.hops(NodeId(0), NodeId(8));
    }
}
