//! Property tests for the network models: hop metrics behave like metrics,
//! contention only ever delays, and loss respects its probability bounds.

use nicbar_net::{
    FabricCore, LinkTiming, NodeId, Permutation, QuaternaryFatTree, Topology, WormholeClos,
};
use nicbar_sim::{SimRng, SimTime};
use proptest::prelude::*;

fn topologies(n: usize) -> Vec<Box<dyn Topology>> {
    vec![
        Box::new(WormholeClos::myrinet2000(n)),
        Box::new(QuaternaryFatTree::new(n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hop counts are symmetric, zero iff loopback, and within the
    /// diameter.
    #[test]
    fn hops_form_a_sane_metric(
        n in 2usize..600,
        a_seed in 0usize..600,
        b_seed in 0usize..600,
    ) {
        let a = NodeId(a_seed % n);
        let b = NodeId(b_seed % n);
        for topo in topologies(n) {
            let h = topo.hops(a, b);
            prop_assert_eq!(h, topo.hops(b, a));
            prop_assert_eq!(h == 0, a == b);
            prop_assert!(h <= topo.diameter());
        }
    }

    /// Contention never makes a packet arrive earlier than uncontended
    /// routing, and arrivals at one port are strictly serialized.
    #[test]
    fn contention_only_delays(
        n_senders in 2usize..8,
        bytes in 0u32..512,
    ) {
        let n = 8;
        let mut f = FabricCore::new(
            Box::new(WormholeClos::myrinet2000(n)),
            LinkTiming::myrinet2000(),
            100,
        );
        let mut rng = SimRng::new(1);
        let base = LinkTiming::myrinet2000().latency(1, bytes);
        let mut arrivals = Vec::new();
        for s in 1..=n_senders {
            let d = f.send(SimTime::ZERO, NodeId(s), NodeId(0), bytes, &mut rng);
            prop_assert!(d.arrive >= base);
            arrivals.push(d.arrive);
        }
        for w in arrivals.windows(2) {
            prop_assert!(w[1] > w[0], "port serialization violated");
        }
    }

    /// Loss injection stays within generous binomial bounds.
    #[test]
    fn loss_rate_tracks_probability(p in 0.05f64..0.5, seed in 0u64..100) {
        let mut f = FabricCore::new(
            Box::new(WormholeClos::myrinet2000(2)),
            LinkTiming::myrinet2000(),
            0,
        );
        f.set_drop_prob(p);
        let mut rng = SimRng::new(seed);
        let trials = 2_000u64;
        let mut dropped = 0u64;
        for i in 0..trials {
            let t = SimTime::from_us_int(i * 10);
            if f.send(t, NodeId(0), NodeId(1), 8, &mut rng).dropped {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / trials as f64;
        // ±5 standard deviations of a binomial.
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();
        prop_assert!(
            (rate - p).abs() < 5.0 * sigma + 0.01,
            "rate {rate:.3} vs p {p:.3}"
        );
    }

    /// Random permutations are bijections and seed-stable.
    #[test]
    fn permutations_are_bijective(n in 1usize..64, extra in 0usize..32, seed in 0u64..1000) {
        let cluster = n + extra;
        let p1 = Permutation::random(n, cluster, &mut SimRng::new(seed));
        let p2 = Permutation::random(n, cluster, &mut SimRng::new(seed));
        prop_assert_eq!(&p1, &p2);
        let mut nodes: Vec<usize> = p1.nodes().iter().map(|x| x.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), n);
        prop_assert!(nodes.iter().all(|&x| x < cluster));
    }
}
