//! Thread-processor collectives on Quadrics — the §7 road not taken, plus
//! the Moody-et-al. reduction (the paper's ref \[14\]) that *requires* it.
//!
//! §7 chooses chained RDMA descriptors for the barrier because "an extra
//! thread does increase the processing load to the Elan NIC". This module
//! implements the rejected design — a NIC-thread barrier — so the claim can
//! be measured (`thread_vs_chain` tests/bench), and the thread-based
//! *allreduce*, which chained descriptors cannot express at all (they move
//! no data and compute nothing): NIC-side combining needs the thread
//! processor.
//!
//! [`ThreadCollective`] runs the same dissemination round machinery as the
//! GM engine, banked per `(epoch, round)` so consecutive operations
//! overlap safely.

use crate::host_app::BarrierLog;
use crate::protocol::ReduceOp;
use crate::schedule::Schedule;
use nicbar_elan::{ElanApi, ElanApp, ElanThread, ThreadAction};
use nicbar_net::NodeId;
use nicbar_sim::SimTime;
use std::collections::BTreeMap;

/// Completion cookie for thread-based collectives.
pub const THREAD_DONE_COOKIE: u64 = 0x7442;

/// What the thread computes each operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadOp {
    /// Pure synchronization (the §7 alternative barrier).
    Barrier,
    /// Dissemination-butterfly allreduce (Moody-style NIC reduction).
    Allreduce {
        /// Combine operator (Sum requires power-of-two groups).
        op: ReduceOp,
    },
}

fn encode(epoch: u64, round: usize) -> u32 {
    assert!(epoch < (1 << 24), "epoch too large for tag");
    assert!(round < 256, "round too large for tag");
    let epoch = u32::try_from(epoch).expect("checked by the 24-bit assert above");
    let round = u32::try_from(round).expect("checked by the 8-bit assert above");
    (epoch << 8) | round
}

fn decode(tag: u32) -> (u64, usize) {
    ((tag >> 8) as u64, (tag & 0xff) as usize)
}

/// The NIC-thread collective engine for one rank.
pub struct ThreadCollective {
    members: Vec<NodeId>,
    schedule: Schedule,
    op: ThreadOp,
    /// Doorbells seen.
    entered: u64,
    /// Operations completed.
    completed: u64,
    /// Accumulator of the live epoch.
    acc: u64,
    /// Next round whose send has not been issued (live epoch).
    next_send_round: usize,
    /// Banked arrivals: (epoch, round) → value.
    banked: BTreeMap<(u64, usize), u64>,
    /// Results per completed epoch (test observability).
    results: Vec<u64>,
}

impl ThreadCollective {
    /// Build for `rank` of a group placed on `members`.
    pub fn new(members: Vec<NodeId>, rank: usize, op: ThreadOp) -> Self {
        let n = members.len();
        if let ThreadOp::Allreduce { op } = op {
            assert!(
                n.is_power_of_two() || op.tolerates_overlap(),
                "dissemination allreduce with Sum requires a power-of-two group"
            );
        }
        ThreadCollective {
            members,
            schedule: Schedule::dissemination(n, rank),
            op,
            entered: 0,
            completed: 0,
            acc: 0,
            next_send_round: 0,
            banked: BTreeMap::new(),
            results: Vec::new(),
        }
    }

    /// Completed operation results (barrier: zeros).
    pub fn results(&self) -> &[u64] {
        &self.results
    }

    fn live_epoch(&self) -> Option<u64> {
        (self.entered > self.completed).then(|| self.entered - 1)
    }

    fn progress(&mut self) -> Vec<ThreadAction> {
        let mut actions = Vec::new();
        let Some(epoch) = self.live_epoch() else {
            return actions;
        };
        loop {
            let r = self.next_send_round;
            if r > 0 {
                // Need the round r-1 arrival before advancing.
                let Some(v) = self.banked.remove(&(epoch, r - 1)) else {
                    return actions;
                };
                match self.op {
                    ThreadOp::Barrier => {}
                    ThreadOp::Allreduce { op } => self.acc = op.combine(self.acc, v),
                }
            }
            if r == self.schedule.num_rounds() {
                self.completed = epoch + 1;
                self.results.push(match self.op {
                    ThreadOp::Barrier => 0,
                    ThreadOp::Allreduce { .. } => self.acc,
                });
                self.next_send_round = 0;
                actions.push(ThreadAction::NotifyHost {
                    cookie: THREAD_DONE_COOKIE,
                    value: self.acc,
                });
                return actions;
            }
            for &dst_rank in &self.schedule.rounds[r].sends {
                actions.push(ThreadAction::Send {
                    dst: self.members[dst_rank],
                    tag: encode(epoch, r),
                    value: self.acc,
                });
            }
            self.next_send_round = r + 1;
        }
    }
}

impl ElanThread for ThreadCollective {
    fn on_doorbell(&mut self, _now: SimTime, value: u64) -> Vec<ThreadAction> {
        assert_eq!(
            self.entered, self.completed,
            "thread doorbell before the previous operation completed"
        );
        self.entered += 1;
        self.acc = match self.op {
            ThreadOp::Barrier => 0,
            ThreadOp::Allreduce { .. } => value,
        };
        self.next_send_round = 0;
        self.progress()
    }

    fn on_msg(&mut self, _now: SimTime, src: NodeId, tag: u32, value: u64) -> Vec<ThreadAction> {
        let (epoch, round) = decode(tag);
        debug_assert!(
            self.schedule.rounds[round]
                .recv_from
                .iter()
                .any(|&r| self.members[r] == src),
            "thread message from an unexpected sender"
        );
        debug_assert!(
            epoch <= self.entered,
            "thread arrival more than one epoch ahead"
        );
        let prev = self.banked.insert((epoch, round), value);
        debug_assert!(prev.is_none(), "duplicate thread arrival (hw-reliable net)");
        self.progress()
    }
}

/// Benchmark app driving consecutive thread-based collectives.
pub struct ElanThreadApp {
    iters: u64,
    done: u64,
    /// Contribution per epoch (allreduce operand; ignored for barrier).
    contributions: Vec<u64>,
    /// Measurements.
    pub log: BarrierLog,
}

impl ElanThreadApp {
    /// Run `iters` operations; `contributions[e]` is this rank's operand in
    /// epoch `e` (pass zeros for a barrier).
    pub fn new(contributions: Vec<u64>) -> Self {
        ElanThreadApp {
            iters: contributions.len() as u64,
            done: 0,
            contributions,
            log: BarrierLog::default(),
        }
    }
}

impl ElanApp for ElanThreadApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        if self.iters > 0 {
            api.thread_doorbell(self.contributions[0]);
        }
    }
    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64) {
        assert_eq!(cookie, THREAD_DONE_COOKIE);
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            let next = usize::try_from(self.done).expect("iteration count exceeds usize");
            api.thread_doorbell(self.contributions[next]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        let t = encode(99_999, 7);
        assert_eq!(decode(t), (99_999, 7));
    }

    #[test]
    fn two_rank_thread_barrier_by_hand() {
        let members = vec![NodeId(0), NodeId(1)];
        let mut t0 = ThreadCollective::new(members.clone(), 0, ThreadOp::Barrier);
        let a = t0.on_doorbell(SimTime::ZERO, 0);
        assert_eq!(a.len(), 1, "round-0 send");
        let a = t0.on_msg(SimTime::ZERO, NodeId(1), encode(0, 0), 0);
        assert!(matches!(a[0], ThreadAction::NotifyHost { .. }));
        assert_eq!(t0.results(), &[0]);
    }

    #[test]
    fn allreduce_accumulates_across_rounds() {
        // Rank 0 of 4, Sum: contributes 1; hears 8 (round 0, covers rank 3)
        // and 6 (round 1, covers ranks 1+2 = 2+4).
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut t = ThreadCollective::new(members, 0, ThreadOp::Allreduce { op: ReduceOp::Sum });
        let a = t.on_doorbell(SimTime::ZERO, 1);
        // Round-0 send carries own contribution.
        assert!(matches!(a[0], ThreadAction::Send { value: 1, .. }));
        let a = t.on_msg(SimTime::ZERO, NodeId(3), encode(0, 0), 8);
        // Round-1 send carries 1+8.
        assert!(matches!(a[0], ThreadAction::Send { value: 9, .. }));
        let a = t.on_msg(SimTime::ZERO, NodeId(2), encode(0, 1), 6);
        assert!(matches!(a[0], ThreadAction::NotifyHost { value: 15, .. }));
        assert_eq!(t.results(), &[15]);
    }

    #[test]
    fn early_next_epoch_arrivals_are_banked() {
        let members = vec![NodeId(0), NodeId(1)];
        let mut t = ThreadCollective::new(members, 0, ThreadOp::Barrier);
        // Epoch 0: our entry, then the peer's epoch-0 message completes it.
        let a = t.on_doorbell(SimTime::ZERO, 0);
        assert_eq!(a.len(), 1);
        let a = t.on_msg(SimTime::ZERO, NodeId(1), encode(0, 0), 0);
        assert!(matches!(a[0], ThreadAction::NotifyHost { .. }));
        // The peer races into epoch 1 before our host re-enters: its message
        // must be banked (a peer can be at most one epoch ahead — it needed
        // our epoch-0 entry, which has happened).
        assert!(t
            .on_msg(SimTime::ZERO, NodeId(1), encode(1, 0), 0)
            .is_empty());
        // Our epoch-1 doorbell releases send + immediate completion.
        let a = t.on_doorbell(SimTime::ZERO, 0);
        assert_eq!(a.len(), 2);
        assert_eq!(t.results().len(), 2);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn sum_requires_power_of_two() {
        let members: Vec<NodeId> = (0..6).map(NodeId).collect();
        let _ = ThreadCollective::new(members, 0, ThreadOp::Allreduce { op: ReduceOp::Sum });
    }
}
