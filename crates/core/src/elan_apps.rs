//! Elan benchmark applications: the chained-RDMA NIC barrier driver, the
//! Elanlib tree barrier (`elan_gsync`) and the hardware barrier
//! (`elan_hgsync`) — the four curves of the paper's Fig. 7.

use crate::elan_chain::{CHAIN_DONE_COOKIE, ENTRY_EVENT};
use crate::host_app::BarrierLog;
use nicbar_elan::{
    hw_cookie, ElanApi, ElanApp, Gsync, GsyncStep, TportTag, BCAST_TAG, GATHER_TAG, GSYNC_MSG_BYTES,
};
use nicbar_net::NodeId;
use nicbar_sim::SimTime;

/// NIC-based barrier over chained RDMA (paper §7): the host sets the entry
/// event once per barrier and waits for the done notification.
pub struct ElanNicBarrierApp {
    iters: u64,
    skew_us: f64,
    done: u64,
    /// Measurements.
    pub log: BarrierLog,
}

impl ElanNicBarrierApp {
    /// Run `iters` consecutive barriers.
    pub fn new(iters: u64, skew_us: f64) -> Self {
        ElanNicBarrierApp {
            iters,
            skew_us,
            done: 0,
            log: BarrierLog::with_capacity(iters),
        }
    }
}

impl ElanApp for ElanNicBarrierApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        api.set_nic_event(ENTRY_EVENT);
    }

    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64) {
        assert_eq!(cookie, CHAIN_DONE_COOKIE);
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            if self.skew_us > 0.0 {
                let d = api.rng().range_f64(0.0, self.skew_us);
                api.set_timer(SimTime::from_us(d));
            } else {
                api.set_nic_event(ENTRY_EVENT);
            }
        }
    }

    fn on_timer(&mut self, api: &mut ElanApi<'_>) {
        api.set_nic_event(ENTRY_EVENT);
    }
}

/// Elanlib `elan_gsync()` benchmark app: host-driven tree gather-broadcast.
pub struct ElanGsyncApp {
    gsync: Gsync,
    /// Rank → node placement (the tree is built in rank space).
    members: Vec<NodeId>,
    iters: u64,
    skew_us: f64,
    pending_enter: bool,
    /// Measurements.
    pub log: BarrierLog,
}

impl ElanGsyncApp {
    /// Run `iters` consecutive `elan_gsync` barriers for `rank` of the
    /// group placed on `members` (rank order), with a `degree`-ary tree.
    pub fn new(rank: usize, members: Vec<NodeId>, degree: usize, iters: u64, skew_us: f64) -> Self {
        let n = members.len();
        ElanGsyncApp {
            gsync: Gsync::new(rank, n, degree),
            members,
            iters,
            skew_us,
            pending_enter: false,
            log: BarrierLog::with_capacity(iters),
        }
    }

    fn issue(&mut self, api: &mut ElanApi<'_>, step: GsyncStep) {
        for s in step.sends {
            // Gsync speaks in ranks; translate to the physical placement.
            api.tport_send(self.members[s.dst.0], s.tag, GSYNC_MSG_BYTES);
        }
        if step.done {
            self.log.completions.push(api.now());
            if self.gsync.epochs_done() < self.iters {
                if self.skew_us > 0.0 {
                    let d = api.rng().range_f64(0.0, self.skew_us);
                    self.pending_enter = true;
                    api.set_timer(SimTime::from_us(d));
                } else {
                    let next = self.gsync.begin();
                    self.issue(api, next);
                }
            }
        }
    }
}

impl ElanApp for ElanGsyncApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        let step = self.gsync.begin();
        self.issue(api, step);
    }

    fn on_recv(&mut self, api: &mut ElanApi<'_>, _src: NodeId, tag: TportTag, _len: u32) {
        let step = if tag == GATHER_TAG {
            self.gsync.on_gather()
        } else {
            assert_eq!(tag, BCAST_TAG, "unexpected tport tag");
            self.gsync.on_bcast()
        };
        self.issue(api, step);
    }

    fn on_coll_done(&mut self, _api: &mut ElanApi<'_>, cookie: u64) {
        panic!("gsync app got a NIC completion (cookie {cookie:#x})");
    }

    fn on_timer(&mut self, api: &mut ElanApi<'_>) {
        if self.pending_enter {
            self.pending_enter = false;
            let step = self.gsync.begin();
            self.issue(api, step);
        }
    }
}

/// Hardware barrier (`elan_hgsync` fast path) benchmark app.
pub struct ElanHwBarrierApp {
    iters: u64,
    skew_us: f64,
    done: u64,
    /// Measurements.
    pub log: BarrierLog,
}

impl ElanHwBarrierApp {
    /// Run `iters` consecutive hardware barriers.
    pub fn new(iters: u64, skew_us: f64) -> Self {
        ElanHwBarrierApp {
            iters,
            skew_us,
            done: 0,
            log: BarrierLog::with_capacity(iters),
        }
    }
}

impl ElanApp for ElanHwBarrierApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        api.hw_sync();
    }

    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64) {
        assert_eq!(cookie, hw_cookie(self.done), "hw epochs out of order");
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            if self.skew_us > 0.0 {
                let d = api.rng().range_f64(0.0, self.skew_us);
                api.set_timer(SimTime::from_us(d));
            } else {
                api.hw_sync();
            }
        }
    }

    fn on_timer(&mut self, api: &mut ElanApi<'_>) {
        api.hw_sync();
    }
}
