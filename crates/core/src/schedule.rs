//! Communication schedules for the barrier (and extension) algorithms.
//!
//! A [`Schedule`] is one rank's view of a round-synchronous communication
//! pattern: in round `r` it sends to `sends[r]` and expects messages from
//! `recv_from[r]`. The execution rule — shared by the GM collective engine,
//! the Elan chain builder and the host-based baselines — is:
//!
//! > the sends of round `r` may be issued once the process has entered the
//! > operation and every expected message of rounds `< r` has arrived; the
//! > operation completes when every expected message of every round has
//! > arrived and all sends are issued.
//!
//! Three barrier algorithms from §5 of the paper are provided —
//! [`Schedule::dissemination`], [`Schedule::pairwise_exchange`] and
//! [`Schedule::gather_broadcast`] — plus a binomial broadcast tree used by
//! the extension collectives. [`validate`] checks global consistency (every
//! expected receive is someone's send in the same round, and vice versa) and
//! [`disseminates`] checks the barrier correctness condition (every rank's
//! entry causally precedes every rank's exit).

/// One rank's plan for one round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundPlan {
    /// Peer ranks this rank sends to in this round.
    pub sends: Vec<usize>,
    /// Peer ranks this rank expects a message from in this round.
    pub recv_from: Vec<usize>,
}

/// One rank's complete schedule.
///
/// ```
/// use nicbar_core::schedule::{Algorithm, Schedule};
///
/// // Rank 0 of an 8-rank dissemination barrier: 3 rounds, sending to
/// // ranks 1, 2, 4 and hearing from ranks 7, 6, 4.
/// let s = Schedule::for_algorithm(Algorithm::Dissemination, 8, 0);
/// assert_eq!(s.num_rounds(), 3);
/// assert_eq!(s.rounds[0].sends, vec![1]);
/// assert_eq!(s.rounds[2].recv_from, vec![4]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Group size.
    pub n: usize,
    /// This rank.
    pub rank: usize,
    /// Per-round plans; all ranks of a group have the same number of rounds.
    pub rounds: Vec<RoundPlan>,
}

/// The algorithm selector (paper §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// ⌈log₂N⌉ rounds; rank `i` sends to `(i + 2^m) mod N` in round `m`.
    Dissemination,
    /// Recursive doubling (MPICH); `log₂N` rounds for powers of two,
    /// `⌊log₂N⌋ + 2` steps otherwise.
    PairwiseExchange,
    /// Combine up a d-ary tree, broadcast down (2·depth+1 rounds). Included
    /// for completeness; the paper dismisses it as inferior.
    GatherBroadcast {
        /// Tree degree.
        degree: usize,
    },
}

impl Algorithm {
    /// Human-readable short name (used by the benchmark harness).
    pub fn short_name(&self) -> &'static str {
        match self {
            Algorithm::Dissemination => "DS",
            Algorithm::PairwiseExchange => "PE",
            Algorithm::GatherBroadcast { .. } => "GB",
        }
    }
}

impl Schedule {
    /// Build the schedule for `rank` under `algo`.
    pub fn for_algorithm(algo: Algorithm, n: usize, rank: usize) -> Schedule {
        match algo {
            Algorithm::Dissemination => Schedule::dissemination(n, rank),
            Algorithm::PairwiseExchange => Schedule::pairwise_exchange(n, rank),
            Algorithm::GatherBroadcast { degree } => Schedule::gather_broadcast(n, rank, degree),
        }
    }

    /// The dissemination algorithm (§5.1, Fig. 4): in round `m`, rank `i`
    /// sends to `(i + 2^m) mod N` and hears from `(i − 2^m) mod N`. Takes
    /// ⌈log₂N⌉ rounds for any `N`.
    pub fn dissemination(n: usize, rank: usize) -> Schedule {
        assert!(rank < n, "rank out of range");
        let rounds = ceil_log2(n);
        let plans = (0..rounds)
            .map(|m| {
                let d = (1usize << m) % n;
                RoundPlan {
                    sends: vec![(rank + d) % n],
                    recv_from: vec![(rank + n - d) % n],
                }
            })
            .collect();
        Schedule {
            n,
            rank,
            rounds: plans,
        }
    }

    /// The pairwise-exchange algorithm (§5.1, Fig. 3). For `N` a power of
    /// two: `log₂N` rounds of partner exchange (`j = i XOR 2^m`). Otherwise
    /// (`M` = largest power of two ≤ `N`): a pre-step in which ranks `≥ M`
    /// notify `i − M`, the `M`-rank exchange, and a post-step notifying the
    /// high ranks back — `⌊log₂N⌋ + 2` steps, matching the paper.
    pub fn pairwise_exchange(n: usize, rank: usize) -> Schedule {
        assert!(rank < n, "rank out of range");
        if n == 1 {
            return Schedule {
                n,
                rank,
                rounds: Vec::new(),
            };
        }
        let m_rounds = floor_log2(n);
        let m = 1usize << m_rounds; // largest power of two ≤ n
        if m == n {
            let rounds = (0..m_rounds)
                .map(|k| {
                    let partner = rank ^ (1usize << k);
                    RoundPlan {
                        sends: vec![partner],
                        recv_from: vec![partner],
                    }
                })
                .collect();
            return Schedule { n, rank, rounds };
        }
        // Non-power-of-two: pre round + m_rounds exchange rounds + post round.
        let total = m_rounds + 2;
        let mut rounds = vec![RoundPlan::default(); total];
        if rank >= m {
            // Extra rank: announce in the pre-step, wait for the post-step.
            rounds[0].sends = vec![rank - m];
            rounds[total - 1].recv_from = vec![rank - m];
        } else {
            if rank + m < n {
                // Partnered low rank: absorb the extra's announcement first…
                rounds[0].recv_from = vec![rank + m];
                // …and release it at the end.
                rounds[total - 1].sends = vec![rank + m];
            }
            for k in 0..m_rounds {
                let partner = rank ^ (1usize << k);
                rounds[k + 1].sends = vec![partner];
                rounds[k + 1].recv_from = vec![partner];
            }
        }
        Schedule { n, rank, rounds }
    }

    /// Gather-broadcast over a `degree`-ary tree rooted at rank 0 (§5.1,
    /// Fig. 2): leaves combine upward (deepest level first), the root
    /// releases a broadcast downward. `2·D + 1` rounds for tree depth `D`.
    pub fn gather_broadcast(n: usize, rank: usize, degree: usize) -> Schedule {
        assert!(rank < n, "rank out of range");
        assert!(degree >= 2, "tree degree must be at least 2");
        if n == 1 {
            return Schedule {
                n,
                rank,
                rounds: Vec::new(),
            };
        }
        let depth_of = |i: usize| -> usize {
            let mut d = 0;
            let mut x = i;
            while x != 0 {
                x = (x - 1) / degree;
                d += 1;
            }
            d
        };
        let max_depth = (0..n).map(depth_of).max().expect("n > 0");
        let my_depth = depth_of(rank);
        let parent = if rank == 0 {
            None
        } else {
            Some((rank - 1) / degree)
        };
        let children: Vec<usize> = (1..=degree)
            .map(|k| degree * rank + k)
            .filter(|&c| c < n)
            .collect();
        // Gather rounds 0..max_depth: a node at depth k sends up in round
        // (max_depth - k); its children (depth k+1) sent in the round
        // before. Broadcast rounds max_depth..2·max_depth+1: a node at depth
        // k sends down in round (max_depth + 1 + k) and received from its
        // parent in round (max_depth + k).
        let total = 2 * max_depth + 1;
        let mut rounds = vec![RoundPlan::default(); total];
        if let Some(p) = parent {
            rounds[max_depth - my_depth].sends = vec![p];
            rounds[max_depth + my_depth].recv_from = vec![p];
        }
        if !children.is_empty() {
            let child_depth = my_depth + 1;
            rounds[max_depth - child_depth].recv_from = children.clone();
            rounds[max_depth + child_depth].sends = children;
        }
        Schedule { n, rank, rounds }
    }

    /// Binomial broadcast tree rooted at `root` (extension collective):
    /// relative rank `q = (rank − root) mod N` receives in round
    /// `⌊log₂ q⌋` from `q − 2^⌊log₂ q⌋` and forwards in later rounds.
    pub fn binomial_broadcast(n: usize, rank: usize, root: usize) -> Schedule {
        assert!(rank < n && root < n, "rank out of range");
        let rounds_total = ceil_log2(n);
        let q = (rank + n - root) % n;
        let abs = |rel: usize| (rel + root) % n;
        let mut rounds = vec![RoundPlan::default(); rounds_total];
        for (m, round) in rounds.iter_mut().enumerate() {
            let d = 1usize << m;
            if q < d && q + d < n {
                round.sends = vec![abs(q + d)];
            }
            if q >= d && q < 2 * d {
                round.recv_from = vec![abs(q - d)];
            }
        }
        Schedule { n, rank, rounds }
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total messages this rank sends per operation.
    pub fn total_sends(&self) -> usize {
        self.rounds.iter().map(|r| r.sends.len()).sum()
    }

    /// Total messages this rank expects per operation.
    pub fn total_recvs(&self) -> usize {
        self.rounds.iter().map(|r| r.recv_from.len()).sum()
    }

    /// The slot index of `sender` within round `r`'s expected list.
    pub fn recv_slot(&self, r: usize, sender: usize) -> Option<usize> {
        self.rounds[r].recv_from.iter().position(|&s| s == sender)
    }
}

/// ⌈log₂ n⌉ (0 for n ≤ 1).
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// ⌊log₂ n⌋ (0 for n ≤ 1).
pub fn floor_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - 1 - n.leading_zeros()) as usize
    }
}

/// Build all ranks' schedules for a group.
pub fn schedules_for(algo: Algorithm, n: usize) -> Vec<Schedule> {
    (0..n)
        .map(|r| Schedule::for_algorithm(algo, n, r))
        .collect()
}

/// Check global consistency: all ranks agree on the round count, and every
/// `recv_from` entry in round `r` is matched by exactly one `sends` entry of
/// that peer in round `r` (and vice versa). Returns an error description.
pub fn validate(schedules: &[Schedule]) -> Result<(), String> {
    let n = schedules.len();
    if n == 0 {
        return Err("empty group".into());
    }
    let rounds = schedules[0].num_rounds();
    for s in schedules {
        if s.num_rounds() != rounds {
            return Err(format!(
                "rank {} has {} rounds, rank 0 has {rounds}",
                s.rank,
                s.num_rounds()
            ));
        }
        if s.n != n {
            return Err(format!("rank {} built for group size {}", s.rank, s.n));
        }
    }
    for r in 0..rounds {
        for s in schedules {
            for &dst in &s.rounds[r].sends {
                if dst >= n {
                    return Err(format!("rank {} sends to out-of-range {dst}", s.rank));
                }
                if dst == s.rank {
                    return Err(format!("rank {} sends to itself in round {r}", s.rank));
                }
                let matched = schedules[dst].rounds[r]
                    .recv_from
                    .iter()
                    .filter(|&&x| x == s.rank)
                    .count();
                if matched != 1 {
                    return Err(format!(
                        "round {r}: rank {} sends to {dst} but {dst} expects it {matched} times",
                        s.rank
                    ));
                }
            }
            for &src in &s.rounds[r].recv_from {
                let matched = schedules[src].rounds[r]
                    .sends
                    .iter()
                    .filter(|&&x| x == s.rank)
                    .count();
                if matched != 1 {
                    return Err(format!(
                        "round {r}: rank {} expects from {src} but {src} sends it {matched} times",
                        s.rank
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Check the barrier correctness condition: for every pair `(a, b)`, rank
/// `a`'s entry causally precedes rank `b`'s completion. Uses the execution
/// rule (send of round r happens after own entry and all receives < r) to
/// propagate "knowledge sets" round by round.
pub fn disseminates(schedules: &[Schedule]) -> bool {
    let n = schedules.len();
    if n == 0 {
        return false;
    }
    let rounds = schedules[0].num_rounds();
    // knows[i] = set of ranks whose entry causally precedes i's current state.
    let mut knows: Vec<Vec<bool>> = (0..n).map(|i| (0..n).map(|j| j == i).collect()).collect();
    for r in 0..rounds {
        // All sends of round r are computed from pre-round knowledge.
        let snapshot = knows.clone();
        for s in schedules {
            for &dst in &s.rounds[r].sends {
                for j in 0..n {
                    if snapshot[s.rank][j] {
                        knows[dst][j] = true;
                    }
                }
            }
        }
    }
    knows.iter().all(|k| k.iter().all(|&b| b))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: &[usize] = &[
        1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17, 24, 31, 32, 33, 64,
    ];

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(7), 2);
        assert_eq!(floor_log2(8), 3);
    }

    #[test]
    fn dissemination_round_count_matches_paper() {
        // "This algorithm takes ⌈log₂N⌉ steps, irrespective of whether N is
        // a power of two or not."
        for &n in SIZES {
            let s = Schedule::dissemination(n, 0);
            assert_eq!(s.num_rounds(), ceil_log2(n), "n={n}");
        }
    }

    #[test]
    fn pairwise_exchange_round_count_matches_paper() {
        // log₂N for powers of two, ⌊log₂N⌋ + 2 otherwise.
        for &n in SIZES {
            let s = Schedule::pairwise_exchange(n, 0);
            let expect = if n == 1 {
                0
            } else if n.is_power_of_two() {
                floor_log2(n)
            } else {
                floor_log2(n) + 2
            };
            assert_eq!(s.num_rounds(), expect, "n={n}");
        }
    }

    #[test]
    fn gather_broadcast_round_count() {
        // Depth-2 complete binary tree over 7 ranks: 2*2+1 = 5 rounds.
        let s = Schedule::gather_broadcast(7, 0, 2);
        assert_eq!(s.num_rounds(), 5);
    }

    #[test]
    fn all_schedules_globally_consistent() {
        for &n in SIZES {
            for algo in [
                Algorithm::Dissemination,
                Algorithm::PairwiseExchange,
                Algorithm::GatherBroadcast { degree: 2 },
                Algorithm::GatherBroadcast { degree: 4 },
            ] {
                let all = schedules_for(algo, n);
                validate(&all).unwrap_or_else(|e| panic!("{algo:?} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn all_barrier_schedules_disseminate() {
        for &n in SIZES {
            for algo in [
                Algorithm::Dissemination,
                Algorithm::PairwiseExchange,
                Algorithm::GatherBroadcast { degree: 2 },
                Algorithm::GatherBroadcast { degree: 4 },
            ] {
                let all = schedules_for(algo, n);
                assert!(disseminates(&all), "{algo:?} n={n} is not a barrier");
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone_from_any_root() {
        for &n in &[1usize, 2, 3, 5, 8, 13, 16] {
            for root in [0, n / 2, n - 1] {
                let all: Vec<Schedule> = (0..n)
                    .map(|r| Schedule::binomial_broadcast(n, r, root))
                    .collect();
                validate(&all).unwrap_or_else(|e| panic!("bcast n={n} root={root}: {e}"));
                // Reachability from the root only.
                let rounds = all[0].num_rounds();
                let mut has = vec![false; n];
                has[root] = true;
                for r in 0..rounds {
                    let snap = has.clone();
                    for s in &all {
                        if snap[s.rank] {
                            for &d in &s.rounds[r].sends {
                                has[d] = true;
                            }
                        } else {
                            assert!(
                                s.rounds[r].sends.is_empty(),
                                "rank {} forwards before receiving (n={n}, root={root}, r={r})",
                                s.rank
                            );
                        }
                    }
                }
                assert!(has.iter().all(|&x| x), "bcast n={n} root={root} incomplete");
            }
        }
    }

    #[test]
    fn broadcast_message_count_is_n_minus_1() {
        for &n in &[2usize, 3, 5, 8, 13] {
            let total: usize = (0..n)
                .map(|r| Schedule::binomial_broadcast(n, r, 0).total_sends())
                .sum();
            assert_eq!(total, n - 1, "n={n}");
        }
    }

    #[test]
    fn dissemination_messages_per_barrier() {
        // N·⌈log₂N⌉ messages total.
        for &n in &[2usize, 5, 8, 16] {
            let total: usize = schedules_for(Algorithm::Dissemination, n)
                .iter()
                .map(|s| s.total_sends())
                .sum();
            assert_eq!(total, n * ceil_log2(n), "n={n}");
        }
    }

    #[test]
    fn pe_extras_have_pre_and_post_steps() {
        // n=6: extras are ranks 4 and 5; they speak only in the pre round
        // and listen only in the post round.
        let s5 = Schedule::pairwise_exchange(6, 5);
        assert_eq!(s5.rounds[0].sends, vec![1]);
        assert!(s5.rounds[0].recv_from.is_empty());
        let last = s5.num_rounds() - 1;
        assert_eq!(s5.rounds[last].recv_from, vec![1]);
        assert!(s5.rounds[last].sends.is_empty());
        // Their partners mirror that.
        let s1 = Schedule::pairwise_exchange(6, 1);
        assert_eq!(s1.rounds[0].recv_from, vec![5]);
        assert_eq!(s1.rounds[last].sends, vec![5]);
    }

    #[test]
    fn recv_slot_lookup() {
        let s = Schedule::gather_broadcast(7, 0, 2);
        // Root gathers from children 1 and 2 in round 1 (depth-2 tree).
        let r = s
            .rounds
            .iter()
            .position(|p| p.recv_from.len() == 2)
            .expect("gather round");
        assert_eq!(s.recv_slot(r, 1), Some(0));
        assert_eq!(s.recv_slot(r, 2), Some(1));
        assert_eq!(s.recv_slot(r, 3), None);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_panics() {
        Schedule::dissemination(4, 4);
    }
}
