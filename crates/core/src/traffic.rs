//! Barrier-under-traffic workloads.
//!
//! §6.1's motivation: "the arrived message may not immediately lead to the
//! transmission of the next message until the corresponding request gets
//! its turn in the relevant queues. This imposes unnecessary delays into
//! the barrier operations." That delay only exists when something *else*
//! occupies the queues — so this module adds a bulk-traffic generator to
//! the barrier benchmark: every process keeps `outstanding` large messages
//! in flight to its ring neighbour while running the barrier loop.
//!
//! With the paper's dedicated group queue the barrier messages bypass the
//! congested destination queues; under the group-queue ablation (or with
//! the host-based barrier) they wait their round-robin turn behind the
//! bulk tokens — the interference experiment quantifies the difference.

use crate::driver::{stats_from_logs, BarrierStats, RunCfg, BARRIER_GROUP};
use crate::host_app::{decode_tag, encode_tag, BarrierLog, HostScheduleRunner, BARRIER_MSG_BYTES};
use crate::protocol::{GroupSpec, PaperCollective};
use crate::schedule::{Algorithm, Schedule};
use nicbar_gm::{
    CollFeatures, GmApi, GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, MsgId, MsgTag,
    NicCollective,
};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};

/// Tag marking bulk-traffic messages (distinct from barrier tags, whose
/// round field never reaches 0xFF). Lives in `nicbar-gm` so the NIC can
/// classify bulk streams as occupancy-ledger owners; re-exported here for
/// the existing benchmark API.
pub use nicbar_gm::BULK_TAG;

/// Background-traffic configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrafficCfg {
    /// Bytes per bulk message.
    pub msg_bytes: u32,
    /// Bulk messages kept in flight per process.
    pub outstanding: u32,
}

impl Default for TrafficCfg {
    fn default() -> Self {
        TrafficCfg {
            msg_bytes: 4096,
            outstanding: 4,
        }
    }
}

/// How the app synchronizes.
enum BarrierMode {
    /// NIC-based collective (doorbell + completion event).
    Nic,
    /// Host-based schedule over point-to-point messages.
    Host {
        runner: HostScheduleRunner,
        members: Vec<NodeId>,
    },
}

/// Benchmark app: consecutive barriers with a saturating bulk stream to the
/// next ring neighbour.
pub struct BarrierUnderTrafficApp {
    mode: BarrierMode,
    traffic: TrafficCfg,
    bulk_peer: NodeId,
    iters: u64,
    done: u64,
    /// Ids of in-flight bulk sends (to replenish exactly those on
    /// completion, keeping the pipeline depth constant).
    bulk_ids: std::collections::HashSet<MsgId>,
    /// Barrier completion times.
    pub log: BarrierLog,
    /// Bulk messages delivered to this process (sanity observability).
    pub bulk_received: u64,
}

impl BarrierUnderTrafficApp {
    /// NIC-based variant for `rank` on a ring of `n`.
    pub fn nic(rank: usize, n: usize, iters: u64, traffic: TrafficCfg) -> Self {
        BarrierUnderTrafficApp {
            mode: BarrierMode::Nic,
            traffic,
            bulk_peer: NodeId((rank + 1) % n),
            iters,
            done: 0,
            bulk_ids: Default::default(),
            log: BarrierLog::default(),
            bulk_received: 0,
        }
    }

    /// Host-based variant.
    pub fn host(algo: Algorithm, rank: usize, n: usize, iters: u64, traffic: TrafficCfg) -> Self {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        BarrierUnderTrafficApp {
            mode: BarrierMode::Host {
                runner: HostScheduleRunner::new(Schedule::for_algorithm(algo, n, rank)),
                members,
            },
            traffic,
            bulk_peer: NodeId((rank + 1) % n),
            iters,
            done: 0,
            bulk_ids: Default::default(),
            log: BarrierLog::default(),
            bulk_received: 0,
        }
    }

    fn enter(&mut self, api: &mut GmApi<'_>) {
        match &mut self.mode {
            BarrierMode::Nic => api.collective(BARRIER_GROUP, 0),
            BarrierMode::Host { runner, .. } => {
                let (sends, done) = runner.begin();
                self.issue_host(api, sends, done);
            }
        }
    }

    fn issue_host(&mut self, api: &mut GmApi<'_>, sends: Vec<(usize, usize)>, done: bool) {
        let (epoch, members) = match &self.mode {
            BarrierMode::Host { runner, members } => (runner.current_epoch(), members.clone()),
            BarrierMode::Nic => unreachable!("host sends in NIC mode"),
        };
        for (dst_rank, round) in sends {
            api.send(
                members[dst_rank],
                BARRIER_MSG_BYTES,
                encode_tag(epoch, round),
            );
        }
        if done {
            self.complete(api);
        }
    }

    fn send_bulk(&mut self, api: &mut GmApi<'_>) {
        let id = api.send(self.bulk_peer, self.traffic.msg_bytes, BULK_TAG);
        self.bulk_ids.insert(id);
    }

    fn complete(&mut self, api: &mut GmApi<'_>) {
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            self.enter(api);
        }
    }
}

impl GmApp for BarrierUnderTrafficApp {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        // Buffers for the bulk stream on top of the defaults.
        api.post_recv(self.traffic.outstanding + 4);
        for _ in 0..self.traffic.outstanding {
            self.send_bulk(api);
        }
        self.enter(api);
    }

    fn on_recv(&mut self, api: &mut GmApi<'_>, src: NodeId, tag: MsgTag, _len: u32) {
        if tag == BULK_TAG {
            self.bulk_received += 1;
            return;
        }
        let (epoch, round) = decode_tag(tag);
        let (sends, done) = match &mut self.mode {
            BarrierMode::Host { runner, members } => {
                let from_rank = members
                    .iter()
                    .position(|&m| m == src)
                    .expect("barrier message from non-member");
                runner.on_msg(epoch, round, from_rank)
            }
            BarrierMode::Nic => panic!("NIC-mode app got a barrier p2p message"),
        };
        self.issue_host(api, sends, done);
    }

    fn on_send_done(&mut self, api: &mut GmApi<'_>, msg_id: MsgId) {
        // Replenish exactly the bulk sends, keeping the pipeline depth at
        // `traffic.outstanding` for the whole run.
        if self.bulk_ids.remove(&msg_id) && self.done < self.iters {
            self.send_bulk(api);
        }
    }

    fn on_coll_done(&mut self, api: &mut GmApi<'_>, group: GroupId, _epoch: u64, _value: u64) {
        assert_eq!(group, BARRIER_GROUP);
        self.complete(api);
    }
}

/// Run the NIC-based barrier under bulk traffic.
pub fn gm_nic_barrier_under_traffic(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
    traffic: TrafficCfg,
) -> BarrierStats {
    let mut cluster = nic_traffic_cluster(params, features, n, algo, &cfg, traffic);
    finish(&mut cluster, n, cfg)
}

/// Build the NIC-barrier-under-traffic cluster without running it.
fn nic_traffic_cluster(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: &RunCfg,
    traffic: TrafficCfg,
) -> GmCluster {
    let timeout = params.coll_timeout;
    let spec = GmClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_drop_prob(cfg.drop_prob)
        .with_features(features)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards);
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for rank in 0..n {
        apps.push(Box::new(BarrierUnderTrafficApp::nic(
            rank,
            n,
            cfg.total(),
            traffic,
        )));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            vec![GroupSpec::barrier(
                BARRIER_GROUP,
                members.clone(),
                rank,
                algo,
                timeout,
            )],
        )));
    }
    GmCluster::build(spec, apps, colls)
}

/// [`gm_nic_barrier_under_traffic`] with full observability (trace, spans,
/// netdump, occupancy ledger) — the flight-recorded capture the parity and
/// interference tests compare byte for byte across engines.
pub fn gm_nic_barrier_under_traffic_flight(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
    traffic: TrafficCfg,
) -> crate::driver::FlightData {
    let mut cluster = nic_traffic_cluster(params, features, n, algo, &cfg, traffic);
    cluster.engine.enable_trace();
    cluster.engine.enable_recorder();
    cluster.engine.enable_netdump();
    cluster.engine.enable_ledger();
    cluster
        .engine
        .recorder_mut()
        .set_participants(u32::try_from(n).expect("participant count exceeds u32"));
    let stats = finish(&mut cluster, n, cfg);
    crate::driver::capture_observability("gm", &cluster.engine, stats)
}

/// Run the host-based barrier under bulk traffic.
pub fn gm_host_barrier_under_traffic(
    params: GmParams,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
    traffic: TrafficCfg,
) -> BarrierStats {
    let spec = GmClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_drop_prob(cfg.drop_prob)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards);
    let apps: Vec<Box<dyn GmApp>> = (0..n)
        .map(|rank| {
            Box::new(BarrierUnderTrafficApp::host(
                algo,
                rank,
                n,
                cfg.total(),
                traffic,
            )) as Box<dyn GmApp>
        })
        .collect();
    let mut cluster = GmCluster::build_p2p(spec, apps);
    finish(&mut cluster, n, cfg)
}

fn finish(cluster: &mut GmCluster, n: usize, cfg: RunCfg) -> BarrierStats {
    // The bulk stream never terminates on its own: run until every app has
    // completed its barriers, then stop the clock.
    let deadline = SimTime::from_us(cfg.total() as f64 * 50_000.0 + 1_000_000.0);
    loop {
        let done = (0..n).all(|i| cluster.app_ref::<BarrierUnderTrafficApp>(i).done >= cfg.total());
        if done {
            break;
        }
        let outcome = cluster
            .engine
            .run_bounded(cluster.engine.now() + SimTime::from_us(1_000.0), 50_000_000);
        assert_ne!(
            outcome,
            RunOutcome::BudgetExhausted,
            "event budget exhausted in traffic run"
        );
        assert!(
            cluster.engine.now() < deadline,
            "barriers did not complete under traffic by {deadline}"
        );
    }
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<BarrierUnderTrafficApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    stats_from_logs(n, &cfg, logs, counters)
}
