//! Lowering a barrier schedule onto Quadrics chained RDMA descriptors (§7
//! of the paper).
//!
//! The paper's Quadrics implementation avoids a NIC thread entirely: it
//! arms "a list of chained RDMA descriptors at the NIC from user-level.
//! The RDMA operations are triggered only upon the arrival of a remote
//! event except the very first RDMA operation, which the host process
//! triggers to initiate a barrier operation. The completion of the very
//! last RDMA operation will trigger a local event to the host."
//!
//! [`build_chains`] compiles any round-schedule (dissemination,
//! pairwise-exchange, gather-broadcast — power-of-two or not) into exactly
//! that structure:
//!
//! * one **gate event** per send round, whose per-epoch threshold is
//!   `1 × (previous link issued or host entry) + (arrivals consumed by this
//!   gate)`;
//! * one **RDMA descriptor** per `(round, destination)` whose remote event
//!   is the *destination's* gate that consumes that round, and whose local
//!   event is this rank's next gate;
//! * a **done event** that notifies the host.
//!
//! Event counters auto-rearm by their per-epoch threshold, so consecutive
//! barriers need only one host `set_event` each — early arrivals from
//! neighbours racing an epoch ahead are banked in the counters (see
//! `nicbar_elan::types::NicEvent`).

use crate::schedule::{schedules_for, validate, Algorithm, Schedule};
use nicbar_elan::{DescId, EventAction, EventId, NicEvent, NicProgram, RdmaDesc};
use nicbar_net::NodeId;

/// Completion cookie delivered for chained-RDMA barrier completions.
pub const CHAIN_DONE_COOKIE: u64 = 0xBA44;

/// Completion cookie for group index `gi` of a multi-group program (group
/// 0 keeps the classic [`CHAIN_DONE_COOKIE`], so single-group callers are
/// unaffected).
pub fn chain_done_cookie(gi: u64) -> u64 {
    (gi << 32) | CHAIN_DONE_COOKIE
}

/// The entry event every rank's host sets to enter a barrier. The builder
/// always places the first gate (or the done event, for trivial schedules)
/// at index 0.
pub const ENTRY_EVENT: EventId = EventId(0);

/// Checked index → u32 conversion for event/descriptor IDs. Chain programs
/// have at most a few events per rank; overflow means a corrupt schedule.
fn event_idx(i: usize) -> u32 {
    u32::try_from(i).expect("event index exceeds u32")
}

/// Rounds in which a rank sends, ascending.
fn send_rounds(s: &Schedule) -> Vec<usize> {
    (0..s.num_rounds())
        .filter(|&r| !s.rounds[r].sends.is_empty())
        .collect()
}

/// The event index at `dst` that consumes an arrival of round `r`:
/// the gate of its first send round `> r`, or its done event.
fn consuming_event(dst_schedule: &Schedule, r: usize) -> EventId {
    let sends = send_rounds(dst_schedule);
    match sends.iter().position(|&s| s > r) {
        Some(gate_idx) => EventId(event_idx(gate_idx)),
        None => EventId(event_idx(sends.len())), // the done event
    }
}

/// Compile per-rank NIC programs for a barrier over `members` (rank order)
/// using `algo`. `programs[rank]` is ready for
/// [`nicbar_elan::ElanCluster::build`]; each barrier is initiated by the
/// host setting [`ENTRY_EVENT`].
pub fn build_chains(algo: Algorithm, members: &[NodeId]) -> Vec<NicProgram> {
    let n = members.len();
    assert!(n >= 1, "empty group");
    let schedules = schedules_for(algo, n);
    validate(&schedules).expect("schedule inconsistency");

    let mut programs = Vec::with_capacity(n);
    for rank in 0..n {
        let sched = &schedules[rank];
        let sends = send_rounds(sched);
        let k = sends.len();
        let done_event = EventId(event_idx(k));

        let mut descs: Vec<RdmaDesc> = Vec::new();
        let mut desc_ids_per_gate: Vec<Vec<DescId>> = vec![Vec::new(); k];
        for (gate_idx, &round) in sends.iter().enumerate() {
            let next_gate = if gate_idx + 1 < k {
                EventId(event_idx(gate_idx + 1))
            } else {
                done_event
            };
            for &dst_rank in &sched.rounds[round].sends {
                let id = DescId(event_idx(descs.len()));
                descs.push(RdmaDesc {
                    dst: members[dst_rank],
                    bytes: 0, // pure event-fire RDMA: the barrier carries no data
                    remote_event: Some(consuming_event(&schedules[dst_rank], round)),
                    local_event: Some(next_gate),
                });
                desc_ids_per_gate[gate_idx].push(id);
            }
        }

        // Gate events: threshold = 1 (host entry or previous link) +
        // arrivals in the rounds this gate consumes.
        let mut events: Vec<NicEvent> = Vec::with_capacity(k + 1);
        let recvs_in = |lo: usize, hi: usize| -> u64 {
            (lo..hi)
                .map(|r| sched.rounds[r].recv_from.len() as u64)
                .sum()
        };
        for gate_idx in 0..k {
            let lo = if gate_idx == 0 {
                0
            } else {
                sends[gate_idx - 1]
            };
            let hi = sends[gate_idx];
            let prev_links = if gate_idx == 0 {
                1 // the host's entry set
            } else {
                sched.rounds[sends[gate_idx - 1]].sends.len() as u64
            };
            let threshold = prev_links + recvs_in(lo, hi);
            let actions = desc_ids_per_gate[gate_idx]
                .iter()
                .map(|&d| EventAction::FireDesc(d))
                .collect();
            events.push(NicEvent::new(threshold, actions));
        }
        // Done event: last link(s) + all remaining arrivals (or, for a
        // trivial schedule with no sends, just the host entry).
        let done_threshold = if k == 0 {
            1 + recvs_in(0, sched.num_rounds())
        } else {
            let last = sends[k - 1];
            sched.rounds[last].sends.len() as u64 + recvs_in(last, sched.num_rounds())
        };
        events.push(NicEvent::new(
            done_threshold,
            vec![EventAction::NotifyHost {
                cookie: CHAIN_DONE_COOKIE,
            }],
        ));

        programs.push(NicProgram {
            descs,
            events,
            ..Default::default()
        });
    }
    programs
}

/// One group's chain request for a multi-group NIC program.
#[derive(Clone, Debug)]
pub struct GroupChain {
    /// Owner group id (keys spans, netdump records, and the ledger).
    pub group: u64,
    /// Barrier algorithm lowered onto the chain.
    pub algo: Algorithm,
    /// Member nodes in rank order.
    pub members: Vec<NodeId>,
}

/// A compiled multi-group program set.
pub struct MultiChains {
    /// Per-node NIC programs, tables of all groups merged with per-group
    /// offsets and owner-group annotations filled in.
    pub programs: Vec<NicProgram>,
    /// `entry[node]` maps group id → the event the host sets to enter that
    /// group's barrier (absent when the node is not a member).
    pub entry: Vec<std::collections::BTreeMap<u64, EventId>>,
}

/// Compile chained-RDMA programs for several overlapping barrier groups
/// sharing the same `n`-node cluster. Each group is lowered independently
/// by [`build_chains`] and the per-node tables are concatenated; remote
/// event ids are remapped with the *destination* node's offset for that
/// group, local ids with the sender's own. Group `gi` completes with
/// [`chain_done_cookie`]`(gi)` and the owner-group side tables let the NIC
/// bill engine/event occupancy to the right group.
pub fn build_chains_multi(n: usize, groups: &[GroupChain]) -> MultiChains {
    assert!(!groups.is_empty(), "no groups");
    let per_group: Vec<Vec<NicProgram>> = groups
        .iter()
        .map(|g| {
            for m in &g.members {
                assert!(m.0 < n, "member {m:?} outside cluster of {n}");
            }
            build_chains(g.algo, &g.members)
        })
        .collect();

    // Per-(node, group) table offsets and ranks.
    let mut ev_off = vec![vec![0u32; groups.len()]; n];
    let mut desc_off = vec![vec![0u32; groups.len()]; n];
    let mut rank_in: Vec<Vec<Option<usize>>> = vec![vec![None; groups.len()]; n];
    for node in 0..n {
        let (mut e, mut d) = (0u32, 0u32);
        for (gi, g) in groups.iter().enumerate() {
            if let Some(rank) = g.members.iter().position(|&m| m.0 == node) {
                rank_in[node][gi] = Some(rank);
                ev_off[node][gi] = e;
                desc_off[node][gi] = d;
                e += event_idx(per_group[gi][rank].events.len());
                d += event_idx(per_group[gi][rank].descs.len());
            }
        }
    }

    let mut programs = Vec::with_capacity(n);
    let mut entry = vec![std::collections::BTreeMap::new(); n];
    for node in 0..n {
        let mut prog = NicProgram::default();
        for (gi, g) in groups.iter().enumerate() {
            let Some(rank) = rank_in[node][gi] else {
                continue;
            };
            let src = &per_group[gi][rank];
            let eoff = ev_off[node][gi];
            let doff = desc_off[node][gi];
            entry[node].insert(g.group, EventId(ENTRY_EVENT.0 + eoff));
            for d in &src.descs {
                prog.descs.push(RdmaDesc {
                    dst: d.dst,
                    bytes: d.bytes,
                    remote_event: d.remote_event.map(|ev| EventId(ev.0 + ev_off[d.dst.0][gi])),
                    local_event: d.local_event.map(|ev| EventId(ev.0 + eoff)),
                });
                prog.desc_groups.push(g.group);
            }
            for ev in &src.events {
                let actions = ev
                    .actions
                    .iter()
                    .map(|a| match *a {
                        EventAction::FireDesc(d) => EventAction::FireDesc(DescId(d.0 + doff)),
                        EventAction::NotifyHost { .. } => EventAction::NotifyHost {
                            cookie: chain_done_cookie(gi as u64),
                        },
                    })
                    .collect();
                prog.events.push(NicEvent::new(ev.threshold, actions));
                prog.event_groups.push(g.group);
            }
            prog.cookie_groups
                .push((chain_done_cookie(gi as u64), g.group));
        }
        programs.push(prog);
    }
    MultiChains { programs, entry }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn dissemination_chain_shape_for_four_ranks() {
        let programs = build_chains(Algorithm::Dissemination, &nodes(4));
        for (rank, p) in programs.iter().enumerate() {
            // 2 rounds → 2 descriptors, 2 gates + done.
            assert_eq!(p.descs.len(), 2, "rank {rank}");
            assert_eq!(p.events.len(), 3, "rank {rank}");
            // Entry gate: host set only.
            assert_eq!(p.events[0].threshold, 1);
            // Gate 1: previous link + round-0 arrival.
            assert_eq!(p.events[1].threshold, 2);
            // Done: last link + round-1 arrival.
            assert_eq!(p.events[2].threshold, 2);
            // Descriptors are pure event fires.
            assert!(p.descs.iter().all(|d| d.bytes == 0));
        }
    }

    #[test]
    fn pe_non_power_of_two_extra_rank_chain() {
        // n = 6: rank 5 sends only in the pre-round and waits for the post
        // round.
        let programs = build_chains(Algorithm::PairwiseExchange, &nodes(6));
        let extra = &programs[5];
        assert_eq!(extra.descs.len(), 1);
        assert_eq!(extra.events.len(), 2);
        assert_eq!(extra.events[0].threshold, 1); // entry only
        assert_eq!(extra.events[1].threshold, 2); // own link + post arrival
                                                  // Its partner (rank 1) gates its first exchange on the pre-arrival.
        let partner = &programs[1];
        assert_eq!(partner.events[0].threshold, 2); // entry + pre arrival
    }

    #[test]
    fn remote_events_resolve_to_consuming_gates() {
        let schedules = schedules_for(Algorithm::Dissemination, 8);
        // Rank 0 sends round 1 to rank 2; rank 2's sends are rounds 0,1,2 so
        // the round-1 arrival is consumed by its gate before round 2.
        let ev = consuming_event(&schedules[2], 1);
        assert_eq!(ev, EventId(2));
        // A final-round arrival lands on the done event.
        let ev = consuming_event(&schedules[2], 2);
        assert_eq!(ev, EventId(3));
    }

    #[test]
    fn single_rank_chain_is_entry_to_done() {
        let programs = build_chains(Algorithm::Dissemination, &nodes(1));
        assert_eq!(programs[0].descs.len(), 0);
        assert_eq!(programs[0].events.len(), 1);
        assert_eq!(programs[0].events[0].threshold, 1);
    }

    #[test]
    fn multi_single_group_matches_build_chains() {
        let members = nodes(8);
        let single = build_chains(Algorithm::Dissemination, &members);
        let multi = build_chains_multi(
            8,
            &[GroupChain {
                group: 0xA0,
                algo: Algorithm::Dissemination,
                members,
            }],
        );
        for (node, (s, m)) in single.iter().zip(&multi.programs).enumerate() {
            assert_eq!(s.descs, m.descs, "node {node}");
            // Group 0 keeps the classic cookie, so the event tables match
            // verbatim too.
            assert_eq!(s.events, m.events, "node {node}");
            assert_eq!(m.desc_groups, vec![0xA0; m.descs.len()]);
            assert_eq!(m.event_groups, vec![0xA0; m.events.len()]);
            assert_eq!(m.cookie_groups, vec![(CHAIN_DONE_COOKIE, 0xA0)]);
            assert_eq!(multi.entry[node][&0xA0], ENTRY_EVENT);
        }
    }

    #[test]
    fn overlapping_groups_offset_and_remap() {
        // Two 4-rank groups sharing nodes 2..4: members of both get both
        // tables, with group 1's event/descriptor ids shifted past group
        // 0's and remote events remapped with the destination's offsets.
        let g0 = nodes(4); // 0,1,2,3
        let g1: Vec<NodeId> = (2..6).map(NodeId).collect(); // 2,3,4,5
        let multi = build_chains_multi(
            6,
            &[
                GroupChain {
                    group: 0xA0,
                    algo: Algorithm::Dissemination,
                    members: g0.clone(),
                },
                GroupChain {
                    group: 0xA1,
                    algo: Algorithm::Dissemination,
                    members: g1.clone(),
                },
            ],
        );
        let solo = build_chains(Algorithm::Dissemination, &g0);
        // Node 2 is in both: 2 descs + 3 events per group.
        let p2 = &multi.programs[2];
        assert_eq!(p2.descs.len(), 4);
        assert_eq!(p2.events.len(), 6);
        assert_eq!(p2.desc_groups, vec![0xA0, 0xA0, 0xA1, 0xA1]);
        assert_eq!(multi.entry[2][&0xA0], EventId(0));
        assert_eq!(multi.entry[2][&0xA1], EventId(3));
        // Node 5 is only in group 1: its entry is at offset 0.
        assert_eq!(multi.entry[5][&0xA1], EventId(0));
        assert_eq!(multi.programs[5].events.len(), 3);
        // Remote events from node 0 (group-0 only) into dual-membership
        // nodes keep group 0's zero offset there.
        for (d, orig) in p2.descs[..2].iter().zip(&solo[2].descs) {
            assert_eq!(d.dst, orig.dst);
            if orig.dst.0 < 2 {
                assert_eq!(d.remote_event, orig.remote_event);
            }
        }
        // Group-1 descs at a dual node target events past the dst's group-0
        // table when the dst is dual too.
        for (i, d) in p2.descs[2..].iter().enumerate() {
            let orig = &build_chains(Algorithm::Dissemination, &g1)[0].descs[i];
            let expect_off = if d.dst.0 < 4 { 3 } else { 0 };
            assert_eq!(
                d.remote_event.unwrap().0,
                orig.remote_event.unwrap().0 + expect_off,
                "desc {i} to {:?}",
                d.dst
            );
        }
        // Distinct done cookies, both registered.
        assert_eq!(
            p2.cookie_groups,
            vec![(chain_done_cookie(0), 0xA0), (chain_done_cookie(1), 0xA1)]
        );
        assert_ne!(chain_done_cookie(0), chain_done_cookie(1));
    }

    #[test]
    fn chains_build_for_all_algorithms_and_sizes() {
        for n in [1usize, 2, 3, 5, 6, 8, 13, 16, 32] {
            for algo in [
                Algorithm::Dissemination,
                Algorithm::PairwiseExchange,
                Algorithm::GatherBroadcast { degree: 4 },
            ] {
                let programs = build_chains(algo, &nodes(n));
                assert_eq!(programs.len(), n);
                // Every remote event index is within the target's table.
                for p in &programs {
                    for d in &p.descs {
                        let target = &programs[d.dst.0];
                        let ev = d.remote_event.expect("barrier RDMAs fire events");
                        assert!(
                            (ev.0 as usize) < target.events.len(),
                            "dangling remote event (n={n}, {algo:?})"
                        );
                    }
                }
            }
        }
    }
}
