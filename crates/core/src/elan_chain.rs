//! Lowering a barrier schedule onto Quadrics chained RDMA descriptors (§7
//! of the paper).
//!
//! The paper's Quadrics implementation avoids a NIC thread entirely: it
//! arms "a list of chained RDMA descriptors at the NIC from user-level.
//! The RDMA operations are triggered only upon the arrival of a remote
//! event except the very first RDMA operation, which the host process
//! triggers to initiate a barrier operation. The completion of the very
//! last RDMA operation will trigger a local event to the host."
//!
//! [`build_chains`] compiles any round-schedule (dissemination,
//! pairwise-exchange, gather-broadcast — power-of-two or not) into exactly
//! that structure:
//!
//! * one **gate event** per send round, whose per-epoch threshold is
//!   `1 × (previous link issued or host entry) + (arrivals consumed by this
//!   gate)`;
//! * one **RDMA descriptor** per `(round, destination)` whose remote event
//!   is the *destination's* gate that consumes that round, and whose local
//!   event is this rank's next gate;
//! * a **done event** that notifies the host.
//!
//! Event counters auto-rearm by their per-epoch threshold, so consecutive
//! barriers need only one host `set_event` each — early arrivals from
//! neighbours racing an epoch ahead are banked in the counters (see
//! `nicbar_elan::types::NicEvent`).

use crate::schedule::{schedules_for, validate, Algorithm, Schedule};
use nicbar_elan::{DescId, EventAction, EventId, NicEvent, NicProgram, RdmaDesc};
use nicbar_net::NodeId;

/// Completion cookie delivered for chained-RDMA barrier completions.
pub const CHAIN_DONE_COOKIE: u64 = 0xBA44;

/// The entry event every rank's host sets to enter a barrier. The builder
/// always places the first gate (or the done event, for trivial schedules)
/// at index 0.
pub const ENTRY_EVENT: EventId = EventId(0);

/// Checked index → u32 conversion for event/descriptor IDs. Chain programs
/// have at most a few events per rank; overflow means a corrupt schedule.
fn event_idx(i: usize) -> u32 {
    u32::try_from(i).expect("event index exceeds u32")
}

/// Rounds in which a rank sends, ascending.
fn send_rounds(s: &Schedule) -> Vec<usize> {
    (0..s.num_rounds())
        .filter(|&r| !s.rounds[r].sends.is_empty())
        .collect()
}

/// The event index at `dst` that consumes an arrival of round `r`:
/// the gate of its first send round `> r`, or its done event.
fn consuming_event(dst_schedule: &Schedule, r: usize) -> EventId {
    let sends = send_rounds(dst_schedule);
    match sends.iter().position(|&s| s > r) {
        Some(gate_idx) => EventId(event_idx(gate_idx)),
        None => EventId(event_idx(sends.len())), // the done event
    }
}

/// Compile per-rank NIC programs for a barrier over `members` (rank order)
/// using `algo`. `programs[rank]` is ready for
/// [`nicbar_elan::ElanCluster::build`]; each barrier is initiated by the
/// host setting [`ENTRY_EVENT`].
pub fn build_chains(algo: Algorithm, members: &[NodeId]) -> Vec<NicProgram> {
    let n = members.len();
    assert!(n >= 1, "empty group");
    let schedules = schedules_for(algo, n);
    validate(&schedules).expect("schedule inconsistency");

    let mut programs = Vec::with_capacity(n);
    for rank in 0..n {
        let sched = &schedules[rank];
        let sends = send_rounds(sched);
        let k = sends.len();
        let done_event = EventId(event_idx(k));

        let mut descs: Vec<RdmaDesc> = Vec::new();
        let mut desc_ids_per_gate: Vec<Vec<DescId>> = vec![Vec::new(); k];
        for (gate_idx, &round) in sends.iter().enumerate() {
            let next_gate = if gate_idx + 1 < k {
                EventId(event_idx(gate_idx + 1))
            } else {
                done_event
            };
            for &dst_rank in &sched.rounds[round].sends {
                let id = DescId(event_idx(descs.len()));
                descs.push(RdmaDesc {
                    dst: members[dst_rank],
                    bytes: 0, // pure event-fire RDMA: the barrier carries no data
                    remote_event: Some(consuming_event(&schedules[dst_rank], round)),
                    local_event: Some(next_gate),
                });
                desc_ids_per_gate[gate_idx].push(id);
            }
        }

        // Gate events: threshold = 1 (host entry or previous link) +
        // arrivals in the rounds this gate consumes.
        let mut events: Vec<NicEvent> = Vec::with_capacity(k + 1);
        let recvs_in = |lo: usize, hi: usize| -> u64 {
            (lo..hi)
                .map(|r| sched.rounds[r].recv_from.len() as u64)
                .sum()
        };
        for gate_idx in 0..k {
            let lo = if gate_idx == 0 {
                0
            } else {
                sends[gate_idx - 1]
            };
            let hi = sends[gate_idx];
            let prev_links = if gate_idx == 0 {
                1 // the host's entry set
            } else {
                sched.rounds[sends[gate_idx - 1]].sends.len() as u64
            };
            let threshold = prev_links + recvs_in(lo, hi);
            let actions = desc_ids_per_gate[gate_idx]
                .iter()
                .map(|&d| EventAction::FireDesc(d))
                .collect();
            events.push(NicEvent::new(threshold, actions));
        }
        // Done event: last link(s) + all remaining arrivals (or, for a
        // trivial schedule with no sends, just the host entry).
        let done_threshold = if k == 0 {
            1 + recvs_in(0, sched.num_rounds())
        } else {
            let last = sends[k - 1];
            sched.rounds[last].sends.len() as u64 + recvs_in(last, sched.num_rounds())
        };
        events.push(NicEvent::new(
            done_threshold,
            vec![EventAction::NotifyHost {
                cookie: CHAIN_DONE_COOKIE,
            }],
        ));

        programs.push(NicProgram { descs, events });
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn dissemination_chain_shape_for_four_ranks() {
        let programs = build_chains(Algorithm::Dissemination, &nodes(4));
        for (rank, p) in programs.iter().enumerate() {
            // 2 rounds → 2 descriptors, 2 gates + done.
            assert_eq!(p.descs.len(), 2, "rank {rank}");
            assert_eq!(p.events.len(), 3, "rank {rank}");
            // Entry gate: host set only.
            assert_eq!(p.events[0].threshold, 1);
            // Gate 1: previous link + round-0 arrival.
            assert_eq!(p.events[1].threshold, 2);
            // Done: last link + round-1 arrival.
            assert_eq!(p.events[2].threshold, 2);
            // Descriptors are pure event fires.
            assert!(p.descs.iter().all(|d| d.bytes == 0));
        }
    }

    #[test]
    fn pe_non_power_of_two_extra_rank_chain() {
        // n = 6: rank 5 sends only in the pre-round and waits for the post
        // round.
        let programs = build_chains(Algorithm::PairwiseExchange, &nodes(6));
        let extra = &programs[5];
        assert_eq!(extra.descs.len(), 1);
        assert_eq!(extra.events.len(), 2);
        assert_eq!(extra.events[0].threshold, 1); // entry only
        assert_eq!(extra.events[1].threshold, 2); // own link + post arrival
                                                  // Its partner (rank 1) gates its first exchange on the pre-arrival.
        let partner = &programs[1];
        assert_eq!(partner.events[0].threshold, 2); // entry + pre arrival
    }

    #[test]
    fn remote_events_resolve_to_consuming_gates() {
        let schedules = schedules_for(Algorithm::Dissemination, 8);
        // Rank 0 sends round 1 to rank 2; rank 2's sends are rounds 0,1,2 so
        // the round-1 arrival is consumed by its gate before round 2.
        let ev = consuming_event(&schedules[2], 1);
        assert_eq!(ev, EventId(2));
        // A final-round arrival lands on the done event.
        let ev = consuming_event(&schedules[2], 2);
        assert_eq!(ev, EventId(3));
    }

    #[test]
    fn single_rank_chain_is_entry_to_done() {
        let programs = build_chains(Algorithm::Dissemination, &nodes(1));
        assert_eq!(programs[0].descs.len(), 0);
        assert_eq!(programs[0].events.len(), 1);
        assert_eq!(programs[0].events[0].threshold, 1);
    }

    #[test]
    fn chains_build_for_all_algorithms_and_sizes() {
        for n in [1usize, 2, 3, 5, 6, 8, 13, 16, 32] {
            for algo in [
                Algorithm::Dissemination,
                Algorithm::PairwiseExchange,
                Algorithm::GatherBroadcast { degree: 4 },
            ] {
                let programs = build_chains(algo, &nodes(n));
                assert_eq!(programs.len(), n);
                // Every remote event index is within the target's table.
                for p in &programs {
                    for d in &p.descs {
                        let target = &programs[d.dst.0];
                        let ev = d.remote_event.expect("barrier RDMAs fire events");
                        assert!(
                            (ev.0 as usize) < target.events.len(),
                            "dangling remote event (n={n}, {algo:?})"
                        );
                    }
                }
            }
        }
    }
}
