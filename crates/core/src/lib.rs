//! # nicbar-core — the paper's contribution
//!
//! The NIC-based collective message passing protocol of *"Efficient and
//! Scalable Barrier over Quadrics and Myrinet with a New NIC-Based
//! Collective Message Passing Protocol"* (Yu, Buntinas, Graham, Panda —
//! IPPS 2004), implemented over the two simulated substrates:
//!
//! * [`schedule`] — the barrier algorithms of §5 (dissemination,
//!   pairwise-exchange, gather-broadcast) plus the binomial broadcast tree,
//!   as validated round schedules.
//! * [`protocol`] — the collective protocol engine of §3/§6: per-group
//!   queues, static packets, bit-vector bookkeeping, receiver-driven NACK
//!   retransmission; plugged into the GM NIC via
//!   [`nicbar_gm::NicCollective`]. Also the §9 extension collectives
//!   (broadcast, allreduce, allgather).
//! * [`elan_chain`] — §7's Quadrics lowering: schedules compiled to chained
//!   RDMA descriptors and counting events, no NIC thread.
//! * [`host_app`] / [`elan_apps`] — benchmark applications: host-based
//!   baselines and NIC-based drivers for both networks, plus the Elanlib
//!   `elan_gsync`/`elan_hgsync` comparators.
//! * [`driver`] — the measurement harness reproducing the paper's
//!   methodology (§8): consecutive barriers, warm-up discarded, average
//!   latency, optional random node permutation.

#![warn(missing_docs)]

pub mod contend;
pub mod driver;
pub mod elan_apps;
pub mod elan_chain;
pub mod elan_thread;
pub mod host_app;
pub mod protocol;
pub mod schedule;
pub mod traffic;

pub use contend::{elan_contend_flight, gm_contend_flight, CONTEND_GROUP_BASE};
pub use driver::{
    build_elan_nic_cluster, build_gm_nic_cluster, elan_gsync_barrier, elan_hw_barrier,
    elan_nic_barrier, elan_nic_barrier_flight, elan_nic_stats, elan_thread_allreduce,
    elan_thread_barrier, gm_host_barrier, gm_nic_barrier, gm_nic_barrier_flight, gm_nic_stats,
    BarrierStats, FlightData, RunCfg, BARRIER_GROUP,
};
pub use protocol::{GroupOp, GroupSpec, PaperCollective, ReduceOp};
pub use schedule::{ceil_log2, floor_log2, schedules_for, Algorithm, RoundPlan, Schedule};
pub use traffic::{
    gm_host_barrier_under_traffic, gm_nic_barrier_under_traffic,
    gm_nic_barrier_under_traffic_flight, TrafficCfg,
};
