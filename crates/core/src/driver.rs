//! The benchmark driver: builds a cluster, runs consecutive barriers with
//! the paper's methodology (warm-up iterations discarded, the average of
//! the measured iterations reported, optional random node permutation), and
//! returns structured statistics.

use crate::elan_apps::{ElanGsyncApp, ElanHwBarrierApp, ElanNicBarrierApp};
use crate::elan_chain::build_chains;
use crate::host_app::{HostBarrierApp, NicBarrierApp};
use crate::protocol::{GroupSpec, PaperCollective};
use crate::schedule::Algorithm;
use nicbar_elan::{ElanApp, ElanCluster, ElanClusterSpec, ElanParams, NicProgram};
use nicbar_gm::{CollFeatures, GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, NicCollective};
use nicbar_net::{NodeId, Permutation};
use nicbar_sim::{
    EngineSel, ExecEngine, Histogram, LedgerRecord, PacketRecord, PartitionSel, RunOutcome,
    SchedulerKind, SimRng, SimTime, SpanSummary, TraceRecord,
};

/// The collective group id used by the barrier benchmarks.
pub const BARRIER_GROUP: GroupId = GroupId(0xBA);

/// Common benchmark configuration (paper §8: 100 warm-up iterations, the
/// average of the following iterations as the latency, random node
/// permutations).
#[derive(Clone, Debug)]
pub struct RunCfg {
    /// Discarded warm-up iterations.
    pub warmup: u64,
    /// Measured iterations.
    pub iters: u64,
    /// Master seed.
    pub seed: u64,
    /// Uniform random per-process compute skew before each re-entry, µs
    /// (0 = the paper's tight loop).
    pub skew_us: f64,
    /// Fabric loss injection (GM only).
    pub drop_prob: f64,
    /// Place ranks on a random node permutation.
    pub permute: bool,
    /// Engine event-queue implementation (differential testing of the
    /// indexed scheduler against the classic binary heap).
    pub scheduler: SchedulerKind,
    /// Engine flavour ([`EngineSel::Auto`]: parallel iff `shards > 1`).
    pub engine: EngineSel,
    /// Worker shards for the parallel engine.
    pub shards: usize,
    /// Component-to-shard partition strategy for the parallel engine
    /// (profile-guided when the fig binaries get `--partition profile=..`).
    pub partition: PartitionSel,
}

impl Default for RunCfg {
    fn default() -> Self {
        RunCfg {
            warmup: 100,
            iters: 1000,
            seed: 42,
            skew_us: 0.0,
            drop_prob: 0.0,
            permute: false,
            scheduler: SchedulerKind::default(),
            engine: EngineSel::Auto,
            shards: 1,
            partition: PartitionSel::Contiguous,
        }
    }
}

impl RunCfg {
    /// Total epochs each process runs.
    pub fn total(&self) -> u64 {
        self.warmup + self.iters
    }

    /// Simulated-time budget for a run: generous (no realistic barrier
    /// exceeds 10 ms even under loss), so hitting it means a hang. Public
    /// for callers that drive a cluster built with
    /// [`build_gm_nic_cluster`] / [`build_elan_nic_cluster`] themselves.
    pub fn deadline(&self) -> SimTime {
        SimTime::from_us(self.total() as f64 * 10_000.0 + 1_000_000.0)
    }

    fn members(&self, n: usize) -> Vec<NodeId> {
        if self.permute {
            let mut rng = SimRng::new(self.seed ^ 0x9E3779B97F4A7C15);
            Permutation::random(n, n, &mut rng).nodes().to_vec()
        } else {
            (0..n).map(NodeId).collect()
        }
    }
}

/// Results of one barrier benchmark run.
#[derive(Clone, Debug)]
pub struct BarrierStats {
    /// Group size.
    pub n: usize,
    /// Mean barrier latency over the measured window, µs.
    pub mean_us: f64,
    /// Per-iteration global latencies in the measured window, µs.
    pub per_iter_us: Vec<f64>,
    /// Wire packets per barrier (all kinds), averaged over every epoch.
    pub wire_per_barrier: f64,
    /// Raw engine counters at the end of the run.
    pub counters: Vec<(String, u64)>,
}

impl BarrierStats {
    /// Largest single-iteration latency in the window, µs.
    pub fn max_us(&self) -> f64 {
        self.per_iter_us.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest single-iteration latency in the window, µs.
    pub fn min_us(&self) -> f64 {
        self.per_iter_us
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// A named counter's final value.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Reduce per-rank completion logs to global per-iteration latencies.
pub(crate) fn stats_from_logs(
    n: usize,
    cfg: &RunCfg,
    logs: Vec<&[SimTime]>,
    counters: Vec<(String, u64)>,
) -> BarrierStats {
    let total = usize::try_from(cfg.total()).expect("iteration count exceeds usize");
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(
            log.len(),
            total,
            "rank {i} completed {} of {total} barriers",
            log.len()
        );
    }
    // Barrier safety: no process may exit epoch k before every process has
    // exited k−1 (exit of k requires all entries to k, and entry to k
    // happens after own exit of k−1). Checked on every run.
    for k in 1..total {
        let min_exit_k = logs.iter().map(|l| l[k]).min().expect("n >= 1");
        let max_exit_prev = logs.iter().map(|l| l[k - 1]).max().expect("n >= 1");
        assert!(
            min_exit_k >= max_exit_prev,
            "barrier safety violated at epoch {k}: exit {min_exit_k} precedes previous epoch's last exit {max_exit_prev}"
        );
    }
    // Global completion of epoch k = the last process to finish it.
    let global: Vec<SimTime> = (0..total)
        .map(|k| logs.iter().map(|l| l[k]).max().expect("n >= 1"))
        .collect();
    assert!(cfg.warmup >= 1, "need at least one warm-up iteration");
    let w = usize::try_from(cfg.warmup).expect("warmup count exceeds usize");
    let per_iter_us: Vec<f64> = (w..total)
        .map(|k| (global[k] - global[k - 1]).as_us())
        .collect();
    let mean_us = (global[total - 1] - global[w - 1]).as_us() / cfg.iters as f64;
    let wire_total = counters
        .iter()
        .find(|(k, _)| k == "wire.total" || k == "elan.wire")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    BarrierStats {
        n,
        mean_us,
        per_iter_us,
        wire_per_barrier: wire_total as f64 / total as f64,
        counters,
    }
}

/// Everything a flight-recorded run captures: the usual statistics plus the
/// raw trace, per-barrier span summaries, and the latency histograms. Every
/// drop/orphan counter rides along so exporters can qualify the capture.
#[derive(Clone, Debug)]
pub struct FlightData {
    /// Substrate label for exporters ("gm" or "elan").
    pub substrate: &'static str,
    /// Which execution engine produced the run ("sequential" or
    /// "parallel"). Results are byte-identical across engines, so the
    /// exporters stamp this to make cross-engine diffs self-describing.
    pub engine: &'static str,
    /// Worker shard count of the producing engine (1 when sequential).
    pub shards: usize,
    /// Aggregate statistics of the run (same as the untraced driver).
    pub stats: BarrierStats,
    /// Every trace record the ring retained, in emission order.
    pub records: Vec<TraceRecord>,
    /// Records the trace ring evicted (0 = complete capture).
    pub trace_dropped: u64,
    /// Per-barrier span summaries, in completion order.
    pub spans: Vec<SpanSummary>,
    /// Span summaries discarded once the recorder filled (histograms still
    /// observed them).
    pub spans_dropped: u64,
    /// Span events that arrived with no open span to own them.
    pub orphaned: u64,
    /// Latency histograms `(name, histogram)`, name-ordered.
    pub hists: Vec<(String, Histogram)>,
    /// Causal netdump: every wire-visible event with its parent id, in
    /// record order (id order). Feed to `nicbar_bench`'s critical-path
    /// analyzer.
    pub packets: Vec<PacketRecord>,
    /// Packet records the netdump discarded once full (0 = complete DAG).
    pub packets_dropped: u64,
    /// Resource-occupancy ledger records (empty unless the run enabled the
    /// ledger — the `contend` scenario does). Feed to the interference
    /// attribution in `nicbar_bench`'s critical-path analyzer.
    pub ledger: Vec<LedgerRecord>,
    /// Ledger records lost to the capacity bound (0 = complete ledger).
    pub ledger_dropped: u64,
}

impl FlightData {
    /// True when any part of the capture lost data.
    pub fn lossy(&self) -> bool {
        self.trace_dropped > 0
            || self.spans_dropped > 0
            || self.packets_dropped > 0
            || self.ledger_dropped > 0
    }
}

/// Snapshot the trace ring and flight recorder off any engine into a
/// [`FlightData`] whose `stats` field the caller fills in afterwards.
pub(crate) fn capture_observability<M: Send + 'static>(
    substrate: &'static str,
    engine: &ExecEngine<M>,
    stats: BarrierStats,
) -> FlightData {
    let trace = engine.trace();
    let rec = engine.recorder();
    let dump = engine.netdump();
    let ledger = engine.ledger();
    FlightData {
        substrate,
        engine: engine.kind(),
        shards: engine.shards(),
        stats,
        records: trace.iter().copied().collect(),
        trace_dropped: trace.dropped(),
        spans: rec.completed().to_vec(),
        spans_dropped: rec.dropped(),
        orphaned: rec.orphaned(),
        hists: rec
            .hists()
            .iter()
            .into_iter()
            .map(|(k, h)| (k.to_string(), h.clone()))
            .collect(),
        packets: dump.records().to_vec(),
        packets_dropped: dump.dropped(),
        ledger: ledger.records().to_vec(),
        ledger_dropped: ledger.dropped(),
    }
}

/// Build a GM NIC-barrier cluster without running it; `observe` turns on
/// the trace ring and the flight recorder before any event runs. Callers
/// that need to separate construction cost from execution cost (allocation
/// accounting, throughput measurement) drive
/// `cluster.run_until(cfg.deadline())` themselves and harvest results with
/// [`gm_nic_stats`].
pub fn build_gm_nic_cluster(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: &RunCfg,
    observe: bool,
) -> GmCluster {
    let timeout = params.coll_timeout;
    let spec = GmClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_drop_prob(cfg.drop_prob)
        .with_features(features)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards)
        .with_partition(cfg.partition.clone());
    let members = cfg.members(n);
    // One shared membership list for every rank's GroupSpec: at 65,536
    // nodes a per-rank copy would be 34 GB.
    let shared: std::sync::Arc<[NodeId]> = members.as_slice().into();
    // apps/colls are indexed by *node*; rank r lives on members[r].
    let mut apps: Vec<Option<Box<dyn GmApp>>> = (0..n).map(|_| None).collect();
    let mut colls: Vec<Option<Box<dyn NicCollective>>> = (0..n).map(|_| None).collect();
    for (rank, &node) in members.iter().enumerate() {
        apps[node.0] = Some(Box::new(NicBarrierApp::new(
            BARRIER_GROUP,
            cfg.total(),
            cfg.skew_us,
        )));
        colls[node.0] = Some(Box::new(PaperCollective::new(
            node,
            vec![GroupSpec::barrier(
                BARRIER_GROUP,
                shared.clone(),
                rank,
                algo,
                timeout,
            )],
        )));
    }
    let apps: Vec<Box<dyn GmApp>> = apps.into_iter().map(|a| a.expect("bijection")).collect();
    let colls: Vec<Box<dyn NicCollective>> =
        colls.into_iter().map(|c| c.expect("bijection")).collect();
    let mut cluster = GmCluster::build(spec, apps, colls);
    if observe {
        cluster.engine.enable_trace();
        cluster.engine.enable_recorder();
        cluster.engine.enable_netdump();
        cluster
            .engine
            .recorder_mut()
            .set_participants(u32::try_from(n).expect("participant count exceeds u32"));
    }
    cluster
}

/// Build and drain a GM NIC-barrier cluster.
fn gm_nic_cluster(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: &RunCfg,
    observe: bool,
) -> GmCluster {
    let mut cluster = build_gm_nic_cluster(params, features, n, algo, cfg, observe);
    let outcome = cluster.run_until(cfg.deadline());
    assert_eq!(outcome, RunOutcome::Idle, "NIC barrier run did not drain");
    cluster
}

/// Harvest counters and completion logs of a drained GM NIC-barrier
/// cluster into [`BarrierStats`].
pub fn gm_nic_stats(cluster: &GmCluster, n: usize, cfg: &RunCfg) -> BarrierStats {
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<NicBarrierApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    stats_from_logs(n, cfg, logs, counters)
}

/// Run the paper's NIC-based barrier over the GM/Myrinet substrate.
pub fn gm_nic_barrier(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
) -> BarrierStats {
    let cluster = gm_nic_cluster(params, features, n, algo, &cfg, false);
    gm_nic_stats(&cluster, n, &cfg)
}

/// Run the GM NIC barrier with the flight recorder on and return the full
/// capture. Keep `cfg.total()` small (tens of barriers): the trace ring
/// holds 64 Ki records and the recorder 4 Ki spans before they start
/// dropping (drops are reported, not fatal).
pub fn gm_nic_barrier_flight(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
) -> FlightData {
    let cluster = gm_nic_cluster(params, features, n, algo, &cfg, true);
    let stats = gm_nic_stats(&cluster, n, &cfg);
    capture_observability("gm", &cluster.engine, stats)
}

/// Run the host-based barrier baseline over the GM/Myrinet substrate.
pub fn gm_host_barrier(params: GmParams, n: usize, algo: Algorithm, cfg: RunCfg) -> BarrierStats {
    let spec = GmClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_drop_prob(cfg.drop_prob)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards)
        .with_partition(cfg.partition.clone());
    let members = cfg.members(n);
    let mut apps: Vec<Option<Box<dyn GmApp>>> = (0..n).map(|_| None).collect();
    for (rank, &node) in members.iter().enumerate() {
        apps[node.0] = Some(Box::new(HostBarrierApp::new(
            algo,
            members.clone(),
            rank,
            cfg.total(),
            cfg.skew_us,
        )));
    }
    let apps: Vec<Box<dyn GmApp>> = apps.into_iter().map(|a| a.expect("bijection")).collect();
    let mut cluster = GmCluster::build_p2p(spec, apps);
    let outcome = cluster.run_until(cfg.deadline());
    assert_eq!(outcome, RunOutcome::Idle, "host barrier run did not drain");
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<HostBarrierApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    stats_from_logs(n, &cfg, logs, counters)
}

/// Build a Quadrics NIC-barrier cluster (chained RDMA) without running it;
/// `observe` turns on the trace ring and flight recorder up front. See
/// [`build_gm_nic_cluster`] for when to use the split form; harvest with
/// [`elan_nic_stats`] after draining.
pub fn build_elan_nic_cluster(
    params: ElanParams,
    n: usize,
    algo: Algorithm,
    cfg: &RunCfg,
    observe: bool,
) -> ElanCluster {
    let spec = ElanClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards)
        .with_partition(cfg.partition.clone());
    let members = cfg.members(n);
    let chain_by_rank = build_chains(algo, &members);
    let mut apps: Vec<Option<Box<dyn ElanApp>>> = (0..n).map(|_| None).collect();
    let mut programs: Vec<NicProgram> = vec![NicProgram::default(); n];
    for (rank, &node) in members.iter().enumerate() {
        apps[node.0] = Some(Box::new(ElanNicBarrierApp::new(cfg.total(), cfg.skew_us)));
        programs[node.0] = chain_by_rank[rank].clone();
    }
    let apps: Vec<Box<dyn ElanApp>> = apps.into_iter().map(|a| a.expect("bijection")).collect();
    let mut cluster = ElanCluster::build(spec, apps, programs);
    if observe {
        cluster.engine.enable_trace();
        cluster.engine.enable_recorder();
        cluster.engine.enable_netdump();
        cluster
            .engine
            .recorder_mut()
            .set_participants(u32::try_from(n).expect("participant count exceeds u32"));
    }
    cluster
}

/// Build and drain a Quadrics NIC-barrier cluster.
fn elan_nic_cluster(
    params: ElanParams,
    n: usize,
    algo: Algorithm,
    cfg: &RunCfg,
    observe: bool,
) -> ElanCluster {
    let mut cluster = build_elan_nic_cluster(params, n, algo, cfg, observe);
    let outcome = cluster.run_until(cfg.deadline());
    assert_eq!(outcome, RunOutcome::Idle, "elan NIC barrier did not drain");
    cluster
}

/// Harvest counters and completion logs of a drained Quadrics NIC-barrier
/// cluster into [`BarrierStats`].
pub fn elan_nic_stats(cluster: &ElanCluster, n: usize, cfg: &RunCfg) -> BarrierStats {
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<ElanNicBarrierApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    stats_from_logs(n, cfg, logs, counters)
}

/// Run the NIC-based barrier over the Quadrics substrate (chained RDMA).
pub fn elan_nic_barrier(
    params: ElanParams,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
) -> BarrierStats {
    let cluster = elan_nic_cluster(params, n, algo, &cfg, false);
    elan_nic_stats(&cluster, n, &cfg)
}

/// Run the Quadrics NIC barrier with the flight recorder on and return the
/// full capture. Same sizing advice as [`gm_nic_barrier_flight`].
pub fn elan_nic_barrier_flight(
    params: ElanParams,
    n: usize,
    algo: Algorithm,
    cfg: RunCfg,
) -> FlightData {
    let cluster = elan_nic_cluster(params, n, algo, &cfg, true);
    let stats = elan_nic_stats(&cluster, n, &cfg);
    capture_observability("elan", &cluster.engine, stats)
}

/// Run the Elanlib tree barrier (`elan_gsync`, hardware broadcast off).
pub fn elan_gsync_barrier(
    params: ElanParams,
    n: usize,
    degree: usize,
    cfg: RunCfg,
) -> BarrierStats {
    let spec = ElanClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards)
        .with_partition(cfg.partition.clone());
    let members = cfg.members(n);
    let mut apps: Vec<Option<Box<dyn ElanApp>>> = (0..n).map(|_| None).collect();
    for (rank, &node) in members.iter().enumerate() {
        apps[node.0] = Some(Box::new(ElanGsyncApp::new(
            rank,
            members.clone(),
            degree,
            cfg.total(),
            cfg.skew_us,
        )));
    }
    let apps: Vec<Box<dyn ElanApp>> = apps.into_iter().map(|a| a.expect("bijection")).collect();
    let mut cluster = ElanCluster::build(spec, apps, vec![NicProgram::default(); n]);
    let outcome = cluster.run_until(cfg.deadline());
    assert_eq!(outcome, RunOutcome::Idle, "gsync run did not drain");
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<ElanGsyncApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    stats_from_logs(n, &cfg, logs, counters)
}

/// Run the hardware barrier (`elan_hgsync` fast path). Requires the
/// identity placement (hardware broadcast needs contiguous nodes — the
/// paper's stated limitation), so `cfg.permute` is ignored.
pub fn elan_hw_barrier(params: ElanParams, n: usize, cfg: RunCfg) -> BarrierStats {
    let spec = ElanClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_hw_barrier()
        .with_scheduler(cfg.scheduler);
    let apps: Vec<Box<dyn ElanApp>> = (0..n)
        .map(|_| Box::new(ElanHwBarrierApp::new(cfg.total(), cfg.skew_us)) as Box<dyn ElanApp>)
        .collect();
    let mut cluster = ElanCluster::build(spec, apps, vec![NicProgram::default(); n]);
    let outcome = cluster.run_until(cfg.deadline());
    assert_eq!(outcome, RunOutcome::Idle, "hw barrier run did not drain");
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<ElanHwBarrierApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    stats_from_logs(n, &cfg, logs, counters)
}

/// Run the *thread-processor* barrier over Quadrics — the §7 alternative
/// the paper rejected ("an extra thread does increase the processing
/// load"). Compare with [`elan_nic_barrier`] to quantify that choice.
pub fn elan_thread_barrier(params: ElanParams, n: usize, cfg: RunCfg) -> BarrierStats {
    elan_thread_collective(
        params,
        n,
        cfg,
        crate::elan_thread::ThreadOp::Barrier,
        |_, _| 0,
    )
    .0
}

/// Run a thread-processor allreduce (Moody-style NIC reduction, the
/// paper's ref \[14\]); returns stats plus every rank's per-epoch results.
pub fn elan_thread_allreduce(
    params: ElanParams,
    n: usize,
    cfg: RunCfg,
    op: crate::protocol::ReduceOp,
    contribution: impl Fn(usize, u64) -> u64,
) -> (BarrierStats, Vec<Vec<u64>>) {
    elan_thread_collective(
        params,
        n,
        cfg,
        crate::elan_thread::ThreadOp::Allreduce { op },
        contribution,
    )
}

fn elan_thread_collective(
    params: ElanParams,
    n: usize,
    cfg: RunCfg,
    op: crate::elan_thread::ThreadOp,
    contribution: impl Fn(usize, u64) -> u64,
) -> (BarrierStats, Vec<Vec<u64>>) {
    use crate::elan_thread::{ElanThreadApp, ThreadCollective};
    use nicbar_elan::ElanNic;

    let spec = ElanClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards)
        .with_partition(cfg.partition.clone());
    let members = cfg.members(n);
    let mut apps: Vec<Option<Box<dyn ElanApp>>> = (0..n).map(|_| None).collect();
    for &node in members.iter() {
        let contribs: Vec<u64> = (0..cfg.total())
            .map(|e| {
                let rank = members
                    .iter()
                    .position(|&m| m == node)
                    .expect("members are a permutation of the node set");
                contribution(rank, e)
            })
            .collect();
        apps[node.0] = Some(Box::new(ElanThreadApp::new(contribs)));
    }
    let apps: Vec<Box<dyn ElanApp>> = apps.into_iter().map(|a| a.expect("bijection")).collect();
    let mut cluster = ElanCluster::build(spec, apps, vec![NicProgram::default(); n]);
    // Install the thread handlers on each NIC (user-level thread creation).
    for (rank, &node) in members.iter().enumerate() {
        let nic_id = cluster.nics[node.0];
        cluster
            .engine
            .component_mut::<ElanNic>(nic_id)
            .expect("nic component")
            .install_thread(Box::new(ThreadCollective::new(members.clone(), rank, op)));
    }
    let outcome = cluster.run_until(cfg.deadline());
    assert_eq!(outcome, RunOutcome::Idle, "thread collective did not drain");
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<ElanThreadApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    let stats = stats_from_logs(n, &cfg, logs, counters);
    // Harvest per-rank results from the NIC threads, in rank order.
    let results: Vec<Vec<u64>> = members
        .iter()
        .map(|&node| {
            let nic_id = cluster.nics[node.0];
            let nic = cluster
                .engine
                .component_mut::<ElanNic>(nic_id)
                .expect("nic component");
            nic.thread_mut()
                .as_any_mut()
                .downcast_mut::<ThreadCollective>()
                .expect("thread type")
                .results()
                .to_vec()
        })
        .collect();
    (stats, results)
}
