//! GM applications: the host-based barrier baselines and the NIC-based
//! barrier driver.
//!
//! The host-based barrier (the paper's `Host-DS` / `Host-PE` curves) runs
//! the same schedules as the NIC-based protocol, but every message crosses
//! the I/O bus twice and traverses the full point-to-point send path —
//! token queues, packet claim, payload DMA, per-packet ACKs — with the host
//! CPU dispatching every round. The NIC-based driver posts one doorbell per
//! barrier and waits for the completion event.

use crate::schedule::{Algorithm, Schedule};
use nicbar_gm::{GmApi, GmApp, GroupId, MsgTag};
use nicbar_net::NodeId;
use nicbar_sim::SimTime;
use std::collections::BTreeMap;

/// Barrier message payload size (one integer, as in the paper).
pub const BARRIER_MSG_BYTES: u32 = 4;

/// Encode `(epoch, round)` into a GM tag. Epochs are bounded by the
/// benchmark's iteration count, so 24 bits are ample.
pub fn encode_tag(epoch: u64, round: usize) -> MsgTag {
    assert!(epoch < (1 << 24), "epoch too large for tag encoding");
    assert!(round < 256, "round too large for tag encoding");
    let epoch = u32::try_from(epoch).expect("checked by the 24-bit assert above");
    let round = u32::try_from(round).expect("checked by the 8-bit assert above");
    MsgTag((epoch << 8) | round)
}

/// Decode a tag produced by [`encode_tag`].
pub fn decode_tag(tag: MsgTag) -> (u64, usize) {
    ((tag.0 >> 8) as u64, (tag.0 & 0xff) as usize)
}

/// Host-side schedule executor: the same round-frontier rule as the NIC
/// protocol engine, minus payloads and NACKs (GM's point-to-point layer
/// already guarantees reliable ordered delivery to the host).
pub struct HostScheduleRunner {
    schedule: Schedule,
    entered: u64,
    completed: u64,
    live: bool,
    next_send_round: usize,
    banked: BTreeMap<(u64, usize), u64>,
}

/// Sends requested by the runner: `(destination rank, round)`.
pub type HostSends = Vec<(usize, usize)>;

impl HostScheduleRunner {
    /// Build for one rank's schedule.
    pub fn new(schedule: Schedule) -> Self {
        HostScheduleRunner {
            schedule,
            entered: 0,
            completed: 0,
            live: false,
            next_send_round: 0,
            banked: BTreeMap::new(),
        }
    }

    /// Barriers completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Epoch of the most recently entered barrier (valid for tagging the
    /// sends returned by the call that entered or progressed it).
    ///
    /// # Panics
    /// Panics before the first [`HostScheduleRunner::begin`].
    pub fn current_epoch(&self) -> u64 {
        self.entered.checked_sub(1).expect("no barrier entered yet")
    }

    /// The rank's schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Enter the next barrier; returns the initially issuable sends.
    /// The `bool` is true if the barrier completed immediately (trivial
    /// schedules or fully banked arrivals).
    pub fn begin(&mut self) -> (HostSends, bool) {
        assert!(!self.live, "re-entered barrier before completion");
        self.live = true;
        self.next_send_round = 0;
        self.entered += 1;
        self.progress()
    }

    /// Feed an arrival. Returns newly issuable sends and whether the
    /// current barrier completed.
    pub fn on_msg(&mut self, epoch: u64, round: usize, from_rank: usize) -> (HostSends, bool) {
        let slot = self
            .schedule
            .recv_slot(round, from_rank)
            .unwrap_or_else(|| panic!("unexpected sender {from_rank} in round {round}"));
        let entry = self.banked.entry((epoch, round)).or_insert(0);
        if *entry & (1 << slot) != 0 {
            return (Vec::new(), false); // duplicate
        }
        *entry |= 1 << slot;
        if self.live && epoch + 1 == self.entered {
            self.progress()
        } else {
            (Vec::new(), false)
        }
    }

    fn round_satisfied(&self, epoch: u64, round: usize) -> bool {
        let expected = self.schedule.rounds[round].recv_from.len();
        if expected == 0 {
            return true;
        }
        let full = (1u64 << expected) - 1;
        self.banked
            .get(&(epoch, round))
            .map(|m| m & full == full)
            .unwrap_or(false)
    }

    fn progress(&mut self) -> (HostSends, bool) {
        let epoch = self.entered - 1;
        let mut sends = Vec::new();
        loop {
            let r = self.next_send_round;
            if r > 0 && !self.round_satisfied(epoch, r - 1) {
                return (sends, false);
            }
            if r > 0 {
                self.banked.remove(&(epoch, r - 1));
            }
            if r == self.schedule.num_rounds() {
                self.live = false;
                self.completed = epoch + 1;
                return (sends, true);
            }
            for &dst in &self.schedule.rounds[r].sends {
                sends.push((dst, r));
            }
            self.next_send_round = r + 1;
        }
    }
}

/// Shared measurement record for barrier benchmark apps.
#[derive(Clone, Debug, Default)]
pub struct BarrierLog {
    /// Completion time of each epoch, in order.
    pub completions: Vec<SimTime>,
}

impl BarrierLog {
    /// A log with room for `iters` completions, so steady-state pushes
    /// never reallocate (the zero-allocation gate measures the run).
    pub fn with_capacity(iters: u64) -> Self {
        BarrierLog {
            completions: Vec::with_capacity(
                usize::try_from(iters).expect("iteration count exceeds usize"),
            ),
        }
    }
}

/// The host-based barrier benchmark application (`Host-DS` / `Host-PE`).
pub struct HostBarrierApp {
    runner: HostScheduleRunner,
    members: Vec<NodeId>,
    iters: u64,
    /// Uniform random compute skew before re-entering (0 = tight loop, the
    /// paper's setup).
    skew_us: f64,
    /// Measurements.
    pub log: BarrierLog,
    pending_enter: bool,
}

impl HostBarrierApp {
    /// Build for `rank` of a group over `members` (rank order), running
    /// `iters` consecutive barriers with `algo`.
    pub fn new(
        algo: Algorithm,
        members: Vec<NodeId>,
        rank: usize,
        iters: u64,
        skew_us: f64,
    ) -> Self {
        let schedule = Schedule::for_algorithm(algo, members.len(), rank);
        HostBarrierApp {
            runner: HostScheduleRunner::new(schedule),
            members,
            iters,
            skew_us,
            log: BarrierLog::with_capacity(iters),
            pending_enter: false,
        }
    }

    fn issue(&mut self, api: &mut GmApi<'_>, sends: HostSends, done: bool) {
        let epoch = self.runner.entered - 1;
        for (dst_rank, round) in sends {
            api.send(
                self.members[dst_rank],
                BARRIER_MSG_BYTES,
                encode_tag(epoch, round),
            );
        }
        if done {
            self.log.completions.push(api.now());
            if self.runner.completed() < self.iters {
                if self.skew_us > 0.0 {
                    let d = api.rng().range_f64(0.0, self.skew_us);
                    self.pending_enter = true;
                    api.set_timer(SimTime::from_us(d));
                } else {
                    let (s, d) = self.runner.begin();
                    self.issue(api, s, d);
                }
            }
        }
    }
}

impl GmApp for HostBarrierApp {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        let (sends, done) = self.runner.begin();
        self.issue(api, sends, done);
    }

    fn on_recv(&mut self, api: &mut GmApi<'_>, src: NodeId, tag: MsgTag, _len: u32) {
        let (epoch, round) = decode_tag(tag);
        let from_rank = self
            .members
            .iter()
            .position(|&m| m == src)
            .expect("message from non-member");
        let (sends, done) = self.runner.on_msg(epoch, round, from_rank);
        self.issue(api, sends, done);
    }

    fn on_timer(&mut self, api: &mut GmApi<'_>) {
        if self.pending_enter {
            self.pending_enter = false;
            let (s, d) = self.runner.begin();
            self.issue(api, s, d);
        }
    }
}

/// The NIC-based barrier benchmark application: one doorbell per barrier.
pub struct NicBarrierApp {
    group: GroupId,
    iters: u64,
    skew_us: f64,
    /// Measurements.
    pub log: BarrierLog,
    done: u64,
}

impl NicBarrierApp {
    /// Run `iters` consecutive NIC-based barriers on `group`.
    pub fn new(group: GroupId, iters: u64, skew_us: f64) -> Self {
        NicBarrierApp {
            group,
            iters,
            skew_us,
            log: BarrierLog::with_capacity(iters),
            done: 0,
        }
    }
}

impl GmApp for NicBarrierApp {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        api.collective(self.group, 0);
    }

    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
        panic!("NIC-barrier app received a point-to-point message");
    }

    fn on_coll_done(&mut self, api: &mut GmApi<'_>, group: GroupId, epoch: u64, _value: u64) {
        assert_eq!(group, self.group);
        assert_eq!(epoch, self.done, "completions out of order");
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            if self.skew_us > 0.0 {
                let d = api.rng().range_f64(0.0, self.skew_us);
                api.set_timer(SimTime::from_us(d));
            } else {
                api.collective(self.group, 0);
            }
        }
    }

    fn on_timer(&mut self, api: &mut GmApi<'_>) {
        api.collective(self.group, 0);
    }
}

/// A driver for the extension collectives: performs `iters` operations,
/// recording completion values (`on_coll_done`'s result word).
pub struct CollOpApp {
    group: GroupId,
    iters: u64,
    /// Contribution for each epoch (indexed by epoch).
    contributions: Vec<u64>,
    /// `(completion time, result value)` per epoch.
    pub results: Vec<(SimTime, u64)>,
}

impl CollOpApp {
    /// Run `iters` operations contributing `contributions[epoch]` each time.
    pub fn new(group: GroupId, contributions: Vec<u64>) -> Self {
        CollOpApp {
            group,
            iters: contributions.len() as u64,
            contributions,
            results: Vec::new(),
        }
    }
}

impl GmApp for CollOpApp {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        if self.iters > 0 {
            api.collective(self.group, self.contributions[0]);
        }
    }

    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
        panic!("collective app received a point-to-point message");
    }

    fn on_coll_done(&mut self, api: &mut GmApi<'_>, _group: GroupId, epoch: u64, value: u64) {
        self.results.push((api.now(), value));
        let next = epoch + 1;
        if next < self.iters {
            let next = usize::try_from(next).expect("iteration count exceeds usize");
            api.collective(self.group, self.contributions[next]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trip() {
        let t = encode_tag(123_456, 7);
        assert_eq!(decode_tag(t), (123_456, 7));
    }

    #[test]
    #[should_panic(expected = "epoch too large")]
    fn tag_overflow_rejected() {
        encode_tag(1 << 24, 0);
    }

    #[test]
    fn runner_walks_dissemination_rounds() {
        // rank 0 of 4: sends to 1 then 2; receives from 3 then 2.
        let mut r = HostScheduleRunner::new(Schedule::dissemination(4, 0));
        let (sends, done) = r.begin();
        assert_eq!(sends, vec![(1, 0)]);
        assert!(!done);
        let (sends, done) = r.on_msg(0, 0, 3);
        assert_eq!(sends, vec![(2, 1)]);
        assert!(!done);
        let (sends, done) = r.on_msg(0, 1, 2);
        assert!(sends.is_empty());
        assert!(done);
        assert_eq!(r.completed(), 1);
    }

    #[test]
    fn runner_banks_early_next_epoch_messages() {
        let mut r = HostScheduleRunner::new(Schedule::dissemination(2, 0));
        let (_, done) = r.begin();
        assert!(!done);
        // Peer races: both its epoch-0 and epoch-1 messages arrive.
        let (_, done) = r.on_msg(0, 0, 1);
        assert!(done);
        let (s, d) = r.on_msg(1, 0, 1);
        assert!(s.is_empty() && !d, "future epoch banked, not applied");
        // Entering epoch 1 releases it immediately.
        let (sends, done) = r.begin();
        assert_eq!(sends.len(), 1);
        assert!(done);
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn runner_ignores_duplicates() {
        let mut r = HostScheduleRunner::new(Schedule::dissemination(4, 0));
        let _ = r.begin();
        let (s1, _) = r.on_msg(0, 0, 3);
        assert_eq!(s1.len(), 1);
        let (s2, d2) = r.on_msg(0, 0, 3);
        assert!(s2.is_empty() && !d2);
    }

    #[test]
    fn trivial_single_rank_barrier() {
        let mut r = HostScheduleRunner::new(Schedule::dissemination(1, 0));
        let (sends, done) = r.begin();
        assert!(sends.is_empty());
        assert!(done);
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    fn runner_rejects_reentry() {
        let mut r = HostScheduleRunner::new(Schedule::dissemination(4, 0));
        let _ = r.begin();
        let _ = r.begin();
    }
}
