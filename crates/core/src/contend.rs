//! Contention scenario: M overlapping barrier groups plus background bulk
//! traffic over shared NICs.
//!
//! The interference experiment (`traffic`) shows *that* background streams
//! slow a barrier down; this scenario exists to show *who* is responsible.
//! Every node is a member of all M collective groups and keeps a bulk
//! stream to its ring neighbour in flight, so every contended NIC resource
//! (processor, DMA engine, token queues, event slots, rx ports) is shared
//! by collective, traffic, and fabric owners at once. The run captures the
//! resource-occupancy ledger, and `nicbar_bench`'s critical-path analyzer
//! attributes every wait edge to the specific owner that held the resource
//! — the per-barrier interference breakdown the `contend` binary reports.

use crate::driver::{capture_observability, stats_from_logs, FlightData, RunCfg};
use crate::elan_chain::{build_chains_multi, chain_done_cookie, GroupChain};
use crate::host_app::BarrierLog;
use crate::protocol::{GroupSpec, PaperCollective};
use crate::schedule::Algorithm;
use crate::traffic::TrafficCfg;
use nicbar_elan::{
    ElanApi, ElanApp, ElanCluster, ElanClusterSpec, ElanParams, EventId, TportTag, BULK_TPORT_TAG,
};
use nicbar_gm::{
    CollFeatures, GmApi, GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, MsgId, MsgTag,
    NicCollective, BULK_TAG,
};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};
use std::collections::HashSet;

/// Base collective group id: contend group `g` is `CONTEND_GROUP_BASE + g`
/// (distinct from the single-group benchmarks' `0xBA`).
pub const CONTEND_GROUP_BASE: u32 = 0xC0;

/// Hang backstop for the windowed contend drain (mirrors the interference
/// benchmark's margin).
fn contend_deadline(cfg: &RunCfg) -> SimTime {
    SimTime::from_us(cfg.total() as f64 * 50_000.0 + 1_000_000.0)
}

/// GM contend app: a member of every group, entering all of them each
/// epoch, with a saturating bulk stream to the ring neighbour.
pub struct GmContendApp {
    groups: Vec<GroupId>,
    traffic: TrafficCfg,
    bulk_peer: NodeId,
    iters: u64,
    skew_us: f64,
    /// Groups still outstanding in the current epoch.
    pending: usize,
    done: u64,
    bulk_ids: HashSet<MsgId>,
    /// Epoch completion times (an epoch completes when all groups have).
    pub log: BarrierLog,
    /// Bulk messages delivered to this process.
    pub bulk_received: u64,
}

impl GmContendApp {
    /// A member of `groups` at `rank` on a ring of `n`.
    pub fn new(
        groups: Vec<GroupId>,
        rank: usize,
        n: usize,
        iters: u64,
        skew_us: f64,
        traffic: TrafficCfg,
    ) -> Self {
        GmContendApp {
            groups,
            traffic,
            bulk_peer: NodeId((rank + 1) % n),
            iters,
            skew_us,
            pending: 0,
            done: 0,
            bulk_ids: HashSet::new(),
            log: BarrierLog::with_capacity(iters),
            bulk_received: 0,
        }
    }

    /// Epochs completed (all groups done).
    pub fn done(&self) -> u64 {
        self.done
    }

    fn enter(&mut self, api: &mut GmApi<'_>) {
        self.pending = self.groups.len();
        for &g in &self.groups {
            api.collective(g, 0);
        }
    }

    fn send_bulk(&mut self, api: &mut GmApi<'_>) {
        let id = api.send(self.bulk_peer, self.traffic.msg_bytes, BULK_TAG);
        self.bulk_ids.insert(id);
    }
}

impl GmApp for GmContendApp {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        api.post_recv(self.traffic.outstanding + 4);
        for _ in 0..self.traffic.outstanding {
            self.send_bulk(api);
        }
        self.enter(api);
    }

    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, tag: MsgTag, _len: u32) {
        assert_eq!(tag, BULK_TAG, "contend app only expects bulk p2p");
        self.bulk_received += 1;
    }

    fn on_send_done(&mut self, api: &mut GmApi<'_>, msg_id: MsgId) {
        if self.bulk_ids.remove(&msg_id) && self.done < self.iters {
            self.send_bulk(api);
        }
    }

    fn on_coll_done(&mut self, api: &mut GmApi<'_>, group: GroupId, _epoch: u64, _value: u64) {
        assert!(self.groups.contains(&group), "completion for foreign group");
        self.pending -= 1;
        if self.pending > 0 {
            return;
        }
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            if self.skew_us > 0.0 {
                let d = api.rng().range_f64(0.0, self.skew_us);
                api.set_timer(SimTime::from_us(d));
            } else {
                self.enter(api);
            }
        }
    }

    fn on_timer(&mut self, api: &mut GmApi<'_>) {
        self.enter(api);
    }
}

/// Run the GM contend scenario with full observability (trace, spans,
/// netdump, occupancy ledger) and return the capture. Keep `cfg.total()`
/// small — every NIC charge emits a ledger record.
pub fn gm_contend_flight(
    params: GmParams,
    features: CollFeatures,
    n: usize,
    groups: usize,
    algo: Algorithm,
    cfg: RunCfg,
    traffic: TrafficCfg,
) -> FlightData {
    assert!(groups >= 1, "need at least one group");
    let timeout = params.coll_timeout;
    let spec = GmClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_drop_prob(cfg.drop_prob)
        .with_features(features)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards);
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let shared: std::sync::Arc<[NodeId]> = members.as_slice().into();
    let gids: Vec<GroupId> = (0..groups)
        .map(|g| GroupId(CONTEND_GROUP_BASE + u32::try_from(g).expect("group count")))
        .collect();
    let mut apps: Vec<Box<dyn GmApp>> = Vec::with_capacity(n);
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::with_capacity(n);
    for rank in 0..n {
        apps.push(Box::new(GmContendApp::new(
            gids.clone(),
            rank,
            n,
            cfg.total(),
            cfg.skew_us,
            traffic,
        )));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            gids.iter()
                .map(|&gid| GroupSpec::barrier(gid, shared.clone(), rank, algo, timeout))
                .collect(),
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    cluster.engine.enable_trace();
    cluster.engine.enable_recorder();
    cluster.engine.enable_netdump();
    cluster.engine.enable_ledger();
    cluster
        .engine
        .recorder_mut()
        .set_participants(u32::try_from(n).expect("participant count exceeds u32"));
    // The bulk stream never idles on its own: run in windows until every
    // app has completed its epochs, with a generous hang backstop.
    let deadline = contend_deadline(&cfg);
    loop {
        let done = (0..n).all(|i| cluster.app_ref::<GmContendApp>(i).done >= cfg.total());
        if done {
            break;
        }
        let outcome = cluster
            .engine
            .run_bounded(cluster.engine.now() + SimTime::from_us(1_000.0), 50_000_000);
        assert_ne!(
            outcome,
            RunOutcome::BudgetExhausted,
            "event budget exhausted in contend run"
        );
        assert!(
            cluster.engine.now() < deadline,
            "contend epochs did not complete by {deadline}"
        );
    }
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<GmContendApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    let stats = stats_from_logs(n, &cfg, logs, counters);
    capture_observability("gm", &cluster.engine, stats)
}

/// Elan contend app: sets every group's entry event each epoch and keeps a
/// forwarding-ring tport stream alive (each delivered bulk message triggers
/// the next send, so the pipeline depth stays constant until the barriers
/// finish).
pub struct ElanContendApp {
    /// `(group id, entry event)` per group this node belongs to.
    entries: Vec<(u64, EventId)>,
    /// Expected completion cookies (one per group).
    cookies: HashSet<u64>,
    traffic: TrafficCfg,
    bulk_peer: NodeId,
    iters: u64,
    skew_us: f64,
    pending: usize,
    done: u64,
    /// Epoch completion times.
    pub log: BarrierLog,
    /// Bulk messages delivered to this process.
    pub bulk_received: u64,
}

impl ElanContendApp {
    /// A member of the groups in `entries` at `rank` on a ring of `n`.
    pub fn new(
        entries: Vec<(u64, EventId)>,
        cookies: HashSet<u64>,
        rank: usize,
        n: usize,
        iters: u64,
        skew_us: f64,
        traffic: TrafficCfg,
    ) -> Self {
        ElanContendApp {
            entries,
            cookies,
            traffic,
            bulk_peer: NodeId((rank + 1) % n),
            iters,
            skew_us,
            pending: 0,
            done: 0,
            log: BarrierLog::with_capacity(iters),
            bulk_received: 0,
        }
    }

    /// Epochs completed (all groups done).
    pub fn done(&self) -> u64 {
        self.done
    }

    fn enter(&mut self, api: &mut ElanApi<'_>) {
        self.pending = self.entries.len();
        for &(group, ev) in &self.entries {
            api.set_nic_event_for_group(ev, group);
        }
    }
}

impl ElanApp for ElanContendApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        for _ in 0..self.traffic.outstanding {
            api.tport_send(self.bulk_peer, BULK_TPORT_TAG, self.traffic.msg_bytes);
        }
        self.enter(api);
    }

    fn on_recv(&mut self, api: &mut ElanApi<'_>, _src: NodeId, tag: TportTag, _len: u32) {
        assert_eq!(tag, BULK_TPORT_TAG, "contend app only expects bulk tports");
        self.bulk_received += 1;
        if self.done < self.iters {
            api.tport_send(self.bulk_peer, BULK_TPORT_TAG, self.traffic.msg_bytes);
        }
    }

    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64) {
        assert!(
            self.cookies.contains(&cookie),
            "unexpected cookie {cookie:#x}"
        );
        self.pending -= 1;
        if self.pending > 0 {
            return;
        }
        self.done += 1;
        self.log.completions.push(api.now());
        if self.done < self.iters {
            if self.skew_us > 0.0 {
                let d = api.rng().range_f64(0.0, self.skew_us);
                api.set_timer(SimTime::from_us(d));
            } else {
                self.enter(api);
            }
        }
    }

    fn on_timer(&mut self, api: &mut ElanApi<'_>) {
        self.enter(api);
    }
}

/// Run the Quadrics contend scenario (multi-group chained-RDMA programs +
/// forwarding-ring tport traffic) with full observability.
pub fn elan_contend_flight(
    params: ElanParams,
    n: usize,
    groups: usize,
    algo: Algorithm,
    cfg: RunCfg,
    traffic: TrafficCfg,
) -> FlightData {
    assert!(groups >= 1, "need at least one group");
    let spec = ElanClusterSpec::new(params, n)
        .with_seed(cfg.seed)
        .with_scheduler(cfg.scheduler)
        .with_engine(cfg.engine)
        .with_shards(cfg.shards);
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let chains: Vec<GroupChain> = (0..groups)
        .map(|g| GroupChain {
            group: u64::from(CONTEND_GROUP_BASE) + g as u64,
            algo,
            members: members.clone(),
        })
        .collect();
    let multi = build_chains_multi(n, &chains);
    let cookies: HashSet<u64> = (0..groups).map(|gi| chain_done_cookie(gi as u64)).collect();
    let apps: Vec<Box<dyn ElanApp>> = (0..n)
        .map(|rank| {
            let entries: Vec<(u64, EventId)> =
                multi.entry[rank].iter().map(|(&g, &ev)| (g, ev)).collect();
            Box::new(ElanContendApp::new(
                entries,
                cookies.clone(),
                rank,
                n,
                cfg.total(),
                cfg.skew_us,
                traffic,
            )) as Box<dyn ElanApp>
        })
        .collect();
    let mut cluster = ElanCluster::build(spec, apps, multi.programs);
    cluster.engine.enable_trace();
    cluster.engine.enable_recorder();
    cluster.engine.enable_netdump();
    cluster.engine.enable_ledger();
    cluster
        .engine
        .recorder_mut()
        .set_participants(u32::try_from(n).expect("participant count exceeds u32"));
    let deadline = contend_deadline(&cfg);
    loop {
        let done = (0..n).all(|i| cluster.app_ref::<ElanContendApp>(i).done >= cfg.total());
        if done {
            break;
        }
        let outcome = cluster
            .engine
            .run_bounded(cluster.engine.now() + SimTime::from_us(1_000.0), 50_000_000);
        assert_ne!(
            outcome,
            RunOutcome::BudgetExhausted,
            "event budget exhausted in contend run"
        );
        assert!(
            cluster.engine.now() < deadline,
            "contend epochs did not complete by {deadline}"
        );
    }
    let counters: Vec<(String, u64)> = cluster
        .engine
        .counters()
        .iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<ElanContendApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    let stats = stats_from_logs(n, &cfg, logs, counters);
    capture_observability("elan", &cluster.engine, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicbar_sim::{LedgerOp, OwnerKind};

    fn quick_cfg() -> RunCfg {
        RunCfg {
            warmup: 2,
            iters: 6,
            skew_us: 1.0,
            ..RunCfg::default()
        }
    }

    #[test]
    fn gm_contend_captures_multi_owner_ledger() {
        let flight = gm_contend_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            8,
            2,
            Algorithm::Dissemination,
            quick_cfg(),
            TrafficCfg::default(),
        );
        assert_eq!(flight.ledger_dropped, 0);
        assert!(!flight.ledger.is_empty());
        // Both contend groups and the traffic streams show up as owners.
        let has_group = |g: u64| {
            flight
                .ledger
                .iter()
                .any(|r| r.owner.kind == OwnerKind::Collective && r.owner.group == g)
        };
        assert!(has_group(0xC0));
        assert!(has_group(0xC1));
        assert!(flight
            .ledger
            .iter()
            .any(|r| r.owner.kind == OwnerKind::Traffic));
        // Serial resources produced both holds and waits under contention.
        assert!(flight.ledger.iter().any(|r| r.op == LedgerOp::Hold));
        assert!(flight.ledger.iter().any(|r| r.op == LedgerOp::Wait));
        // The barrier epochs really ran under traffic.
        assert!(flight.stats.mean_us > 0.0);
    }

    #[test]
    fn elan_contend_captures_multi_owner_ledger() {
        let flight = elan_contend_flight(
            ElanParams::elan3(),
            8,
            2,
            Algorithm::Dissemination,
            quick_cfg(),
            TrafficCfg::default(),
        );
        assert_eq!(flight.ledger_dropped, 0);
        assert!(!flight.ledger.is_empty());
        let has_group = |g: u64| {
            flight
                .ledger
                .iter()
                .any(|r| r.owner.kind == OwnerKind::Collective && r.owner.group == g)
        };
        assert!(has_group(0xC0));
        assert!(has_group(0xC1));
        assert!(flight
            .ledger
            .iter()
            .any(|r| r.owner.kind == OwnerKind::Traffic));
        assert!(flight.ledger.iter().any(|r| r.op == LedgerOp::Hold));
        assert!(flight.stats.mean_us > 0.0);
    }
}
