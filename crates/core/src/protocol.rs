//! The NIC-based collective message-passing protocol (§3 and §6 of the
//! paper), as a [`NicCollective`] engine plugged into the GM NIC.
//!
//! What the paper's protocol keeps per collective operation — and this
//! engine reproduces literally:
//!
//! * **one send token per operation** in a dedicated per-group queue (the
//!   NIC charges `nic_coll_send` with no queue traversal; see
//!   `nicbar_gm::nic`),
//! * **a static, padded send packet** carrying one integer (no buffer
//!   claim, no payload DMA),
//! * **one send record with a bit vector** over the expected messages —
//!   here the per-round arrival masks (`RoundArrivals`) plus the
//!   `sent_payloads` vector, replacing per-packet send records,
//! * **receiver-driven retransmission**: no ACKs; a receiver stalled past
//!   the group timeout NACKs exactly the senders whose round messages are
//!   missing, and the sender retransmits from its static packet. This
//!   halves the wire packets relative to the ACK-per-packet point-to-point
//!   scheme (asserted by the integration tests).
//!
//! Beyond the paper's barrier case study, the same engine runs the §9
//! future-work collectives — broadcast, allreduce and allgather — by
//! attaching payload semantics to the identical round-schedule machinery.
//!
//! ## Epoch overlap
//!
//! Consecutive operations overlap: a neighbour can enter epoch `e+1` while
//! this NIC is still in `e`. Packets carry `(group, epoch, round)`; arrivals
//! for a future epoch are *banked* and consumed when the host's doorbell
//! opens that epoch. A simple induction (completion of epoch `e` requires
//! every rank's entry into `e`) bounds arrivals to `host_epoch + 1`, so the
//! banking window is at most one epoch deep — asserted in debug builds.
//!
//! ## Allocation-free steady state
//!
//! The one-epoch banking bound means at most two epochs' arrivals coexist,
//! so banking needs no map: a fixed array of `2 × num_rounds` slots indexed
//! by `(epoch parity, round)` holds every arrival, with each slot's payload
//! vector sized once at construction. The per-epoch `sent_payloads` vector
//! rotates through a two-deep recycle (live → archive → spare → live), so a
//! barrier in steady state touches the heap zero times per operation — the
//! root `alloc_steady` test counts.

use crate::schedule::{Algorithm, Schedule};
use nicbar_gm::{
    ActionBuf, AllToAllItem, CollAction, CollKind, CollOperand, CollPacket, GroupId, NicCollective,
};
use nicbar_net::NodeId;
use nicbar_sim::{CauseId, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Combine operator for allreduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum (power-of-two groups only: the dissemination butterfly would
    /// double-count on wrapped windows otherwise).
    Sum,
    /// Minimum (any group size).
    Min,
    /// Maximum (any group size).
    Max,
    /// Bitwise OR (any group size).
    BitOr,
}

impl ReduceOp {
    /// Apply the operator.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::BitOr => a | b,
        }
    }

    /// Whether the dissemination butterfly computes this operator exactly
    /// for non-power-of-two group sizes (idempotent operators tolerate the
    /// wrapped-window double counting).
    pub fn tolerates_overlap(self) -> bool {
        !matches!(self, ReduceOp::Sum)
    }
}

/// The collective operation a group performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupOp {
    /// The paper's case study.
    Barrier,
    /// NIC-forwarded binomial-tree broadcast (extension, §9).
    Broadcast {
        /// Root rank.
        root: usize,
    },
    /// Allreduce over the dissemination butterfly (extension, §9).
    Allreduce {
        /// Combine operator.
        op: ReduceOp,
    },
    /// Bruck-style allgather (extension, §9).
    Allgather,
    /// Bruck-style personalized alltoall (extension, §9 names it
    /// explicitly: "such as Allgather or Alltoall").
    Alltoall,
}

/// Static configuration of one collective group on one NIC.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    /// Group identifier (shared across members).
    pub id: GroupId,
    /// Member nodes in rank order. Shared (`Arc`) because every rank's spec
    /// lists the same membership: one allocation per group, not per rank,
    /// which is what keeps a 65,536-node sweep at O(n) instead of O(n²).
    pub members: Arc<[NodeId]>,
    /// This NIC's rank within the group.
    pub my_rank: usize,
    /// The operation this group performs.
    pub op: GroupOp,
    /// Barrier algorithm (ignored by the data collectives, which pick their
    /// natural schedules).
    pub algo: Algorithm,
    /// Receiver-driven NACK timeout.
    pub timeout: SimTime,
}

impl GroupSpec {
    /// A barrier group over `members` with `my_rank`, using `algo`.
    pub fn barrier(
        id: GroupId,
        members: impl Into<Arc<[NodeId]>>,
        my_rank: usize,
        algo: Algorithm,
        timeout: SimTime,
    ) -> Self {
        GroupSpec {
            id,
            members: members.into(),
            my_rank,
            op: GroupOp::Barrier,
            algo,
            timeout,
        }
    }

    fn build_schedule(&self) -> Schedule {
        let n = self.members.len();
        match self.op {
            GroupOp::Barrier => Schedule::for_algorithm(self.algo, n, self.my_rank),
            GroupOp::Broadcast { root } => Schedule::binomial_broadcast(n, self.my_rank, root),
            GroupOp::Allreduce { op } => {
                assert!(
                    n.is_power_of_two() || op.tolerates_overlap(),
                    "dissemination allreduce with Sum requires a power-of-two group"
                );
                Schedule::dissemination(n, self.my_rank)
            }
            GroupOp::Allgather | GroupOp::Alltoall => Schedule::dissemination(n, self.my_rank),
        }
    }
}

/// Per-(epoch parity, round) arrival bookkeeping: the paper's bit vector.
///
/// Because banking is at most one epoch deep (module docs), two epochs'
/// arrivals never share a parity, so a fixed `2 × num_rounds` array of these
/// slots replaces a keyed map. `epoch` tags which epoch currently owns the
/// slot; a slot is recycled in place (mask cleared, payloads zeroed) when an
/// arrival two epochs later claims it.
#[derive(Clone, Debug, Default)]
struct RoundSlot {
    epoch: u64,
    mask: u64,
    payloads: Vec<Option<CollKind>>,
}

/// The in-progress epoch.
#[derive(Clone, Debug)]
struct LiveEpoch {
    epoch: u64,
    /// Next round whose sends have not been issued.
    next_send_round: usize,
    /// Accumulator (bcast value / reduce partial / unused for barrier).
    acc: u64,
    /// Allgather state: contribution per rank.
    gathered: Vec<Option<u64>>,
    /// Alltoall state: items this NIC currently holds in transit.
    held: Vec<AllToAllItem>,
    /// Alltoall state: values received for this rank, by origin.
    row: Vec<Option<u64>>,
    /// Last time this epoch made forward progress (NACK pacing).
    last_progress: SimTime,
    /// What was sent in each round (for NACK retransmission).
    sent_payloads: Vec<Option<CollKind>>,
    /// Netdump id of the record that last advanced this epoch (the doorbell
    /// dispatch or the most recent consumed arrival). Sends and completions
    /// emitted by a transition parent on this; timer NACKs for a stalled
    /// epoch parent on it too, tying the detour to the point of the stall.
    cause: CauseId,
}

/// One group's protocol state.
#[derive(Clone)]
struct GroupState {
    spec: GroupSpec,
    schedule: Schedule,
    /// Number of doorbells seen (next expected doorbell epoch).
    host_epoch: u64,
    /// Epochs fully completed.
    completed: u64,
    live: Option<LiveEpoch>,
    /// Arrival slots indexed `(epoch & 1) * num_rounds + round`; payload
    /// vectors sized once at construction, reused forever.
    slots: Vec<RoundSlot>,
    /// Epoch whose sent payloads `archive` holds, for late NACKs. Exactly
    /// one epoch deep: a NACK for anything older can only come from a
    /// requester that has itself already completed that epoch (it reached
    /// the current one), so its retransmission would be filtered as a stale
    /// duplicate anyway.
    archive_epoch: Option<u64>,
    /// Sent payloads of the most recently completed epoch.
    archive: Vec<Option<CollKind>>,
    /// Recycled `sent_payloads` storage for the next doorbell (the vector
    /// the previous completion displaced from `archive`).
    spare_payloads: Vec<Option<CollKind>>,
    nacks_sent: u64,
    retransmits: u64,
    /// Completed alltoall rows per epoch (test observability).
    rows_history: Vec<Vec<u64>>,
    /// Fault injection for the model checker: when set, `try_progress`
    /// "forgets" to record what it sent, reproducing the protocol bug the
    /// `PR002` lint guards against. Never set outside `nicbar-verify`.
    fault_skip_payload_record: bool,
}

impl GroupState {
    fn new(spec: GroupSpec) -> Self {
        let schedule = spec.build_schedule();
        for (r, plan) in schedule.rounds.iter().enumerate() {
            assert!(
                plan.recv_from.len() <= 64,
                "round {r} expects more than 64 messages; widen the bit vector"
            );
        }
        let slots = (0..2 * schedule.num_rounds())
            .map(|i| RoundSlot {
                epoch: 0,
                mask: 0,
                payloads: vec![None; schedule.rounds[i % schedule.num_rounds()].recv_from.len()],
            })
            .collect();
        GroupState {
            spec,
            schedule,
            host_epoch: 0,
            completed: 0,
            live: None,
            slots,
            archive_epoch: None,
            archive: Vec::new(),
            spare_payloads: Vec::new(),
            nacks_sent: 0,
            retransmits: 0,
            rows_history: Vec::new(),
            fault_skip_payload_record: false,
        }
    }

    fn n(&self) -> usize {
        self.spec.members.len()
    }

    fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.spec.members.iter().position(|&m| m == node)
    }

    fn slot_index(&self, epoch: u64, round: usize) -> usize {
        (epoch & 1) as usize * self.schedule.num_rounds() + round
    }

    fn round_satisfied(&self, epoch: u64, round: usize) -> bool {
        let expected = self.schedule.rounds[round].recv_from.len();
        if expected == 0 {
            return true;
        }
        let full: u64 = if expected == 64 {
            u64::MAX
        } else {
            (1u64 << expected) - 1
        };
        let slot = &self.slots[self.slot_index(epoch, round)];
        slot.epoch == epoch && slot.mask & full == full
    }

    /// Fold the consumed round's payloads into the accumulator state.
    fn consume_round(&mut self, epoch: u64, round: usize) {
        if self.schedule.rounds[round].recv_from.is_empty() {
            return;
        }
        let idx = self.slot_index(epoch, round);
        let GroupState {
            spec, live, slots, ..
        } = self;
        let slot = &mut slots[idx];
        debug_assert_eq!(
            slot.epoch, epoch,
            "consuming a round the slot does not hold"
        );
        slot.mask = 0;
        let live = live.as_mut().expect("consume without live epoch");
        for payload in slot.payloads.iter_mut().filter_map(Option::take) {
            match (&spec.op, payload) {
                (GroupOp::Barrier, CollKind::Barrier) => {}
                (GroupOp::Broadcast { .. }, CollKind::Bcast { value }) => {
                    live.acc = value;
                }
                (GroupOp::Allreduce { op }, CollKind::Reduce { value }) => {
                    live.acc = op.combine(live.acc, value);
                }
                (GroupOp::Allgather, CollKind::Gather { base_rank, values }) => {
                    let n = live.gathered.len();
                    for (k, v) in values.into_iter().enumerate() {
                        let r = (base_rank as usize + k) % n;
                        live.gathered[r] = Some(v);
                    }
                }
                (GroupOp::Alltoall, CollKind::AllToAll { items }) => {
                    for item in items {
                        if item.dst as usize == spec.my_rank {
                            live.row[item.origin as usize] = Some(item.value);
                        } else {
                            live.held.push(item);
                        }
                    }
                }
                (op, payload) => {
                    panic!("payload {payload:?} does not match group op {op:?}")
                }
            }
        }
    }

    /// Build the payload for a send in `round`, removing in-transit items
    /// that move this phase (alltoall).
    fn payload_for_round(&mut self, round: usize) -> CollKind {
        if matches!(self.spec.op, GroupOp::Alltoall) {
            // Bruck phase m: forward every held item whose remaining
            // distance to its destination has bit m set.
            let n = self.n();
            let me = self.spec.my_rank;
            let live = self.live.as_mut().expect("send without live epoch");
            let (moving, staying): (Vec<_>, Vec<_>) = live.held.drain(..).partition(|item| {
                let remaining = (item.dst as usize + n - me) % n;
                remaining & (1 << round) != 0
            });
            live.held = staying;
            return CollKind::AllToAll { items: moving };
        }
        let live = self.live.as_ref().expect("send without live epoch");
        match self.spec.op {
            GroupOp::Barrier => CollKind::Barrier,
            GroupOp::Broadcast { .. } => CollKind::Bcast { value: live.acc },
            GroupOp::Allreduce { .. } => CollKind::Reduce { value: live.acc },
            GroupOp::Allgather => {
                // Bruck block sizes: 2^m per round, with the final round
                // truncated to the n − 2^m entries the receiver still lacks.
                let n = self.n();
                let len = (1usize << round).min(n - (1usize << round));
                let me = self.spec.my_rank;
                let base = (me + n - (len - 1)) % n;
                let values: Vec<u64> = (0..len)
                    .map(|k| {
                        let r = (base + k) % n;
                        live.gathered[r].expect("gathered window incomplete at send time")
                    })
                    .collect();
                CollKind::Gather {
                    base_rank: u32::try_from(base).expect("group rank exceeds u32"),
                    values,
                }
            }
            GroupOp::Alltoall => unreachable!("handled by the early return above"),
        }
    }

    /// The operation result delivered with `HostDone`.
    fn result(&self) -> u64 {
        let live = self.live.as_ref().expect("result without live epoch");
        match self.spec.op {
            GroupOp::Barrier => 0,
            GroupOp::Broadcast { .. } | GroupOp::Allreduce { .. } => live.acc,
            GroupOp::Allgather => live
                .gathered
                .iter()
                .map(|v| v.expect("allgather incomplete at completion"))
                .fold(0u64, u64::wrapping_add),
            GroupOp::Alltoall => {
                assert!(
                    live.held.is_empty(),
                    "undelivered alltoall items at completion"
                );
                live.row
                    .iter()
                    .map(|v| v.expect("alltoall row incomplete at completion"))
                    .fold(0u64, u64::wrapping_add)
            }
        }
    }

    /// Drive the round frontier as far as arrivals allow; emit sends and,
    /// on completion, the host notification.
    fn try_progress(&mut self, now: SimTime, my_node: NodeId, actions: &mut ActionBuf) {
        loop {
            let Some(live) = self.live.as_ref() else {
                return;
            };
            let epoch = live.epoch;
            let cause = live.cause;
            let r = live.next_send_round;
            if r > 0 && !self.round_satisfied(epoch, r - 1) {
                return; // stalled: waiting for round r-1 arrivals
            }
            if r > 0 {
                self.consume_round(epoch, r - 1);
            }
            if r == self.schedule.num_rounds() {
                // Every round's arrivals consumed and all sends issued.
                let value = self.result();
                if matches!(self.spec.op, GroupOp::Alltoall) {
                    let row = self
                        .live
                        .as_ref()
                        .expect("checked above")
                        .row
                        .iter()
                        .map(|v| v.expect("checked in result()"))
                        .collect();
                    self.rows_history.push(row);
                }
                let live = self.live.take().expect("checked above");
                // Rotate the payload storage: the just-sent vector becomes
                // the archive (serving late NACKs for this epoch), and the
                // vector it displaces is cleared and kept as the spare the
                // next doorbell will reuse. Steady state: two vectors, zero
                // allocations.
                let mut retired = std::mem::replace(&mut self.archive, live.sent_payloads);
                self.archive_epoch = Some(epoch);
                retired.clear();
                self.spare_payloads = retired;
                self.completed = epoch + 1;
                actions.push(CollAction::HostDone {
                    group: self.spec.id,
                    epoch,
                    value,
                    cause,
                });
                return;
            }
            // Issue round r's sends.
            let payload = if self.schedule.rounds[r].sends.is_empty() {
                None
            } else {
                Some(self.payload_for_round(r))
            };
            let live = self.live.as_mut().expect("checked above");
            live.sent_payloads[r] = if self.fault_skip_payload_record {
                None // injected bug: send without the bit-vector/payload record
            } else {
                payload.clone()
            };
            if let Some(kind) = payload {
                for &dst_rank in &self.schedule.rounds[r].sends {
                    let dst = self.spec.members[dst_rank];
                    actions.push(CollAction::Send {
                        dst,
                        pkt: CollPacket {
                            src: my_node,
                            group: self.spec.id,
                            epoch,
                            round: u16::try_from(r).expect("round exceeds u16 tag width"),
                            kind: kind.clone(),
                        },
                        retx: false,
                        cause,
                    });
                }
            }
            live.next_send_round += 1;
            live.last_progress = now;
        }
    }

    /// Record an arrival (any epoch); duplicates are idempotent.
    fn bank(&mut self, pkt: &CollPacket, sender_rank: usize) {
        let round = pkt.round as usize;
        assert!(round < self.schedule.num_rounds(), "round out of schedule");
        let slot = self
            .schedule
            .recv_slot(round, sender_rank)
            .unwrap_or_else(|| {
                panic!(
                    "rank {} is not an expected sender in round {round} (group {:?})",
                    sender_rank, self.spec.id
                )
            });
        let idx = self.slot_index(pkt.epoch, round);
        let entry = &mut self.slots[idx];
        if entry.epoch != pkt.epoch {
            // Recycle the slot in place. Safe because banking is one epoch
            // deep: before any epoch-e arrival lands, epoch e−2 (the slot's
            // previous same-parity owner) has completed locally, so its
            // arrivals were consumed; any residue here is duplicate
            // retransmissions of a finished epoch.
            debug_assert!(
                entry.mask == 0 || entry.epoch + 2 <= pkt.epoch,
                "parity slot collision: epoch {} arrivals over unconsumed epoch {}",
                pkt.epoch,
                entry.epoch
            );
            entry.epoch = pkt.epoch;
            entry.mask = 0;
            for p in entry.payloads.iter_mut() {
                *p = None;
            }
        }
        if entry.mask & (1u64 << slot) != 0 {
            return; // duplicate retransmission
        }
        entry.mask |= 1u64 << slot;
        entry.payloads[slot] = Some(pkt.kind.clone());
    }
}

/// The NIC-resident collective engine implementing the paper's protocol.
///
/// `Clone` exists for the model checker (`nicbar-verify`), which forks the
/// engine at every explored interleaving point; the simulator itself never
/// clones a NIC.
#[derive(Clone)]
pub struct PaperCollective {
    node: NodeId,
    // BTreeMap, not HashMap: `on_timer` iterates this map and emits NACK
    // sends in iteration order, so the order must be keyed, not hashed.
    groups: BTreeMap<GroupId, GroupState>,
}

impl PaperCollective {
    /// Build the engine for `node` serving the given groups.
    pub fn new(node: NodeId, specs: Vec<GroupSpec>) -> Self {
        let mut groups = BTreeMap::new();
        for spec in specs {
            assert_eq!(
                spec.members[spec.my_rank], node,
                "group {:?}: my_rank does not map to this node",
                spec.id
            );
            let id = spec.id;
            let prev = groups.insert(id, GroupState::new(spec));
            assert!(prev.is_none(), "duplicate group {id:?}");
        }
        PaperCollective { node, groups }
    }

    fn group_mut(&mut self, id: GroupId) -> &mut GroupState {
        self.groups
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown group {id:?}"))
    }

    /// NACKs this NIC has issued (test observability).
    pub fn nacks_sent(&self, id: GroupId) -> u64 {
        self.groups[&id].nacks_sent
    }

    /// NACK-triggered retransmissions served (test observability).
    pub fn retransmits(&self, id: GroupId) -> u64 {
        self.groups[&id].retransmits
    }

    /// Completed epochs for a group (test observability).
    pub fn completed_epochs(&self, id: GroupId) -> u64 {
        self.groups[&id].completed
    }

    /// Completed alltoall rows (per epoch, indexed by origin rank).
    pub fn alltoall_rows(&self, id: GroupId) -> &[Vec<u64>] {
        &self.groups[&id].rows_history
    }

    fn handle_nack(&mut self, pkt: &CollPacket, cause: CauseId, actions: &mut ActionBuf) {
        let my_node = self.node;
        let state = self.group_mut(pkt.group);
        let round = pkt.round as usize;
        let requester = pkt.src;
        debug_assert!(
            state.schedule.rounds[round]
                .sends
                .iter()
                .any(|&r| state.spec.members[r] == requester),
            "NACK from a non-target of round {round}"
        );
        // Locate the payload we sent (or would send) for (epoch, round).
        let archived = |state: &GroupState| -> Option<CollKind> {
            (state.archive_epoch == Some(pkt.epoch))
                .then(|| state.archive[round].clone())
                .flatten()
        };
        let payload: Option<CollKind> = if let Some(live) = state.live.as_ref() {
            if live.epoch == pkt.epoch {
                if round < live.next_send_round {
                    live.sent_payloads[round].clone()
                } else {
                    None // not sent yet; the normal path will deliver it
                }
            } else {
                archived(state)
            }
        } else {
            archived(state)
        };
        if let Some(kind) = payload {
            state.retransmits += 1;
            actions.push(CollAction::Send {
                dst: requester,
                pkt: CollPacket {
                    src: my_node,
                    group: pkt.group,
                    epoch: pkt.epoch,
                    round: pkt.round,
                    kind,
                },
                retx: true,
                cause,
            });
        }
    }
}

/// FNV-1a over the bytes `Hash` implementations feed it — a deterministic,
/// dependency-free 64-bit hasher for protocol-state fingerprints. (The std
/// `DefaultHasher` would work today but its algorithm is explicitly
/// unspecified; fingerprints must be stable across toolchains.)
struct Fnv(u64);

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Model-checker hooks (`nicbar-verify`).
///
/// The checker explores the *real* engine — these methods only expose what
/// exhaustive exploration needs: canonical state identity, machine-checkable
/// invariants, time canonicalization (so states differing only in wall-clock
/// bookkeeping merge), and one injectable protocol bug for validating that
/// the checker actually catches violations.
impl PaperCollective {
    /// Canonical 64-bit fingerprint of the protocol-visible state.
    ///
    /// Excludes observability-only fields (`nacks_sent`, `retransmits`,
    /// `rows_history`), causal bookkeeping (`cause`) and wall-clock pacing
    /// (`last_progress`, which [`PaperCollective::canonicalize_times`]
    /// zeroes before fingerprinting): two states with equal fingerprints
    /// are behaviourally equivalent under the checker's abstract clock.
    pub fn state_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        for (id, g) in &self.groups {
            id.hash(&mut h);
            g.host_epoch.hash(&mut h);
            g.completed.hash(&mut h);
            g.archive_epoch.hash(&mut h);
            g.archive.hash(&mut h);
            match g.live.as_ref() {
                None => 0u8.hash(&mut h),
                Some(l) => {
                    1u8.hash(&mut h);
                    l.epoch.hash(&mut h);
                    l.next_send_round.hash(&mut h);
                    l.acc.hash(&mut h);
                    l.gathered.hash(&mut h);
                    l.held.hash(&mut h);
                    l.row.hash(&mut h);
                    l.sent_payloads.hash(&mut h);
                }
            }
            for s in &g.slots {
                s.epoch.hash(&mut h);
                s.mask.hash(&mut h);
                s.payloads.hash(&mut h);
            }
            g.fault_skip_payload_record.hash(&mut h);
        }
        h.finish()
    }

    /// Zero every live epoch's `last_progress` so states that differ only
    /// in NACK-pacing timestamps collapse to one fingerprint. The checker
    /// calls this after every transition; timer firings are then modelled
    /// as happening exactly at [`NicCollective::next_deadline`].
    pub fn canonicalize_times(&mut self) {
        for g in self.groups.values_mut() {
            if let Some(live) = g.live.as_mut() {
                live.last_progress = SimTime::ZERO;
            }
        }
    }

    /// Machine-checkable protocol invariants, verified by the model checker
    /// after every transition (release builds skip the `debug_assert!`s on
    /// the hot path; these cover the same ground and more, off it).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (id, g) in &self.groups {
            if g.completed > g.host_epoch {
                return Err(format!(
                    "group {id:?}: completed {} epochs but host only entered {}",
                    g.completed, g.host_epoch
                ));
            }
            if let Some(l) = g.live.as_ref() {
                if l.epoch + 1 != g.host_epoch {
                    return Err(format!(
                        "group {id:?}: live epoch {} does not match host epoch {}",
                        l.epoch, g.host_epoch
                    ));
                }
                if l.next_send_round > g.schedule.num_rounds() {
                    return Err(format!(
                        "group {id:?}: send frontier {} beyond the {}-round schedule",
                        l.next_send_round,
                        g.schedule.num_rounds()
                    ));
                }
                if l.sent_payloads.len() != g.schedule.num_rounds() {
                    return Err(format!(
                        "group {id:?}: sent_payloads sized {} for a {}-round schedule",
                        l.sent_payloads.len(),
                        g.schedule.num_rounds()
                    ));
                }
                for r in 0..l.next_send_round {
                    if !g.schedule.rounds[r].sends.is_empty() && l.sent_payloads[r].is_none() {
                        return Err(format!(
                            "group {id:?}: round {r} sends issued without a sent_payloads \
                             record — NACKs for this round can never be served"
                        ));
                    }
                }
            }
            for (i, s) in g.slots.iter().enumerate() {
                let round = i % g.schedule.num_rounds();
                let expected = g.schedule.rounds[round].recv_from.len();
                let full: u64 = if expected == 0 {
                    0
                } else if expected == 64 {
                    u64::MAX
                } else {
                    (1u64 << expected) - 1
                };
                if s.mask & !full != 0 {
                    return Err(format!(
                        "group {id:?}: slot {i} bit vector {:#x} has bits beyond the {} \
                         expected senders of round {round}",
                        s.mask, expected
                    ));
                }
                for (slot, p) in s.payloads.iter().enumerate() {
                    let have = s.mask & (1u64 << slot) != 0;
                    if have && p.is_none() {
                        return Err(format!(
                            "group {id:?}: slot {i} mask bit {slot} set without a banked \
                             payload"
                        ));
                    }
                    if !have && p.is_some() {
                        return Err(format!(
                            "group {id:?}: slot {i} holds a payload at {slot} outside its \
                             bit vector"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Inject the `skip-payload-record` protocol bug into every group (see
    /// [`GroupState::fault_skip_payload_record`]). Model-checker use only.
    #[doc(hidden)]
    pub fn inject_skip_payload_record(&mut self) {
        for g in self.groups.values_mut() {
            g.fault_skip_payload_record = true;
        }
    }
}

impl NicCollective for PaperCollective {
    fn on_doorbell(
        &mut self,
        now: SimTime,
        group: GroupId,
        epoch: u64,
        operand: &CollOperand,
        cause: CauseId,
        actions: &mut ActionBuf,
    ) {
        let my_node = self.node;
        let state = self.group_mut(group);
        assert_eq!(
            epoch, state.host_epoch,
            "doorbell epoch out of order (group {group:?})"
        );
        assert!(
            state.live.is_none(),
            "host entered group {group:?} before the previous operation completed"
        );
        state.host_epoch += 1;
        let n = state.n();
        let me = state.spec.my_rank;
        let mut gathered = vec![
            None;
            if matches!(state.spec.op, GroupOp::Allgather) {
                n
            } else {
                0
            }
        ];
        let mut held = Vec::new();
        let mut row = Vec::new();
        let acc = match state.spec.op {
            GroupOp::Barrier => 0,
            GroupOp::Broadcast { root } => {
                if me == root {
                    operand.scalar()
                } else {
                    0
                }
            }
            GroupOp::Allreduce { .. } => operand.scalar(),
            GroupOp::Allgather => {
                gathered[me] = Some(operand.scalar());
                0
            }
            GroupOp::Alltoall => {
                let CollOperand::Vector(values) = operand else {
                    panic!("alltoall requires a vector operand (one value per rank)");
                };
                assert_eq!(
                    values.len(),
                    n,
                    "alltoall operand must have one value per rank"
                );
                row = vec![None; n];
                row[me] = Some(values[me]);
                held = values
                    .iter()
                    .enumerate()
                    .filter(|&(dst, _)| dst != me)
                    .map(|(dst, &value)| AllToAllItem {
                        origin: u32::try_from(me).expect("group rank exceeds u32"),
                        dst: u32::try_from(dst).expect("group rank exceeds u32"),
                        value,
                    })
                    .collect();
                0
            }
        };
        let rounds = state.schedule.num_rounds();
        // Reuse the vector retired by the completion before last; only the
        // first two doorbells ever allocate it.
        let mut sent_payloads = std::mem::take(&mut state.spare_payloads);
        sent_payloads.clear();
        sent_payloads.resize(rounds, None);
        state.live = Some(LiveEpoch {
            epoch,
            next_send_round: 0,
            acc,
            gathered,
            held,
            row,
            last_progress: now,
            sent_payloads,
            cause,
        });
        state.try_progress(now, my_node, actions);
    }

    fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &CollPacket,
        cause: CauseId,
        actions: &mut ActionBuf,
    ) {
        if matches!(pkt.kind, CollKind::Nack) {
            self.handle_nack(pkt, cause, actions);
            return;
        }
        if matches!(pkt.kind, CollKind::Ack) {
            return; // NIC-level ablation traffic; no protocol state
        }
        let my_node = self.node;
        let state = self.group_mut(pkt.group);
        let sender_rank = state
            .rank_of(pkt.src)
            .unwrap_or_else(|| panic!("packet from non-member {:?}", pkt.src));
        debug_assert!(
            pkt.epoch <= state.host_epoch,
            "arrival more than one epoch ahead (epoch {}, host at {})",
            pkt.epoch,
            state.host_epoch
        );
        if pkt.epoch < state.completed {
            return; // stale duplicate of a finished epoch
        }
        state.bank(pkt, sender_rank);
        // This arrival is the epoch's latest stimulus: anything the
        // progress sweep emits was enabled (last) by it.
        if let Some(live) = state.live.as_mut() {
            if live.epoch == pkt.epoch {
                live.cause = cause;
            }
        }
        state.try_progress(now, my_node, actions);
    }

    fn on_timer(&mut self, now: SimTime, actions: &mut ActionBuf) {
        let my_node = self.node;
        for state in self.groups.values_mut() {
            let Some(live) = state.live.as_ref() else {
                continue;
            };
            if now.saturating_sub(live.last_progress) < state.spec.timeout {
                continue;
            }
            let epoch = live.epoch;
            // Timer NACKs are a detour off the stalled epoch: parent them on
            // the record that last advanced it, so the analyzer's chain shows
            // stall → nack → retransmit → arrival in causal order.
            let stall_cause = live.cause;
            let r = live.next_send_round;
            if r == 0 {
                continue; // nothing expected yet
            }
            let stall_round = r - 1;
            let idx = state.slot_index(epoch, stall_round);
            let have = {
                let bank = &state.slots[idx];
                if bank.epoch == epoch {
                    bank.mask
                } else {
                    0
                }
            };
            // Indexed iteration, not a clone of `recv_from`: the NACK path
            // must not allocate either (a lossy steady state is still a
            // steady state).
            for slot in 0..state.schedule.rounds[stall_round].recv_from.len() {
                if have & (1u64 << slot) != 0 {
                    continue;
                }
                let sender_rank = state.schedule.rounds[stall_round].recv_from[slot];
                state.nacks_sent += 1;
                actions.push(CollAction::Send {
                    dst: state.spec.members[sender_rank],
                    pkt: CollPacket {
                        src: my_node,
                        group: state.spec.id,
                        epoch,
                        round: u16::try_from(stall_round).expect("round exceeds u16 tag width"),
                        kind: CollKind::Nack,
                    },
                    retx: false,
                    cause: stall_cause,
                });
            }
            // Pace further NACKs by restarting the timeout window.
            state.live.as_mut().expect("checked above").last_progress = now;
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.groups
            .values()
            .filter_map(|s| s.live.as_ref().map(|l| l.last_progress + s.spec.timeout))
            .min()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
mod tests {
    use super::*;

    fn members(n: usize) -> Arc<[NodeId]> {
        (0..n).map(NodeId).collect()
    }

    fn barrier_engine(n: usize, rank: usize) -> PaperCollective {
        let spec = GroupSpec::barrier(
            GroupId(1),
            members(n),
            rank,
            Algorithm::Dissemination,
            SimTime::from_us(100.0),
        );
        PaperCollective::new(NodeId(rank), vec![spec])
    }

    // Collect-into-Vec shims over the out-param API, so assertions can
    // stay slice-shaped.
    fn doorbell(
        e: &mut PaperCollective,
        now: SimTime,
        group: GroupId,
        epoch: u64,
        operand: &CollOperand,
    ) -> Vec<CollAction> {
        let mut buf = ActionBuf::new();
        e.on_doorbell(now, group, epoch, operand, CauseId::NONE, &mut buf);
        buf.drain().collect()
    }

    fn packet(e: &mut PaperCollective, now: SimTime, pkt: &CollPacket) -> Vec<CollAction> {
        let mut buf = ActionBuf::new();
        e.on_packet(now, pkt, CauseId::NONE, &mut buf);
        buf.drain().collect()
    }

    fn timer(e: &mut PaperCollective, now: SimTime) -> Vec<CollAction> {
        let mut buf = ActionBuf::new();
        e.on_timer(now, &mut buf);
        buf.drain().collect()
    }

    #[test]
    fn doorbell_emits_round_zero_sends() {
        let mut e = barrier_engine(4, 0);
        let actions = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        // Dissemination round 0: send to rank 1; no completion yet.
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CollAction::Send { dst, pkt, retx, .. } => {
                assert_eq!(*dst, NodeId(1));
                assert_eq!(pkt.round, 0);
                assert_eq!(pkt.kind, CollKind::Barrier);
                assert!(!retx);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn in_order_arrivals_complete_a_barrier() {
        // Drive rank 0 of a 4-rank dissemination barrier by hand: expects
        // round 0 from rank 3, round 1 from rank 2.
        let mut e = barrier_engine(4, 0);
        let a0 = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        assert_eq!(a0.len(), 1);
        let from3 = CollPacket {
            src: NodeId(3),
            group: GroupId(1),
            epoch: 0,
            round: 0,
            kind: CollKind::Barrier,
        };
        let a1 = packet(&mut e, SimTime::from_us(1.0), &from3);
        // Round 0 satisfied → round 1 send to rank 2.
        assert_eq!(a1.len(), 1);
        assert!(matches!(&a1[0], CollAction::Send { dst, .. } if *dst == NodeId(2)));
        let from2 = CollPacket {
            src: NodeId(2),
            group: GroupId(1),
            epoch: 0,
            round: 1,
            kind: CollKind::Barrier,
        };
        let a2 = packet(&mut e, SimTime::from_us(2.0), &from2);
        assert_eq!(a2.len(), 1);
        assert!(matches!(
            &a2[0],
            CollAction::HostDone {
                epoch: 0,
                value: 0,
                ..
            }
        ));
        assert_eq!(e.completed_epochs(GroupId(1)), 1);
    }

    #[test]
    fn out_of_order_and_early_epoch_arrivals_are_banked() {
        let mut e = barrier_engine(4, 0);
        // Round 1 message arrives before the doorbell and before round 0.
        let from2 = CollPacket {
            src: NodeId(2),
            group: GroupId(1),
            epoch: 0,
            round: 1,
            kind: CollKind::Barrier,
        };
        assert!(packet(&mut e, SimTime::ZERO, &from2).is_empty());
        let from3 = CollPacket {
            src: NodeId(3),
            group: GroupId(1),
            epoch: 0,
            round: 0,
            kind: CollKind::Barrier,
        };
        assert!(packet(&mut e, SimTime::ZERO, &from3).is_empty());
        // The doorbell now releases the whole chain to completion at once.
        let actions = doorbell(
            &mut e,
            SimTime::from_us(5.0),
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        let sends = actions
            .iter()
            .filter(|a| matches!(a, CollAction::Send { .. }))
            .count();
        let dones = actions
            .iter()
            .filter(|a| matches!(a, CollAction::HostDone { .. }))
            .count();
        assert_eq!(sends, 2, "round 0 and round 1 sends");
        assert_eq!(dones, 1);
    }

    #[test]
    fn duplicate_arrivals_are_idempotent() {
        let mut e = barrier_engine(4, 0);
        let _ = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        let from3 = CollPacket {
            src: NodeId(3),
            group: GroupId(1),
            epoch: 0,
            round: 0,
            kind: CollKind::Barrier,
        };
        let a1 = packet(&mut e, SimTime::ZERO, &from3);
        let a2 = packet(&mut e, SimTime::ZERO, &from3);
        assert_eq!(a1.len(), 1);
        assert!(a2.is_empty(), "duplicate must not re-trigger sends");
    }

    #[test]
    fn parity_slots_recycle_across_epochs() {
        // A 2-rank barrier has one round (recv from the peer). Run many
        // epochs, always delivering the peer's packet one epoch early (the
        // deepest banking the protocol allows), so every epoch exercises
        // slot retagging on both parities.
        let spec = GroupSpec::barrier(
            GroupId(1),
            members(2),
            0,
            Algorithm::Dissemination,
            SimTime::from_us(100.0),
        );
        let mut e = PaperCollective::new(NodeId(0), vec![spec]);
        // Epoch 0's arrival lands before its doorbell.
        let peer = |epoch| CollPacket {
            src: NodeId(1),
            group: GroupId(1),
            epoch,
            round: 0,
            kind: CollKind::Barrier,
        };
        assert!(packet(&mut e, SimTime::ZERO, &peer(0)).is_empty());
        for epoch in 0..64 {
            let t = SimTime::from_us(epoch as f64);
            let actions = doorbell(&mut e, t, GroupId(1), epoch, &CollOperand::Scalar(0));
            // Arrival already banked → send + completion in one sweep.
            assert_eq!(actions.len(), 2, "epoch {epoch}: {actions:?}");
            assert!(matches!(actions[1], CollAction::HostDone { .. }));
            // Bank the next epoch's arrival early (one epoch ahead).
            assert!(packet(&mut e, t, &peer(epoch + 1)).is_empty());
        }
        assert_eq!(e.completed_epochs(GroupId(1)), 64);
    }

    #[test]
    fn timer_nacks_exactly_the_missing_sender() {
        let mut e = barrier_engine(4, 0);
        let _ = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        // Nothing arrived; after the timeout the stall round is 0 and the
        // missing sender is rank 3.
        let actions = timer(&mut e, SimTime::from_us(150.0));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CollAction::Send { dst, pkt, retx, .. } => {
                assert_eq!(*dst, NodeId(3));
                assert_eq!(pkt.kind, CollKind::Nack);
                assert_eq!(pkt.round, 0);
                assert!(!retx, "a first-time NACK is not a retransmission");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.nacks_sent(GroupId(1)), 1);
        // Immediately after, the window restarts: no NACK storm.
        assert!(timer(&mut e, SimTime::from_us(151.0)).is_empty());
    }

    #[test]
    fn nacked_sender_retransmits_from_bit_vector() {
        let mut e = barrier_engine(4, 1);
        let _ = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        // Rank 2 claims it never got our round-0 message.
        let nack = CollPacket {
            src: NodeId(2),
            group: GroupId(1),
            epoch: 0,
            round: 0,
            kind: CollKind::Nack,
        };
        let actions = packet(&mut e, SimTime::from_us(200.0), &nack);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CollAction::Send { dst, pkt, retx, .. } => {
                assert_eq!(*dst, NodeId(2));
                assert_eq!(pkt.kind, CollKind::Barrier);
                assert_eq!(pkt.round, 0);
                assert!(*retx, "a NACK-triggered resend must be flagged retx");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.retransmits(GroupId(1)), 1);
    }

    #[test]
    fn nack_for_unsent_round_is_ignored() {
        let mut e = barrier_engine(4, 1);
        let _ = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        // Round 1 not sent yet (round 0 arrival missing).
        let nack = CollPacket {
            src: NodeId(3),
            group: GroupId(1),
            epoch: 0,
            round: 1,
            kind: CollKind::Nack,
        };
        assert!(packet(&mut e, SimTime::from_us(200.0), &nack).is_empty());
        assert_eq!(e.retransmits(GroupId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "before the previous operation completed")]
    fn pipelined_doorbells_rejected() {
        let mut e = barrier_engine(4, 0);
        let _ = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            0,
            &CollOperand::Scalar(0),
        );
        let _ = doorbell(
            &mut e,
            SimTime::ZERO,
            GroupId(1),
            1,
            &CollOperand::Scalar(0),
        );
    }

    #[test]
    fn two_rank_allreduce_sums() {
        let spec = |rank| GroupSpec {
            id: GroupId(2),
            members: members(2),
            my_rank: rank,
            op: GroupOp::Allreduce { op: ReduceOp::Sum },
            algo: Algorithm::Dissemination,
            timeout: SimTime::from_us(100.0),
        };
        let mut e0 = PaperCollective::new(NodeId(0), vec![spec(0)]);
        let a = doorbell(
            &mut e0,
            SimTime::ZERO,
            GroupId(2),
            0,
            &CollOperand::Scalar(10),
        );
        // Round 0 send carries our contribution.
        let sent = a
            .iter()
            .find_map(|x| match x {
                CollAction::Send { pkt, .. } => Some(pkt.kind.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(sent, CollKind::Reduce { value: 10 });
        // Peer's contribution arrives.
        let from1 = CollPacket {
            src: NodeId(1),
            group: GroupId(2),
            epoch: 0,
            round: 0,
            kind: CollKind::Reduce { value: 32 },
        };
        let done = packet(&mut e0, SimTime::from_us(1.0), &from1);
        assert!(matches!(done[0], CollAction::HostDone { value: 42, .. }));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn sum_allreduce_rejects_non_power_of_two() {
        let spec = GroupSpec {
            id: GroupId(3),
            members: members(6),
            my_rank: 0,
            op: GroupOp::Allreduce { op: ReduceOp::Sum },
            algo: Algorithm::Dissemination,
            timeout: SimTime::from_us(100.0),
        };
        let _ = PaperCollective::new(NodeId(0), vec![spec]);
    }

    #[test]
    fn reduce_op_semantics() {
        assert_eq!(ReduceOp::Sum.combine(2, 3), 5);
        assert_eq!(ReduceOp::Min.combine(2, 3), 2);
        assert_eq!(ReduceOp::Max.combine(2, 3), 3);
        assert_eq!(ReduceOp::BitOr.combine(0b01, 0b10), 0b11);
        assert!(!ReduceOp::Sum.tolerates_overlap());
        assert!(ReduceOp::Min.tolerates_overlap());
    }
}
