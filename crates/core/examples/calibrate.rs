//! Calibration probe (maintainer tool): prints simulated latencies next to
//! the paper's target anchors for every cluster preset. Used when adjusting
//! `GmParams` / `ElanParams` constants; the regression bands live in
//! `tests/reproduction.rs`.
//!
//! ```text
//! cargo run -p nicbar-core --release --example calibrate
//! ```
use nicbar_core::*;
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let cfg = RunCfg {
        warmup: 50,
        iters: 300,
        ..RunCfg::default()
    };
    println!("== Myrinet LANai-XP (targets: NIC@8=14.20, host@8=37.5, factor 2.64) ==");
    for n in [2, 4, 8] {
        let nic = gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let host = gm_host_barrier(
            GmParams::lanai_xp(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        println!(
            "n={n:2}  NIC-DS {:6.2}  Host-DS {:6.2}  factor {:.2}",
            nic.mean_us,
            host.mean_us,
            host.mean_us / nic.mean_us
        );
    }
    println!("== Myrinet LANai-9.1 (targets: NIC@16=25.72, host@16=86.9, factor 3.38) ==");
    for n in [2, 8, 16] {
        let nic = gm_nic_barrier(
            GmParams::lanai_9_1(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let host = gm_host_barrier(
            GmParams::lanai_9_1(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        println!(
            "n={n:2}  NIC-DS {:6.2}  Host-DS {:6.2}  factor {:.2}",
            nic.mean_us,
            host.mean_us,
            host.mean_us / nic.mean_us
        );
    }
    println!("== Quadrics Elan3 (targets: NIC@8=5.60, gsync@8=13.9 (2.48x), hw=4.20) ==");
    for n in [2, 4, 8] {
        let nic = elan_nic_barrier(
            ElanParams::elan3(),
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        let gs = elan_gsync_barrier(ElanParams::elan3(), n, 4, cfg.clone());
        let hw = elan_hw_barrier(ElanParams::elan3(), n, cfg.clone());
        println!(
            "n={n:2}  NIC-DS {:6.2}  gsync {:6.2}  hw {:6.2}  factor {:.2}",
            nic.mean_us,
            gs.mean_us,
            hw.mean_us,
            gs.mean_us / nic.mean_us
        );
    }
    println!("== 1024-node projections (targets: Quadrics 22.13, Myrinet 38.94) ==");
    let q = elan_nic_barrier(
        ElanParams::elan3(),
        1024,
        Algorithm::Dissemination,
        RunCfg {
            warmup: 5,
            iters: 20,
            ..cfg.clone()
        },
    );
    let m = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        1024,
        Algorithm::Dissemination,
        RunCfg {
            warmup: 5,
            iters: 20,
            ..cfg
        },
    );
    println!(
        "Quadrics@1024 {:6.2}   Myrinet@1024 {:6.2}",
        q.mean_us, m.mean_us
    );
}
