//! Receiver-driven retransmission statistics, tested at two levels:
//!
//! * unit level — drive two [`PaperCollective`] state machines by hand,
//!   withhold one packet, and check that the `nacks_sent` / `retransmits`
//!   accessors count exactly the injected loss;
//! * cluster level — run a lossy GM barrier with the flight recorder on
//!   and check that the `nack` / `retransmit` span events in the trace
//!   agree with the engine counters.

use nicbar_core::{
    gm_nic_barrier_flight, Algorithm, GroupSpec, PaperCollective, RunCfg, BARRIER_GROUP,
};
use nicbar_gm::{
    ActionBuf, CollAction, CollFeatures, CollKind, CollOperand, GmParams, NicCollective,
};
use nicbar_net::NodeId;
use nicbar_sim::{CauseId, SimTime};

const TIMEOUT: SimTime = SimTime(10_000);

fn barrier_pair() -> (PaperCollective, PaperCollective) {
    let members = vec![NodeId(0), NodeId(1)];
    let mk = |rank: usize| {
        PaperCollective::new(
            members[rank],
            vec![GroupSpec::barrier(
                BARRIER_GROUP,
                members.clone(),
                rank,
                Algorithm::Dissemination,
                TIMEOUT,
            )],
        )
    };
    (mk(0), mk(1))
}

#[test]
fn withheld_packet_drives_exactly_one_nack_and_one_retransmit() {
    let (mut c0, mut c1) = barrier_pair();
    let t0 = SimTime::ZERO;
    let op = CollOperand::Scalar(0);

    let drain = |buf: &mut ActionBuf| buf.drain().collect::<Vec<_>>();
    let mut buf = ActionBuf::new();

    // Both ranks enter the barrier; 2-node dissemination is one round with
    // one send each way.
    c0.on_doorbell(t0, BARRIER_GROUP, 0, &op, CauseId::NONE, &mut buf);
    let a0 = drain(&mut buf);
    c1.on_doorbell(t0, BARRIER_GROUP, 0, &op, CauseId::NONE, &mut buf);
    let a1 = drain(&mut buf);
    let sends = |actions: &[CollAction]| {
        actions
            .iter()
            .filter(|a| matches!(a, CollAction::Send { .. }))
            .count()
    };
    assert_eq!(sends(&a0), 1);
    assert_eq!(sends(&a1), 1);

    // Deliver rank 1's packet to rank 0 normally; *drop* rank 0's packet
    // to rank 1 (the injected loss).
    let pkt_1to0 = match &a1[0] {
        CollAction::Send { pkt, .. } => pkt.clone(),
        other => panic!("expected a send, got {other:?}"),
    };
    c0.on_packet(SimTime(1_000), &pkt_1to0, CauseId::NONE, &mut buf);
    let done0 = drain(&mut buf);
    assert!(
        done0
            .iter()
            .any(|a| matches!(a, CollAction::HostDone { .. })),
        "rank 0 has both arrivals and completes"
    );

    // Rank 1's timer expires on the missing round-0 packet: one NACK back
    // to rank 0.
    assert!(c1.next_deadline().is_some(), "deadline armed while waiting");
    c1.on_timer(SimTime(20_000), &mut buf);
    let nacks = drain(&mut buf);
    let nack_pkt = match &nacks[..] {
        [CollAction::Send { pkt, retx, .. }] => {
            assert_eq!(pkt.kind, CollKind::Nack);
            assert!(!retx, "a first-time NACK is not a retransmission");
            pkt.clone()
        }
        other => panic!("expected exactly one NACK send, got {other:?}"),
    };
    assert_eq!(c1.nacks_sent(BARRIER_GROUP), 1);

    // The NACK reaches rank 0, which retransmits from its static packet.
    c0.on_packet(SimTime(21_000), &nack_pkt, CauseId::NONE, &mut buf);
    let retx_actions = drain(&mut buf);
    let retx_pkt = match &retx_actions[..] {
        [CollAction::Send { pkt, retx, dst, .. }] => {
            assert_eq!(*dst, NodeId(1));
            assert_eq!(pkt.kind, CollKind::Barrier);
            assert!(*retx, "a NACK-triggered resend must be flagged retx");
            pkt.clone()
        }
        other => panic!("expected exactly one retransmission, got {other:?}"),
    };
    assert_eq!(c0.retransmits(BARRIER_GROUP), 1);

    // The retransmission completes rank 1. Exactly one loss was injected;
    // the accessors report exactly one NACK and one retransmission.
    c1.on_packet(SimTime(22_000), &retx_pkt, CauseId::NONE, &mut buf);
    let done1 = drain(&mut buf);
    assert!(done1
        .iter()
        .any(|a| matches!(a, CollAction::HostDone { epoch: 0, .. })));
    assert_eq!(c0.nacks_sent(BARRIER_GROUP), 0);
    assert_eq!(c1.retransmits(BARRIER_GROUP), 0);
    assert_eq!(c1.nacks_sent(BARRIER_GROUP), 1);
    assert_eq!(c0.retransmits(BARRIER_GROUP), 1);
}

#[test]
fn lossy_run_span_events_agree_with_counters() {
    let cfg = RunCfg {
        warmup: 2,
        iters: 10,
        drop_prob: 0.05,
        seed: 7,
        ..RunCfg::default()
    };
    let n = 8;
    let cap = gm_nic_barrier_flight(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    assert_eq!(cap.trace_dropped, 0, "counting needs a complete trace");

    let count = |label: &str| cap.records.iter().filter(|r| r.label() == label).count() as u64;
    let nack_spans = count("nack");
    let retx_spans = count("retransmit");
    assert!(
        cap.stats.counter("wire.dropped") > 0 && nack_spans > 0,
        "5% loss must drop packets and trigger NACKs"
    );

    // Every NACK launch emits one `nack` span, one `gm.nack_sent` bump at
    // the NIC, and one `wire.coll_nack` bump at the fabric.
    assert_eq!(nack_spans, cap.stats.counter("gm.nack_sent"));
    assert_eq!(nack_spans, cap.stats.counter("wire.coll_nack"));

    // Retransmissions are barrier-kind launches beyond the schedule's
    // first-time sends (8-node dissemination: 3 rounds × 8 ranks per
    // epoch), and each one emits a `retransmit` span.
    let first_time = 24 * cfg.total();
    assert_eq!(retx_spans, cap.stats.counter("gm.coll_sent") - first_time);
    assert!(retx_spans > 0, "dropped barrier packets must be resent");
}
