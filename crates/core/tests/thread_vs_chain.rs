//! The §7 design choice, measured: chained RDMA descriptors vs a NIC
//! thread for the barrier, and the thread-based allreduce that chains
//! cannot express.

use nicbar_core::{
    elan_nic_barrier, elan_thread_allreduce, elan_thread_barrier, Algorithm, ReduceOp, RunCfg,
};
use nicbar_elan::ElanParams;

fn cfg() -> RunCfg {
    RunCfg {
        warmup: 20,
        iters: 300,
        ..RunCfg::default()
    }
}

#[test]
fn thread_barrier_completes_and_is_correct() {
    for n in [2usize, 3, 5, 8] {
        let s = elan_thread_barrier(ElanParams::elan3(), n, cfg());
        assert!(
            s.mean_us > 1.0 && s.mean_us < 25.0,
            "n={n}: {:.2}µs",
            s.mean_us
        );
    }
}

#[test]
fn chained_descriptors_beat_the_thread_barrier() {
    // "an extra thread does increase the processing load to the Elan NIC"
    // (§7) — the reason the paper chose chains. Quantified: the thread
    // barrier must be measurably slower at every size.
    for n in [2usize, 4, 8, 16] {
        let chain = elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, cfg());
        let thread = elan_thread_barrier(ElanParams::elan3(), n, cfg());
        assert!(
            thread.mean_us > chain.mean_us * 1.1,
            "n={n}: thread {:.2}µs should clearly exceed chain {:.2}µs",
            thread.mean_us,
            chain.mean_us
        );
        assert!(
            thread.mean_us < chain.mean_us * 2.0,
            "n={n}: thread {:.2}µs implausibly worse than chain {:.2}µs",
            thread.mean_us,
            chain.mean_us
        );
    }
}

#[test]
fn thread_allreduce_computes_sums() {
    let (stats, results) = elan_thread_allreduce(
        ElanParams::elan3(),
        8,
        cfg(),
        ReduceOp::Sum,
        |rank, epoch| (rank as u64 + 1) * (epoch + 1),
    );
    assert!(stats.mean_us > 1.0);
    let total = cfg().total();
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(r.len() as u64, total, "rank {rank}");
        for (e, &v) in r.iter().enumerate() {
            assert_eq!(v, 36 * (e as u64 + 1), "rank {rank}, epoch {e}");
        }
    }
}

#[test]
fn thread_allreduce_max_any_size() {
    let (_, results) = elan_thread_allreduce(
        ElanParams::elan3(),
        6,
        RunCfg {
            warmup: 2,
            iters: 20,
            ..RunCfg::default()
        },
        ReduceOp::Max,
        |rank, epoch| 100 * epoch + rank as u64,
    );
    for r in &results {
        for (e, &v) in r.iter().enumerate() {
            assert_eq!(v, 100 * e as u64 + 5);
        }
    }
}

#[test]
fn thread_allreduce_is_cheap_relative_to_host_round_trips() {
    // The point of ref \[14\]: NIC-side combining costs barely more than the
    // NIC barrier itself — far below what log₂N host round trips would.
    let barrier = elan_thread_barrier(ElanParams::elan3(), 8, cfg());
    let (reduce, _) =
        elan_thread_allreduce(ElanParams::elan3(), 8, cfg(), ReduceOp::Sum, |rank, _| {
            rank as u64
        });
    assert!(
        reduce.mean_us < barrier.mean_us * 1.3,
        "allreduce {:.2}µs should cost ≈ the thread barrier {:.2}µs",
        reduce.mean_us,
        barrier.mean_us
    );
}

#[test]
fn thread_runs_are_deterministic() {
    let a = elan_thread_barrier(ElanParams::elan3(), 8, cfg());
    let b = elan_thread_barrier(ElanParams::elan3(), 8, cfg());
    assert_eq!(a.mean_us, b.mean_us);
}
