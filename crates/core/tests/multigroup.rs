//! Multiple collective groups sharing NICs concurrently — the protocol
//! must keep per-group state (queues, bit vectors, epochs) fully isolated.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code

use nicbar_core::host_app::BarrierLog;
use nicbar_core::{Algorithm, GroupSpec, PaperCollective};
use nicbar_gm::{GmApi, GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, MsgTag, NicCollective};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};

const GLOBAL: GroupId = GroupId(1);
const EVENS: GroupId = GroupId(2);

/// Runs `iters` barriers on every group it belongs to, independently and
/// concurrently (a new barrier on a group starts as soon as the previous
/// one on *that group* completes).
struct MultiGroupApp {
    groups: Vec<GroupId>,
    iters: u64,
    done: Vec<u64>,
    logs: Vec<BarrierLog>,
}

impl MultiGroupApp {
    fn new(groups: Vec<GroupId>, iters: u64) -> Self {
        let k = groups.len();
        MultiGroupApp {
            groups,
            iters,
            done: vec![0; k],
            logs: vec![BarrierLog::default(); k],
        }
    }
}

impl GmApp for MultiGroupApp {
    fn on_start(&mut self, api: &mut GmApi<'_>) {
        for &g in &self.groups {
            api.collective(g, 0);
        }
    }
    fn on_recv(&mut self, _api: &mut GmApi<'_>, _src: NodeId, _tag: MsgTag, _len: u32) {
        panic!("unexpected p2p message");
    }
    fn on_coll_done(&mut self, api: &mut GmApi<'_>, group: GroupId, epoch: u64, _value: u64) {
        let idx = self
            .groups
            .iter()
            .position(|&g| g == group)
            .expect("completion for unknown group");
        assert_eq!(epoch, self.done[idx], "per-group epochs must be ordered");
        self.done[idx] += 1;
        self.logs[idx].completions.push(api.now());
        if self.done[idx] < self.iters {
            api.collective(group, 0);
        }
    }
}

#[test]
fn overlapping_groups_interleave_without_crosstalk() {
    let n = 8;
    let iters = 100;
    let all: Vec<NodeId> = (0..n).map(NodeId).collect();
    let evens: Vec<NodeId> = (0..n).step_by(2).map(NodeId).collect();

    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(77);
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for node in 0..n {
        let mut groups = vec![GLOBAL];
        let mut specs = vec![GroupSpec::barrier(
            GLOBAL,
            all.clone(),
            node,
            Algorithm::Dissemination,
            SimTime::from_us(400.0),
        )];
        if node % 2 == 0 {
            groups.push(EVENS);
            specs.push(GroupSpec::barrier(
                EVENS,
                evens.clone(),
                node / 2,
                Algorithm::PairwiseExchange,
                SimTime::from_us(400.0),
            ));
        }
        apps.push(Box::new(MultiGroupApp::new(groups, iters)));
        colls.push(Box::new(PaperCollective::new(NodeId(node), specs)));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    let outcome = cluster.run_until(SimTime::from_us(10_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle);

    // Every member completed every barrier on every group it belongs to.
    for node in 0..n {
        let app = cluster.app_ref::<MultiGroupApp>(node);
        for (i, &d) in app.done.iter().enumerate() {
            assert_eq!(d, iters, "node {node}, group index {i}");
        }
    }

    // Barrier safety per group, across the union of logs.
    for (gidx, group_members) in [(0usize, all.clone()), (1, evens.clone())] {
        let logs: Vec<&Vec<SimTime>> = group_members
            .iter()
            .filter_map(|&m| {
                let app = cluster.app_ref::<MultiGroupApp>(m.0);
                app.logs.get(gidx).map(|l| &l.completions)
            })
            .collect();
        let logs: Vec<&Vec<SimTime>> = logs.into_iter().filter(|l| !l.is_empty()).collect();
        for k in 1..iters as usize {
            let min_k = logs.iter().map(|l| l[k]).min().unwrap();
            let max_prev = logs.iter().map(|l| l[k - 1]).max().unwrap();
            assert!(
                min_k >= max_prev,
                "group index {gidx}: safety violated at epoch {k}"
            );
        }
    }

    // The small group, running a shorter schedule, should lap the global
    // group: its 100 barriers finish first.
    let app0 = cluster.app_ref::<MultiGroupApp>(0);
    let evens_finish = app0.logs[1].completions.last().unwrap();
    let global_finish = app0.logs[0].completions.last().unwrap();
    assert!(
        evens_finish < global_finish,
        "4-rank group ({evens_finish}) should outpace the 8-rank group ({global_finish})"
    );
}

#[test]
fn disjoint_groups_run_fully_independently() {
    // Two disjoint 4-rank groups on one 8-node cluster.
    let n = 8;
    let iters = 50;
    let low: Vec<NodeId> = (0..4).map(NodeId).collect();
    let high: Vec<NodeId> = (4..8).map(NodeId).collect();
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(78);
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for node in 0..n {
        let (gid, members, rank) = if node < 4 {
            (GLOBAL, low.clone(), node)
        } else {
            (EVENS, high.clone(), node - 4)
        };
        apps.push(Box::new(MultiGroupApp::new(vec![gid], iters)));
        colls.push(Box::new(PaperCollective::new(
            NodeId(node),
            vec![GroupSpec::barrier(
                gid,
                members,
                rank,
                Algorithm::Dissemination,
                SimTime::from_us(400.0),
            )],
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    assert_eq!(
        cluster.run_until(SimTime::from_us(10_000_000.0)),
        RunOutcome::Idle
    );
    for node in 0..n {
        assert_eq!(cluster.app_ref::<MultiGroupApp>(node).done[0], iters);
    }
    // Two disjoint 4-rank dissemination groups: 2 × 4 × 2 packets per barrier.
    assert_eq!(
        cluster.engine.counters().get("wire.coll"),
        2 * 4 * 2 * iters
    );
}
