//! End-to-end barrier tests across both substrates: correctness, packet
//! accounting, loss recovery, epoch overlap and determinism.

use nicbar_core::{
    elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier, gm_host_barrier, gm_nic_barrier,
    Algorithm, RunCfg,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn quick() -> RunCfg {
    RunCfg {
        warmup: 10,
        iters: 50,
        ..RunCfg::default()
    }
}

#[test]
fn gm_nic_barrier_completes_for_all_sizes_and_algorithms() {
    for n in [2usize, 3, 4, 6, 8, 12, 16] {
        for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
            let s = gm_nic_barrier(
                GmParams::lanai_xp(),
                CollFeatures::paper(),
                n,
                algo,
                quick(),
            );
            assert!(
                s.mean_us > 1.0 && s.mean_us < 100.0,
                "n={n} {algo:?}: {:.2}us",
                s.mean_us
            );
        }
    }
}

#[test]
fn gm_host_barrier_completes_and_is_slower_than_nic() {
    for n in [2usize, 4, 8, 16] {
        let host = gm_host_barrier(GmParams::lanai_xp(), n, Algorithm::Dissemination, quick());
        let nic = gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            quick(),
        );
        assert!(
            nic.mean_us < host.mean_us,
            "n={n}: NIC {:.2}us !< host {:.2}us",
            nic.mean_us,
            host.mean_us
        );
    }
}

#[test]
fn nic_barrier_message_count_matches_schedule_and_has_no_acks() {
    // n=8 dissemination: 3 rounds × 8 ranks = 24 collective packets per
    // barrier, zero ACKs, zero data packets (the protocol claim of §6.3).
    let cfg = quick();
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    let total = cfg.total();
    assert_eq!(s.counter("wire.coll"), 24 * total);
    assert_eq!(s.counter("wire.ack"), 0);
    assert_eq!(s.counter("wire.data"), 0);
    assert_eq!(s.counter("wire.coll_nack"), 0, "no NACKs without loss");
    assert!((s.wire_per_barrier - 24.0).abs() < 0.01);
}

#[test]
fn host_barrier_sends_twice_the_packets_of_nic_barrier() {
    // Host-based: 24 data + 24 ACKs per barrier. NIC-based: 24 collective
    // packets. "reduces the number of total packets by half" (§3).
    let cfg = quick();
    let host = gm_host_barrier(
        GmParams::lanai_xp(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    let nic = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    let ratio = host.wire_per_barrier / nic.wire_per_barrier;
    assert!(
        (1.9..2.1).contains(&ratio),
        "packet ratio {ratio:.2}, host {} vs nic {}",
        host.wire_per_barrier,
        nic.wire_per_barrier
    );
}

#[test]
fn nic_barrier_survives_packet_loss_via_nacks() {
    let cfg = RunCfg {
        warmup: 5,
        iters: 30,
        drop_prob: 0.02,
        ..RunCfg::default()
    };
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    // It completed (stats_from_logs asserts every rank finished every
    // epoch) and the NACK machinery actually fired.
    assert!(
        s.counter("wire.coll_nack") > 0,
        "2% loss must trigger NACKs"
    );
    assert!(s.mean_us < 5_000.0, "mean {:.2}us", s.mean_us);
}

#[test]
fn nic_barrier_survives_heavy_loss() {
    let cfg = RunCfg {
        warmup: 2,
        iters: 10,
        drop_prob: 0.15,
        seed: 7,
        ..RunCfg::default()
    };
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        6,
        Algorithm::PairwiseExchange,
        cfg.clone(),
    );
    assert!(s.counter("wire.coll_nack") > 0);
}

#[test]
fn gm_runs_are_deterministic() {
    let a = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        quick(),
    );
    let b = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        quick(),
    );
    assert_eq!(a.mean_us, b.mean_us);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn random_permutation_changes_little() {
    // The paper: "we observed only negligible variations" across random
    // node permutations.
    let base = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        quick(),
    );
    let permuted = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        RunCfg {
            permute: true,
            ..quick()
        },
    );
    let rel = (base.mean_us - permuted.mean_us).abs() / base.mean_us;
    assert!(
        rel < 0.15,
        "permutation shifted latency by {:.1}%",
        rel * 100.0
    );
}

#[test]
fn skewed_entry_still_synchronizes() {
    let cfg = RunCfg {
        warmup: 5,
        iters: 30,
        skew_us: 20.0,
        ..RunCfg::default()
    };
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    // With up-to-20µs skew the mean must absorb the skew (it dominates).
    assert!(s.mean_us > 5.0 && s.mean_us < 100.0, "{:.2}us", s.mean_us);
}

#[test]
fn elan_nic_barrier_completes_for_all_sizes_and_algorithms() {
    for n in [2usize, 3, 4, 6, 8] {
        for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
            let s = elan_nic_barrier(ElanParams::elan3(), n, algo, quick());
            assert!(
                s.mean_us > 1.0 && s.mean_us < 30.0,
                "n={n} {algo:?}: {:.2}us",
                s.mean_us
            );
        }
    }
}

#[test]
fn elan_nic_beats_gsync_tree() {
    let nic = elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::Dissemination, quick());
    let tree = elan_gsync_barrier(ElanParams::elan3(), 8, 2, quick());
    assert!(
        nic.mean_us < tree.mean_us / 1.5,
        "NIC {:.2}us vs gsync {:.2}us — expected ≥1.5× gap",
        nic.mean_us,
        tree.mean_us
    );
}

#[test]
fn elan_hw_barrier_crossover_with_nic_barrier() {
    // Fig. 7: the NIC barrier wins at small n; the flat hardware barrier
    // wins at n = 8.
    let nic2 = elan_nic_barrier(ElanParams::elan3(), 2, Algorithm::Dissemination, quick());
    let hw2 = elan_hw_barrier(ElanParams::elan3(), 2, quick());
    let nic8 = elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::Dissemination, quick());
    let hw8 = elan_hw_barrier(ElanParams::elan3(), 8, quick());
    assert!(
        nic2.mean_us < hw2.mean_us,
        "at 2 nodes NIC ({:.2}) should beat hw ({:.2})",
        nic2.mean_us,
        hw2.mean_us
    );
    assert!(
        hw8.mean_us < nic8.mean_us,
        "at 8 nodes hw ({:.2}) should beat NIC ({:.2})",
        hw8.mean_us,
        nic8.mean_us
    );
}

#[test]
fn elan_runs_are_deterministic() {
    let a = elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::PairwiseExchange, quick());
    let b = elan_nic_barrier(ElanParams::elan3(), 8, Algorithm::PairwiseExchange, quick());
    assert_eq!(a.mean_us, b.mean_us);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn elan_chain_wire_traffic_matches_schedule() {
    // 8-node dissemination: 3 RDMAs per rank per barrier, nothing else.
    let cfg = quick();
    let s = elan_nic_barrier(
        ElanParams::elan3(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    assert_eq!(s.counter("elan.wire"), 24 * cfg.total());
}
