//! End-to-end tests of the §9 extension collectives over the GM substrate:
//! NIC-forwarded broadcast, allreduce, allgather — all through the same
//! NIC-based collective protocol (static packets, bit vectors, NACKs).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code

use nicbar_core::host_app::CollOpApp;
use nicbar_core::{Algorithm, GroupOp, GroupSpec, PaperCollective, ReduceOp};
use nicbar_gm::{GmApp, GmCluster, GmClusterSpec, GmParams, GroupId, NicCollective};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};

const GROUP: GroupId = GroupId(9);

/// Build a cluster where every node runs `iters` operations of `op`,
/// contributing `contribution(rank, epoch)`.
fn run_collective(
    n: usize,
    op: GroupOp,
    iters: u64,
    drop_prob: f64,
    contribution: impl Fn(usize, u64) -> u64,
) -> GmCluster {
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n)
        .with_seed(1234)
        .with_drop_prob(drop_prob);
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for rank in 0..n {
        let contribs: Vec<u64> = (0..iters).map(|e| contribution(rank, e)).collect();
        apps.push(Box::new(CollOpApp::new(GROUP, contribs)));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            vec![GroupSpec {
                id: GROUP,
                members: members.clone().into(),
                my_rank: rank,
                op,
                algo: Algorithm::Dissemination,
                timeout: SimTime::from_us(400.0),
            }],
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    let outcome = cluster.run_until(SimTime::from_us(100_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle, "collective run did not drain");
    cluster
}

fn results(cluster: &GmCluster, rank: usize) -> Vec<u64> {
    cluster
        .app_ref::<CollOpApp>(rank)
        .results
        .iter()
        .map(|&(_, v)| v)
        .collect()
}

#[test]
fn broadcast_delivers_the_root_value_to_everyone() {
    let iters = 20;
    // Root (rank 2) broadcasts 1000 + epoch; other contributions ignored.
    let cluster = run_collective(8, GroupOp::Broadcast { root: 2 }, iters, 0.0, |rank, e| {
        if rank == 2 {
            1000 + e
        } else {
            0xDEAD
        }
    });
    for rank in 0..8 {
        let got = results(&cluster, rank);
        let expect: Vec<u64> = (0..iters).map(|e| 1000 + e).collect();
        assert_eq!(got, expect, "rank {rank}");
    }
}

#[test]
fn broadcast_works_for_non_power_of_two_and_any_root() {
    for n in [3usize, 5, 6, 7] {
        for root in [0, n - 1] {
            let cluster = run_collective(n, GroupOp::Broadcast { root }, 5, 0.0, |rank, e| {
                if rank == root {
                    7 * e + 3
                } else {
                    0
                }
            });
            for rank in 0..n {
                assert_eq!(
                    results(&cluster, rank),
                    vec![3, 10, 17, 24, 31],
                    "n={n} root={root} rank={rank}"
                );
            }
        }
    }
}

#[test]
fn allreduce_sum_over_power_of_two_groups() {
    for n in [2usize, 4, 8, 16] {
        let iters = 10;
        let cluster = run_collective(
            n,
            GroupOp::Allreduce { op: ReduceOp::Sum },
            iters,
            0.0,
            |rank, e| (rank as u64 + 1) * (e + 1),
        );
        // sum over ranks of (rank+1)*(e+1) = (e+1) * n(n+1)/2
        let base = (n * (n + 1) / 2) as u64;
        for rank in 0..n {
            let expect: Vec<u64> = (0..iters).map(|e| base * (e + 1)).collect();
            assert_eq!(results(&cluster, rank), expect, "n={n} rank={rank}");
        }
    }
}

#[test]
fn allreduce_max_over_any_group_size() {
    for n in [3usize, 5, 6, 7, 8] {
        let cluster = run_collective(
            n,
            GroupOp::Allreduce { op: ReduceOp::Max },
            5,
            0.0,
            |rank, e| 100 * e + rank as u64,
        );
        for rank in 0..n {
            let expect: Vec<u64> = (0..5).map(|e| 100 * e + (n as u64 - 1)).collect();
            assert_eq!(results(&cluster, rank), expect, "n={n} rank={rank}");
        }
    }
}

#[test]
fn allreduce_min_and_bitor() {
    let cluster = run_collective(
        6,
        GroupOp::Allreduce { op: ReduceOp::Min },
        3,
        0.0,
        |rank, e| 50 + 10 * e + rank as u64,
    );
    for rank in 0..6 {
        assert_eq!(results(&cluster, rank), vec![50, 60, 70], "rank {rank}");
    }
    let cluster = run_collective(
        5,
        GroupOp::Allreduce {
            op: ReduceOp::BitOr,
        },
        1,
        0.0,
        |rank, _| 1u64 << rank,
    );
    for rank in 0..5 {
        assert_eq!(results(&cluster, rank), vec![0b11111], "rank {rank}");
    }
}

#[test]
fn allgather_collects_every_contribution() {
    // Completion value is the wrapping sum of all gathered words.
    for n in [2usize, 3, 5, 6, 8, 13] {
        let cluster = run_collective(n, GroupOp::Allgather, 4, 0.0, |rank, e| {
            1000 * (e + 1) + rank as u64
        });
        for rank in 0..n {
            let expect: Vec<u64> = (0..4)
                .map(|e| {
                    (0..n as u64)
                        .map(|r| 1000 * (e + 1) + r)
                        .fold(0u64, u64::wrapping_add)
                })
                .collect();
            assert_eq!(results(&cluster, rank), expect, "n={n} rank={rank}");
        }
    }
}

#[test]
fn collectives_survive_packet_loss() {
    // Loss injection exercises the receiver-driven NACK path for the data
    // collectives too (payloads must be retransmitted intact).
    let cluster = run_collective(
        8,
        GroupOp::Allreduce { op: ReduceOp::Sum },
        10,
        0.05,
        |rank, e| (rank as u64 + 1) * (e + 1),
    );
    let base = (8 * 9 / 2) as u64;
    for rank in 0..8 {
        let expect: Vec<u64> = (0..10).map(|e| base * (e + 1)).collect();
        assert_eq!(results(&cluster, rank), expect, "rank {rank}");
    }
    let nacks: u64 = cluster.engine.counters().get("wire.coll_nack");
    assert!(nacks > 0, "5% loss should have triggered NACK recovery");
}

#[test]
fn broadcast_message_count_is_n_minus_one() {
    let iters = 10u64;
    let cluster = run_collective(8, GroupOp::Broadcast { root: 0 }, iters, 0.0, |_, e| e);
    assert_eq!(
        cluster.engine.counters().get("wire.coll"),
        7 * iters,
        "binomial broadcast sends n-1 packets per operation"
    );
}

#[test]
fn allgather_packets_grow_with_round_blocks() {
    // n=8: rounds carry 1, 2, 4 words -> wire bytes grow accordingly, but
    // the packet count stays n·⌈log₂n⌉.
    let iters = 5u64;
    let cluster = run_collective(8, GroupOp::Allgather, iters, 0.0, |rank, _| rank as u64);
    assert_eq!(cluster.engine.counters().get("wire.coll"), 24 * iters);
}

/// Alltoall driver app: each epoch contributes a full per-destination row.
struct AlltoallApp {
    group: GroupId,
    rows: Vec<Vec<u64>>,
    results: Vec<u64>,
}

impl nicbar_gm::GmApp for AlltoallApp {
    fn on_start(&mut self, api: &mut nicbar_gm::GmApi<'_>) {
        if !self.rows.is_empty() {
            api.collective_vec(self.group, self.rows[0].clone());
        }
    }
    fn on_recv(
        &mut self,
        _api: &mut nicbar_gm::GmApi<'_>,
        _src: NodeId,
        _tag: nicbar_gm::MsgTag,
        _len: u32,
    ) {
        panic!("unexpected p2p message");
    }
    fn on_coll_done(
        &mut self,
        api: &mut nicbar_gm::GmApi<'_>,
        _group: GroupId,
        epoch: u64,
        value: u64,
    ) {
        self.results.push(value);
        let next = (epoch + 1) as usize;
        if next < self.rows.len() {
            api.collective_vec(self.group, self.rows[next].clone());
        }
    }
}

#[test]
fn alltoall_delivers_personalized_rows() {
    // rank i sends value 1000*i + j to rank j; everyone must end with
    // row[i] = 1000*i + me.
    for n in [2usize, 3, 5, 8, 13] {
        let iters = 3u64;
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(91);
        let mut apps: Vec<Box<dyn nicbar_gm::GmApp>> = Vec::new();
        let mut colls: Vec<Box<dyn nicbar_gm::NicCollective>> = Vec::new();
        for rank in 0..n {
            let rows: Vec<Vec<u64>> = (0..iters)
                .map(|e| {
                    (0..n as u64)
                        .map(|j| 10_000 * e + 1000 * rank as u64 + j)
                        .collect()
                })
                .collect();
            apps.push(Box::new(AlltoallApp {
                group: GROUP,
                rows,
                results: Vec::new(),
            }));
            colls.push(Box::new(PaperCollective::new(
                NodeId(rank),
                vec![GroupSpec {
                    id: GROUP,
                    members: members.clone().into(),
                    my_rank: rank,
                    op: GroupOp::Alltoall,
                    algo: Algorithm::Dissemination,
                    timeout: SimTime::from_us(400.0),
                }],
            )));
        }
        let mut cluster = GmCluster::build(spec, apps, colls);
        let outcome = cluster.run_until(SimTime::from_us(10_000_000.0));
        assert_eq!(outcome, RunOutcome::Idle, "n={n}");
        for me in 0..n {
            // Check the full rows recorded at the NIC.
            let nic_id = cluster.nics[me];
            let nic = cluster
                .engine
                .component_mut::<nicbar_gm::LanaiNic>(nic_id)
                .unwrap();
            let engine = nic
                .collective_mut()
                .as_any_mut()
                .downcast_mut::<PaperCollective>()
                .unwrap();
            let rows = engine.alltoall_rows(GROUP);
            assert_eq!(rows.len(), iters as usize, "n={n} rank={me}");
            for (e, row) in rows.iter().enumerate() {
                for (i, &v) in row.iter().enumerate() {
                    assert_eq!(
                        v,
                        10_000 * e as u64 + 1000 * i as u64 + me as u64,
                        "n={n} me={me} epoch={e} origin={i}"
                    );
                }
            }
            // And the folded completion value matches.
            let app = cluster.app_ref::<AlltoallApp>(me);
            for (e, &got) in app.results.iter().enumerate() {
                let expect: u64 = (0..n as u64)
                    .map(|i| 10_000 * e as u64 + 1000 * i + me as u64)
                    .fold(0, u64::wrapping_add);
                assert_eq!(got, expect, "n={n} me={me} epoch={e}");
            }
        }
    }
}

#[test]
fn alltoall_survives_packet_loss() {
    let n = 6;
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    // Seed chosen so the 3% drop rate actually hits at least one
    // payload-bearing collective packet under the in-tree ChaCha8 stream.
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n)
        .with_seed(1)
        .with_drop_prob(0.03);
    let mut apps: Vec<Box<dyn nicbar_gm::GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn nicbar_gm::NicCollective>> = Vec::new();
    for rank in 0..n {
        let rows = vec![(0..n as u64).map(|j| 100 * rank as u64 + j).collect()];
        apps.push(Box::new(AlltoallApp {
            group: GROUP,
            rows,
            results: Vec::new(),
        }));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            vec![GroupSpec {
                id: GROUP,
                members: members.clone().into(),
                my_rank: rank,
                op: GroupOp::Alltoall,
                algo: Algorithm::Dissemination,
                timeout: SimTime::from_us(400.0),
            }],
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    assert_eq!(
        cluster.run_until(SimTime::from_us(100_000_000.0)),
        RunOutcome::Idle
    );
    for me in 0..n {
        let app = cluster.app_ref::<AlltoallApp>(me);
        let expect: u64 = (0..n as u64).map(|i| 100 * i + me as u64).sum();
        assert_eq!(app.results, vec![expect], "rank {me}");
    }
    assert!(
        cluster.engine.counters().get("wire.coll_nack") > 0,
        "loss should trigger NACK recovery of payload-bearing packets"
    );
}
