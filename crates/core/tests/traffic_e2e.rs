//! Interference tests: the group-queue bypass must keep the NIC barrier
//! robust against background traffic, while the ablated/direct/host paths
//! queue behind it (§6.1 made falsifiable).

use nicbar_core::{
    gm_host_barrier, gm_host_barrier_under_traffic, gm_nic_barrier, gm_nic_barrier_under_traffic,
    Algorithm, RunCfg, TrafficCfg,
};
use nicbar_gm::{CollFeatures, GmParams};

fn cfg() -> RunCfg {
    RunCfg {
        warmup: 10,
        iters: 150,
        ..RunCfg::default()
    }
}

fn traffic() -> TrafficCfg {
    TrafficCfg {
        msg_bytes: 4096,
        outstanding: 4,
    }
}

#[test]
fn barriers_complete_under_traffic_for_all_modes() {
    for n in [4usize, 8] {
        let nic = gm_nic_barrier_under_traffic(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg(),
            traffic(),
        );
        let host = gm_host_barrier_under_traffic(
            GmParams::lanai_xp(),
            n,
            Algorithm::Dissemination,
            cfg(),
            traffic(),
        );
        assert!(nic.mean_us > 0.0 && host.mean_us > 0.0);
        // Bulk data actually flowed alongside the barriers.
        assert!(
            nic.counter("wire.data") > 100,
            "bulk stream did not run ({} data packets)",
            nic.counter("wire.data")
        );
    }
}

#[test]
fn group_queue_bypass_limits_the_slowdown() {
    let n = 8;
    let quiet = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg(),
    );
    let busy = gm_nic_barrier_under_traffic(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg(),
        traffic(),
    );
    let quiet_host = gm_host_barrier(GmParams::lanai_xp(), n, Algorithm::Dissemination, cfg());
    let busy_host = gm_host_barrier_under_traffic(
        GmParams::lanai_xp(),
        n,
        Algorithm::Dissemination,
        cfg(),
        traffic(),
    );
    let nic_slowdown = busy.mean_us / quiet.mean_us;
    let host_slowdown = busy_host.mean_us / quiet_host.mean_us;
    assert!(
        host_slowdown > nic_slowdown * 1.5,
        "host slowdown {host_slowdown:.2}x should dwarf NIC slowdown {nic_slowdown:.2}x"
    );
    assert!(
        nic_slowdown < 2.5,
        "group-queue bypass should keep NIC slowdown modest, got {nic_slowdown:.2}x"
    );
}

#[test]
fn direct_scheme_queues_behind_bulk_traffic() {
    let n = 8;
    let paper = gm_nic_barrier_under_traffic(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg(),
        traffic(),
    );
    let direct = gm_nic_barrier_under_traffic(
        GmParams::lanai_xp(),
        CollFeatures::direct(),
        n,
        Algorithm::Dissemination,
        cfg(),
        traffic(),
    );
    assert!(
        direct.mean_us > paper.mean_us * 1.3,
        "direct ({:.2}) should queue visibly behind bulk vs paper ({:.2})",
        direct.mean_us,
        paper.mean_us
    );
}

#[test]
fn traffic_runs_are_deterministic() {
    let run = || {
        gm_nic_barrier_under_traffic(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            8,
            Algorithm::Dissemination,
            cfg(),
            traffic(),
        )
        .mean_us
    };
    assert_eq!(run(), run());
}
