//! Stress tests for the chained-RDMA barrier's epoch banking: heavily
//! skewed processes race each other across consecutive barriers, and the
//! auto-rearming NIC event counters must bank every early arrival.

use nicbar_core::elan_chain::build_chains;
use nicbar_core::{elan_nic_barrier, Algorithm, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_net::NodeId;

#[test]
fn skewed_chains_never_lose_epochs() {
    // Large random skew (up to 40 µs — ~7 barrier latencies) across many
    // epochs: safety is asserted inside the driver, and completion of all
    // epochs is liveness.
    for seed in [1u64, 2, 3] {
        for algo in [Algorithm::Dissemination, Algorithm::PairwiseExchange] {
            let cfg = RunCfg {
                warmup: 5,
                iters: 100,
                seed,
                skew_us: 40.0,
                ..RunCfg::default()
            };
            let s = elan_nic_barrier(ElanParams::elan3(), 7, algo, cfg.clone());
            // With that much skew, the mean tracks the skew, not the wire.
            assert!(
                s.mean_us > 10.0,
                "skew should dominate, got {:.2}",
                s.mean_us
            );
        }
    }
}

#[test]
fn one_laggard_gates_everyone() {
    // One process enters each barrier ~30 µs late (modeled by giving every
    // process random skew but checking the global latency tracks the max):
    // per-iteration latency must never drop below the barrier's own cost,
    // and the max per-iteration must be ≥ the skew bound's tail.
    let cfg = RunCfg {
        warmup: 5,
        iters: 200,
        seed: 9,
        skew_us: 30.0,
        ..RunCfg::default()
    };
    let s = elan_nic_barrier(
        ElanParams::elan3(),
        8,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    // Expected per-iteration ≈ E[max of 8 U(0,30)] ≈ 26.7 plus barrier cost.
    assert!(
        s.mean_us > 20.0 && s.mean_us < 45.0,
        "mean {:.2} inconsistent with max-of-uniform skew",
        s.mean_us
    );
    assert!(
        s.max_us() <= 30.0 + 20.0,
        "max {:.2} implausible",
        s.max_us()
    );
}

#[test]
fn chain_event_thresholds_sum_to_schedule_totals() {
    // Conservation: per rank, the per-epoch event sets must equal
    // (host entry) + (own descriptors fired) + (arrivals) — otherwise a
    // counter would drift across epochs and eventually wedge.
    for n in [2usize, 3, 5, 6, 8, 16] {
        for algo in [
            Algorithm::Dissemination,
            Algorithm::PairwiseExchange,
            Algorithm::GatherBroadcast { degree: 4 },
        ] {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let programs = build_chains(algo, &members);
            // Arrivals at rank r = descriptors across all ranks targeting r.
            let mut arrivals = vec![0u64; n];
            for p in &programs {
                for d in &p.descs {
                    arrivals[d.dst.0] += 1;
                }
            }
            for (rank, p) in programs.iter().enumerate() {
                let threshold_sum: u64 = p.events.iter().map(|e| e.rearm).sum();
                let local_sets = 1 /* host entry */ + p.descs.len() as u64;
                assert_eq!(
                    threshold_sum,
                    local_sets + arrivals[rank],
                    "rank {rank} (n={n}, {algo:?}): thresholds drift from set sources"
                );
            }
        }
    }
}
