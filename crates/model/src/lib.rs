//! # nicbar-model — the paper's analytical scalability model
//!
//! §8.3 models the NIC-based dissemination barrier as
//!
//! ```text
//! T_barrier(N) = T_init + (⌈log₂N⌉ − 1) · T_trig + T_adj
//! ```
//!
//! where `T_init` is the two-node barrier latency, `T_trig` the cost of
//! each NIC-triggered message round, and `T_adj` an adjustment for the
//! remaining effects (PCI traffic, bookkeeping). The paper instantiates it
//! as `3.60 + (⌈log₂N⌉−1)·3.50 + 3.84` for the LANai-XP cluster and
//! `2.25 + (⌈log₂N⌉−1)·2.32 − 1.00` for the Elan3 cluster, predicting
//! 38.94 µs and 22.13 µs at 1024 nodes.
//!
//! [`BarrierModel`] evaluates the model; [`fit`] recovers `(T_init+T_adj,
//! T_trig)` from measured `(N, latency)` sweeps by least squares on the
//! regressor `x = ⌈log₂N⌉ − 1` (the two constants are not separately
//! identifiable — the paper distinguishes them only by pinning `T_init` to
//! the measured two-node latency, which [`fit_with_t_init`] reproduces).

#![warn(missing_docs)]

/// ⌈log₂ n⌉ as f64 (0 for n ≤ 1).
fn ceil_log2(n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as f64
    }
}

/// The paper's three-constant barrier latency model (all µs).
///
/// ```
/// use nicbar_model::BarrierModel;
///
/// // The paper's Myrinet instantiation predicts 38.94 µs at 1024 nodes.
/// let m = BarrierModel::paper_myrinet_xp();
/// assert!((m.predict(1024) - 38.94).abs() < 0.01);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BarrierModel {
    /// Average two-node barrier latency.
    pub t_init: f64,
    /// Per-triggered-round cost.
    pub t_trig: f64,
    /// Adjustment factor.
    pub t_adj: f64,
}

impl BarrierModel {
    /// The paper's Myrinet model (2.4 GHz Xeon + LANai-XP cluster).
    pub fn paper_myrinet_xp() -> Self {
        BarrierModel {
            t_init: 3.60,
            t_trig: 3.50,
            t_adj: 3.84,
        }
    }

    /// The paper's Quadrics model (quad-700 MHz + Elan3 cluster).
    pub fn paper_quadrics_elan3() -> Self {
        BarrierModel {
            t_init: 2.25,
            t_trig: 2.32,
            t_adj: -1.00,
        }
    }

    /// Predicted barrier latency (µs) at `n` nodes.
    pub fn predict(&self, n: usize) -> f64 {
        self.t_init + (ceil_log2(n) - 1.0).max(0.0) * self.t_trig + self.t_adj
    }

    /// Predictions over a node sweep.
    pub fn predict_sweep(&self, ns: &[usize]) -> Vec<(usize, f64)> {
        ns.iter().map(|&n| (n, self.predict(n))).collect()
    }
}

/// Goodness-of-fit summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitQuality {
    /// Root-mean-square residual, µs.
    pub rmse_us: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Least-squares fit of the model to measured `(n, latency_us)` points.
///
/// ```
/// use nicbar_model::fit;
/// let sweep = vec![(2usize, 7.4), (8, 14.4), (64, 24.9), (1024, 38.9)];
/// let (model, quality) = fit(&sweep);
/// assert!((model.t_trig - 3.5).abs() < 0.1);
/// assert!(quality.r_squared > 0.999);
/// ```
///
/// Returns the model with `t_adj = 0` (only `t_init + t_adj` is
/// identifiable; the sum is reported in `t_init`) plus fit quality.
///
/// # Panics
/// Panics with fewer than two distinct `⌈log₂N⌉` values.
pub fn fit(points: &[(usize, f64)]) -> (BarrierModel, FitQuality) {
    assert!(points.len() >= 2, "need at least two points");
    let xs: Vec<f64> = points
        .iter()
        .map(|&(n, _)| (ceil_log2(n) - 1.0).max(0.0))
        .collect();
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > 1e-9,
        "need at least two distinct round counts to fit"
    );
    let t_trig = (n * sxy - sx * sy) / denom;
    let intercept = (sy - t_trig * sx) / n;
    let model = BarrierModel {
        t_init: intercept,
        t_trig,
        t_adj: 0.0,
    };
    (model, quality(&model, points))
}

/// Fit with `t_init` pinned to a measured two-node latency (the paper's
/// decomposition): solves for `t_trig` by least squares and reports
/// `t_adj = intercept − t_init`.
pub fn fit_with_t_init(points: &[(usize, f64)], t_init: f64) -> (BarrierModel, FitQuality) {
    let (free, _) = fit(points);
    let model = BarrierModel {
        t_init,
        t_trig: free.t_trig,
        t_adj: free.t_init - t_init,
    };
    (model, quality(&model, points))
}

/// Evaluate fit quality of `model` on `points`.
pub fn quality(model: &BarrierModel, points: &[(usize, f64)]) -> FitQuality {
    let n = points.len() as f64;
    let mean_y: f64 = points.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let ss_res: f64 = points
        .iter()
        .map(|&(pn, y)| {
            let e = y - model.predict(pn);
            e * e
        })
        .sum();
    let ss_tot: f64 = points
        .iter()
        .map(|&(_, y)| (y - mean_y) * (y - mean_y))
        .sum();
    FitQuality {
        rmse_us: (ss_res / n).sqrt(),
        r_squared: if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_myrinet_prediction_at_1024() {
        // Abstract: "38.94µs latency over ... Myrinet" at 1024 nodes.
        let m = BarrierModel::paper_myrinet_xp();
        assert!(
            (m.predict(1024) - 38.94).abs() < 0.01,
            "{}",
            m.predict(1024)
        );
    }

    #[test]
    fn paper_quadrics_prediction_at_1024() {
        // Abstract: "22.13µs latency over a 1024-node Quadrics".
        let m = BarrierModel::paper_quadrics_elan3();
        assert!(
            (m.predict(1024) - 22.13).abs() < 0.01,
            "{}",
            m.predict(1024)
        );
    }

    #[test]
    fn prediction_is_a_step_function_of_log_n() {
        let m = BarrierModel::paper_myrinet_xp();
        // Same ⌈log₂⌉ bucket → same prediction.
        assert_eq!(m.predict(5), m.predict(8));
        assert_eq!(m.predict(9), m.predict(16));
        assert!(m.predict(9) > m.predict(8));
    }

    #[test]
    fn two_node_prediction_uses_no_triggered_rounds() {
        let m = BarrierModel {
            t_init: 5.0,
            t_trig: 100.0,
            t_adj: 1.0,
        };
        assert!((m.predict(2) - 6.0).abs() < 1e-12);
        assert!((m.predict(1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_exact_model() {
        let truth = BarrierModel {
            t_init: 7.44,
            t_trig: 3.50,
            t_adj: 0.0,
        };
        let ns = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        let points: Vec<(usize, f64)> = ns.iter().map(|&n| (n, truth.predict(n))).collect();
        let (fitted, q) = fit(&points);
        assert!((fitted.t_trig - 3.50).abs() < 1e-9);
        assert!((fitted.t_init - 7.44).abs() < 1e-9);
        assert!(q.rmse_us < 1e-9);
        assert!(q.r_squared > 0.999999);
    }

    #[test]
    fn fit_with_pinned_t_init_matches_paper_decomposition() {
        let truth = BarrierModel::paper_myrinet_xp();
        let ns = [2usize, 4, 8, 16, 64, 256, 1024];
        let points: Vec<(usize, f64)> = ns.iter().map(|&n| (n, truth.predict(n))).collect();
        let (fitted, q) = fit_with_t_init(&points, 3.60);
        assert!((fitted.t_trig - 3.50).abs() < 1e-9);
        assert!((fitted.t_adj - 3.84).abs() < 1e-9);
        assert!(q.rmse_us < 1e-9);
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = BarrierModel::paper_quadrics_elan3();
        let ns = [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        // Deterministic ±0.1 µs "noise".
        let points: Vec<(usize, f64)> = ns
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, truth.predict(n) + if i % 2 == 0 { 0.1 } else { -0.1 }))
            .collect();
        let (fitted, q) = fit(&points);
        assert!((fitted.t_trig - truth.t_trig).abs() < 0.1);
        assert!(q.rmse_us < 0.2);
        assert!(q.r_squared > 0.99);
    }

    #[test]
    #[should_panic(expected = "two distinct round counts")]
    fn degenerate_fit_rejected() {
        // 5..8 all share ⌈log₂⌉ = 3.
        let points = vec![(5usize, 10.0), (6, 10.1), (7, 10.2), (8, 10.3)];
        let _ = fit(&points);
    }

    #[test]
    fn sweep_helper() {
        let m = BarrierModel::paper_quadrics_elan3();
        let sweep = m.predict_sweep(&[2, 1024]);
        assert_eq!(sweep.len(), 2);
        assert!((sweep[1].1 - 22.13).abs() < 0.01);
    }
}
