//! # nicbar-verify — exhaustive model checking of the collective protocol
//!
//! Drives the *real* [`PaperCollective`] engine (not a re-model of it)
//! through the full interleaving space of an adversarial network at small
//! group sizes, and proves three properties over every reachable state:
//!
//! * **safety** — [`PaperCollective::check_invariants`] holds after every
//!   transition: bit vectors never exceed their expected-sender sets, a
//!   mask bit and its banked payload agree, and every issued send left a
//!   `sent_payloads` record for NACK service (the dynamic twin of the
//!   `PR002` lint rule),
//! * **deadlock-freedom** — no non-goal state whose every transition leads
//!   back to itself,
//! * **liveness (NACK recovery)** — from every reachable state, some
//!   execution completes all epochs: receiver-driven retransmission can
//!   always finish the barrier no matter what the fabric did.
//!
//! ## The adversary
//!
//! In-flight packets form a canonically sorted *set*; the explorer may
//! deliver any eligible packet next (reorder), deliver it while keeping it
//! in flight (duplication, GM only), or drop it (loss, GM only — Quadrics
//! is hardware-reliable, so the Elan adversary reorders but never drops or
//! duplicates). Timeouts are abstract: a NACK sweep may fire whenever a
//! live epoch exists (unbounded delay), except under a bounded-delay
//! window (`window > 0`, used at N=8) where a pending delivery to a node
//! always beats its timeout and only the first `window` packets of the
//! sorted set are deliverable.
//!
//! Loss and duplication can be capped with a per-execution fault budget
//! (`faults`): the gate runs N = 2 with the budget unbounded (arbitrarily
//! many losses and duplicates — the NACK recovery loop is closed by state
//! dedup) and larger groups with a small budget, which keeps exhaustive
//! exploration tractable while still covering every ≤ budget-fault
//! interleaving.
//!
//! ## State identity
//!
//! States are fingerprinted with [`PaperCollective::state_fingerprint`]
//! (wall-clock pacing canonicalized to zero first, observability counters
//! excluded) plus the in-flight set and per-node host progress. Loss →
//! NACK → retransmit loops therefore close: re-losing a retransmission
//! reproduces an already-visited fingerprint and exploration terminates.
//!
//! ## Counterexamples
//!
//! Violations come with the BFS-minimal transition sequence from the
//! initial state. [`trace_records`] re-executes that sequence and emits it
//! as causally-linked netdump records (the same JSONL schema the flight
//! recorder dumps), so `why-slow --replay trace.jsonl` renders the failing
//! interleaving with the ordinary observability tooling.

#![warn(missing_docs)]

use nicbar_core::{Algorithm, GroupSpec, PaperCollective};
use nicbar_gm::{ActionBuf, CollAction, CollKind, CollOperand, CollPacket, GroupId, NicCollective};
use nicbar_net::NodeId;
use nicbar_sim::{CausalKind, CauseId, ComponentId, PacketRecord, SimTime, NO_KEY, NO_NODE};
use std::collections::{HashMap, VecDeque};

/// The single collective group every checked cluster runs.
pub const GROUP: GroupId = GroupId(0xBA);

/// Receiver-driven NACK timeout used by every checked group. The checker's
/// clock is abstract (time is canonicalized away between transitions), so
/// the exact value is irrelevant — it only has to be nonzero.
pub const TIMEOUT_NS: u64 = 1_000;

/// Which substrate's fabric semantics the adversary models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Substrate {
    /// Myrinet/GM: the fabric may lose, duplicate and reorder.
    Gm,
    /// Quadrics/Elan: hardware-reliable — reorder only.
    Elan,
}

impl Substrate {
    /// May the adversary drop packets?
    pub fn lossy(self) -> bool {
        matches!(self, Substrate::Gm)
    }

    /// May the adversary duplicate packets?
    pub fn dup(self) -> bool {
        matches!(self, Substrate::Gm)
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Substrate::Gm => "gm",
            Substrate::Elan => "elan",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "gm" => Some(Substrate::Gm),
            "elan" => Some(Substrate::Elan),
            _ => None,
        }
    }

    /// Human-readable adversary description.
    pub fn adversary(self) -> &'static str {
        match self {
            Substrate::Gm => "loss+dup+reorder",
            Substrate::Elan => "reorder",
        }
    }
}

/// Injectable protocol bugs, for validating that the checker catches them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Sends fire without recording their payload for NACK service
    /// ([`PaperCollective::inject_skip_payload_record`]).
    SkipPayloadRecord,
}

impl Fault {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "skip-payload-record" => Some(Fault::SkipPayloadRecord),
            _ => None,
        }
    }
}

/// One exploration configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Group size.
    pub nodes: usize,
    /// Barrier schedule.
    pub algo: Algorithm,
    /// Fabric semantics.
    pub substrate: Substrate,
    /// Consecutive barrier epochs each host performs (2 exercises the
    /// one-epoch-deep banking window).
    pub epochs: u64,
    /// Bounded-delay window: 0 explores unrestricted reorder; `W > 0`
    /// makes only the first `W` packets of the sorted in-flight set
    /// deliverable and suppresses timeouts while a delivery is pending.
    pub window: usize,
    /// Exploration cap; hitting it truncates (reported, and fatal for the
    /// liveness proof, which needs the full graph).
    pub max_states: usize,
    /// Total loss + duplication events the adversary may inject along one
    /// execution (`None` = unbounded). Ignored on reliable substrates.
    pub faults: Option<u32>,
    /// Injected protocol bug, if any.
    pub fault: Option<Fault>,
}

impl Config {
    /// One-line human description.
    pub fn describe(&self) -> String {
        let faults = if !self.substrate.lossy() {
            String::new()
        } else {
            match self.faults {
                None => ", unbounded faults".to_string(),
                Some(b) => format!(", fault budget {b}"),
            }
        };
        format!(
            "{} barrier, {} nodes, {} adversary ({}), {} epoch(s), {}{}",
            self.algo.short_name(),
            self.nodes,
            self.substrate.name(),
            self.substrate.adversary(),
            self.epochs,
            if self.window == 0 {
                "unbounded delay".to_string()
            } else {
                format!("delivery window {}", self.window)
            },
            faults
        )
    }
}

/// One in-flight packet. The adversary treats the in-flight collection as
/// a sorted, deduplicated set — `cause` (the netdump id of the wire record
/// that launched it, used only during trace replay) is deliberately
/// excluded from identity.
#[derive(Clone, Debug)]
struct Msg {
    dst: NodeId,
    pkt: CollPacket,
    cause: CauseId,
}

impl Msg {
    fn key(&self) -> (NodeId, &CollPacket) {
        (self.dst, &self.pkt)
    }
}

/// Full system state: every NIC engine plus the network and host model.
#[derive(Clone)]
struct Sys {
    nodes: Vec<PaperCollective>,
    /// Canonically sorted, deduplicated in-flight set.
    inflight: Vec<Msg>,
    /// Doorbells each host has rung (next epoch to enter).
    rung: Vec<u64>,
    /// Epochs each host has observed completing.
    done: Vec<u64>,
    /// Loss + duplication events injected so far (stays 0 when the budget
    /// is unbounded, so unbounded fault loops can close on themselves).
    faults_used: u32,
}

/// One adversary decision — the label on a transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Host `node` rings the doorbell for its next epoch.
    Doorbell {
        /// Host rank.
        node: usize,
    },
    /// Deliver in-flight packet `msg` (index into the sorted set).
    Deliver {
        /// Index into the canonical in-flight set.
        msg: usize,
    },
    /// Deliver a copy of packet `msg` while the original stays in flight
    /// (duplication; consumes fault budget when one is set).
    Duplicate {
        /// Index into the canonical in-flight set.
        msg: usize,
    },
    /// The fabric loses packet `msg` (consumes fault budget when one is
    /// set).
    Drop {
        /// Index into the canonical in-flight set.
        msg: usize,
    },
    /// Node `node`'s NACK timer sweep fires at its deadline.
    Timer {
        /// Node rank.
        node: usize,
    },
}

impl Choice {
    /// Render one step of a counterexample trace.
    fn describe(self, sys_before: &Sys) -> String {
        let pkt = |m: usize| {
            let msg = &sys_before.inflight[m];
            format!(
                "{:?} (epoch {}, round {}) {:?} -> {:?}",
                msg.pkt.kind, msg.pkt.epoch, msg.pkt.round, msg.pkt.src, msg.dst
            )
        };
        match self {
            Choice::Doorbell { node } => {
                format!("host {node} enters epoch {}", sys_before.rung[node])
            }
            Choice::Deliver { msg } => format!("deliver {}", pkt(msg)),
            Choice::Duplicate { msg } => {
                format!(
                    "deliver duplicate of {} (original stays in flight)",
                    pkt(msg)
                )
            }
            Choice::Drop { msg } => format!("fabric drops {}", pkt(msg)),
            Choice::Timer { node } => format!("node {node} timeout sweep (NACK scan)"),
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every property holds on the explored graph.
    Ok,
    /// An invariant broke; the trace reproduces it.
    Safety {
        /// What broke.
        message: String,
        /// Minimal transition sequence from the initial state.
        trace: Vec<Choice>,
    },
    /// A non-goal state loops only to itself.
    Deadlock {
        /// Minimal transition sequence from the initial state.
        trace: Vec<Choice>,
    },
    /// Completion is unreachable from some reachable state.
    Liveness {
        /// Minimal transition sequence to the doomed state.
        trace: Vec<Choice>,
    },
}

impl Outcome {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Safety { .. } => "safety",
            Outcome::Deadlock { .. } => "deadlock",
            Outcome::Liveness { .. } => "liveness",
        }
    }

    /// The counterexample trace, if this outcome is a violation.
    pub fn trace(&self) -> Option<&[Choice]> {
        match self {
            Outcome::Ok => None,
            Outcome::Safety { trace, .. }
            | Outcome::Deadlock { trace }
            | Outcome::Liveness { trace } => Some(trace),
        }
    }
}

/// Exploration result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct canonical states reached.
    pub explored: usize,
    /// Transitions executed (including ones leading to known states).
    pub transitions: usize,
    /// True when `max_states` stopped exploration early (liveness then
    /// unproven).
    pub truncated: bool,
    /// What the run concluded.
    pub outcome: Outcome,
}

// FNV-1a, same constants as the engine's fingerprint hasher: deterministic
// across runs and toolchains, no dependencies.
struct Fnv(u64);

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

fn initial(cfg: &Config) -> Sys {
    let members: Vec<NodeId> = (0..cfg.nodes).map(NodeId).collect();
    let nodes = (0..cfg.nodes)
        .map(|rank| {
            let spec = GroupSpec::barrier(
                GROUP,
                members.clone(),
                rank,
                cfg.algo,
                SimTime::from_ns(TIMEOUT_NS),
            );
            let mut engine = PaperCollective::new(members[rank], vec![spec]);
            if cfg.fault == Some(Fault::SkipPayloadRecord) {
                engine.inject_skip_payload_record();
            }
            engine
        })
        .collect();
    Sys {
        nodes,
        inflight: Vec::new(),
        rung: vec![0; cfg.nodes],
        done: vec![0; cfg.nodes],
        faults_used: 0,
    }
}

fn fingerprint(sys: &Sys) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    for n in &sys.nodes {
        n.state_fingerprint().hash(&mut h);
    }
    for m in &sys.inflight {
        m.dst.hash(&mut h);
        m.pkt.hash(&mut h);
    }
    sys.rung.hash(&mut h);
    sys.done.hash(&mut h);
    sys.faults_used.hash(&mut h);
    h.finish()
}

fn is_goal(cfg: &Config, sys: &Sys) -> bool {
    sys.done.iter().all(|&d| d == cfg.epochs)
}

/// Enumerate every adversary decision available in `sys`, in a fixed
/// deterministic order.
fn choices(cfg: &Config, sys: &Sys) -> Vec<Choice> {
    let mut out = Vec::new();
    for node in 0..cfg.nodes {
        if sys.rung[node] < cfg.epochs && sys.done[node] == sys.rung[node] {
            out.push(Choice::Doorbell { node });
        }
    }
    let eligible = if cfg.window == 0 {
        sys.inflight.len()
    } else {
        cfg.window.min(sys.inflight.len())
    };
    let budget_left = cfg.faults.is_none_or(|b| sys.faults_used < b);
    for msg in 0..eligible {
        out.push(Choice::Deliver { msg });
        if cfg.substrate.dup() && budget_left {
            out.push(Choice::Duplicate { msg });
        }
        if cfg.substrate.lossy() && budget_left {
            out.push(Choice::Drop { msg });
        }
    }
    for (node, engine) in sys.nodes.iter().enumerate() {
        if engine.next_deadline().is_none() {
            continue;
        }
        // Bounded delay: while any delivery is still pending for a node,
        // its delivery happens before the timeout would fire.
        let delivery_pending = cfg.window > 0 && sys.inflight.iter().any(|m| m.dst == NodeId(node));
        if !delivery_pending {
            out.push(Choice::Timer { node });
        }
    }
    out
}

/// Causal trace recorder used when re-executing a counterexample. Builds
/// netdump-schema [`PacketRecord`]s with the engine's own cause threading.
struct TraceRec {
    records: Vec<PacketRecord>,
    t: u64,
}

impl TraceRec {
    fn new() -> Self {
        TraceRec {
            records: Vec::new(),
            t: 0,
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the PacketRecord field list
    fn emit(
        &mut self,
        parent: CauseId,
        kind: CausalKind,
        component: usize,
        src: u32,
        dst: u32,
        keyed: Option<u64>,
        a: u64,
        b: u64,
    ) -> CauseId {
        self.t += 100;
        let id = CauseId(self.records.len() as u64 + 1);
        self.records.push(PacketRecord {
            id,
            parent,
            time: SimTime::from_ns(self.t),
            component: ComponentId(component),
            kind,
            src,
            dst,
            group: if keyed.is_some() {
                u64::from(GROUP.0)
            } else {
                NO_KEY
            },
            seq: keyed.unwrap_or(NO_KEY),
            a,
            b,
        });
        id
    }
}

/// Execute `choice` on `sys` in place. Returns the safety-violation
/// message, if the transition lands in a state that breaks an invariant or
/// misbehaves at the host boundary.
fn apply(
    cfg: &Config,
    sys: &mut Sys,
    choice: Choice,
    mut rec: Option<&mut TraceRec>,
) -> Result<(), String> {
    let mut actions = ActionBuf::new();
    // The node whose engine ran, for attributing emitted sends.
    let acting: usize;
    match choice {
        Choice::Doorbell { node } => {
            let epoch = sys.rung[node];
            let cause = match rec.as_deref_mut() {
                Some(r) => {
                    let enter = r.emit(
                        CauseId::NONE,
                        CausalKind::HostEnter,
                        node,
                        node as u32,
                        NO_NODE,
                        Some(epoch),
                        0,
                        0,
                    );
                    r.emit(
                        enter,
                        CausalKind::NicDispatch,
                        node,
                        node as u32,
                        NO_NODE,
                        None,
                        0,
                        0,
                    )
                }
                None => CauseId::NONE,
            };
            sys.rung[node] = epoch + 1;
            sys.nodes[node].on_doorbell(
                SimTime::ZERO,
                GROUP,
                epoch,
                &CollOperand::Scalar(0),
                cause,
                &mut actions,
            );
            acting = node;
        }
        Choice::Deliver { msg } | Choice::Duplicate { msg } => {
            // Duplication = deliver a copy while the original stays in
            // flight (it can be delivered again, or dropped, later).
            let m = if matches!(choice, Choice::Duplicate { .. }) {
                if cfg.faults.is_some() {
                    sys.faults_used += 1;
                }
                sys.inflight[msg].clone()
            } else {
                sys.inflight.remove(msg)
            };
            let node = m.dst.0;
            let cause = match rec.as_deref_mut() {
                Some(r) => r.emit(
                    m.cause,
                    CausalKind::Arrive,
                    node,
                    m.pkt.src.0 as u32,
                    node as u32,
                    None,
                    u64::from(m.pkt.round),
                    0,
                ),
                None => CauseId::NONE,
            };
            sys.nodes[node].on_packet(SimTime::ZERO, &m.pkt, cause, &mut actions);
            acting = node;
        }
        Choice::Drop { msg } => {
            if cfg.faults.is_some() {
                sys.faults_used += 1;
            }
            let m = sys.inflight.remove(msg);
            if let Some(r) = rec.as_deref_mut() {
                r.emit(
                    m.cause,
                    CausalKind::Drop,
                    m.dst.0,
                    m.pkt.src.0 as u32,
                    m.dst.0 as u32,
                    None,
                    0,
                    0,
                );
            }
            acting = m.dst.0;
        }
        Choice::Timer { node } => {
            let deadline = sys.nodes[node]
                .next_deadline()
                .ok_or_else(|| "timer fired with no deadline armed".to_string())?;
            if let Some(r) = rec.as_deref_mut() {
                r.t += TIMEOUT_NS;
            }
            sys.nodes[node].on_timer(deadline, &mut actions);
            acting = node;
        }
    }

    for action in actions.drain() {
        match action {
            CollAction::Send {
                dst,
                pkt,
                retx,
                cause,
            } => {
                let wire_cause = match rec.as_deref_mut() {
                    Some(r) => {
                        let kind = if retx {
                            CausalKind::Retransmit
                        } else if matches!(pkt.kind, CollKind::Nack) {
                            CausalKind::Nack
                        } else {
                            CausalKind::Fire
                        };
                        let fire = r.emit(
                            cause,
                            kind,
                            acting,
                            acting as u32,
                            dst.0 as u32,
                            None,
                            u64::from(pkt.round),
                            dst.0 as u64,
                        );
                        r.emit(
                            fire,
                            CausalKind::Wire,
                            acting,
                            acting as u32,
                            dst.0 as u32,
                            None,
                            u64::from(pkt.wire_bytes()),
                            0,
                        )
                    }
                    None => CauseId::NONE,
                };
                sys.inflight.push(Msg {
                    dst,
                    pkt,
                    cause: wire_cause,
                });
            }
            CollAction::HostDone {
                group,
                epoch,
                value,
                cause,
            } => {
                if group != GROUP {
                    return Err(format!("completion for unknown group {group:?}"));
                }
                if value != 0 {
                    return Err(format!("barrier completed with nonzero value {value}"));
                }
                if epoch != sys.done[acting] {
                    return Err(format!(
                        "node {acting} completed epoch {epoch} but epoch {} was next",
                        sys.done[acting]
                    ));
                }
                sys.done[acting] = epoch + 1;
                if let Some(r) = rec.as_deref_mut() {
                    let notify = r.emit(
                        cause,
                        CausalKind::Notify,
                        acting,
                        acting as u32,
                        NO_NODE,
                        Some(epoch),
                        value,
                        0,
                    );
                    r.emit(
                        notify,
                        CausalKind::HostExit,
                        acting,
                        acting as u32,
                        NO_NODE,
                        Some(epoch),
                        value,
                        0,
                    );
                }
            }
        }
    }

    // Canonicalize: abstract the clock away and restore set semantics.
    for n in &mut sys.nodes {
        n.canonicalize_times();
    }
    sys.inflight.sort_by(|a, b| a.key().cmp(&b.key()));
    sys.inflight.dedup_by(|a, b| a.key() == b.key());

    for (i, n) in sys.nodes.iter().enumerate() {
        n.check_invariants().map_err(|e| format!("node {i}: {e}"))?;
    }
    Ok(())
}

// Per explored state: how we first reached it (BFS ⇒ minimal).
struct StateMeta {
    parent: usize,
    via: Option<Choice>,
    goal: bool,
}

fn trace_to(meta: &[StateMeta], mut idx: usize) -> Vec<Choice> {
    let mut trace = Vec::new();
    while let Some(via) = meta[idx].via {
        trace.push(via);
        idx = meta[idx].parent;
    }
    trace.reverse();
    trace
}

/// Exhaustively explore `cfg` and check every property.
pub fn explore(cfg: &Config) -> Report {
    let init = initial(cfg);
    let mut meta: Vec<StateMeta> = Vec::new();
    // Fingerprint → state index. Lookup/insert only (iteration order never
    // observed), so exploration stays deterministic.
    let mut visited: HashMap<u64, usize> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut queue: VecDeque<(usize, Sys)> = VecDeque::new();
    let mut transitions = 0usize;
    let mut truncated = false;

    visited.insert(fingerprint(&init), 0);
    meta.push(StateMeta {
        parent: 0,
        via: None,
        goal: is_goal(cfg, &init),
    });
    queue.push_back((0, init));

    while let Some((cur, sys)) = queue.pop_front() {
        if truncated {
            break;
        }
        let cur_fp = fingerprint(&sys);
        let opts = choices(cfg, &sys);
        // A non-goal state with no choices, or whose every transition leads
        // back to itself, has deadlocked.
        let mut all_self_loops = true;
        for choice in opts {
            transitions += 1;
            let mut succ = sys.clone();
            if let Err(message) = apply(cfg, &mut succ, choice, None) {
                let mut trace = trace_to(&meta, cur);
                trace.push(choice);
                return Report {
                    explored: meta.len(),
                    transitions,
                    truncated,
                    outcome: Outcome::Safety { message, trace },
                };
            }
            let fp = fingerprint(&succ);
            if fp != cur_fp {
                all_self_loops = false;
            }
            let idx = match visited.get(&fp) {
                Some(&idx) => idx,
                None => {
                    let idx = meta.len();
                    visited.insert(fp, idx);
                    meta.push(StateMeta {
                        parent: cur,
                        via: Some(choice),
                        goal: is_goal(cfg, &succ),
                    });
                    if meta.len() >= cfg.max_states {
                        truncated = true;
                    } else {
                        queue.push_back((idx, succ));
                    }
                    idx
                }
            };
            edges.push((cur as u32, idx as u32));
        }
        if all_self_loops && !meta[cur].goal {
            return Report {
                explored: meta.len(),
                transitions,
                truncated,
                outcome: Outcome::Deadlock {
                    trace: trace_to(&meta, cur),
                },
            };
        }
    }

    // Liveness: every state must be able to reach a goal state. Backward
    // reachability from the goal set over the recorded edges; only valid
    // when the graph is complete (not truncated).
    if !truncated {
        let n = meta.len();
        let mut pred_count = vec![0u32; n];
        for &(_, to) in &edges {
            pred_count[to as usize] += 1;
        }
        let mut start = vec![0usize; n + 1];
        for i in 0..n {
            start[i + 1] = start[i] + pred_count[i] as usize;
        }
        let mut preds = vec![0u32; edges.len()];
        let mut fill = start.clone();
        for &(from, to) in &edges {
            preds[fill[to as usize]] = from;
            fill[to as usize] += 1;
        }
        let mut coreach = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| meta[i].goal).collect();
        for &g in &stack {
            coreach[g] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &preds[start[s]..start[s + 1]] {
                if !coreach[p as usize] {
                    coreach[p as usize] = true;
                    stack.push(p as usize);
                }
            }
        }
        if let Some(doomed) = (0..n).find(|&i| !coreach[i]) {
            return Report {
                explored: n,
                transitions,
                truncated,
                outcome: Outcome::Liveness {
                    trace: trace_to(&meta, doomed),
                },
            };
        }
    }

    Report {
        explored: meta.len(),
        transitions,
        truncated,
        outcome: Outcome::Ok,
    }
}

/// Re-execute a counterexample trace and return it as causally-linked
/// netdump records, plus the human-readable step list. The final element
/// of `trace` may be the violating transition itself; its records are
/// included even when it ends in an invariant violation (returned as the
/// second element).
pub fn trace_records(
    cfg: &Config,
    trace: &[Choice],
) -> (Vec<PacketRecord>, Vec<String>, Option<String>) {
    let mut sys = initial(cfg);
    let mut rec = TraceRec::new();
    let mut steps = Vec::new();
    let mut violation = None;
    for (i, &choice) in trace.iter().enumerate() {
        steps.push(format!("{:>3}. {}", i + 1, choice.describe(&sys)));
        if let Err(e) = apply(cfg, &mut sys, choice, Some(&mut rec)) {
            violation = Some(e);
            break;
        }
    }
    (rec.records, steps, violation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, substrate: Substrate) -> Config {
        Config {
            nodes,
            algo: Algorithm::Dissemination,
            substrate,
            epochs: 1,
            window: 0,
            max_states: 200_000,
            faults: None,
            fault: None,
        }
    }

    #[test]
    fn two_node_gm_barrier_verifies() {
        let c = cfg(2, Substrate::Gm);
        let r = explore(&c);
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.outcome);
        assert!(!r.truncated);
        assert!(r.explored > 10, "suspiciously small: {}", r.explored);
    }

    #[test]
    fn two_node_elan_is_smaller_than_gm() {
        let gm = explore(&cfg(2, Substrate::Gm));
        let elan = explore(&cfg(2, Substrate::Elan));
        assert!(matches!(elan.outcome, Outcome::Ok));
        assert!(
            elan.explored < gm.explored,
            "reliable fabric must shrink the space: elan {} vs gm {}",
            elan.explored,
            gm.explored
        );
    }

    #[test]
    fn epoch_overlap_two_epochs_verifies() {
        let mut c = cfg(2, Substrate::Gm);
        c.epochs = 2;
        let r = explore(&c);
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.outcome);
    }

    #[test]
    fn pairwise_exchange_verifies() {
        let mut c = cfg(2, Substrate::Gm);
        c.algo = Algorithm::PairwiseExchange;
        let r = explore(&c);
        assert!(matches!(r.outcome, Outcome::Ok), "{:?}", r.outcome);
    }

    #[test]
    fn injected_skip_payload_record_is_caught_with_minimal_trace() {
        let mut c = cfg(2, Substrate::Gm);
        c.fault = Some(Fault::SkipPayloadRecord);
        let r = explore(&c);
        let Outcome::Safety { message, trace } = &r.outcome else {
            panic!("expected a safety violation, got {:?}", r.outcome);
        };
        assert!(
            message.contains("sent_payloads"),
            "unexpected violation: {message}"
        );
        // BFS minimality: the very first doorbell already sends without
        // recording, so the counterexample is a single transition.
        assert_eq!(trace.len(), 1, "trace not minimal: {trace:?}");
    }

    #[test]
    fn counterexample_replays_to_causally_linked_records() {
        let mut c = cfg(2, Substrate::Gm);
        c.fault = Some(Fault::SkipPayloadRecord);
        let r = explore(&c);
        let trace = r.outcome.trace().expect("violation expected").to_vec();
        let (records, steps, violation) = trace_records(&c, &trace);
        assert_eq!(steps.len(), trace.len());
        assert!(violation.is_some(), "replay must reproduce the violation");
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.parent < r.id, "parents precede children: {r:?}");
        }
    }

    #[test]
    fn bounded_window_explores_fewer_states() {
        let full = explore(&cfg(2, Substrate::Gm));
        let mut c = cfg(2, Substrate::Gm);
        c.window = 1;
        let bounded = explore(&c);
        assert!(
            matches!(bounded.outcome, Outcome::Ok),
            "{:?}",
            bounded.outcome
        );
        assert!(bounded.explored <= full.explored);
    }
}
