//! `nicbar-verify` — exhaustive protocol model checking, CLI.
//!
//! Single-run mode explores one configuration; `--check` runs the CI gate
//! matrix (DS and PE barriers on gm and elan at N ∈ {2, 4, 8} — full
//! proofs at N ∈ {2, 4}, bounded safety sweeps at N = 8; see
//! [`gate_matrix`]) and fails on any violation, or on truncation of a
//! full-proof row.
//!
//! Options:
//!   --check                 run the gate matrix and exit nonzero on failure
//!   --nodes N               group size (default 4)
//!   --algo ds|pe            barrier schedule (default ds)
//!   --substrate gm|elan     adversary semantics (default gm)
//!   --epochs E              consecutive epochs per host (default 1)
//!   --window W              bounded-delay delivery window, 0 = unbounded
//!   --faults F              loss+dup budget per execution (default unbounded)
//!   --max-states M          exploration cap (default 2,000,000)
//!   --inject FAULT          inject a protocol bug (skip-payload-record)
//!   --expect-violation      exit 0 only if a violation IS found
//!   --trace-out PATH        write the counterexample as netdump JSONL
//!                           (replay with: why-slow --replay PATH)
//!   --format human|json     report format (default human)

use nicbar_bench::netdump;
use nicbar_core::Algorithm;
use nicbar_verify::{explore, trace_records, Config, Fault, Outcome, Report, Substrate};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: nicbar-verify [--check] [--nodes N] [--algo ds|pe] \
         [--substrate gm|elan] [--epochs E] [--window W] [--faults F] \
         [--max-states M] [--inject skip-payload-record] \
         [--expect-violation] [--trace-out PATH] [--format human|json]"
    );
    std::process::exit(2);
}

fn parse_algo(s: &str) -> Option<Algorithm> {
    match s {
        "ds" | "dissemination" => Some(Algorithm::Dissemination),
        "pe" | "pairwise" => Some(Algorithm::PairwiseExchange),
        _ => None,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render one report as a JSON object (no trailing newline).
fn report_json(cfg: &Config, r: &Report, secs: f64, trace_path: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"algo\": \"{}\", \"substrate\": \"{}\", \"nodes\": {}, \"epochs\": {}, \
         \"window\": {}, \"faults\": {}, \"explored\": {}, \"transitions\": {}, \
         \"truncated\": {}, \"seconds\": {:.3}, \"outcome\": \"{}\"",
        cfg.algo.short_name(),
        cfg.substrate.name(),
        cfg.nodes,
        cfg.epochs,
        cfg.window,
        cfg.faults
            .map_or_else(|| "null".to_string(), |b| b.to_string()),
        r.explored,
        r.transitions,
        r.truncated,
        secs,
        r.outcome.name(),
    ));
    if let Outcome::Safety { message, .. } = &r.outcome {
        out.push_str(&format!(", \"message\": \"{}\"", json_escape(message)));
    }
    if let Some(trace) = r.outcome.trace() {
        out.push_str(&format!(", \"trace_len\": {}", trace.len()));
    }
    if let Some(p) = trace_path {
        out.push_str(&format!(", \"trace_out\": \"{}\"", json_escape(p)));
    }
    out.push('}');
    out
}

/// Print a violation's step list and optionally dump the replayable trace.
fn render_violation(cfg: &Config, r: &Report, trace_out: Option<&str>) {
    let Some(trace) = r.outcome.trace() else {
        return;
    };
    let (records, steps, violation) = trace_records(cfg, trace);
    eprintln!("minimal counterexample ({} step(s)):", steps.len());
    for s in &steps {
        eprintln!("  {s}");
    }
    match &r.outcome {
        Outcome::Safety { message, .. } => eprintln!("  => invariant violated: {message}"),
        Outcome::Deadlock { .. } => eprintln!("  => deadlock: no transition makes progress"),
        Outcome::Liveness { .. } => {
            eprintln!("  => completion is unreachable from the resulting state")
        }
        Outcome::Ok => {}
    }
    if let Some(v) = violation {
        debug_assert!(matches!(r.outcome, Outcome::Safety { .. }), "{v}");
    }
    if let Some(path) = trace_out {
        match std::fs::write(path, netdump::jsonl(&records)) {
            Ok(()) => eprintln!(
                "wrote {} netdump record(s) to {path} (replay: why-slow --replay {path})",
                records.len()
            ),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_single(cfg: &Config, expect_violation: bool, trace_out: Option<&str>, json: bool) -> i32 {
    let t0 = Instant::now();
    let r = explore(cfg);
    let secs = t0.elapsed().as_secs_f64();
    if json {
        println!("{}", report_json(cfg, &r, secs, trace_out));
    } else {
        println!("nicbar-verify: {}", cfg.describe());
        println!(
            "explored {} state(s), {} transition(s) in {:.2}s{}",
            r.explored,
            r.transitions,
            secs,
            if r.truncated {
                " [TRUNCATED at --max-states]"
            } else {
                ""
            }
        );
    }
    let violated = !matches!(r.outcome, Outcome::Ok);
    if violated {
        render_violation(cfg, &r, trace_out);
    }
    match (violated, expect_violation) {
        (false, false) => {
            if r.truncated {
                if !json {
                    eprintln!("FAIL: exploration truncated — liveness unproven");
                }
                1
            } else {
                if !json {
                    println!(
                        "all properties hold: invariants on every state, \
                         deadlock-free, completion always reachable"
                    );
                }
                0
            }
        }
        (true, true) => {
            if !json {
                println!("violation found, as expected (--expect-violation)");
            }
            0
        }
        (true, false) => {
            if !json {
                eprintln!("FAIL: {} violation", r.outcome.name());
            }
            1
        }
        (false, true) => {
            if !json {
                eprintln!("FAIL: expected a violation, none found");
            }
            1
        }
    }
}

/// Cap for the bounded N = 8 safety sweeps: large enough to exercise deep
/// interleavings, small enough to keep each row under ~30 s.
const BOUNDED_SWEEP_STATES: usize = 150_000;

/// The CI gate matrix, for both barrier schedules on both substrates:
///
/// * N = 2, two epochs (covers the one-epoch-deep banking window) under
///   the *unbounded* adversary — arbitrarily many losses, duplicates and
///   reorderings, unbounded delay. Full proof: safety + deadlock-freedom
///   + NACK liveness over the complete state graph.
/// * N = 4, full proof. Elan runs unrestricted reorder + unbounded delay
///   (~225k states); gm needs a loss+dup budget of 2 and a delivery
///   window of 2 (~180k states — the unbounded gm space exceeds 1.6M
///   states even with a single-fault budget and takes minutes, so the
///   unbounded-delay gm proof lives at N = 2).
/// * N = 8, *bounded safety sweep*: exploration truncates at
///   [`BOUNDED_SWEEP_STATES`]; invariants and deadlock-freedom are checked
///   on every explored state but liveness is not claimed (that proof is
///   the N ∈ {2, 4} rows' job).
fn gate_matrix(max_states: usize) -> Vec<(Config, bool)> {
    let mut out = Vec::new();
    for &substrate in &[Substrate::Gm, Substrate::Elan] {
        // (nodes, epochs, window, faults, bounded-sweep?)
        let rows: &[(usize, u64, usize, Option<u32>, bool)] = match substrate {
            Substrate::Gm => &[
                (2, 2, 0, None, false),
                (4, 1, 2, Some(2), false),
                (8, 1, 1, Some(1), true),
            ],
            Substrate::Elan => &[
                (2, 2, 0, None, false),
                (4, 1, 0, None, false),
                (8, 1, 1, None, true),
            ],
        };
        for &algo in &[Algorithm::Dissemination, Algorithm::PairwiseExchange] {
            for &(nodes, epochs, window, faults, bounded) in rows {
                out.push((
                    Config {
                        nodes,
                        algo,
                        substrate,
                        epochs,
                        window,
                        max_states: if bounded {
                            BOUNDED_SWEEP_STATES.min(max_states)
                        } else {
                            max_states
                        },
                        faults,
                        fault: None,
                    },
                    bounded,
                ));
            }
        }
    }
    out
}

fn run_check(max_states: usize, json: bool) -> i32 {
    let configs = gate_matrix(max_states);
    let mut failed = 0usize;
    let mut lines = Vec::new();
    let t0 = Instant::now();
    for (cfg, bounded) in &configs {
        let s0 = Instant::now();
        let r = explore(cfg);
        let secs = s0.elapsed().as_secs_f64();
        // Bounded sweeps may truncate (safety checked on the explored
        // prefix); full-proof rows must explore the whole graph.
        let ok = matches!(r.outcome, Outcome::Ok) && (*bounded || !r.truncated);
        if !ok {
            failed += 1;
        }
        if json {
            lines.push(report_json(cfg, &r, secs, None));
        } else {
            let tag = match (ok, r.truncated) {
                (true, true) => "OK* ",
                (true, false) => "OK  ",
                (false, _) => "FAIL",
            };
            println!(
                "{} {:58} {:>9} states {:>10} transitions {:>7.2}s",
                tag,
                cfg.describe(),
                r.explored,
                r.transitions,
                secs
            );
            if !ok {
                render_violation(cfg, &r, None);
                if r.truncated {
                    eprintln!(
                        "  => truncated at {} states; liveness unproven",
                        cfg.max_states
                    );
                }
            }
        }
    }
    if json {
        println!("[{}]", lines.join(",\n "));
    } else {
        println!(
            "nicbar-verify --check: {}/{} configurations verified in {:.1}s \
             (OK* = bounded safety sweep, liveness proven on the full-proof rows)",
            configs.len() - failed,
            configs.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    i32::from(failed > 0)
}

fn main() {
    let mut check = false;
    let mut nodes = 4usize;
    let mut algo = Algorithm::Dissemination;
    let mut substrate = Substrate::Gm;
    let mut epochs = 1u64;
    let mut window = 0usize;
    let mut faults: Option<u32> = None;
    let mut max_states = 2_000_000usize;
    let mut fault: Option<Fault> = None;
    let mut expect_violation = false;
    let mut trace_out: Option<String> = None;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 2 => nodes = v,
                _ => usage(),
            },
            "--algo" => match args.next().as_deref().and_then(parse_algo) {
                Some(a) => algo = a,
                None => usage(),
            },
            "--substrate" => match args.next().as_deref().and_then(Substrate::parse) {
                Some(s) => substrate = s,
                None => usage(),
            },
            "--epochs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => epochs = v,
                _ => usage(),
            },
            "--window" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => window = v,
                None => usage(),
            },
            "--faults" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => faults = Some(v),
                None => usage(),
            },
            "--max-states" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => max_states = v,
                _ => usage(),
            },
            "--inject" => match args.next().as_deref().and_then(Fault::parse) {
                Some(f) => fault = Some(f),
                None => usage(),
            },
            "--expect-violation" => expect_violation = true,
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p),
                None => usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let code = if check {
        run_check(max_states, json)
    } else {
        let cfg = Config {
            nodes,
            algo,
            substrate,
            epochs,
            window,
            max_states,
            faults,
            fault,
        };
        run_single(&cfg, expect_violation, trace_out.as_deref(), json)
    };
    std::process::exit(code);
}
