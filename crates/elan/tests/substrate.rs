//! End-to-end tests of the Elan substrate: chained RDMA descriptors, tport
//! messaging, the gsync tree barrier over the simulated cluster, and the
//! hardware barrier.
#![allow(clippy::unwrap_used)] // test code: panicking on bad state is the point

use nicbar_elan::{
    hw_cookie, DescId, ElanApi, ElanApp, ElanCluster, ElanClusterSpec, ElanNic, ElanParams,
    EventAction, EventId, Gsync, NicEvent, NicProgram, RdmaDesc, TportTag, BCAST_TAG, GATHER_TAG,
    GSYNC_MSG_BYTES,
};
use nicbar_net::NodeId;
use nicbar_sim::{RunOutcome, SimTime};

/// App that fires descriptor 0 at start and records completion cookies.
struct ChainDriver {
    fire_at_start: bool,
    cookies: Vec<(SimTime, u64)>,
}

impl ElanApp for ChainDriver {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        if self.fire_at_start {
            api.doorbell(DescId(0));
        }
    }
    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64) {
        self.cookies.push((api.now(), cookie));
    }
}

#[test]
fn two_node_rdma_chain_ping_pong() {
    // Node 0: desc0 -> remote event at node 1; node 1's event fires its
    // desc0 back to node 0; node 0's event notifies the host. One full
    // chained round trip with zero host involvement in the middle.
    let spec = ElanClusterSpec::new(ElanParams::elan3(), 2);
    let prog0 = NicProgram {
        descs: vec![RdmaDesc {
            dst: NodeId(1),
            bytes: 0,
            remote_event: Some(EventId(0)),
            local_event: None,
        }],
        events: vec![NicEvent::new(
            1,
            vec![EventAction::NotifyHost { cookie: 42 }],
        )],
        ..Default::default()
    };
    let prog1 = NicProgram {
        descs: vec![RdmaDesc {
            dst: NodeId(0),
            bytes: 0,
            remote_event: Some(EventId(0)),
            local_event: None,
        }],
        events: vec![NicEvent::new(1, vec![EventAction::FireDesc(DescId(0))])],
        ..Default::default()
    };
    let apps: Vec<Box<dyn ElanApp>> = vec![
        Box::new(ChainDriver {
            fire_at_start: true,
            cookies: Vec::new(),
        }),
        Box::new(ChainDriver {
            fire_at_start: false,
            cookies: Vec::new(),
        }),
    ];
    let mut cluster = ElanCluster::build(spec, apps, vec![prog0, prog1]);
    let outcome = cluster.run_until(SimTime::from_us(1_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    let driver = cluster.app_ref::<ChainDriver>(0);
    assert_eq!(driver.cookies.len(), 1);
    assert_eq!(driver.cookies[0].1, 42);
    let rtt = driver.cookies[0].0.as_us();
    // A chained zero-byte RDMA round trip on Elan3 is a handful of µs.
    assert!(
        (1.0..10.0).contains(&rtt),
        "chained RTT {rtt:.2}us implausible"
    );
    assert_eq!(cluster.engine.counters().get("elan.rdma_sent"), 2);
}

#[test]
fn banked_event_sets_survive_fast_sender() {
    // Node 0 fires its descriptor 3 times back-to-back; node 1's event has
    // threshold 1 and notifies its host each trip — all three must arrive.
    struct TripleFire;
    impl ElanApp for TripleFire {
        fn on_start(&mut self, api: &mut ElanApi<'_>) {
            api.doorbell(DescId(0));
            api.doorbell(DescId(0));
            api.doorbell(DescId(0));
        }
        fn on_coll_done(&mut self, _api: &mut ElanApi<'_>, _cookie: u64) {}
    }
    let spec = ElanClusterSpec::new(ElanParams::elan3(), 2);
    let prog0 = NicProgram {
        descs: vec![RdmaDesc {
            dst: NodeId(1),
            bytes: 0,
            remote_event: Some(EventId(0)),
            local_event: None,
        }],
        events: vec![],
        ..Default::default()
    };
    let prog1 = NicProgram {
        descs: vec![],
        events: vec![NicEvent::new(
            1,
            vec![EventAction::NotifyHost { cookie: 7 }],
        )],
        ..Default::default()
    };
    let apps: Vec<Box<dyn ElanApp>> = vec![
        Box::new(TripleFire),
        Box::new(ChainDriver {
            fire_at_start: false,
            cookies: Vec::new(),
        }),
    ];
    let mut cluster = ElanCluster::build(spec, apps, vec![prog0, prog1]);
    cluster.run_until(SimTime::from_us(1_000.0));
    assert_eq!(cluster.app_ref::<ChainDriver>(1).cookies.len(), 3);
    // NIC-side event state agrees.
    let nic1 = cluster.nics[1];
    let ev = cluster
        .engine
        .component_ref::<ElanNic>(nic1)
        .unwrap()
        .event(EventId(0));
    assert_eq!(ev.sets, 3);
    assert_eq!(ev.threshold, 4);
}

/// Gsync benchmark app: runs `iters` consecutive tree barriers.
struct GsyncApp {
    gsync: Gsync,
    iters: u64,
    finish: Option<SimTime>,
}

impl GsyncApp {
    fn issue(&mut self, api: &mut ElanApi<'_>, step: nicbar_elan::GsyncStep) {
        for s in step.sends {
            api.tport_send(s.dst, s.tag, GSYNC_MSG_BYTES);
        }
        if step.done {
            if self.gsync.epochs_done() >= self.iters {
                self.finish = Some(api.now());
            } else {
                let next = self.gsync.begin();
                self.issue(api, next);
            }
        }
    }
}

impl ElanApp for GsyncApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        let step = self.gsync.begin();
        self.issue(api, step);
    }
    fn on_recv(&mut self, api: &mut ElanApi<'_>, _src: NodeId, tag: TportTag, _len: u32) {
        let step = if tag == GATHER_TAG {
            self.gsync.on_gather()
        } else {
            assert_eq!(tag, BCAST_TAG);
            self.gsync.on_bcast()
        };
        self.issue(api, step);
    }
    fn on_coll_done(&mut self, _api: &mut ElanApi<'_>, _cookie: u64) {}
}

#[test]
fn gsync_runs_consecutive_barriers_over_the_cluster() {
    let n = 8;
    let iters = 50;
    let spec = ElanClusterSpec::new(ElanParams::elan3(), n).with_seed(3);
    let apps: Vec<Box<dyn ElanApp>> = (0..n)
        .map(|i| {
            Box::new(GsyncApp {
                gsync: Gsync::new(i, n, 2),
                iters,
                finish: None,
            }) as Box<dyn ElanApp>
        })
        .collect();
    let progs = vec![NicProgram::default(); n];
    let mut cluster = ElanCluster::build(spec, apps, progs);
    let outcome = cluster.run_until(SimTime::from_us(1_000_000.0));
    assert_eq!(outcome, RunOutcome::Idle);
    let mut last = SimTime::ZERO;
    for i in 0..n {
        let app = cluster.app_ref::<GsyncApp>(i);
        assert_eq!(app.gsync.epochs_done(), iters, "node {i}");
        last = last.max(app.finish.unwrap());
    }
    let per_barrier = last.as_us() / iters as f64;
    // Host-level tree barrier on Elan: low-teens of µs at 8 nodes.
    assert!(
        (6.0..30.0).contains(&per_barrier),
        "gsync barrier {per_barrier:.2}us implausible"
    );
    // 2(n-1) messages per barrier.
    let msgs = cluster.engine.counters().get("elan.tport_sent");
    assert_eq!(msgs, iters * 2 * (n as u64 - 1));
}

/// Hardware-barrier benchmark app.
struct HwApp {
    iters: u64,
    done: u64,
    finish: Option<SimTime>,
}

impl ElanApp for HwApp {
    fn on_start(&mut self, api: &mut ElanApi<'_>) {
        api.hw_sync();
    }
    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64) {
        assert_eq!(cookie, hw_cookie(self.done));
        self.done += 1;
        if self.done >= self.iters {
            self.finish = Some(api.now());
        } else {
            api.hw_sync();
        }
    }
}

#[test]
fn hardware_barrier_is_flat_and_fast() {
    let latency = |n: usize| -> f64 {
        let iters = 100;
        let spec = ElanClusterSpec::new(ElanParams::elan3(), n)
            .with_seed(4)
            .with_hw_barrier();
        let apps: Vec<Box<dyn ElanApp>> = (0..n)
            .map(|_| {
                Box::new(HwApp {
                    iters,
                    done: 0,
                    finish: None,
                }) as Box<dyn ElanApp>
            })
            .collect();
        let mut cluster = ElanCluster::build(spec, apps, vec![NicProgram::default(); n]);
        assert_eq!(
            cluster.run_until(SimTime::from_us(1_000_000.0)),
            RunOutcome::Idle
        );
        let t = (0..n)
            .map(|i| cluster.app_ref::<HwApp>(i).finish.unwrap())
            .max()
            .unwrap();
        t.as_us() / iters as f64
    };
    let l2 = latency(2);
    let l8 = latency(8);
    // Paper: elan_hgsync ≈ 4.2 µs at 8 nodes, nearly flat in N.
    assert!((3.0..6.0).contains(&l8), "hw barrier {l8:.2}us at 8 nodes");
    assert!(
        (l8 - l2).abs() < 1.5,
        "hw barrier should be nearly flat: {l2:.2} vs {l8:.2}"
    );
}

/// The hardware barrier's synchronization caveat (§4.1): skewed arrivals
/// make the test-and-set wave retry, growing its latency — the reason
/// Elanlib falls back to the software tree for poorly synchronized
/// processes.
#[test]
fn hardware_barrier_pays_for_skewed_arrivals() {
    struct SkewedHw {
        delay_us: f64,
        iters: u64,
        done: u64,
        finish: Option<SimTime>,
        started: bool,
    }
    impl ElanApp for SkewedHw {
        fn on_start(&mut self, api: &mut ElanApi<'_>) {
            if self.delay_us > 0.0 {
                self.started = false;
                api.set_timer(SimTime::from_us(self.delay_us));
            } else {
                api.hw_sync();
            }
        }
        fn on_timer(&mut self, api: &mut ElanApi<'_>) {
            if !self.started {
                self.started = true;
                api.hw_sync();
            } else {
                api.hw_sync();
            }
        }
        fn on_coll_done(&mut self, api: &mut ElanApi<'_>, _cookie: u64) {
            self.done += 1;
            if self.done >= self.iters {
                self.finish = Some(api.now());
            } else if self.delay_us > 0.0 {
                api.set_timer(SimTime::from_us(self.delay_us));
            } else {
                api.hw_sync();
            }
        }
    }
    let latency = |skew: f64| -> f64 {
        let iters = 50;
        let spec = ElanClusterSpec::new(ElanParams::elan3(), 8)
            .with_seed(13)
            .with_hw_barrier();
        // Node 7 lags every barrier by `skew` µs.
        let apps: Vec<Box<dyn ElanApp>> = (0..8)
            .map(|i| {
                Box::new(SkewedHw {
                    delay_us: if i == 7 { skew } else { 0.0 },
                    iters,
                    done: 0,
                    finish: None,
                    started: false,
                }) as Box<dyn ElanApp>
            })
            .collect();
        let mut cluster = ElanCluster::build(spec, apps, vec![NicProgram::default(); 8]);
        cluster.run_until(SimTime::from_us(10_000_000.0));
        let t = (0..8)
            .map(|i| cluster.app_ref::<SkewedHw>(i).finish.unwrap())
            .max()
            .unwrap();
        t.as_us() / iters as f64
    };
    let tight = latency(0.0);
    let skewed = latency(10.0);
    // The skewed run pays the laggard's 10 µs *plus* the retry penalty
    // (hw_skew_factor × spread): clearly more than tight + 10.
    assert!(
        skewed > tight + 10.0 + 3.0,
        "skew penalty missing: tight {tight:.2}, skewed {skewed:.2}"
    );
}
