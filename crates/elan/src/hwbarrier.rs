//! The switch-level hardware barrier (`elan_hgsync` fast path).
//!
//! QsNet implements its hardware barrier "with an atomic test-and-set
//! operation down the NIC" (§8.2): the Elite switches combine readiness up
//! the tree and broadcast release down it. Two properties from the paper
//! are modeled:
//!
//! * the wave itself is nearly node-count independent (per-level cost on a
//!   quaternary tree, so ~log₄ N), giving the flat ≈4.2 µs line of Fig. 7;
//! * *skewed arrivals are penalized*: the test-and-set retries while
//!   laggards are missing, so a fraction of the arrival spread is added to
//!   the completion time. This is the "requires that the calling processes
//!   are well synchronized" caveat that makes the software/NIC barriers
//!   attractive in real applications.
//!
//! The unit also enforces the *contiguous nodes* restriction at
//! construction: a fragmented group simply cannot build a hardware barrier
//! (Elanlib then falls back to the `elan_gsync` tree).

use crate::events::ElanEvent;
use crate::params::ElanParams;
use nicbar_net::{NodeId, Topology};
use nicbar_sim::counter_id;
use nicbar_sim::{CausalKind, Component, ComponentId, Ctx, PacketLog, SimTime, NO_NODE};
use std::collections::BTreeMap;

/// The switch-resident barrier combining unit.
pub struct HwBarrierUnit {
    group: Vec<NodeId>,
    nics: Vec<ComponentId>,
    params: ElanParams,
    levels: u32,
    /// epoch → (arrivals so far, first arrival time)
    pending: BTreeMap<u64, (usize, SimTime)>,
}

impl HwBarrierUnit {
    /// Build the unit for `group` (must be contiguous on `topology`).
    /// `nics[i]` is the NIC component of `group[i]`.
    pub fn new(
        group: Vec<NodeId>,
        nics: Vec<ComponentId>,
        topology: &dyn Topology,
        params: ElanParams,
    ) -> Self {
        assert_eq!(group.len(), nics.len());
        assert!(
            topology.supports_hw_broadcast(group[0], &group),
            "hardware barrier requires a contiguous node range (§4.1)"
        );
        // Tree levels spanned by the group ≈ log4 of its extent.
        let mut levels = 1u32;
        while 4usize.pow(levels) < group.len() {
            levels += 1;
        }
        HwBarrierUnit {
            group,
            nics,
            params,
            levels,
            pending: BTreeMap::new(),
        }
    }

    /// Number of fat-tree levels the combining wave spans.
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

impl Component<ElanEvent> for HwBarrierUnit {
    fn handle(&mut self, msg: ElanEvent, ctx: &mut Ctx<'_, ElanEvent>) {
        let ElanEvent::HwArrive { node, epoch, cause } = msg else {
            panic!("hw barrier unit got unexpected event");
        };
        debug_assert!(self.group.contains(&node));
        let now = ctx.now();
        let entry = self.pending.entry(epoch).or_insert((0, now));
        entry.0 += 1;
        if entry.0 < self.group.len() {
            return;
        }
        let (_, first) = self.pending.remove(&epoch).expect("just inserted");
        // All members arrived: run the test-and-set wave.
        let spread = now.saturating_sub(first);
        let penalty = spread
            .scale(self.params.hw_skew_factor)
            .min(self.params.hw_skew_cap);
        let done =
            now + self.params.hw_base + self.params.hw_per_level * u64::from(self.levels) + penalty;
        ctx.count_id(counter_id!("elan.hw_barrier"), 1);
        // Netdump: one record for the combining wave, parented on the last
        // arrival (the enabling stimulus of the whole release broadcast).
        let wave = ctx.packet(
            PacketLog::new(cause, CausalKind::Fire)
                .nodes(node.0 as u32, NO_NODE)
                .detail(epoch, penalty.as_ns()),
        );
        for &nic in &self.nics {
            ctx.send_at(done, nic, ElanEvent::HwDone { epoch, cause: wave });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicbar_net::QuaternaryFatTree;

    #[test]
    fn levels_grow_with_group_size() {
        let params = ElanParams::elan3();
        let topo = QuaternaryFatTree::new(64);
        let mk = |n: usize| {
            let group: Vec<NodeId> = (0..n).map(NodeId).collect();
            let nics: Vec<ComponentId> = (0..n).map(ComponentId).collect();
            HwBarrierUnit::new(group, nics, &topo, params.clone())
        };
        assert_eq!(mk(4).levels(), 1);
        assert_eq!(mk(8).levels(), 2);
        assert_eq!(mk(16).levels(), 2);
        assert_eq!(mk(64).levels(), 3);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn fragmented_group_rejected() {
        let params = ElanParams::elan3();
        let topo = QuaternaryFatTree::new(16);
        let group = vec![NodeId(0), NodeId(2), NodeId(4)];
        let nics = vec![ComponentId(0), ComponentId(1), ComponentId(2)];
        HwBarrierUnit::new(group, nics, &topo, params);
    }
}
