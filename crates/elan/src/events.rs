//! Event vocabulary of the Elan/Quadrics simulation.

use crate::types::{DescId, TportTag};
use nicbar_net::NodeId;
use nicbar_sim::CauseId;

/// What an Elan network transaction carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElanPayload {
    /// A (possibly zero-byte) RDMA that sets `remote_event` at the target
    /// NIC on arrival. `remote_event == None` models a plain data RDMA.
    Rdma {
        /// Event index at the destination NIC.
        remote_event: Option<crate::types::EventId>,
    },
    /// A Tports tagged message (host-level messaging, used by the Elanlib
    /// tree barrier).
    Tport {
        /// Message tag.
        tag: TportTag,
        /// Message length.
        len: u32,
    },
    /// A thread-processor message: value word delivered to the target
    /// NIC's [`crate::thread::ElanThread`].
    Thread {
        /// Protocol tag (epoch/round encoding).
        tag: u32,
        /// The value word.
        value: u64,
    },
}

impl ElanPayload {
    /// Detail word for an `arrive` span event: the remote event index for
    /// an RDMA (or `u64::MAX` for a plain data RDMA), the tag for tport and
    /// thread messages. Kept next to the payload definition so every NIC
    /// arrival branch reports the same encoding.
    pub fn arrive_info(&self) -> u64 {
        match self {
            ElanPayload::Rdma { remote_event } => {
                remote_event.map(|e| e.0 as u64).unwrap_or(u64::MAX)
            }
            ElanPayload::Tport { tag, .. } => tag.0 as u64,
            ElanPayload::Thread { tag, .. } => *tag as u64,
        }
    }
}

/// Events exchanged between the components of an Elan cluster simulation.
#[derive(Clone, Debug)]
pub enum ElanEvent {
    // --- host-bound ---
    /// Kick the application.
    AppStart,
    /// Application timer fired.
    AppTimer,
    /// A tport message reached this host.
    HostRecv {
        /// Sender node.
        src: NodeId,
        /// Message tag.
        tag: TportTag,
        /// Message length.
        len: u32,
        /// Netdump id of the NIC's arrival record for this message.
        cause: CauseId,
    },
    /// A NIC event with a `NotifyHost` action tripped (chained-RDMA barrier
    /// completion), or the hardware barrier finished.
    HostCollDone {
        /// Opaque cookie identifying which operation completed.
        cookie: u64,
        /// Netdump id of the NIC's `notify` record.
        cause: CauseId,
    },

    // --- NIC-bound ---
    /// Host doorbell: launch a descriptor.
    Doorbell {
        /// Descriptor to fire.
        desc: DescId,
        /// Netdump id of the host's posting record.
        cause: CauseId,
    },
    /// Host doorbell: set a NIC event from user space (Elan3 lets the host
    /// poke event words directly; used as the per-barrier entry trigger).
    SetEvent {
        /// Event to set.
        event: crate::types::EventId,
        /// Netdump id of the host's `host-enter` record.
        cause: CauseId,
    },
    /// Chain continuation: an event action launches another descriptor.
    FireDesc {
        /// Descriptor to fire.
        desc: DescId,
        /// Netdump id of the record that tripped the chain link.
        cause: CauseId,
    },
    /// Host posts a thread doorbell (operand delivered to the NIC thread).
    ThreadPost {
        /// Operand.
        value: u64,
        /// Netdump id of the host's `host-enter` record.
        cause: CauseId,
    },
    /// Host posts a tport send.
    TportPost {
        /// Destination node.
        dst: NodeId,
        /// Tag.
        tag: TportTag,
        /// Length.
        len: u32,
        /// Netdump id of the host's posting record.
        cause: CauseId,
    },
    /// Host enters the hardware barrier.
    HwSyncPost {
        /// Barrier epoch (for sanity checking).
        epoch: u64,
        /// Netdump id of the host's `host-enter` record.
        cause: CauseId,
    },
    /// A network transaction arrived at this NIC.
    Arrive {
        /// Source node.
        src: NodeId,
        /// Payload.
        payload: ElanPayload,
        /// Netdump id of the receiving NIC's `wire` record.
        cause: CauseId,
    },
    /// The hardware barrier unit reports completion to this NIC.
    HwDone {
        /// Completed epoch.
        epoch: u64,
        /// Netdump id of the barrier unit's combining-wave record.
        cause: CauseId,
    },

    // --- destination-NIC-bound ---
    /// A transaction presents at the destination NIC's input port after
    /// its routed flight; the receiver resolves port contention.
    Inject {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Wire size.
        bytes: u32,
        /// Payload.
        payload: ElanPayload,
        /// Netdump id of the sender's `fire` record.
        cause: CauseId,
    },

    // --- hardware-barrier-unit-bound ---
    /// A NIC signalled readiness for the hardware barrier.
    HwArrive {
        /// The node that arrived.
        node: NodeId,
        /// Barrier epoch.
        epoch: u64,
        /// Netdump id of the NIC's forwarding record.
        cause: CauseId,
    },
}
