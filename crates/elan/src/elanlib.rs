//! Elanlib-level collectives: the `elan_gsync()` tree barrier.
//!
//! `elan_gsync` is a host-level gather-broadcast over tagged messages: all
//! processes combine up a d-ary tree to the root, which releases a
//! broadcast back down (§4.1 / Fig. 2). The host is on the critical path at
//! every tree level — exactly what the NIC-based barrier removes.
//!
//! [`Gsync`] is a pure state machine (no engine types), embedded by the
//! benchmark applications: they translate its requested sends into tport
//! messages and feed arrivals back in. Consecutive barriers are handled by
//! *banking* counts (like the NIC event counters): a child that races ahead
//! into the next barrier can deliver its gather early and nothing is lost.

use crate::types::TportTag;
use nicbar_net::NodeId;

/// Tag for gather (up-tree) messages.
pub const GATHER_TAG: TportTag = TportTag(0xE1A0);
/// Tag for broadcast (down-tree) messages.
pub const BCAST_TAG: TportTag = TportTag(0xE1A1);
/// Payload size of a gsync message (one synchronization word).
pub const GSYNC_MSG_BYTES: u32 = 4;

/// A send requested by the state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GsyncSend {
    /// Destination node.
    pub dst: NodeId,
    /// `GATHER_TAG` or `BCAST_TAG`.
    pub tag: TportTag,
}

/// Result of feeding a stimulus into the state machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GsyncStep {
    /// Tport sends to issue now.
    pub sends: Vec<GsyncSend>,
    /// The current barrier completed with this stimulus.
    pub done: bool,
}

/// The `elan_gsync` tree-barrier state machine for one process.
///
/// ```
/// use nicbar_elan::Gsync;
///
/// // A two-process barrier: the leaf gathers to the root, the root
/// // releases.
/// let mut root = Gsync::new(0, 2, 2);
/// let mut leaf = Gsync::new(1, 2, 2);
/// let step = leaf.begin();
/// assert_eq!(step.sends.len(), 1); // gather up
/// assert!(root.begin().sends.is_empty());
/// let step = root.on_gather();
/// assert!(step.done); // root releases…
/// assert!(leaf.on_bcast().done); // …and the leaf exits
/// ```
#[derive(Clone, Debug)]
pub struct Gsync {
    node: usize,
    parent: Option<usize>,
    children: Vec<usize>,
    in_barrier: bool,
    sent_up: bool,
    gathers_banked: u64,
    gathers_consumed: u64,
    bcasts_banked: u64,
    bcasts_consumed: u64,
    epochs_done: u64,
}

impl Gsync {
    /// Build the state machine for `node` in an `n`-process group with a
    /// `degree`-ary tree rooted at node 0.
    pub fn new(node: usize, n: usize, degree: usize) -> Self {
        assert!(degree >= 2, "tree degree must be at least 2");
        assert!(node < n, "node out of range");
        let parent = if node == 0 {
            None
        } else {
            Some((node - 1) / degree)
        };
        let children: Vec<usize> = (1..=degree)
            .map(|k| degree * node + k)
            .filter(|&c| c < n)
            .collect();
        Gsync {
            node,
            parent,
            children,
            in_barrier: false,
            sent_up: false,
            gathers_banked: 0,
            gathers_consumed: 0,
            bcasts_banked: 0,
            bcasts_consumed: 0,
            epochs_done: 0,
        }
    }

    /// Completed barrier count.
    pub fn epochs_done(&self) -> u64 {
        self.epochs_done
    }

    /// This node's children in the tree.
    pub fn children(&self) -> &[usize] {
        &self.children
    }

    /// Enter the barrier.
    ///
    /// # Panics
    /// Panics if already inside one (a process is in at most one barrier).
    pub fn begin(&mut self) -> GsyncStep {
        assert!(!self.in_barrier, "re-entered gsync before completion");
        self.in_barrier = true;
        self.sent_up = false;
        self.progress()
    }

    /// A gather message arrived (from any child; order is irrelevant).
    pub fn on_gather(&mut self) -> GsyncStep {
        self.gathers_banked += 1;
        self.progress()
    }

    /// A broadcast (release) message arrived from the parent.
    pub fn on_bcast(&mut self) -> GsyncStep {
        self.bcasts_banked += 1;
        self.progress()
    }

    fn progress(&mut self) -> GsyncStep {
        let mut step = GsyncStep::default();
        if !self.in_barrier {
            return step;
        }
        let need = self.children.len() as u64;
        if !self.sent_up && self.gathers_banked - self.gathers_consumed >= need {
            self.gathers_consumed += need;
            self.sent_up = true;
            match self.parent {
                Some(p) => step.sends.push(GsyncSend {
                    dst: NodeId(p),
                    tag: GATHER_TAG,
                }),
                None => {
                    // Root: everyone has arrived — release down the tree.
                    for &c in &self.children {
                        step.sends.push(GsyncSend {
                            dst: NodeId(c),
                            tag: BCAST_TAG,
                        });
                    }
                    self.finish(&mut step);
                    return step;
                }
            }
        }
        if self.sent_up && self.parent.is_some() && self.bcasts_banked - self.bcasts_consumed >= 1 {
            self.bcasts_consumed += 1;
            for &c in &self.children {
                step.sends.push(GsyncSend {
                    dst: NodeId(c),
                    tag: BCAST_TAG,
                });
            }
            self.finish(&mut step);
        }
        step
    }

    fn finish(&mut self, step: &mut GsyncStep) {
        self.in_barrier = false;
        self.epochs_done += 1;
        step.done = true;
        let _ = self.node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Drive a whole group to completion in-memory, with an arbitrary entry
    /// order; returns total messages sent.
    fn run_barrier(n: usize, degree: usize, entry_order: &[usize]) -> u64 {
        let mut nodes: Vec<Gsync> = (0..n).map(|i| Gsync::new(i, n, degree)).collect();
        let mut wire: VecDeque<(usize, GsyncSend)> = VecDeque::new();
        let mut done = vec![false; n];
        let mut msgs = 0;
        let handle = |i: usize,
                      step: GsyncStep,
                      wire: &mut VecDeque<(usize, GsyncSend)>,
                      done: &mut Vec<bool>,
                      msgs: &mut u64| {
            for s in step.sends {
                *msgs += 1;
                wire.push_back((i, s));
            }
            if step.done {
                done[i] = true;
            }
        };
        for &i in entry_order {
            let step = nodes[i].begin();
            handle(i, step, &mut wire, &mut done, &mut msgs);
        }
        while let Some((_, send)) = wire.pop_front() {
            let dst = send.dst.0;
            let step = if send.tag == GATHER_TAG {
                nodes[dst].on_gather()
            } else {
                nodes[dst].on_bcast()
            };
            handle(dst, step, &mut wire, &mut done, &mut msgs);
        }
        assert!(done.iter().all(|&d| d), "barrier did not complete");
        msgs
    }

    #[test]
    fn gsync_completes_for_various_shapes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 16, 32] {
            for degree in [2usize, 4] {
                let order: Vec<usize> = (0..n).collect();
                let msgs = run_barrier(n, degree, &order);
                assert_eq!(msgs as usize, 2 * (n - 1), "n={n} d={degree}");
            }
        }
    }

    #[test]
    fn entry_order_does_not_matter() {
        let reversed: Vec<usize> = (0..16).rev().collect();
        let msgs = run_barrier(16, 2, &reversed);
        assert_eq!(msgs, 30);
    }

    #[test]
    fn consecutive_barriers_with_banked_messages() {
        // Two nodes: child may send its next-epoch gather before the root
        // re-enters. Simulate by delivering the gather early.
        let mut root = Gsync::new(0, 2, 2);
        let mut child = Gsync::new(1, 2, 2);
        // Epoch 0.
        let s = child.begin();
        assert_eq!(s.sends.len(), 1);
        let r = root.begin();
        assert!(r.sends.is_empty() && !r.done);
        let r = root.on_gather();
        assert!(r.done, "root releases once the gather arrives");
        let s = child.on_bcast();
        assert!(s.done);
        // Child races into epoch 1 and its gather lands before root begins.
        let s = child.begin();
        assert_eq!(s.sends.len(), 1);
        let r = root.on_gather();
        assert!(!r.done, "root not in barrier yet; gather banked");
        let r = root.begin();
        assert!(r.done, "banked gather satisfies the new epoch immediately");
        assert_eq!(root.epochs_done(), 2);
    }

    #[test]
    fn single_node_barrier_is_immediate() {
        let mut g = Gsync::new(0, 1, 4);
        let s = g.begin();
        assert!(s.done);
        assert!(s.sends.is_empty());
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    fn reentry_panics() {
        let mut g = Gsync::new(1, 4, 2);
        let _ = g.begin();
        let _ = g.begin();
    }

    #[test]
    fn tree_structure_is_a_partition() {
        for n in [2usize, 5, 9, 16] {
            for d in [2usize, 4] {
                let mut seen = vec![false; n];
                seen[0] = true;
                for i in 0..n {
                    for &c in Gsync::new(i, n, d).children() {
                        assert!(!seen[c], "child {c} claimed twice");
                        seen[c] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "orphan node (n={n}, d={d})");
            }
        }
    }
}
