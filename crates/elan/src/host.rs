//! The host side of the Elan substrate: application trait and library-cost
//! charging, mirroring `nicbar_gm::host` for the Quadrics world.

use crate::events::ElanEvent;
use crate::params::ElanParams;
use crate::types::{DescId, EventId, TportTag};
use nicbar_net::NodeId;
use nicbar_sim::counter_id;
use nicbar_sim::engine::AsAny;
use nicbar_sim::{
    CausalKind, CauseId, Component, ComponentId, Ctx, PacketLog, SimRng, SimTime, SpanEvent,
};
use std::collections::BTreeMap;

/// Default group id used for `op.begin`/`op.end` span events: classic Elan
/// collectives have no group abstraction (one chain per cluster), so every
/// host reports this constant and spans are keyed by entry sequence.
/// Multi-group chain programs register their own ids per completion cookie
/// (see [`ElanHost::register_cookie_group`]).
pub const ELAN_SPAN_GROUP: u64 = 0xE1;

/// Actions an Elan application can request during a callback.
enum HostAction {
    Doorbell {
        desc: DescId,
    },
    SetEvent {
        event: EventId,
        group: u64,
    },
    ThreadDoorbell {
        value: u64,
    },
    Tport {
        dst: NodeId,
        tag: TportTag,
        len: u32,
    },
    HwSync,
    Timer {
        delay: SimTime,
    },
}

/// API surface for Elan applications.
pub struct ElanApi<'a> {
    now: SimTime,
    node: NodeId,
    n: usize,
    rng: &'a mut SimRng,
    actions: Vec<HostAction>,
}

impl<'a> ElanApi<'a> {
    /// Simulated time of the callback.
    pub fn now(&self) -> SimTime {
        self.now
    }
    /// This process's node.
    pub fn node(&self) -> NodeId {
        self.node
    }
    /// Cluster size.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
    /// Workload randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Fire an armed RDMA descriptor (the per-barrier trigger of §7).
    pub fn doorbell(&mut self, desc: DescId) {
        self.actions.push(HostAction::Doorbell { desc });
    }

    /// Set a NIC event word from user space (the entry trigger of a
    /// chained-descriptor barrier).
    pub fn set_nic_event(&mut self, event: EventId) {
        self.set_nic_event_for_group(event, ELAN_SPAN_GROUP);
    }

    /// Set a NIC event on behalf of a specific collective group: the entry
    /// trigger of one group's chain in a multi-group program. Spans and
    /// the occupancy ledger key the operation on `group`.
    pub fn set_nic_event_for_group(&mut self, event: EventId, group: u64) {
        self.actions.push(HostAction::SetEvent { event, group });
    }

    /// Post a doorbell to the NIC's thread processor with an operand (the
    /// §7 alternative mechanism; starts a thread-based collective).
    pub fn thread_doorbell(&mut self, value: u64) {
        self.actions.push(HostAction::ThreadDoorbell { value });
    }

    /// Send a tagged (tport) message — the host-level messaging Elanlib's
    /// tree barrier is built on.
    pub fn tport_send(&mut self, dst: NodeId, tag: TportTag, len: u32) {
        self.actions.push(HostAction::Tport { dst, tag, len });
    }

    /// Enter the hardware barrier (`elan_hgsync` fast path).
    pub fn hw_sync(&mut self) {
        self.actions.push(HostAction::HwSync);
    }

    /// Schedule an `on_timer` callback (models a compute phase).
    pub fn set_timer(&mut self, delay: SimTime) {
        self.actions.push(HostAction::Timer { delay });
    }
}

/// A simulated process on a Quadrics node.
pub trait ElanApp: AsAny + Send + 'static {
    /// Process start (t = 0).
    fn on_start(&mut self, api: &mut ElanApi<'_>);
    /// A tport message arrived.
    fn on_recv(&mut self, api: &mut ElanApi<'_>, src: NodeId, tag: TportTag, len: u32) {
        let _ = (api, src, tag, len);
    }
    /// A chained-RDMA completion (or hardware barrier) fired with `cookie`.
    fn on_coll_done(&mut self, api: &mut ElanApi<'_>, cookie: u64);
    /// Timer callback.
    fn on_timer(&mut self, api: &mut ElanApi<'_>) {
        let _ = api;
    }
}

/// The host component for one Quadrics node.
pub struct ElanHost {
    node: NodeId,
    n: usize,
    nic: ComponentId,
    params: ElanParams,
    app: Box<dyn ElanApp>,
    cpu_free: SimTime,
    hw_epoch: u64,
    /// Collective entries per group (span sequence numbers; multi-group
    /// chains advance each group's sequence independently).
    coll_begun: BTreeMap<u64, u64>,
    /// Collective completions observed, per group.
    coll_done: BTreeMap<u64, u64>,
    /// Completion-cookie → group registrations for multi-group chains.
    /// Unregistered cookies fall back to [`ELAN_SPAN_GROUP`].
    cookie_group: BTreeMap<u64, u64>,
    /// Reusable buffer for the actions requested during one callback —
    /// lent to [`ElanApi`] via `mem::take` and reclaimed after the drain so
    /// steady-state dispatches do not allocate.
    action_scratch: Vec<HostAction>,
}

impl ElanHost {
    /// Build the host for `node` with its application.
    pub fn new(
        node: NodeId,
        n: usize,
        nic: ComponentId,
        params: ElanParams,
        app: Box<dyn ElanApp>,
    ) -> Self {
        ElanHost {
            node,
            n,
            nic,
            params,
            app,
            cpu_free: SimTime::ZERO,
            hw_epoch: 0,
            coll_begun: BTreeMap::new(),
            coll_done: BTreeMap::new(),
            cookie_group: BTreeMap::new(),
            action_scratch: Vec::new(),
        }
    }

    /// Register which group a chain completion cookie belongs to, so span
    /// and netdump records key `op.end` on the right `(group, seq)`.
    pub fn register_cookie_group(&mut self, cookie: u64, group: u64) {
        self.cookie_group.insert(cookie, group);
    }

    /// Downcast the application (post-run inspection).
    pub fn app_ref<T: 'static>(&self) -> Option<&T> {
        (*self.app).as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of the application.
    pub fn app_mut<T: 'static>(&mut self) -> Option<&mut T> {
        (*self.app).as_any_mut().downcast_mut::<T>()
    }

    fn cpu(&mut self, now: SimTime, cost: SimTime) -> SimTime {
        let start = now.max(self.cpu_free);
        self.cpu_free = start + cost;
        self.cpu_free
    }

    /// Span: this host enters its next collective operation (NIC chain,
    /// thread collective, or hardware barrier — all lock-step, so every
    /// host's per-entry sequence numbers agree). Returns the `host-enter`
    /// netdump record, the chain root of this rank's contribution.
    fn span_op_begin(&mut self, ctx: &mut Ctx<'_, ElanEvent>, group: u64) -> CauseId {
        let seq = *self.coll_begun.get(&group).unwrap_or(&0);
        ctx.span(SpanEvent::OpBegin { group, seq });
        let cause = ctx.packet(
            PacketLog::new(CauseId::NONE, CausalKind::HostEnter)
                .at_node(self.node.0 as u32)
                .key(group, seq),
        );
        self.coll_begun.insert(group, seq + 1);
        cause
    }

    fn dispatch<F>(&mut self, ctx: &mut Ctx<'_, ElanEvent>, entry_cost: SimTime, f: F)
    where
        F: FnOnce(&mut dyn ElanApp, &mut ElanApi<'_>),
    {
        let at = self.cpu(ctx.now(), entry_cost);
        let mut api = ElanApi {
            now: at,
            node: self.node,
            n: self.n,
            rng: ctx.rng(),
            actions: std::mem::take(&mut self.action_scratch),
        };
        f(self.app.as_mut(), &mut api);
        let mut actions = api.actions;
        for action in actions.drain(..) {
            match action {
                HostAction::Doorbell { desc } => {
                    let t = self.cpu(ctx.now(), self.params.host_doorbell);
                    ctx.count_id(counter_id!("elan.doorbell"), 1);
                    // Netdump: chain root for a raw descriptor launch.
                    let cause = ctx.packet(
                        PacketLog::new(CauseId::NONE, CausalKind::HostPost)
                            .at_node(self.node.0 as u32)
                            .detail(desc.0 as u64, 0),
                    );
                    ctx.send_at(t, self.nic, ElanEvent::Doorbell { desc, cause });
                }
                HostAction::SetEvent { event, group } => {
                    let t = self.cpu(ctx.now(), self.params.host_doorbell);
                    ctx.count_id(counter_id!("elan.set_event"), 1);
                    let cause = self.span_op_begin(ctx, group);
                    ctx.send_at(t, self.nic, ElanEvent::SetEvent { event, cause });
                }
                HostAction::ThreadDoorbell { value } => {
                    let t = self.cpu(ctx.now(), self.params.host_doorbell);
                    ctx.count_id(counter_id!("elan.thread_doorbell"), 1);
                    let cause = self.span_op_begin(ctx, ELAN_SPAN_GROUP);
                    ctx.send_at(t, self.nic, ElanEvent::ThreadPost { value, cause });
                }
                HostAction::Tport { dst, tag, len } => {
                    let t = self.cpu(ctx.now(), self.params.host_tport_send);
                    ctx.count_id(counter_id!("elan.host_tport"), 1);
                    // Netdump: chain root for a host-level message (the
                    // Elanlib tree barrier's hops each start here).
                    let cause = ctx.packet(
                        PacketLog::new(CauseId::NONE, CausalKind::HostPost)
                            .nodes(self.node.0 as u32, dst.0 as u32)
                            .detail(len as u64, 0),
                    );
                    ctx.send_at(
                        t,
                        self.nic,
                        ElanEvent::TportPost {
                            dst,
                            tag,
                            len,
                            cause,
                        },
                    );
                }
                HostAction::HwSync => {
                    let epoch = self.hw_epoch;
                    self.hw_epoch += 1;
                    let t = self.cpu(ctx.now(), self.params.host_doorbell);
                    ctx.count_id(counter_id!("elan.hw_sync"), 1);
                    let cause = self.span_op_begin(ctx, ELAN_SPAN_GROUP);
                    ctx.send_at(t, self.nic, ElanEvent::HwSyncPost { epoch, cause });
                }
                HostAction::Timer { delay } => {
                    ctx.send_at(self.cpu_free + delay, ctx.self_id(), ElanEvent::AppTimer);
                }
            }
        }
        self.action_scratch = actions;
    }
}

impl Component<ElanEvent> for ElanHost {
    fn handle(&mut self, msg: ElanEvent, ctx: &mut Ctx<'_, ElanEvent>) {
        match msg {
            ElanEvent::AppStart => {
                self.dispatch(ctx, SimTime::ZERO, |app, api| app.on_start(api));
            }
            ElanEvent::AppTimer => {
                self.dispatch(ctx, SimTime::ZERO, |app, api| app.on_timer(api));
            }
            ElanEvent::HostRecv {
                src,
                tag,
                len,
                cause,
            } => {
                // Netdump: host-level delivery (tport messaging has no
                // separate notify stage; the arrival surfaces directly).
                ctx.packet(
                    PacketLog::new(cause, CausalKind::Notify)
                        .nodes(src.0 as u32, self.node.0 as u32)
                        .detail(tag.0 as u64, len as u64),
                );
                let poll = self.params.host_poll;
                self.dispatch(ctx, poll, |app, api| app.on_recv(api, src, tag, len));
            }
            ElanEvent::HostCollDone { cookie, cause } => {
                // Span: completion observed, before the app callback so a
                // re-entering app's next op.begin follows its op.end.
                let group = self
                    .cookie_group
                    .get(&cookie)
                    .copied()
                    .unwrap_or(ELAN_SPAN_GROUP);
                let seq = *self.coll_done.get(&group).unwrap_or(&0);
                ctx.span(SpanEvent::OpEnd { group, seq });
                // Netdump: this rank's chain ends here.
                ctx.packet(
                    PacketLog::new(cause, CausalKind::HostExit)
                        .at_node(self.node.0 as u32)
                        .key(group, seq)
                        .detail(cookie, 0),
                );
                self.coll_done.insert(group, seq + 1);
                let poll = self.params.host_poll;
                self.dispatch(ctx, poll, |app, api| app.on_coll_done(api, cookie));
            }
            other => panic!("Elan host {:?} got unexpected event {other:?}", self.node),
        }
    }
}
