//! Elan cluster assembly.

use crate::events::ElanEvent;
use crate::host::{ElanApp, ElanHost};
use crate::hwbarrier::HwBarrierUnit;
use crate::nic::ElanNic;
use crate::params::ElanParams;
use crate::types::{NicEvent, RdmaDesc};
use nicbar_net::{NodeId, QuaternaryFatTree, WireModel, WireRx};
use nicbar_sim::{
    ComponentId, Engine, EngineSel, ExecEngine, ParallelEngine, PartitionSel, RunOutcome,
    SchedulerKind, SimTime,
};
use std::sync::Arc;

/// Static description of an Elan cluster simulation.
#[derive(Clone, Debug)]
pub struct ElanClusterSpec {
    /// Timing parameters.
    pub params: ElanParams,
    /// Number of nodes.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Install the switch-level hardware barrier unit over all nodes.
    pub hw_barrier: bool,
    /// Event-queue implementation for the engine (differential testing of
    /// the indexed scheduler against the classic binary heap).
    pub scheduler: SchedulerKind,
    /// Which engine flavour to build ([`EngineSel::Auto`]: parallel iff
    /// `shards > 1`). The hardware barrier unit is a single component with
    /// sub-lookahead links to every NIC, so `hw_barrier` clusters always
    /// build sequential regardless of this selection.
    pub engine: EngineSel,
    /// Worker shards for the parallel engine (clamped to `[1, n]`).
    pub shards: usize,
    /// Component-to-shard partition strategy for the parallel engine.
    pub partition: PartitionSel,
}

impl ElanClusterSpec {
    /// An `n`-node cluster with defaults.
    pub fn new(params: ElanParams, n: usize) -> Self {
        ElanClusterSpec {
            params,
            n,
            seed: 0xE1A3,
            hw_barrier: false,
            scheduler: SchedulerKind::default(),
            engine: EngineSel::Auto,
            shards: 1,
            partition: PartitionSel::Contiguous,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable the hardware barrier unit.
    pub fn with_hw_barrier(mut self) -> Self {
        self.hw_barrier = true;
        self
    }

    /// Select the engine's event-queue implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Select the engine flavour.
    pub fn with_engine(mut self, engine: EngineSel) -> Self {
        self.engine = engine;
        self
    }

    /// Request `shards` parallel worker shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Select the component-to-shard partition strategy.
    pub fn with_partition(mut self, partition: PartitionSel) -> Self {
        self.partition = partition;
        self
    }
}

/// Per-node NIC programming: the descriptor and event tables armed from
/// user level before the run (empty for hosts that only use tports or the
/// hardware barrier).
#[derive(Clone, Debug, Default)]
pub struct NicProgram {
    /// RDMA descriptors.
    pub descs: Vec<RdmaDesc>,
    /// NIC events.
    pub events: Vec<NicEvent>,
    /// Occupancy-ledger owner group per descriptor (parallel to `descs`;
    /// empty = default single-group attribution).
    pub desc_groups: Vec<u64>,
    /// Owner group per event (parallel to `events`; empty = default).
    pub event_groups: Vec<u64>,
    /// Completion-cookie → group registrations applied to this node's host
    /// (multi-group chains deliver distinct cookies per group).
    pub cookie_groups: Vec<(u64, u64)>,
}

/// A built Elan cluster.
pub struct ElanCluster {
    /// The discrete-event engine (sequential or parallel).
    pub engine: ExecEngine<ElanEvent>,
    /// Host components by node index.
    pub hosts: Vec<ComponentId>,
    /// NIC components by node index.
    pub nics: Vec<ComponentId>,
    /// The hardware barrier unit, when enabled.
    pub hw_unit: Option<ComponentId>,
    /// Number of nodes.
    pub n: usize,
}

impl ElanCluster {
    /// Assemble a cluster: `apps[i]` runs on node `i` with NIC programming
    /// `programs[i]`. Every host gets `AppStart` at t = 0.
    pub fn build(
        spec: ElanClusterSpec,
        apps: Vec<Box<dyn ElanApp>>,
        programs: Vec<NicProgram>,
    ) -> Self {
        assert_eq!(apps.len(), spec.n);
        assert_eq!(programs.len(), spec.n);
        let mut engine: Engine<ElanEvent> = Engine::with_scheduler(spec.seed, spec.scheduler);
        let host_ids: Vec<ComponentId> = (0..spec.n).map(|_| engine.reserve_id()).collect();
        let nic_ids: Vec<ComponentId> = (0..spec.n).map(|_| engine.reserve_id()).collect();
        let hw_id = if spec.hw_barrier {
            Some(engine.reserve_id())
        } else {
            None
        };

        let topology = QuaternaryFatTree::new(spec.n);
        if let Some(hw) = hw_id {
            let group: Vec<NodeId> = (0..spec.n).map(NodeId).collect();
            engine.install(
                hw,
                HwBarrierUnit::new(group, nic_ids.clone(), &topology, spec.params.clone()),
            );
        }
        let model = Arc::new(WireModel::new(
            Box::new(topology),
            spec.params.link,
            spec.params.hotspot_ns,
        ));

        let mut apps = apps;
        let mut programs = programs;
        for i in (0..spec.n).rev() {
            let app = apps.pop().expect("length checked");
            let prog = programs.pop().expect("length checked");
            let mut nic = ElanNic::new(
                NodeId(i),
                spec.params.clone(),
                WireRx::new(Arc::clone(&model)),
                nic_ids[0],
                host_ids[i],
                hw_id,
                prog.descs,
                prog.events,
            );
            if !prog.desc_groups.is_empty() || !prog.event_groups.is_empty() {
                nic.set_owner_groups(prog.desc_groups, prog.event_groups);
            }
            engine.install(nic_ids[i], nic);
            let mut elan_host =
                ElanHost::new(NodeId(i), spec.n, nic_ids[i], spec.params.clone(), app);
            for (cookie, group) in prog.cookie_groups {
                elan_host.register_cookie_group(cookie, group);
            }
            engine.install(host_ids[i], elan_host);
        }
        for &h in &host_ids {
            engine.schedule_at(SimTime::ZERO, h, ElanEvent::AppStart);
        }

        // Layout is [hosts 0..n][NICs n..2n]; a component's node is its id
        // mod n. The hardware barrier unit has no node and exchanges
        // sub-lookahead messages with every NIC, so its presence forces the
        // sequential engine.
        let (parallel, shards) = spec.engine.resolve(spec.shards.min(spec.n));
        let engine = if parallel && hw_id.is_none() {
            let map = spec
                .partition
                .map(2 * spec.n, spec.n, shards, |c| c % spec.n);
            let latency = model.lookahead_for(&map, spec.n);
            ExecEngine::Par(ParallelEngine::with_latency(engine, map, latency))
        } else {
            ExecEngine::Seq(engine)
        };

        ElanCluster {
            engine,
            hosts: host_ids,
            nics: nic_ids,
            hw_unit: hw_id,
            n: spec.n,
        }
    }

    /// Run with an event-budget backstop.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        let outcome = self.engine.run_bounded(deadline, 2_000_000_000);
        assert_ne!(
            outcome,
            RunOutcome::BudgetExhausted,
            "event budget exhausted — runaway chain?"
        );
        outcome
    }

    /// Downcast host `i`'s application.
    pub fn app_ref<T: 'static>(&self, i: usize) -> &T {
        self.engine
            .component_ref::<ElanHost>(self.hosts[i])
            .expect("host component")
            .app_ref::<T>()
            .expect("app type mismatch")
    }

    /// Mutable downcast of host `i`'s application.
    pub fn app_mut<T: 'static>(&mut self, i: usize) -> &mut T {
        self.engine
            .component_mut::<ElanHost>(self.hosts[i])
            .expect("host component")
            .app_mut::<T>()
            .expect("app type mismatch")
    }
}
