//! Elan3 NIC-level objects: RDMA descriptors and NIC-resident events.
//!
//! Elan3's defining mechanism (for this paper) is the *chained event*: an
//! event word in NIC memory with a counter; RDMA descriptors can be armed to
//! fire when an event trips, and RDMA arrivals can set events at the remote
//! NIC. §7 of the paper builds the entire NIC-based barrier out of exactly
//! this: "set up a list of chained RDMA descriptors at the NIC from
//! user-level ... triggered only upon the arrival of a remote event".

use nicbar_net::NodeId;

/// Index into a NIC's descriptor table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DescId(pub u32);

/// Index into a NIC's event table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u32);

/// What happens when an event trips.
///
/// `Copy` is load-bearing: the NIC hot path iterates a tripped event's
/// action list by index and copies each entry out, instead of cloning the
/// whole `Vec` per trip (one barrier epoch trips every gate event once).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventAction {
    /// Launch an RDMA descriptor (the chain link).
    FireDesc(DescId),
    /// Raise a completion event to the host with an opaque cookie.
    NotifyHost {
        /// Delivered to the application's `on_coll_done`.
        cookie: u64,
    },
}

/// A NIC-resident event word.
///
/// Elan events are counters: `set_event` increments `sets`; whenever `sets`
/// reaches the current `threshold` the actions run and the threshold
/// advances by `rearm`. Because arrivals *accumulate*, a neighbour that
/// races ahead into barrier epoch `k+1` can set the event early and the
/// count is simply banked until this node's own progress catches up — the
/// property that makes consecutive chained-RDMA barriers safe without host
/// re-arming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NicEvent {
    /// Total sets received so far.
    pub sets: u64,
    /// Sets needed for the next trip.
    pub threshold: u64,
    /// Threshold advance per trip (sets required per epoch).
    pub rearm: u64,
    /// Actions executed on each trip.
    pub actions: Vec<EventAction>,
}

impl NicEvent {
    /// An event that trips every `per_epoch` sets and runs `actions`.
    pub fn new(per_epoch: u64, actions: Vec<EventAction>) -> Self {
        assert!(per_epoch > 0, "event threshold must be positive");
        NicEvent {
            sets: 0,
            threshold: per_epoch,
            rearm: per_epoch,
            actions,
        }
    }

    /// Record one set; returns how many times the event tripped (usually 0
    /// or 1, but banked early sets can release several trips at once).
    pub fn set(&mut self) -> u32 {
        self.sets += 1;
        let mut trips = 0;
        while self.sets >= self.threshold {
            self.threshold += self.rearm;
            trips += 1;
        }
        trips
    }
}

/// An RDMA descriptor armed in NIC memory.
///
/// `Copy` (no heap inside): firing a descriptor reads it out of the table
/// without cloning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RdmaDesc {
    /// Destination NIC.
    pub dst: NodeId,
    /// Payload bytes (0 for a pure event-fire RDMA, the barrier case).
    pub bytes: u32,
    /// Event set at the destination NIC on arrival.
    pub remote_event: Option<EventId>,
    /// Event set locally when the RDMA has been issued (used to gate the
    /// next chain link on *this node's own* progress).
    pub local_event: Option<EventId>,
}

/// Fixed wire overhead of an Elan RDMA transaction (route + header +
/// event-write), bytes.
pub const RDMA_WIRE_OVERHEAD: u32 = 32;

/// Wire overhead of a Tports (tagged message) send.
pub const TPORT_WIRE_OVERHEAD: u32 = 40;

/// A user-level message tag for the Tports layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TportTag(pub u32);

/// Tag marking bulk-traffic tport messages, mirroring the GM substrate's
/// bulk tag: the NIC classifies these streams as first-class background
/// owners in the occupancy ledger.
pub const BULK_TPORT_TAG: TportTag = TportTag(0xFFFF_FFFF);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_trips_at_threshold() {
        let mut e = NicEvent::new(2, vec![]);
        assert_eq!(e.set(), 0);
        assert_eq!(e.set(), 1);
        assert_eq!(e.set(), 0);
        assert_eq!(e.set(), 1);
    }

    #[test]
    fn early_sets_are_banked_across_epochs() {
        let mut e = NicEvent::new(1, vec![]);
        // Three neighbours race three epochs ahead…
        assert_eq!(e.set(), 1);
        assert_eq!(e.set(), 1);
        assert_eq!(e.set(), 1);
        // …each set released one trip; nothing is lost.
        assert_eq!(e.sets, 3);
        assert_eq!(e.threshold, 4);
    }

    #[test]
    fn burst_of_banked_sets_releases_multiple_trips() {
        // threshold 2: one local set banked, then two remote sets at once
        // cannot happen in one call, but a single set can release several
        // trips if rearm lagged — construct directly:
        let mut e = NicEvent {
            sets: 3,
            threshold: 4,
            rearm: 2,
            actions: vec![],
        };
        assert_eq!(e.set(), 1); // sets=4 -> trips at 4, next threshold 6
        assert_eq!(e.set(), 0);
        assert_eq!(e.set(), 1);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        NicEvent::new(0, vec![]);
    }
}
