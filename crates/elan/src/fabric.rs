//! The QsNet fabric component: hardware-reliable delivery over the
//! quaternary fat tree.

use crate::events::ElanEvent;
use nicbar_net::FabricCore;
use nicbar_sim::counter_id;
use nicbar_sim::{CausalKind, Component, ComponentId, Ctx, PacketLog, SpanEvent};

/// The network component of an Elan cluster. QsNet delivers reliably in
/// hardware, so the core's drop probability must stay zero here.
pub struct ElanFabric {
    core: FabricCore,
    nics: Vec<ComponentId>,
}

impl ElanFabric {
    /// Build from a fabric core and the NIC component table.
    ///
    /// # Panics
    /// Panics if the core has loss injection enabled — Quadrics guarantees
    /// hardware-level reliable message passing (§4).
    pub fn new(core: FabricCore, nics: Vec<ComponentId>) -> Self {
        assert_eq!(core.topology().num_nodes(), nics.len());
        assert_eq!(
            core.drop_prob(),
            0.0,
            "QsNet is hardware-reliable; loss injection is a GM-only concept"
        );
        ElanFabric { core, nics }
    }

    /// The underlying fabric core.
    pub fn core(&self) -> &FabricCore {
        &self.core
    }
}

impl Component<ElanEvent> for ElanFabric {
    fn handle(&mut self, msg: ElanEvent, ctx: &mut Ctx<'_, ElanEvent>) {
        let ElanEvent::Inject {
            src,
            dst,
            bytes,
            payload,
            cause,
        } = msg
        else {
            panic!("Elan fabric got a non-Inject event");
        };
        ctx.count_id(counter_id!("elan.wire"), 1);
        // Span: the packet is committed to the wire.
        ctx.span(SpanEvent::Wire {
            src: src.0 as u64,
            dst: dst.0 as u64,
            bytes: bytes as u64,
        });
        let delivery = {
            let now = ctx.now();
            let rng = ctx.rng();
            self.core.send(now, src, dst, bytes, rng)
        };
        debug_assert!(!delivery.dropped);
        // Netdump: wire traversal with the link-occupancy tag (bytes +
        // destination-port queuing wait).
        let wire = ctx.packet(
            PacketLog::new(cause, CausalKind::Wire)
                .nodes(src.0 as u32, dst.0 as u32)
                .detail(bytes as u64, delivery.port_wait.as_ns()),
        );
        ctx.send_at(
            delivery.arrive,
            self.nics[dst.0],
            ElanEvent::Arrive {
                src,
                payload,
                cause: wire,
            },
        );
    }
}
