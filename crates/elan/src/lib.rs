//! # nicbar-elan — the Quadrics/Elan3 substrate
//!
//! A deterministic discrete-event model of a QsNet cluster (Elan3 QM-400
//! NICs, Elite switches in a quaternary fat tree) as described in §4.1 and
//! §7 of the paper:
//!
//! * [`nic::ElanNic`] — descriptor table + NIC-resident counting events +
//!   serial DMA/event processor. Zero-byte RDMAs fire remote events;
//!   chained descriptors implement the NIC-based barrier with **no NIC
//!   thread**, exactly as §7 chooses.
//! * [`host::ElanHost`] / [`host::ElanApp`] — host library and application
//!   trait (doorbells, tport tagged messages, hardware barrier entry).
//! * [`hwbarrier::HwBarrierUnit`] — the switch-level test-and-set barrier
//!   behind `elan_hgsync()`, with the paper's contiguity and
//!   synchronization caveats modeled.
//! * [`elanlib::Gsync`] — the Elanlib tree gather-broadcast barrier
//!   (`elan_gsync()`), host-driven at every level.
//! * the wire model ([`nicbar_net::WireModel`] / [`nicbar_net::WireRx`]) —
//!   hardware-reliable fat-tree delivery, with destination-port contention
//!   resolved at each receiving NIC. There is no central fabric component,
//!   so clusters shard cleanly across the parallel engine.
//! * [`cluster::ElanCluster`] — assembly and run helpers.

#![warn(missing_docs)]

pub mod cluster;
pub mod elanlib;
pub mod events;
pub mod host;
pub mod hwbarrier;
pub mod nic;
pub mod params;
pub mod thread;
pub mod types;

pub use cluster::{ElanCluster, ElanClusterSpec, NicProgram};
pub use elanlib::{Gsync, GsyncSend, GsyncStep, BCAST_TAG, GATHER_TAG, GSYNC_MSG_BYTES};
pub use events::{ElanEvent, ElanPayload};
pub use host::{ElanApi, ElanApp, ElanHost};
pub use hwbarrier::HwBarrierUnit;
pub use nic::{hw_cookie, ElanNic};
pub use params::ElanParams;
pub use thread::{ElanThread, NoThread, ThreadAction, THREAD_MSG_BYTES};
pub use types::{DescId, EventAction, EventId, NicEvent, RdmaDesc, TportTag, BULK_TPORT_TAG};
