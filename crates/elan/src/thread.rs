//! The Elan *thread processor* — the mechanism §7 deliberately avoids.
//!
//! "Although Elan threads can be created and executed by the thread
//! processor to process the events and chain RDMA operations together, an
//! extra thread does increase the processing load to the Elan NIC. …we
//! have chosen not to set up an additional thread" (§7). The paper's
//! ref \[14\] (Moody et al.), by contrast, builds NIC-based *reductions* on
//! exactly this mechanism — data collectives need NIC-side computation,
//! which chained descriptors cannot express.
//!
//! This module models the thread processor so both designs can be compared
//! quantitatively: an [`ElanThread`] is a NIC-resident handler whose
//! invocations cost [`crate::ElanParams::elan3`]'s `nic_thread_proc`
//! (heavier than raw event processing — the paper's "increased processing
//! load"), and whose sends are issued through the ordinary descriptor
//! path.

use nicbar_net::NodeId;
use nicbar_sim::engine::AsAny;
use nicbar_sim::SimTime;

/// Actions a NIC thread can request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadAction {
    /// Issue an RDMA carrying a value word to the peer NIC's thread.
    Send {
        /// Destination NIC.
        dst: NodeId,
        /// Message tag (protocol-defined; e.g. epoch/round encoding).
        tag: u32,
        /// The value word.
        value: u64,
    },
    /// Raise a completion event to the host.
    NotifyHost {
        /// Opaque cookie.
        cookie: u64,
        /// Result value (delivered in the host callback via the cookie
        /// side-channel in this model; kept for trace clarity).
        value: u64,
    },
}

/// A handler running on the Elan thread processor.
pub trait ElanThread: AsAny + Send + 'static {
    /// The host posted a thread doorbell with an operand.
    fn on_doorbell(&mut self, now: SimTime, value: u64) -> Vec<ThreadAction>;
    /// A thread message arrived from a peer NIC.
    fn on_msg(&mut self, now: SimTime, src: NodeId, tag: u32, value: u64) -> Vec<ThreadAction>;
}

/// Default for NICs without a thread: any thread stimulus is a bug.
pub struct NoThread;

impl ElanThread for NoThread {
    fn on_doorbell(&mut self, _now: SimTime, _value: u64) -> Vec<ThreadAction> {
        panic!("thread doorbell on a NIC with no thread installed");
    }
    fn on_msg(&mut self, _now: SimTime, _src: NodeId, _tag: u32, _value: u64) -> Vec<ThreadAction> {
        panic!("thread message on a NIC with no thread installed");
    }
}

/// Wire size of a thread message (RDMA overhead + tag + value).
pub const THREAD_MSG_BYTES: u32 = crate::types::RDMA_WIRE_OVERHEAD + 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "no thread installed")]
    fn no_thread_rejects_doorbells() {
        NoThread.on_doorbell(SimTime::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "no thread installed")]
    fn no_thread_rejects_messages() {
        NoThread.on_msg(SimTime::ZERO, NodeId(1), 0, 0);
    }
}
