//! Timing parameters for the Elan3/QsNet substrate.
//!
//! Quadrics is hardware-reliable, so there is no protocol ACK/retransmit
//! machinery to parameterize; the costs here are the Elan DMA/event
//! processor's descriptor handling, the host interface, and the hardware
//! barrier (`elan_hgsync`) constants. Calibration targets are the paper's
//! Fig. 7 (5.60 µs NIC barrier @ 8 nodes, ~4.2 µs hardware barrier,
//! ~2.5× gap to the tree-based `elan_gsync`); see EXPERIMENTS.md.

use nicbar_net::LinkTiming;
use nicbar_sim::SimTime;

/// All timing parameters of a Quadrics/Elan3 cluster model.
#[derive(Clone, Debug)]
pub struct ElanParams {
    // --- Host interface ----------------------------------------------------
    /// Host cost to trigger a descriptor (library call + PIO doorbell).
    pub host_doorbell: SimTime,
    /// Host cost of polling/dispatching a completion or tport event.
    pub host_poll: SimTime,
    /// NIC → host visibility delay for a local event (write to host memory).
    pub host_event_visible: SimTime,
    /// Host cost of a tport send call (elanlib tagged message).
    pub host_tport_send: SimTime,

    // --- Elan DMA / event processor ----------------------------------------
    /// Process one RDMA descriptor and inject it.
    pub nic_desc_proc: SimTime,
    /// Process an arriving RDMA: memory write + event set + action dispatch.
    pub nic_event_proc: SimTime,
    /// Extra processing for a tport arrival (tag match + host buffer DMA).
    pub nic_tport_recv: SimTime,
    /// One thread-processor invocation (schedule the thread, run the
    /// handler): the "increased processing load" of §7 — noticeably above
    /// raw event processing.
    pub nic_thread_proc: SimTime,

    // --- Hardware barrier (elan_hgsync) -------------------------------------
    /// Fixed cost of the switch-level test-and-set wave.
    pub hw_base: SimTime,
    /// Per-tree-level cost of the wave.
    pub hw_per_level: SimTime,
    /// Fraction of the group's arrival spread added as retry penalty (the
    /// "processes must be well synchronized" caveat in §4.1: skewed arrivals
    /// make the test-and-set retry).
    pub hw_skew_factor: f64,
    /// Cap on the skew penalty.
    pub hw_skew_cap: SimTime,

    // --- Network ------------------------------------------------------------
    /// Fat-tree link/switch timing.
    pub link: LinkTiming,
    /// Per-packet serialization surcharge at a contended destination port.
    /// Near zero: the paper credits Elan with efficient hot-spot handling.
    pub hotspot_ns: u64,
}

impl ElanParams {
    /// The paper's Quadrics rig: Elan3 QM-400 cards, Elite-16 fat tree,
    /// quad-700 MHz P-III hosts, Elanlib 1.4.3.
    pub fn elan3() -> Self {
        ElanParams {
            host_doorbell: SimTime::from_us(0.50),
            host_poll: SimTime::from_us(0.30),
            host_event_visible: SimTime::from_us(0.55),
            host_tport_send: SimTime::from_us(0.80),

            nic_desc_proc: SimTime::from_us(0.55),
            nic_event_proc: SimTime::from_us(0.50),
            nic_tport_recv: SimTime::from_us(0.90),
            nic_thread_proc: SimTime::from_us(0.95),

            hw_base: SimTime::from_us(1.30),
            hw_per_level: SimTime::from_us(0.25),
            hw_skew_factor: 0.5,
            hw_skew_cap: SimTime::from_us(50.0),

            link: LinkTiming::qsnet_elan3(),
            hotspot_ns: 0,
        }
    }

    /// A QsNet-II / Elan4 *projection* (paper §9: "As QsNet-II … become
    /// available to us, we are planning to investigate how this NIC-based
    /// barrier algorithm can accommodate and benefit from novel
    /// interconnect features"). Constants follow the published QsNet-II
    /// ratios: ~2× faster event/descriptor processing, ~2.2× link
    /// bandwidth, faster PCI-X host interface. No measurement backs this
    /// preset — it exists to run the paper's what-if.
    pub fn elan4_projection() -> Self {
        let e3 = Self::elan3();
        ElanParams {
            host_doorbell: e3.host_doorbell.scale(0.6),
            host_poll: e3.host_poll.scale(0.7),
            host_event_visible: e3.host_event_visible.scale(0.6),
            host_tport_send: e3.host_tport_send.scale(0.6),
            nic_desc_proc: e3.nic_desc_proc.scale(0.5),
            nic_event_proc: e3.nic_event_proc.scale(0.5),
            nic_tport_recv: e3.nic_tport_recv.scale(0.5),
            nic_thread_proc: e3.nic_thread_proc.scale(0.5),
            hw_base: e3.hw_base.scale(0.7),
            hw_per_level: e3.hw_per_level,
            hw_skew_factor: e3.hw_skew_factor,
            hw_skew_cap: e3.hw_skew_cap,
            link: LinkTiming {
                header_ns: 60,
                switch_ns: 25,
                wire_ns: 20,
                ns_per_byte: 1.1, // ~900 MB/s
            },
            hotspot_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_trigger_is_cheap() {
        // One chain link (arrival processing + next descriptor) must cost
        // roughly the paper's T_trig ≈ 2.3 µs *minus* wire time — i.e. well
        // under 2 µs of NIC work. This is the invariant that keeps the
        // NIC-based barrier fast.
        let p = ElanParams::elan3();
        let link_work = p.nic_event_proc + p.nic_desc_proc;
        assert!(link_work < SimTime::from_us(2.0));
    }

    #[test]
    fn hw_barrier_is_microseconds_scale() {
        // The full hgsync path is wave + doorbell + NIC handling + host
        // event visibility + poll; at 8 nodes (2 levels) it must land near
        // the paper's 4.2 µs.
        let p = ElanParams::elan3();
        let t = p.host_doorbell
            + p.nic_desc_proc
            + p.hw_base
            + p.hw_per_level * 2
            + p.nic_event_proc
            + p.host_event_visible
            + p.host_poll;
        assert!(
            t > SimTime::from_us(3.5) && t < SimTime::from_us(5.0),
            "{t}"
        );
    }
}
