//! The Elan3 NIC model: a descriptor table, an event table, and a serial
//! DMA/event processor.
//!
//! There is no NIC thread (the paper deliberately avoids one, §7): all
//! behaviour is chained RDMA descriptors fired by event trips. The NIC also
//! forwards hardware-barrier doorbells to the switch-level barrier unit and
//! delivers tport messages to the host.

use crate::events::{ElanEvent, ElanPayload};
use crate::host::ELAN_SPAN_GROUP;
use crate::params::ElanParams;
use crate::thread::{ElanThread, NoThread, ThreadAction, THREAD_MSG_BYTES};
use crate::types::{
    DescId, EventAction, EventId, NicEvent, RdmaDesc, TportTag, BULK_TPORT_TAG, RDMA_WIRE_OVERHEAD,
    TPORT_WIRE_OVERHEAD,
};
use nicbar_net::{NodeId, WireRx};
use nicbar_sim::counter_id;
use nicbar_sim::{
    CausalKind, CauseId, Component, ComponentId, Ctx, Occ, Owner, PacketLog, ResKind, SimTime,
    SpanEvent,
};

/// Occupancy-ledger owner of a tport stream, by its tag.
fn tport_owner(tag: TportTag, rank: u32) -> Owner {
    if tag == BULK_TPORT_TAG {
        Owner::traffic(rank)
    } else {
        Owner::p2p(rank)
    }
}

/// The Elan3 NIC component.
pub struct ElanNic {
    node: NodeId,
    params: ElanParams,
    /// This NIC's wire receive port (shared routing model + private
    /// destination-port contention state). QsNet is hardware-reliable, so
    /// the model's drop probability must be zero (asserted at build).
    wire: WireRx,
    /// Component id of NIC 0; NIC `d` is `nic0 + d` (contiguous layout).
    nic0: ComponentId,
    host: ComponentId,
    /// The switch-level hardware barrier unit, if the cluster has one.
    hw_unit: Option<ComponentId>,

    /// The DMA/event processor is a serial resource.
    engine_free: SimTime,

    /// User-armed RDMA descriptors (set up from user level at init).
    descs: Vec<RdmaDesc>,
    /// NIC-resident events.
    events: Vec<NicEvent>,
    /// Occupancy-ledger owner group per descriptor (parallel to `descs`;
    /// defaults to [`ELAN_SPAN_GROUP`], the single-group chain).
    desc_group: Vec<u64>,
    /// Owner group per event (parallel to `events`).
    event_group: Vec<u64>,
    /// Times each descriptor has fired — stands in for the barrier seq in
    /// ledger owner stamps (chained barriers fire each link once per epoch).
    desc_fires: Vec<u64>,
    /// The thread processor's handler (the §7 alternative mechanism;
    /// [`NoThread`] unless explicitly installed).
    thread: Box<dyn ElanThread>,
}

impl ElanNic {
    /// Build a NIC with pre-armed descriptor/event tables (the "set up from
    /// user level" step of §7; its one-time cost is not on the per-barrier
    /// critical path).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        params: ElanParams,
        wire: WireRx,
        nic0: ComponentId,
        host: ComponentId,
        hw_unit: Option<ComponentId>,
        descs: Vec<RdmaDesc>,
        events: Vec<NicEvent>,
    ) -> Self {
        for d in &descs {
            if let Some(EventId(e)) = d.local_event {
                assert!((e as usize) < events.len(), "dangling local event");
            }
        }
        assert_eq!(
            wire.model().drop_prob(),
            0.0,
            "QsNet is hardware-reliable; loss injection is a GM-only concept"
        );
        let desc_group = vec![ELAN_SPAN_GROUP; descs.len()];
        let event_group = vec![ELAN_SPAN_GROUP; events.len()];
        let desc_fires = vec![0; descs.len()];
        ElanNic {
            node,
            params,
            wire,
            nic0,
            host,
            hw_unit,
            engine_free: SimTime::ZERO,
            descs,
            events,
            desc_group,
            event_group,
            desc_fires,
            thread: Box::new(NoThread),
        }
    }

    /// Register which collective group owns each descriptor and event, for
    /// occupancy-ledger attribution. Multi-group chain builders call this
    /// after arming the tables; single-group setups keep the default
    /// ([`ELAN_SPAN_GROUP`] everywhere).
    pub fn set_owner_groups(&mut self, desc_groups: Vec<u64>, event_groups: Vec<u64>) {
        assert_eq!(desc_groups.len(), self.descs.len(), "desc group table size");
        assert_eq!(
            event_groups.len(),
            self.events.len(),
            "event group table size"
        );
        self.desc_group = desc_groups;
        self.event_group = event_groups;
    }

    /// Install a thread-processor handler (the §7 alternative the paper
    /// measured against; used by the Moody-style reduction).
    pub fn install_thread(&mut self, thread: Box<dyn ElanThread>) {
        self.thread = thread;
    }

    /// Execute thread actions: sends go through the descriptor path (the
    /// thread issues RDMAs like anything else on the NIC), completions to
    /// the host.
    fn run_thread_actions(
        &mut self,
        ctx: &mut Ctx<'_, ElanEvent>,
        actions: Vec<ThreadAction>,
        cause: CauseId,
    ) {
        for action in actions {
            match action {
                ThreadAction::Send { dst, tag, value } => {
                    assert_ne!(dst, self.node, "thread self-send");
                    let owner = Owner::coll(ELAN_SPAN_GROUP, 0, self.node.0 as u32);
                    let now = ctx.now();
                    let t = self.engine(ctx, now, self.params.nic_desc_proc, owner);
                    ctx.count_id(counter_id!("elan.thread_sent"), 1);
                    // Netdump: thread-processor send, parented on the
                    // doorbell/message that woke the thread.
                    let fire = ctx.packet(
                        PacketLog::new(cause, CausalKind::Fire)
                            .nodes(self.node.0 as u32, dst.0 as u32)
                            .detail(tag as u64, value),
                    );
                    self.inject(
                        ctx,
                        t,
                        dst,
                        THREAD_MSG_BYTES,
                        ElanPayload::Thread { tag, value },
                        fire,
                    );
                }
                ThreadAction::NotifyHost { cookie, value: _ } => {
                    ctx.count_id(counter_id!("elan.host_notify"), 1);
                    // Span: thread-processor completion (no event id; the
                    // thread notifies directly).
                    ctx.span(SpanEvent::Notify {
                        unit: u64::MAX,
                        cookie,
                    });
                    let notify = ctx.packet(
                        PacketLog::new(cause, CausalKind::Notify)
                            .at_node(self.node.0 as u32)
                            .detail(cookie, 0),
                    );
                    ctx.send_at(
                        self.engine_free + self.params.host_event_visible,
                        self.host,
                        ElanEvent::HostCollDone {
                            cookie,
                            cause: notify,
                        },
                    );
                }
            }
        }
    }

    /// Claim the serial DMA/event processor for `cost` starting no earlier
    /// than `now`; returns `(start, done)`.
    fn engine_claim(&mut self, now: SimTime, cost: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.engine_free);
        self.engine_free = start + cost;
        (start, self.engine_free)
    }

    /// Occupy the DMA/event processor for `cost` on `owner`'s behalf. Every
    /// charge emits a ledger hold (and a wait when the engine was busy), so
    /// holds tile each busy period exactly — the invariant the interference
    /// attribution's coverage gate relies on.
    fn engine(
        &mut self,
        ctx: &mut Ctx<'_, ElanEvent>,
        now: SimTime,
        cost: SimTime,
        owner: Owner,
    ) -> SimTime {
        let (start, done) = self.engine_claim(now, cost);
        let node = self.node.0 as u32;
        if start > now {
            ctx.ledger(Occ::wait(ResKind::ElanEngine, now, start, node, owner));
        }
        ctx.ledger(Occ::hold(ResKind::ElanEngine, start, done, node, owner));
        done
    }

    /// Occupancy-ledger owner of activity gated on event `ev`: the group the
    /// chain builder registered for it (defaulting to the span group), with
    /// the event's completed-trip count standing in for the barrier seq.
    fn event_owner(&self, ev: EventId, rank: u32) -> Owner {
        let e = &self.events[ev.0 as usize];
        Owner::coll(
            self.event_group[ev.0 as usize],
            e.threshold / e.rearm - 1,
            rank,
        )
    }

    /// Owner of an arriving wire packet, classified at the receiving port.
    fn payload_owner(&self, payload: &ElanPayload, src: NodeId) -> Owner {
        let rank = src.0 as u32;
        match payload {
            ElanPayload::Thread { .. } => Owner::coll(ELAN_SPAN_GROUP, 0, rank),
            ElanPayload::Rdma { remote_event } => match remote_event {
                Some(ev) => self.event_owner(*ev, rank),
                None => Owner::coll(ELAN_SPAN_GROUP, 0, rank),
            },
            ElanPayload::Tport { tag, .. } => tport_owner(*tag, rank),
        }
    }

    /// Commit a packet to the wire at time `t`: routed flight latency from
    /// the shared wire model, presenting at the destination NIC's input
    /// port as an [`ElanEvent::Inject`]. Port contention resolves there,
    /// at the receiver.
    fn inject(
        &mut self,
        ctx: &mut Ctx<'_, ElanEvent>,
        t: SimTime,
        dst: NodeId,
        bytes: u32,
        payload: ElanPayload,
        cause: CauseId,
    ) {
        let flight = self.wire.model().flight(self.node, dst, bytes);
        let target = ComponentId(self.nic0.0 + dst.0);
        ctx.send_at(
            t + flight,
            target,
            ElanEvent::Inject {
                src: self.node,
                dst,
                bytes,
                payload,
                cause,
            },
        );
    }

    /// A packet presents at this NIC's input port after its routed flight:
    /// admit it through the port (contention in arrival order) and hand it
    /// to the protocol as an [`ElanEvent::Arrive`]. QsNet never drops.
    fn on_inject(
        &mut self,
        ctx: &mut Ctx<'_, ElanEvent>,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        payload: ElanPayload,
        cause: CauseId,
    ) {
        debug_assert_eq!(dst, self.node, "packet presented at the wrong NIC");
        ctx.count_id(counter_id!("elan.wire"), 1);
        // Span: the wire crossing.
        ctx.span(SpanEvent::Wire {
            src: src.0 as u64,
            dst: dst.0 as u64,
            bytes: bytes as u64,
        });
        let admission = self.wire.admit(ctx.now(), bytes);
        // Ledger: the admitted packet's owner occupies this rx port for
        // `[arrive, until)`; a queued packet also waited behind earlier
        // holders.
        let owner = self.payload_owner(&payload, src);
        let node = self.node.0 as u32;
        let routed = ctx.now();
        if admission.port_wait > SimTime::ZERO {
            ctx.ledger(
                Occ::wait(ResKind::LinkPort, routed, admission.arrive, node, owner)
                    .unit(self.node.0 as u64),
            );
        }
        ctx.ledger(
            Occ::hold(
                ResKind::LinkPort,
                admission.arrive,
                admission.until,
                node,
                owner,
            )
            .unit(self.node.0 as u64),
        );
        // Netdump: wire traversal with the link-occupancy tag (bytes +
        // destination-port queuing wait).
        let wire = ctx.packet(
            PacketLog::new(cause, CausalKind::Wire)
                .nodes(src.0 as u32, dst.0 as u32)
                .detail(bytes as u64, admission.port_wait.as_ns()),
        );
        ctx.send_at(
            admission.arrive,
            ctx.self_id(),
            ElanEvent::Arrive {
                src,
                payload,
                cause: wire,
            },
        );
    }

    /// Launch a descriptor: inject the RDMA and set its local event.
    fn fire_desc(&mut self, ctx: &mut Ctx<'_, ElanEvent>, desc: DescId, cause: CauseId) {
        let fires = self.desc_fires[desc.0 as usize];
        self.desc_fires[desc.0 as usize] = fires + 1;
        let owner = Owner::coll(self.desc_group[desc.0 as usize], fires, self.node.0 as u32);
        let now = ctx.now();
        let t = self.engine(ctx, now, self.params.nic_desc_proc, owner);
        let d = self.descs[desc.0 as usize];
        assert_ne!(d.dst, self.node, "RDMA loopback descriptor");
        ctx.count_id(counter_id!("elan.rdma_sent"), 1);
        // Span: descriptor launch.
        ctx.span(SpanEvent::Fire {
            unit: desc.0 as u64,
            dst: d.dst.0 as u64,
        });
        // Netdump: descriptor launch, parented on whatever tripped it (the
        // host doorbell or the chain link's event record).
        let fire = ctx.packet(
            PacketLog::new(cause, CausalKind::Fire)
                .nodes(self.node.0 as u32, d.dst.0 as u32)
                .detail(desc.0 as u64, (RDMA_WIRE_OVERHEAD + d.bytes) as u64),
        );
        self.inject(
            ctx,
            t,
            d.dst,
            RDMA_WIRE_OVERHEAD + d.bytes,
            ElanPayload::Rdma {
                remote_event: d.remote_event,
            },
            fire,
        );
        if let Some(le) = d.local_event {
            // The local "issued" event trips as soon as the descriptor is
            // processed; it gates the next chain link on our own progress.
            self.set_event(ctx, t, le, owner, fire);
        }
    }

    /// Set an event; run any tripped actions.
    /// Set an event; run any tripped actions. `cause` is the netdump record
    /// of the stimulus performing the `set` — in a counting event the trip
    /// happens on the *last* set, so tripped actions correctly parent on the
    /// last-enabling stimulus.
    fn set_event(
        &mut self,
        ctx: &mut Ctx<'_, ElanEvent>,
        at: SimTime,
        ev: EventId,
        owner: Owner,
        cause: CauseId,
    ) {
        let node = self.node.0 as u32;
        // Ledger: each set banks one count in the event slot; each trip
        // drains a threshold's worth. `unit` is the event id, so the
        // analyzer can follow a single slot's fill level.
        ctx.ledger(Occ::acquire(ResKind::EventSlot, at, node, owner).unit(ev.0 as u64));
        let trips = self.events[ev.0 as usize].set();
        if trips == 0 {
            return;
        }
        for _ in 0..trips {
            ctx.ledger(Occ::release(ResKind::EventSlot, at, node, owner).unit(ev.0 as u64));
        }
        // Indexed iteration with `Copy` actions: an event trip is on every
        // barrier's critical path, so it must not clone the action list.
        for _ in 0..trips {
            for i in 0..self.events[ev.0 as usize].actions.len() {
                let action = self.events[ev.0 as usize].actions[i];
                match action {
                    EventAction::FireDesc(d) => {
                        // Chain through the serial engine via a self event.
                        ctx.send_at(
                            at.max(ctx.now()),
                            ctx.self_id(),
                            ElanEvent::FireDesc { desc: d, cause },
                        );
                    }
                    EventAction::NotifyHost { cookie } => {
                        ctx.count_id(counter_id!("elan.host_notify"), 1);
                        // Span: completion surfaced to the host.
                        ctx.span(SpanEvent::Notify {
                            unit: ev.0 as u64,
                            cookie,
                        });
                        let notify = ctx.packet(
                            PacketLog::new(cause, CausalKind::Notify)
                                .at_node(self.node.0 as u32)
                                .detail(cookie, ev.0 as u64),
                        );
                        ctx.send_at(
                            at + self.params.host_event_visible,
                            self.host,
                            ElanEvent::HostCollDone {
                                cookie,
                                cause: notify,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Test access to an event's state.
    pub fn event(&self, ev: EventId) -> &NicEvent {
        &self.events[ev.0 as usize]
    }

    /// Mutable access to the installed thread handler (result harvesting).
    pub fn thread_mut(&mut self) -> &mut dyn ElanThread {
        self.thread.as_mut()
    }
}

impl Component<ElanEvent> for ElanNic {
    fn handle(&mut self, msg: ElanEvent, ctx: &mut Ctx<'_, ElanEvent>) {
        match msg {
            ElanEvent::Doorbell { desc, cause } | ElanEvent::FireDesc { desc, cause } => {
                self.fire_desc(ctx, desc, cause);
            }
            ElanEvent::SetEvent { event, cause } => {
                let owner = self.event_owner(event, self.node.0 as u32);
                let now = ctx.now();
                let t = self.engine(ctx, now, self.params.nic_event_proc, owner);
                // Netdump: the NIC picks up the host's event poke.
                let dispatch = ctx.packet(
                    PacketLog::new(cause, CausalKind::NicDispatch)
                        .at_node(self.node.0 as u32)
                        .detail(event.0 as u64, 0),
                );
                self.set_event(ctx, t, event, owner, dispatch);
            }
            ElanEvent::TportPost {
                dst,
                tag,
                len,
                cause,
            } => {
                let owner = tport_owner(tag, self.node.0 as u32);
                let now = ctx.now();
                let t = self.engine(ctx, now, self.params.nic_desc_proc, owner);
                ctx.count_id(counter_id!("elan.tport_sent"), 1);
                let fire = ctx.packet(
                    PacketLog::new(cause, CausalKind::Fire)
                        .nodes(self.node.0 as u32, dst.0 as u32)
                        .detail(tag.0 as u64, len as u64),
                );
                self.inject(
                    ctx,
                    t,
                    dst,
                    TPORT_WIRE_OVERHEAD + len,
                    ElanPayload::Tport { tag, len },
                    fire,
                );
            }
            ElanEvent::HwSyncPost { epoch, cause } => {
                let unit = self
                    .hw_unit
                    .expect("hardware barrier used on a cluster without a hw unit");
                let owner = Owner::coll(ELAN_SPAN_GROUP, epoch, self.node.0 as u32);
                let now = ctx.now();
                let t = self.engine(ctx, now, self.params.nic_desc_proc, owner);
                // Netdump: readiness forwarded to the switch-level unit.
                let fire = ctx.packet(
                    PacketLog::new(cause, CausalKind::Fire)
                        .at_node(self.node.0 as u32)
                        .detail(epoch, 0),
                );
                ctx.send_at(
                    t,
                    unit,
                    ElanEvent::HwArrive {
                        node: self.node,
                        epoch,
                        cause: fire,
                    },
                );
            }
            ElanEvent::ThreadPost { value, cause } => {
                let owner = Owner::coll(ELAN_SPAN_GROUP, 0, self.node.0 as u32);
                let now = ctx.now();
                let t = self.engine(ctx, now, self.params.nic_thread_proc, owner);
                let dispatch = ctx.packet(
                    PacketLog::new(cause, CausalKind::NicDispatch)
                        .at_node(self.node.0 as u32)
                        .detail(value, 0),
                );
                let actions = self.thread.on_doorbell(t, value);
                self.run_thread_actions(ctx, actions, dispatch);
            }
            ElanEvent::Inject {
                src,
                dst,
                bytes,
                payload,
                cause,
            } => {
                self.on_inject(ctx, src, dst, bytes, payload, cause);
            }
            ElanEvent::Arrive {
                src,
                payload,
                cause,
            } => {
                // Span: arrival, detail word shared across payload kinds
                // (see `ElanPayload::arrive_info`).
                ctx.span(SpanEvent::Arrive {
                    src: src.0 as u64,
                    info: payload.arrive_info(),
                });
                let arrive = ctx.packet(
                    PacketLog::new(cause, CausalKind::Arrive)
                        .nodes(src.0 as u32, self.node.0 as u32)
                        .detail(payload.arrive_info(), 0),
                );
                let owner = self.payload_owner(&payload, src);
                match payload {
                    ElanPayload::Thread { tag, value } => {
                        // Wake the thread processor: heavier than a raw event.
                        let now = ctx.now();
                        let t = self.engine(ctx, now, self.params.nic_thread_proc, owner);
                        ctx.count_id(counter_id!("elan.thread_recv"), 1);
                        let actions = self.thread.on_msg(t, src, tag, value);
                        self.run_thread_actions(ctx, actions, arrive);
                    }
                    ElanPayload::Rdma { remote_event } => {
                        let now = ctx.now();
                        let t = self.engine(ctx, now, self.params.nic_event_proc, owner);
                        ctx.count_id(counter_id!("elan.rdma_recv"), 1);
                        if let Some(ev) = remote_event {
                            self.set_event(ctx, t, ev, owner, arrive);
                        }
                    }
                    ElanPayload::Tport { tag, len } => {
                        let now = ctx.now();
                        let t = self.engine(ctx, now, self.params.nic_tport_recv, owner);
                        ctx.count_id(counter_id!("elan.tport_recv"), 1);
                        ctx.send_at(
                            t + self.params.host_event_visible,
                            self.host,
                            ElanEvent::HostRecv {
                                src,
                                tag,
                                len,
                                cause: arrive,
                            },
                        );
                    }
                }
            }
            ElanEvent::HwDone { epoch, cause } => {
                // Hardware barrier completion: surface to the host like a
                // local event.
                let owner = Owner::coll(ELAN_SPAN_GROUP, epoch, self.node.0 as u32);
                let now = ctx.now();
                let t = self.engine(ctx, now, self.params.nic_event_proc, owner);
                let notify = ctx.packet(
                    PacketLog::new(cause, CausalKind::Notify)
                        .at_node(self.node.0 as u32)
                        .detail(hw_cookie(epoch), 0),
                );
                ctx.send_at(
                    t + self.params.host_event_visible,
                    self.host,
                    ElanEvent::HostCollDone {
                        cookie: hw_cookie(epoch),
                        cause: notify,
                    },
                );
            }
            other => panic!("Elan NIC {:?} got unexpected event {other:?}", self.node),
        }
    }
}

/// Cookie namespace for hardware-barrier completions (top bit set,
/// distinguishing them from user chain cookies).
pub fn hw_cookie(epoch: u64) -> u64 {
    (1 << 63) | epoch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_cookie_is_tagged() {
        assert_eq!(hw_cookie(5) & (1 << 63), 1 << 63);
        assert_eq!(hw_cookie(5) & !(1 << 63), 5);
    }
}
