//! Hand-built 4-node dissemination barrier with one injected
//! NACK/retransmission, where the longest causal chain is known a priori.
//!
//! The scenario mirrors what the GM emitters record: node 3's round-1
//! packet to node 0 is dropped on the wire; node 0's NIC times out, NACKs
//! the sender, the sender retransmits, and only then can node 0 fire its
//! round-2 packet to node 2 — which therefore exits last. Every timestamp
//! is chosen by hand, so the expected critical path (root, every edge's
//! kind/route/duration, the detours, the slack vector) is written down
//! explicitly and asserted edge by edge against the analyzer.

#![allow(clippy::unwrap_used)] // test code

use nicbar_bench::critpath::{analyze, render};
use nicbar_sim::{CausalKind, CauseId, ComponentId, NetDump, PacketLog, SimTime};

const GROUP: u64 = 0xBA;
const SEQ: u64 = 0;

struct Dump(NetDump);

impl Dump {
    fn rec(&mut self, t: u64, log: PacketLog) -> CauseId {
        self.0.record(SimTime::from_ns(t), ComponentId(0), log)
    }
}

#[test]
fn injected_retransmission_detour_is_the_critical_path() {
    let mut d = Dump(NetDump::disabled());
    d.0.enable();
    let span = |log: PacketLog| log.key(GROUP, SEQ);

    // --- Entries. Node 3 enters late, but its lateness will NOT be the
    // bottleneck: the injected drop on node 0's inbound packet is.
    let e0 = d.rec(
        0,
        span(PacketLog::new(CauseId::NONE, CausalKind::HostEnter).at_node(0)),
    );
    let e1 = d.rec(
        0,
        span(PacketLog::new(CauseId::NONE, CausalKind::HostEnter).at_node(1)),
    );
    let e2 = d.rec(
        0,
        span(PacketLog::new(CauseId::NONE, CausalKind::HostEnter).at_node(2)),
    );
    let e3 = d.rec(
        100,
        span(PacketLog::new(CauseId::NONE, CausalKind::HostEnter).at_node(3)),
    );

    // --- Host -> NIC handoff.
    let d0 = d.rec(
        150,
        span(PacketLog::new(e0, CausalKind::NicDispatch).at_node(0)),
    );
    let d1 = d.rec(
        150,
        span(PacketLog::new(e1, CausalKind::NicDispatch).at_node(1)),
    );
    let d2 = d.rec(
        150,
        span(PacketLog::new(e2, CausalKind::NicDispatch).at_node(2)),
    );
    let d3 = d.rec(
        250,
        span(PacketLog::new(e3, CausalKind::NicDispatch).at_node(3)),
    );

    // --- Round 1: node i -> (i+1) mod 4. The 3 -> 0 packet is DROPPED.
    let send = |d: &mut Dump, t0: u64, parent: CauseId, src: u32, dst: u32| -> CauseId {
        let f = d.rec(
            t0,
            span(PacketLog::new(parent, CausalKind::Fire).nodes(src, dst)),
        );
        let w = d.rec(
            t0 + 200,
            span(PacketLog::new(f, CausalKind::Wire).nodes(src, dst)),
        );
        d.rec(
            t0 + 250,
            span(PacketLog::new(w, CausalKind::Arrive).nodes(src, dst)),
        )
    };
    let a01 = send(&mut d, 200, d0, 0, 1);
    let a12 = send(&mut d, 200, d1, 1, 2);
    let a23 = send(&mut d, 200, d2, 2, 3);
    // Injected loss: 3 -> 0 fires and hits the wire, then drops.
    let f30 = d.rec(300, span(PacketLog::new(d3, CausalKind::Fire).nodes(3, 0)));
    let w30 = d.rec(500, span(PacketLog::new(f30, CausalKind::Wire).nodes(3, 0)));
    let _drop = d.rec(500, span(PacketLog::new(w30, CausalKind::Drop).nodes(3, 0)));

    // --- Recovery: node 0's NIC times out on the missing round-1 packet
    // (its last local stimulus is its own dispatch) and NACKs the sender;
    // the sender retransmits.
    let n03 = d.rec(
        1_000,
        span(PacketLog::new(d0, CausalKind::Nack).nodes(0, 3)),
    );
    let nw = d.rec(
        1_200,
        span(PacketLog::new(n03, CausalKind::Wire).nodes(0, 3)),
    );
    let na = d.rec(
        1_250,
        span(PacketLog::new(nw, CausalKind::Arrive).nodes(0, 3)),
    );
    let r30 = d.rec(
        1_600,
        span(PacketLog::new(na, CausalKind::Retransmit).nodes(3, 0)),
    );
    let rw = d.rec(
        1_800,
        span(PacketLog::new(r30, CausalKind::Wire).nodes(3, 0)),
    );
    let ra = d.rec(
        1_850,
        span(PacketLog::new(rw, CausalKind::Arrive).nodes(3, 0)),
    );

    // --- Round 2: node i -> (i+2) mod 4. Node 0's send was gated on the
    // retransmitted arrival; everyone else fired long ago.
    let a02 = send(&mut d, 1_900, ra, 0, 2); // the late one
    let a13 = send(&mut d, 500, a01, 1, 3);
    let a20 = send(&mut d, 500, a12, 2, 0);
    let a31 = send(&mut d, 600, a23, 3, 1);

    // --- Completion notifies and exits, parented on each node's
    // last-enabling arrival.
    let exit = |d: &mut Dump, t_notify: u64, t_exit: u64, parent: CauseId, node: u32| -> CauseId {
        let n = d.rec(
            t_notify,
            span(PacketLog::new(parent, CausalKind::Notify).at_node(node)),
        );
        d.rec(
            t_exit,
            span(PacketLog::new(n, CausalKind::HostExit).at_node(node)),
        )
    };
    let _x1 = exit(&mut d, 860, 900, a31, 1);
    let _x3 = exit(&mut d, 1_760, 1_800, a13, 3);
    let _x0 = exit(&mut d, 2_060, 2_100, a20, 0);
    let x2 = exit(&mut d, 2_200, 2_500, a02, 2);

    // --- Analyze.
    let paths = analyze(d.0.records());
    assert_eq!(paths.len(), 1);
    let p = &paths[0];
    assert_eq!((p.group, p.seq), (GROUP, SEQ));
    assert_eq!(p.begin, SimTime::ZERO);
    assert_eq!(p.end, SimTime::from_ns(2_500));
    assert_eq!(p.end_node, 2, "node 2, gated on the retransmit, exits last");
    assert_eq!(p.root_node, 0, "the chain roots at node 0's own entry");
    assert_eq!(p.entry_skew, SimTime::ZERO, "node 0 entered at t=0");
    assert!(!p.truncated);
    assert_eq!(p.residual, SimTime::ZERO, "complete dump: full coverage");
    assert!((p.coverage_pct() - 100.0).abs() < 1e-9);

    // The expected longest chain, written down a priori, edge by edge:
    // (kind, src, dst, completes at, duration).
    let expected: &[(CausalKind, u32, u32, u64, u64)] = &[
        (CausalKind::NicDispatch, 0, u32::MAX, 150, 150),
        (CausalKind::Nack, 0, 3, 1_000, 850), // timeout wait: the detour begins
        (CausalKind::Wire, 0, 3, 1_200, 200),
        (CausalKind::Arrive, 0, 3, 1_250, 50),
        (CausalKind::Retransmit, 3, 0, 1_600, 350),
        (CausalKind::Wire, 3, 0, 1_800, 200),
        (CausalKind::Arrive, 3, 0, 1_850, 50),
        (CausalKind::Fire, 0, 2, 1_900, 50), // round 2 finally fires
        (CausalKind::Wire, 0, 2, 2_100, 200),
        (CausalKind::Arrive, 0, 2, 2_150, 50),
        (CausalKind::Notify, 2, u32::MAX, 2_200, 50),
        (CausalKind::HostExit, 2, u32::MAX, 2_500, 300),
    ];
    assert_eq!(p.edges.len(), expected.len(), "chain length");
    for (i, (edge, &(kind, src, dst, at, dur))) in p.edges.iter().zip(expected).enumerate() {
        assert_eq!(edge.kind, kind, "edge {i} kind");
        assert_eq!(edge.src, src, "edge {i} src");
        assert_eq!(edge.dst, dst, "edge {i} dst");
        assert_eq!(edge.at, SimTime::from_ns(at), "edge {i} completion time");
        assert_eq!(edge.dur, SimTime::from_ns(dur), "edge {i} duration");
    }

    // The injected detour is identified and quantified: NACK wait +
    // retransmission turnaround dominate the barrier.
    assert_eq!(p.detour_edges(), 2, "nack + retransmit edges");
    assert_eq!(p.detour_time(), SimTime::from_ns(1_200));

    // Per-rank slack against the last exit.
    assert_eq!(
        p.slack,
        vec![
            (0, SimTime::from_ns(400)),
            (1, SimTime::from_ns(1_600)),
            (2, SimTime::ZERO),
            (3, SimTime::from_ns(700)),
        ]
    );

    // The rendered transcript narrates the same story.
    let text = render(&paths);
    assert!(text.contains("[detour]"), "got:\n{text}");
    assert!(text.contains("coverage 100.0%"), "got:\n{text}");
    assert!(text.contains("critical rank 2"), "got:\n{text}");
    let _ = (a02, x2, e1, e2);
}
