//! Raw discrete-event-engine throughput: events per second through the
//! scheduler. A regression here slows every simulation in the workspace.
//!
//! Each workload runs on every queue implementation — the hot-path timing
//! wheel (`wheel`, the default), the indexed 4-ary heap (`indexed4`), and
//! the original `BinaryHeap` scheduler (`classic`) kept as the regression
//! baseline — so a run shows the speedup directly.

//! A third group, `engine_seed_baseline`, runs the same workloads on the
//! seed engine replica (`nicbar_bench::seed_engine`) — the original
//! whole-entry `BinaryHeap` + pending-drain + `Option::take` hot path — so
//! the overhaul's full speedup over the seed scheduler stays measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nicbar_bench::seed_engine::{SeedComponent, SeedCtx, SeedEngine};
use nicbar_sim::{Component, ComponentId, Ctx, Engine, SchedulerKind, SimTime};

const EVENTS: u64 = 100_000;
/// Concurrent tokens in the `flows` workload — the steady queue depth the
/// figure simulations actually run at.
const FLOW_TOKENS: usize = 64;

enum Msg {
    Hop(u64),
}

/// Bounces an event around a ring of components until the hop budget runs
/// out — a pure scheduler workload.
struct RingHop {
    next: ComponentId,
    stride: u64,
}

impl Component<Msg> for RingHop {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Hop(remaining) = msg;
        if remaining > 0 {
            ctx.send(
                SimTime::from_ns(self.stride),
                self.next,
                Msg::Hop(remaining - 1),
            );
        }
    }
}

fn ring_hop(kind: SchedulerKind) -> u64 {
    let mut engine: Engine<Msg> = Engine::with_scheduler(0, kind);
    let ids: Vec<ComponentId> = (0..16).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            RingHop {
                next: ids[(i + 1) % ids.len()],
                stride: 10,
            },
        );
    }
    engine.schedule_at(SimTime::ZERO, ids[0], Msg::Hop(EVENTS));
    engine.run();
    engine.events_processed()
}

/// `FLOW_TOKENS` tokens circulating at staggered strides: sustained queue
/// depth of `FLOW_TOKENS`.
fn flows(kind: SchedulerKind) -> u64 {
    let mut engine: Engine<Msg> = Engine::with_scheduler(0, kind);
    let ids: Vec<ComponentId> = (0..FLOW_TOKENS).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            RingHop {
                next: ids[(i + 1) % ids.len()],
                stride: 5 + (i as u64 % 13),
            },
        );
    }
    for (i, &id) in ids.iter().enumerate() {
        engine.schedule_at(
            SimTime::from_ns(i as u64),
            id,
            Msg::Hop(EVENTS / FLOW_TOKENS as u64),
        );
    }
    engine.run();
    engine.events_processed()
}

// A fan-out heavy workload: every event schedules 4 children until a depth
// budget is hit (heap-pressure profile).
struct FanOut;
enum FMsg {
    Spawn(u32),
}
impl Component<FMsg> for FanOut {
    fn handle(&mut self, msg: FMsg, ctx: &mut Ctx<'_, FMsg>) {
        let FMsg::Spawn(depth) = msg;
        if depth > 0 {
            for k in 0..4u64 {
                ctx.send_self(SimTime::from_ns(10 + k), FMsg::Spawn(depth - 1));
            }
        }
    }
}

fn fanout(kind: SchedulerKind) -> u64 {
    let mut engine: Engine<FMsg> = Engine::with_scheduler(0, kind);
    let id = engine.add(FanOut);
    engine.schedule_at(SimTime::ZERO, id, FMsg::Spawn(8));
    engine.run();
    engine.events_processed()
}

// The same two workloads on the seed engine replica.

struct SeedRingHop {
    next: ComponentId,
    stride: u64,
}

impl SeedComponent<Msg> for SeedRingHop {
    fn handle(&mut self, msg: Msg, ctx: &mut SeedCtx<'_, Msg>) {
        let Msg::Hop(remaining) = msg;
        if remaining > 0 {
            ctx.send(
                SimTime::from_ns(self.stride),
                self.next,
                Msg::Hop(remaining - 1),
            );
        }
    }
}

fn seed_ring_hop() -> u64 {
    let mut engine: SeedEngine<Msg> = SeedEngine::new();
    let ids: Vec<ComponentId> = (0..16).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            SeedRingHop {
                next: ids[(i + 1) % ids.len()],
                stride: 10,
            },
        );
    }
    engine.schedule_at(SimTime::ZERO, ids[0], Msg::Hop(EVENTS));
    engine.run();
    engine.events_processed()
}

fn seed_flows() -> u64 {
    let mut engine: SeedEngine<Msg> = SeedEngine::new();
    let ids: Vec<ComponentId> = (0..FLOW_TOKENS).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            SeedRingHop {
                next: ids[(i + 1) % ids.len()],
                stride: 5 + (i as u64 % 13),
            },
        );
    }
    for (i, &id) in ids.iter().enumerate() {
        engine.schedule_at(
            SimTime::from_ns(i as u64),
            id,
            Msg::Hop(EVENTS / FLOW_TOKENS as u64),
        );
    }
    engine.run();
    engine.events_processed()
}

struct SeedFanOut;
impl SeedComponent<FMsg> for SeedFanOut {
    fn handle(&mut self, msg: FMsg, ctx: &mut SeedCtx<'_, FMsg>) {
        let FMsg::Spawn(depth) = msg;
        if depth > 0 {
            for k in 0..4u64 {
                ctx.send_self(SimTime::from_ns(10 + k), FMsg::Spawn(depth - 1));
            }
        }
    }
}

fn seed_fanout() -> u64 {
    let mut engine: SeedEngine<FMsg> = SeedEngine::new();
    let id = engine.add(SeedFanOut);
    engine.schedule_at(SimTime::ZERO, id, FMsg::Spawn(8));
    engine.run();
    engine.events_processed()
}

const KINDS: [(&str, SchedulerKind); 3] = [
    ("wheel", SchedulerKind::TimingWheel),
    ("indexed4", SchedulerKind::Indexed4),
    ("classic", SchedulerKind::ClassicBinaryHeap),
];

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));
    // The headline bench names (no scheduler suffix) run the default
    // scheduler, keeping the series comparable across revisions.
    g.bench_function("ring_hop_100k_events", |b| {
        b.iter(|| ring_hop(SchedulerKind::default()))
    });
    g.bench_function("flows_64_tokens", |b| {
        b.iter(|| flows(SchedulerKind::default()))
    });
    g.bench_function("fanout_4^8_events", |b| {
        b.iter(|| fanout(SchedulerKind::default()))
    });
    g.finish();

    let mut g = c.benchmark_group("engine_scheduler");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));
    for (name, kind) in KINDS {
        g.bench_with_input(BenchmarkId::new("ring_hop", name), &kind, |b, &kind| {
            b.iter(|| ring_hop(kind))
        });
        g.bench_with_input(BenchmarkId::new("flows", name), &kind, |b, &kind| {
            b.iter(|| flows(kind))
        });
        g.bench_with_input(BenchmarkId::new("fanout", name), &kind, |b, &kind| {
            b.iter(|| fanout(kind))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("engine_seed_baseline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("ring_hop", |b| b.iter(seed_ring_hop));
    g.bench_function("flows", |b| b.iter(seed_flows));
    g.bench_function("fanout", |b| b.iter(seed_fanout));
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
