//! Raw discrete-event-engine throughput: events per second through the
//! scheduler. A regression here slows every simulation in the workspace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nicbar_sim::{Component, ComponentId, Ctx, Engine, SimTime};

const EVENTS: u64 = 100_000;

enum Msg {
    Hop(u64),
}

/// Bounces an event around a ring of components until the hop budget runs
/// out — a pure scheduler workload.
struct RingHop {
    next: ComponentId,
}

impl Component<Msg> for RingHop {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Hop(remaining) = msg;
        if remaining > 0 {
            ctx.send(SimTime::from_ns(10), self.next, Msg::Hop(remaining - 1));
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("ring_hop_100k_events", |b| {
        b.iter(|| {
            let mut engine: Engine<Msg> = Engine::new(0);
            let ids: Vec<ComponentId> = (0..16).map(|_| engine.reserve_id()).collect();
            for (i, &id) in ids.iter().enumerate() {
                engine.install(
                    id,
                    RingHop {
                        next: ids[(i + 1) % ids.len()],
                    },
                );
            }
            engine.schedule_at(SimTime::ZERO, ids[0], Msg::Hop(EVENTS));
            engine.run();
            engine.events_processed()
        })
    });
    // A fan-out heavy workload: every event schedules 4 children until a
    // depth budget is hit (heap-pressure profile).
    struct FanOut;
    enum FMsg {
        Spawn(u32),
    }
    impl Component<FMsg> for FanOut {
        fn handle(&mut self, msg: FMsg, ctx: &mut Ctx<'_, FMsg>) {
            let FMsg::Spawn(depth) = msg;
            if depth > 0 {
                for k in 0..4u64 {
                    ctx.send_self(SimTime::from_ns(10 + k), FMsg::Spawn(depth - 1));
                }
            }
        }
    }
    g.bench_function("fanout_4^8_events", |b| {
        b.iter(|| {
            let mut engine: Engine<FMsg> = Engine::new(0);
            let id = engine.add(FanOut);
            engine.schedule_at(SimTime::ZERO, id, FMsg::Spawn(8));
            engine.run();
            engine.events_processed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
