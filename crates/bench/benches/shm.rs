//! Genuine wall-clock benchmarks of the shared-memory barrier analogues
//! (nicbar-algos): each measurement is 1000 consecutive barrier episodes
//! across `n` OS threads, reported per-episode by Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nicbar_algos::{
    CentralSenseBarrier, DisseminationBarrier, McsTreeBarrier, PairwiseBarrier, ShmBarrier,
    TournamentBarrier,
};

const EPISODES: usize = 1000;

/// Run `EPISODES` barrier episodes over `barrier` with its thread count.
fn episodes<B: ShmBarrier>(barrier: &B) {
    let n = barrier.num_threads();
    std::thread::scope(|scope| {
        for tid in 0..n {
            scope.spawn(move || {
                for _ in 0..EPISODES {
                    barrier.wait(tid);
                }
            });
        }
    });
}

fn bench_barriers(c: &mut Criterion) {
    // Keep at least the 2-thread case even on single-core CI boxes — the
    // barriers' spin loops yield, so oversubscribed runs still complete
    // (just with less meaningful absolute numbers).
    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .max(2);
    let counts: Vec<usize> = [2usize, 4, 8]
        .into_iter()
        .filter(|&n| n <= max_threads)
        .collect();

    let mut g = c.benchmark_group("shm_barriers");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EPISODES as u64));
    for &n in &counts {
        g.bench_with_input(BenchmarkId::new("central", n), &n, |b, &n| {
            let bar = CentralSenseBarrier::new(n);
            b.iter(|| episodes(&bar));
        });
        g.bench_with_input(BenchmarkId::new("dissemination", n), &n, |b, &n| {
            let bar = DisseminationBarrier::new(n);
            b.iter(|| episodes(&bar));
        });
        g.bench_with_input(BenchmarkId::new("pairwise", n), &n, |b, &n| {
            let bar = PairwiseBarrier::new(n);
            b.iter(|| episodes(&bar));
        });
        g.bench_with_input(BenchmarkId::new("tournament", n), &n, |b, &n| {
            let bar = TournamentBarrier::new(n);
            b.iter(|| episodes(&bar));
        });
        g.bench_with_input(BenchmarkId::new("mcs_tree", n), &n, |b, &n| {
            let bar = McsTreeBarrier::new(n);
            b.iter(|| episodes(&bar));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
