//! Criterion benches over the figure-generating simulations: one group per
//! evaluation figure. The measured quantity is host wall time of the
//! deterministic simulation (the simulated latencies themselves are printed
//! by the `fig*` binaries); tracking it catches performance regressions in
//! the substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nicbar_bench::criterion_cfg;
use nicbar_core::{
    elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier, gm_host_barrier, gm_nic_barrier,
    Algorithm,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_lanai91");
    g.sample_size(10);
    for n in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("nic_ds", n), &n, |b, &n| {
            b.iter(|| {
                gm_nic_barrier(
                    GmParams::lanai_9_1(),
                    CollFeatures::paper(),
                    n,
                    Algorithm::Dissemination,
                    criterion_cfg(),
                )
                .mean_us
            })
        });
        g.bench_with_input(BenchmarkId::new("host_ds", n), &n, |b, &n| {
            b.iter(|| {
                gm_host_barrier(
                    GmParams::lanai_9_1(),
                    n,
                    Algorithm::Dissemination,
                    criterion_cfg(),
                )
                .mean_us
            })
        });
    }
    g.finish();
}

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_lanai_xp");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("nic_pe", n), &n, |b, &n| {
            b.iter(|| {
                gm_nic_barrier(
                    GmParams::lanai_xp(),
                    CollFeatures::paper(),
                    n,
                    Algorithm::PairwiseExchange,
                    criterion_cfg(),
                )
                .mean_us
            })
        });
        g.bench_with_input(BenchmarkId::new("host_pe", n), &n, |b, &n| {
            b.iter(|| {
                gm_host_barrier(
                    GmParams::lanai_xp(),
                    n,
                    Algorithm::PairwiseExchange,
                    criterion_cfg(),
                )
                .mean_us
            })
        });
    }
    g.finish();
}

fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_quadrics");
    g.sample_size(10);
    for n in [4usize, 8] {
        g.bench_with_input(BenchmarkId::new("nic_ds", n), &n, |b, &n| {
            b.iter(|| {
                elan_nic_barrier(
                    ElanParams::elan3(),
                    n,
                    Algorithm::Dissemination,
                    criterion_cfg(),
                )
                .mean_us
            })
        });
        g.bench_with_input(BenchmarkId::new("gsync", n), &n, |b, &n| {
            b.iter(|| elan_gsync_barrier(ElanParams::elan3(), n, 4, criterion_cfg()).mean_us)
        });
        g.bench_with_input(BenchmarkId::new("hgsync", n), &n, |b, &n| {
            b.iter(|| elan_hw_barrier(ElanParams::elan3(), n, criterion_cfg()).mean_us)
        });
    }
    g.finish();
}

fn fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_scalability");
    g.sample_size(10);
    let cfg = nicbar_core::RunCfg {
        warmup: 5,
        iters: 50,
        ..criterion_cfg()
    };
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::new("quadrics_nic_ds", n), &n, |b, &n| {
            b.iter(|| {
                elan_nic_barrier(
                    ElanParams::elan3(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                )
                .mean_us
            })
        });
        g.bench_with_input(BenchmarkId::new("myrinet_nic_ds", n), &n, |b, &n| {
            b.iter(|| {
                gm_nic_barrier(
                    GmParams::lanai_xp(),
                    CollFeatures::paper(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                )
                .mean_us
            })
        });
    }
    g.finish();
}

fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (label, features) in [
        ("paper", CollFeatures::paper()),
        ("direct", CollFeatures::direct()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                gm_nic_barrier(
                    GmParams::lanai_xp(),
                    features,
                    8,
                    Algorithm::Dissemination,
                    criterion_cfg(),
                )
                .mean_us
            })
        });
    }
    g.finish();
}

fn thread_vs_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread_vs_chain");
    g.sample_size(10);
    g.bench_function("chain_barrier_8", |b| {
        b.iter(|| {
            elan_nic_barrier(
                ElanParams::elan3(),
                8,
                Algorithm::Dissemination,
                criterion_cfg(),
            )
            .mean_us
        })
    });
    g.bench_function("thread_barrier_8", |b| {
        b.iter(|| nicbar_core::elan_thread_barrier(ElanParams::elan3(), 8, criterion_cfg()).mean_us)
    });
    g.finish();
}

criterion_group!(benches, fig5, fig6, fig7, fig8, ablation, thread_vs_chain);
criterion_main!(benches);
