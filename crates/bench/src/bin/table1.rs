//! "Table 1": the paper's headline numbers (abstract / §8), regenerated.
//!
//! | metric | paper | simulated |
//! |---|---|---|
//! | Quadrics 8-node NIC barrier | 5.60 µs | … |
//! | … improvement over Elanlib tree | 2.48× | … |
//! | Myrinet XP 8-node NIC barrier | 14.20 µs | … |
//! | … improvement over host-based | 2.64× | … |
//! | Myrinet 9.1 16-node NIC barrier | 25.72 µs | … |
//! | … improvement over host-based | 3.38× | … |
//! | 1024-node projection, Quadrics | 22.13 µs | … |
//! | 1024-node projection, Myrinet | 38.94 µs | … |

use nicbar_bench::figure_cfg;
use nicbar_core::{
    elan_gsync_barrier, elan_nic_barrier, gm_host_barrier, gm_nic_barrier, Algorithm, RunCfg,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let cfg = figure_cfg();
    let big = RunCfg {
        warmup: 20,
        iters: 200,
        ..cfg.clone()
    };
    let ds = Algorithm::Dissemination;

    let q_nic8 = elan_nic_barrier(ElanParams::elan3(), 8, ds, cfg.clone()).mean_us;
    let q_tree8 = elan_gsync_barrier(ElanParams::elan3(), 8, 4, cfg.clone()).mean_us;
    let m_nic8 = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        8,
        ds,
        cfg.clone(),
    )
    .mean_us;
    let m_host8 = gm_host_barrier(GmParams::lanai_xp(), 8, ds, cfg.clone()).mean_us;
    let o_nic16 = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        16,
        ds,
        cfg.clone(),
    )
    .mean_us;
    let o_host16 = gm_host_barrier(GmParams::lanai_9_1(), 16, ds, cfg.clone()).mean_us;
    let q_1024 = elan_nic_barrier(ElanParams::elan3(), 1024, ds, big.clone()).mean_us;
    let m_1024 = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        1024,
        ds,
        big.clone(),
    )
    .mean_us;

    println!("== Table 1 — headline results, paper vs simulation ==\n");
    println!("{:<46} {:>9} {:>11}", "metric", "paper", "simulated");
    let row = |m: &str, p: f64, s: f64, unit: &str| {
        println!("{m:<46} {p:>8.2}{unit} {s:>10.2}{unit}");
    };
    row("Quadrics 8-node NIC barrier", 5.60, q_nic8, "u");
    row(
        "  improvement over Elanlib tree",
        2.48,
        q_tree8 / q_nic8,
        "x",
    );
    row("Myrinet LANai-XP 8-node NIC barrier", 14.20, m_nic8, "u");
    row("  improvement over host-based", 2.64, m_host8 / m_nic8, "x");
    row("Myrinet LANai-9.1 16-node NIC barrier", 25.72, o_nic16, "u");
    row(
        "  improvement over host-based",
        3.38,
        o_host16 / o_nic16,
        "x",
    );
    row("1024-node NIC barrier, Quadrics", 22.13, q_1024, "u");
    row("1024-node NIC barrier, Myrinet", 38.94, m_1024, "u");
    println!("\n(u = µs, x = factor; simulated values from the calibrated DES substrates)");
}
