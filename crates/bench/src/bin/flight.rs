//! Flight-recorder capture of the paper's NIC barrier on both substrates.
//!
//! Runs a short instrumented window (2 warm-up + 8 recorded barriers) of
//! the 4-node NIC barrier over Quadrics/Elan3 and GM/Myrinet with the trace
//! ring and flight recorder on, then prints the per-phase latency breakdown
//! for each capture. With `--chrome <path>` it also writes both captures as
//! Chrome trace-event JSON (open in Perfetto or `chrome://tracing`).
//!
//! Options:
//!   --nodes N        group size (default 4)
//!   --chrome PATH    write Chrome trace JSON to PATH
//!   --gm-only        skip the Elan capture
//!   --elan-only      skip the GM capture
//!   --engine E       sequential | parallel | auto (default auto)
//!   --shards K       parallel worker shards (default 1)
//!
//! Each breakdown stamps which engine produced it; everything else is
//! byte-identical across engines and shard counts.

use nicbar_bench::flight::{chrome_trace, print_breakdown};
use nicbar_core::{elan_nic_barrier_flight, gm_nic_barrier_flight, Algorithm, FlightData, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::EngineSel;

fn main() {
    let mut nodes = 4usize;
    let mut chrome: Option<String> = None;
    let mut run_gm = true;
    let mut run_elan = true;
    let mut engine = EngineSel::Auto;
    let mut shards = 1usize;
    let usage = || -> ! {
        eprintln!(
            "usage: flight [--nodes N] [--chrome PATH] [--gm-only|--elan-only] \
             [--engine sequential|parallel|auto] [--shards K]"
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nodes takes a positive integer");
            }
            "--chrome" => {
                chrome = Some(args.next().expect("--chrome takes an output path"));
            }
            "--gm-only" => run_elan = false,
            "--elan-only" => run_gm = false,
            "--engine" => match args.next().as_deref() {
                Some("sequential") => engine = EngineSel::Sequential,
                Some("parallel") => engine = EngineSel::Parallel,
                Some("auto") => engine = EngineSel::Auto,
                _ => usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => shards = v,
                _ => usage(),
            },
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    assert!(nodes >= 2, "a barrier needs at least 2 nodes");

    // A short window: the point is a readable trace, not tight statistics.
    let cfg = RunCfg {
        warmup: 2,
        iters: 8,
        engine,
        shards,
        ..RunCfg::default()
    };

    let mut captures: Vec<FlightData> = Vec::new();
    if run_elan {
        captures.push(elan_nic_barrier_flight(
            ElanParams::elan3(),
            nodes,
            Algorithm::Dissemination,
            cfg.clone(),
        ));
    }
    if run_gm {
        captures.push(gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            nodes,
            Algorithm::Dissemination,
            cfg,
        ));
    }

    for cap in &captures {
        print_breakdown(cap);
        println!();
    }

    if let Some(path) = chrome {
        let json = chrome_trace(&captures);
        std::fs::write(&path, json).expect("write Chrome trace");
        println!("[saved {path}]");
    }
}
