//! Figure 7: barrier implementations over Quadrics/Elan3, 2–8 nodes:
//! NIC-Barrier-DS, NIC-Barrier-PE (chained RDMA), Elan-Barrier
//! (`elan_gsync` tree, hardware broadcast disabled) and Elan-HW-Barrier
//! (`elan_hgsync`).
//!
//! Paper anchors: 5.60 µs NIC barrier at 8 nodes, 2.48× better than the
//! tree barrier; the hardware barrier sits flat near 4.2 µs and loses to
//! the NIC barrier at small node counts.
//!
//! Writes `results/fig7.json` (the figure) and `BENCH_fig7.json` at the
//! repo root (the perf trajectory: median + p99 per node count with the
//! run manifest embedded). `--quick` shrinks the sweep for CI smoke runs;
//! `--flight` adds a phase-breakdown capture.

use nicbar_bench::{
    engineprof, fig_args, parallel_sweep_map, trajectory, Figure, Manifest, Series,
};
use nicbar_core::{
    build_elan_nic_cluster, elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier,
    elan_nic_barrier_flight, Algorithm, BarrierStats, RunCfg,
};
use nicbar_elan::ElanParams;
use nicbar_sim::EngineSel;

/// Elanlib builds its software trees 4-ary (matching the quaternary fat
/// tree's natural branching).
const GSYNC_DEGREE: usize = 4;

fn main() {
    let args = fig_args();
    let (quick, flight, cfg) = (args.quick, args.flight, args.cfg);
    let ns: Vec<usize> = if quick {
        vec![2, 4, 8]
    } else {
        (2..=8).collect()
    };

    let nic = |algo: Algorithm| -> Vec<(usize, BarrierStats)> {
        parallel_sweep_map(&ns, |n| {
            elan_nic_barrier(ElanParams::elan3(), n, algo, cfg.clone())
        })
    };
    let gsync = parallel_sweep_map(&ns, |n| {
        elan_gsync_barrier(ElanParams::elan3(), n, GSYNC_DEGREE, cfg.clone())
    });
    let hw = parallel_sweep_map(&ns, |n| {
        elan_hw_barrier(ElanParams::elan3(), n, cfg.clone())
    });

    let sweeps: Vec<(&str, Vec<(usize, BarrierStats)>)> = vec![
        ("NIC-Barrier-DS", nic(Algorithm::Dissemination)),
        ("NIC-Barrier-PE", nic(Algorithm::PairwiseExchange)),
        ("Elan-Barrier", gsync),
        ("Elan-HW-Barrier", hw),
    ];

    let manifest = Manifest::new(
        cfg.seed,
        format!(
            "elan3, n={}..={}, gsync_degree={}, warmup={}, iters={}, quick={}",
            ns.first().copied().unwrap_or(0),
            ns.last().copied().unwrap_or(0),
            GSYNC_DEGREE,
            cfg.warmup,
            cfg.iters,
            quick
        ),
    );

    let fig = Figure::new(
        "fig7",
        "Fig. 7 — Barrier latency (µs), Quadrics/Elan3, 8-node 700 MHz cluster",
        sweeps
            .iter()
            .map(|(label, pts)| {
                Series::new(
                    *label,
                    pts.iter().map(|&(n, ref s)| (n, s.mean_us)).collect(),
                )
            })
            .collect(),
    )
    .with_manifest(manifest.clone());
    fig.print();
    // Quick (CI) sweeps refresh the BENCH trajectory below but must not
    // downgrade the tracked full-fidelity figure artifact.
    if !quick {
        fig.save().expect("write results/fig7.json");
    }

    let traj: Vec<(&str, Vec<trajectory::TrajectoryPoint>)> = sweeps
        .iter()
        .map(|(label, pts)| {
            (
                *label,
                pts.iter()
                    .map(|&(n, ref s)| trajectory::point(n, s))
                    .collect(),
            )
        })
        .collect();
    trajectory::save("fig7", &traj, &manifest).expect("write BENCH_fig7.json");

    let nic8 = fig.series[0].at(8).expect("NIC point at 8");
    let tree8 = fig.series[2].at(8).expect("tree point at 8");
    let hw8 = fig.series[3].at(8).expect("hw point at 8");
    println!("\npaper anchors: NIC @8 = 5.60 µs (sim {nic8:.2}),");
    println!(
        "               vs tree barrier = 2.48x (sim {:.2}x),",
        tree8 / nic8
    );
    println!("               hardware barrier = 4.20 µs (sim {hw8:.2})");

    // Opt-in flight recording: a short instrumented window at 8 nodes,
    // showing the chained-RDMA barrier's phase-by-phase latency.
    if flight {
        println!();
        let cap = elan_nic_barrier_flight(
            ElanParams::elan3(),
            8,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 2,
                iters: 8,
                ..RunCfg::default()
            },
        );
        nicbar_bench::flight::print_breakdown(&cap);
    }

    // Opt-in engine self-profile of the 8-node chained-RDMA barrier on the
    // parallel engine.
    if args.prof {
        let shards = cfg.shards.max(2);
        let prof_cfg = RunCfg {
            engine: EngineSel::Parallel,
            shards,
            ..cfg
        };
        let mut cluster = build_elan_nic_cluster(
            ElanParams::elan3(),
            8,
            Algorithm::Dissemination,
            &prof_cfg,
            false,
        );
        if let Some((prof, wall_s)) =
            engineprof::profile_run(&mut cluster.engine, prof_cfg.deadline())
        {
            println!();
            print!(
                "{}",
                engineprof::report(&prof, "fig7 NIC-Barrier-DS, 8 nodes", wall_s)
            );
        }
    }
}
