//! Figure 7: barrier implementations over Quadrics/Elan3, 2–8 nodes:
//! NIC-Barrier-DS, NIC-Barrier-PE (chained RDMA), Elan-Barrier
//! (`elan_gsync` tree, hardware broadcast disabled) and Elan-HW-Barrier
//! (`elan_hgsync`).
//!
//! Paper anchors: 5.60 µs NIC barrier at 8 nodes, 2.48× better than the
//! tree barrier; the hardware barrier sits flat near 4.2 µs and loses to
//! the NIC barrier at small node counts.

use nicbar_bench::{figure_cfg, parallel_sweep, Figure, Series};
use nicbar_core::{
    elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier, elan_nic_barrier_flight, Algorithm,
    RunCfg,
};
use nicbar_elan::ElanParams;

/// Elanlib builds its software trees 4-ary (matching the quaternary fat
/// tree's natural branching).
const GSYNC_DEGREE: usize = 4;

fn main() {
    let flight = std::env::args().any(|a| a == "--flight");
    let ns: Vec<usize> = (2..=8).collect();
    let cfg = figure_cfg();

    let nic = |algo: Algorithm| {
        parallel_sweep(&ns, |n| {
            elan_nic_barrier(ElanParams::elan3(), n, algo, cfg).mean_us
        })
    };
    let gsync = parallel_sweep(&ns, |n| {
        elan_gsync_barrier(ElanParams::elan3(), n, GSYNC_DEGREE, cfg).mean_us
    });
    let hw = parallel_sweep(&ns, |n| {
        elan_hw_barrier(ElanParams::elan3(), n, cfg).mean_us
    });

    let fig = Figure::new(
        "fig7",
        "Fig. 7 — Barrier latency (µs), Quadrics/Elan3, 8-node 700 MHz cluster",
        vec![
            Series::new("NIC-Barrier-DS", nic(Algorithm::Dissemination)),
            Series::new("NIC-Barrier-PE", nic(Algorithm::PairwiseExchange)),
            Series::new("Elan-Barrier", gsync),
            Series::new("Elan-HW-Barrier", hw),
        ],
    );
    fig.print();
    fig.save().expect("write results/fig7.json");

    let nic8 = fig.series[0].at(8).unwrap();
    let tree8 = fig.series[2].at(8).unwrap();
    let hw8 = fig.series[3].at(8).unwrap();
    println!("\npaper anchors: NIC @8 = 5.60 µs (sim {nic8:.2}),");
    println!(
        "               vs tree barrier = 2.48x (sim {:.2}x),",
        tree8 / nic8
    );
    println!("               hardware barrier = 4.20 µs (sim {hw8:.2})");

    // Opt-in flight recording: a short instrumented window at 8 nodes,
    // showing the chained-RDMA barrier's phase-by-phase latency.
    if flight {
        println!();
        let cap = elan_nic_barrier_flight(
            ElanParams::elan3(),
            8,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 2,
                iters: 8,
                ..RunCfg::default()
            },
        );
        nicbar_bench::flight::print_breakdown(&cap);
    }
}
