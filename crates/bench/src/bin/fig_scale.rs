//! Beyond the paper: scalability of the NIC-based barrier to 65,536 nodes.
//!
//! Sweeps N ∈ {16 .. 65,536} for NIC-DS and NIC-PE on both substrates
//! (Myrinet LANai-XP, Quadrics Elan3), with per-point engine throughput
//! (events per wall-clock second) and process peak RSS — the evidence that
//! the protocol's steady state is allocation-free and the simulator's
//! memory stays O(N), flat enough to host a 65,536-node cluster.
//!
//! The dissemination sweep is checked against the paper's analytical form
//! `T = A + (⌈log₂N⌉−1)·T_trig` (EXPERIMENTS.md refit): the binary exits
//! nonzero unless each substrate's DS curve fits the staircase at every
//! measured N. Writes `BENCH_scale.json` at the repo root.
//!
//! Flags (see [`nicbar_bench::fig_args`]):
//! * `--quick` sub-samples the grid for CI smoke runs while keeping the
//!   65,536-node gm NIC-DS point.
//! * `--engine <auto|sequential|parallel>` and `--shards <K>` select the
//!   execution engine for the main sweeps.
//!
//! After the sweeps, a dedicated engine-comparison series re-runs the
//! 4096-node gm NIC-DS point sequentially and with the rank-sharded
//! parallel engine at several shard counts, recording wall-clock speedup
//! into the append-only `BENCH_par.json` trajectory. The ≥4.5× speedup
//! expectation at 8 shards (adaptive lookahead + lock-free mailboxes) is
//! asserted only when the host actually has ≥8 hardware threads.

use nicbar_bench::{fig_args, json::Writer, trajectory, Manifest};
use nicbar_core::{
    build_elan_nic_cluster, build_gm_nic_cluster, elan_nic_stats, gm_nic_stats, Algorithm,
    BarrierStats, RunCfg,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_model::fit;
use nicbar_sim::{EngineSel, RunOutcome};
use std::time::Instant;

/// One sweep point's full measurement.
struct ScalePoint {
    n: usize,
    stats: BarrierStats,
    /// Engine events processed during the run (not the build).
    events: u64,
    /// Wall-clock seconds spent draining the engine.
    run_s: f64,
    /// Process peak RSS (VmHWM) after the point, KiB. Monotone across the
    /// sweep — the high-water mark, not a per-point footprint.
    peak_rss_kb: u64,
}

/// `VmHWM` from `/proc/self/status`, KiB (0 where unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Iteration counts per node count: large clusters cost ~N·log₂N events
/// per epoch, so scale the epoch count down to keep the whole sweep around
/// a minute while leaving enough steady-state epochs to time. The engine
/// reaches its periodic steady state after the first epoch (the fabric is
/// deterministic), so even the 65,536-node point needs only a couple of
/// measured iterations for an exact mean.
fn cfg_for(n: usize, quick: bool, base: &RunCfg) -> RunCfg {
    let (warmup, iters) = match n {
        0..=64 => (10, 400),
        65..=256 => (10, 100),
        257..=1024 => (10, 40),
        1025..=4096 => (10, 12),
        4097..=16384 => (2, 4),
        _ => (1, 2),
    };
    let iters = if quick { iters.min(50) } else { iters };
    RunCfg {
        warmup,
        iters,
        engine: base.engine,
        shards: base.shards,
        partition: base.partition.clone(),
        ..RunCfg::default()
    }
}

/// Run one (substrate, algo, n) point and measure it.
fn run_point(substrate: &str, algo: Algorithm, n: usize, cfg: &RunCfg) -> ScalePoint {
    let (events, run_s, stats) = match substrate {
        "gm" => {
            let mut cluster = build_gm_nic_cluster(
                GmParams::lanai_xp(),
                CollFeatures::paper(),
                n,
                algo,
                cfg,
                false,
            );
            let t = Instant::now();
            let outcome = cluster.run_until(cfg.deadline());
            let run_s = t.elapsed().as_secs_f64();
            assert_eq!(outcome, RunOutcome::Idle, "gm n={n} did not drain");
            (
                cluster.engine.events_processed(),
                run_s,
                gm_nic_stats(&cluster, n, cfg),
            )
        }
        _ => {
            let mut cluster = build_elan_nic_cluster(ElanParams::elan3(), n, algo, cfg, false);
            let t = Instant::now();
            let outcome = cluster.run_until(cfg.deadline());
            let run_s = t.elapsed().as_secs_f64();
            assert_eq!(outcome, RunOutcome::Idle, "elan n={n} did not drain");
            (
                cluster.engine.events_processed(),
                run_s,
                elan_nic_stats(&cluster, n, cfg),
            )
        }
    };
    ScalePoint {
        n,
        stats,
        events,
        run_s,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn sweep(
    substrate: &str,
    algo: Algorithm,
    ns: &[usize],
    quick: bool,
    base: &RunCfg,
) -> Vec<ScalePoint> {
    ns.iter()
        .map(|&n| run_point(substrate, algo, n, &cfg_for(n, quick, base)))
        .collect()
}

/// Assert the dissemination curve is the model's ⌈log₂N⌉ staircase: a
/// least-squares fit of `T = A + (⌈log₂N⌉−1)·T_trig` must explain the
/// sweep (R² ≥ 0.97) with every measured point within 15% of the line.
fn check_staircase(label: &str, points: &[ScalePoint]) {
    let sweep: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.stats.mean_us)).collect();
    let (model, quality) = fit(&sweep);
    println!(
        "{label}: T = {:.2} + (ceil(log2 N)-1) * {:.2}   (RMSE {:.2} µs, R² {:.4})",
        model.t_init, model.t_trig, quality.rmse_us, quality.r_squared
    );
    assert!(
        quality.r_squared >= 0.97,
        "{label}: DS sweep is not a log2 staircase (R² {:.4})",
        quality.r_squared
    );
    for &(n, measured) in &sweep {
        let predicted = model.predict(n);
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel <= 0.15,
            "{label}: n={n} off the staircase: measured {measured:.2} µs vs model {predicted:.2} µs ({:.1}%)",
            rel * 100.0
        );
    }
}

fn print_table(label: &str, points: &[ScalePoint]) {
    println!("\n== {label} ==");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>9} {:>12}",
        "nodes", "mean µs", "events", "Mev/s", "wall s", "peak RSS MB"
    );
    for p in points {
        println!(
            "{:>6} {:>10.2} {:>12} {:>10.2} {:>9.2} {:>12.1}",
            p.n,
            p.stats.mean_us,
            p.events,
            p.events as f64 / p.run_s / 1e6,
            p.run_s,
            p.peak_rss_kb as f64 / 1024.0
        );
    }
}

/// One row of the engine-comparison series: the 4096-node gm NIC-DS point
/// under a given engine configuration.
struct EnginePoint {
    engine: &'static str,
    shards: usize,
    wall_s: f64,
    mean_us: f64,
    events: u64,
}

/// Re-run the 4096-node gm NIC-DS point sequentially and rank-sharded, so
/// BENCH_scale.json carries a wall-clock speedup series for the parallel
/// engine. Latency means must be byte-identical across engines (the
/// conservative windows never reorder cross-shard delivery) — which also
/// makes this the parity smoke for `--partition profile=<path>`: the
/// profile-guided map is threaded through `base` into every parallel run
/// here and must not change a single latency sample.
fn engine_series(quick: bool, base: &RunCfg) -> Vec<EnginePoint> {
    const N: usize = 4096;
    let shard_counts: &[usize] = if quick { &[8] } else { &[2, 4, 8] };
    let mut cfg = cfg_for(N, quick, base);
    cfg.engine = EngineSel::Sequential;
    let seq = run_point("gm", Algorithm::Dissemination, N, &cfg);
    let mut out = vec![EnginePoint {
        engine: "sequential",
        shards: 1,
        wall_s: seq.run_s,
        mean_us: seq.stats.mean_us,
        events: seq.events,
    }];
    for &shards in shard_counts {
        cfg.engine = EngineSel::Parallel;
        cfg.shards = shards;
        let par = run_point("gm", Algorithm::Dissemination, N, &cfg);
        assert_eq!(
            par.stats.mean_us, seq.stats.mean_us,
            "parallel engine changed the simulated barrier latency at {shards} shards"
        );
        out.push(EnginePoint {
            engine: "parallel",
            shards,
            wall_s: par.run_s,
            mean_us: par.stats.mean_us,
            events: par.events,
        });
    }

    println!("\n== engine comparison (gm NIC-DS, n=4096) ==");
    println!(
        "{:>12} {:>7} {:>9} {:>10} {:>9}",
        "engine", "shards", "wall s", "mean µs", "speedup"
    );
    for p in &out {
        println!(
            "{:>12} {:>7} {:>9.2} {:>10.2} {:>8.2}x",
            p.engine,
            p.shards,
            p.wall_s,
            p.mean_us,
            seq.run_s / p.wall_s
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if let Some(p8) = out.iter().find(|p| p.engine == "parallel" && p.shards == 8) {
        let speedup = seq.run_s / p8.wall_s;
        if cores >= 8 {
            // Raised from 3.0× when per-destination adaptive lookahead and
            // the lock-free SPSC mailboxes landed.
            assert!(
                speedup >= 4.5,
                "8-shard parallel engine only {speedup:.2}x over sequential on {cores} cores"
            );
        } else {
            println!("(speedup gate skipped: host has {cores} hardware threads, needs >= 8)");
        }
    }
    out
}

fn main() {
    let args = fig_args();
    // Full grid per (substrate, algo); `--quick` sub-samples but keeps the
    // 65,536-node gm NIC-DS headline point. The PE sweeps stop at 4096:
    // pairwise-exchange is the paper's counterexample algorithm and its
    // large-N behaviour is already visible there.
    let ds_full: Vec<usize> = vec![16, 64, 256, 1024, 4096, 16384, 65536];
    let pe_full: Vec<usize> = vec![16, 64, 256, 1024, 4096];
    let (gm_ds, elan_ds, pe): (Vec<usize>, Vec<usize>, Vec<usize>) = if args.quick {
        (
            vec![16, 256, 4096, 65536],
            vec![16, 256, 1024],
            vec![16, 256],
        )
    } else {
        (ds_full.clone(), ds_full, pe_full)
    };

    let t_all = Instant::now();
    let base = args.cfg;
    let sweeps: Vec<(&str, Vec<ScalePoint>)> = vec![
        (
            "gm NIC-DS",
            sweep("gm", Algorithm::Dissemination, &gm_ds, args.quick, &base),
        ),
        (
            "gm NIC-PE",
            sweep("gm", Algorithm::PairwiseExchange, &pe, args.quick, &base),
        ),
        (
            "elan NIC-DS",
            sweep(
                "elan",
                Algorithm::Dissemination,
                &elan_ds,
                args.quick,
                &base,
            ),
        ),
        (
            "elan NIC-PE",
            sweep("elan", Algorithm::PairwiseExchange, &pe, args.quick, &base),
        ),
    ];

    for (label, points) in &sweeps {
        print_table(label, points);
    }
    println!(
        "\ntotal sweep wall clock: {:.1} s",
        t_all.elapsed().as_secs_f64()
    );

    println!();
    check_staircase("gm NIC-DS", &sweeps[0].1);
    check_staircase("elan NIC-DS", &sweeps[2].1);
    println!("staircase check: both DS curves fit the ceil(log2 N) model ✓");

    let engines = engine_series(args.quick, &base);

    // Opt-in engine self-profile: the engine-comparison point with the
    // shard profiler armed — the run `engine_prof` studies, inline.
    if args.prof {
        let n = if args.quick { 256 } else { 4096 };
        let shards = base.shards.max(2);
        let prof_cfg = RunCfg {
            engine: EngineSel::Parallel,
            shards,
            ..cfg_for(n, args.quick, &base)
        };
        let mut cluster = build_gm_nic_cluster(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            &prof_cfg,
            false,
        );
        if let Some((prof, wall_s)) =
            nicbar_bench::engineprof::profile_run(&mut cluster.engine, prof_cfg.deadline())
        {
            println!();
            print!(
                "{}",
                nicbar_bench::engineprof::report(&prof, &format!("gm NIC-DS, {n} nodes"), wall_s)
            );
        }
    }

    let (sel, shards) = base.engine.resolve(base.shards);
    let manifest = Manifest::new(
        RunCfg::default().seed,
        format!(
            "gm lanai-xp + elan3, DS to n={}, PE to n={}, iters scaled by n, quick={}, engine={}, shards={}",
            sweeps[0].1.last().map_or(0, |p| p.n),
            sweeps[1].1.last().map_or(0, |p| p.n),
            args.quick,
            if sel { "parallel" } else { "sequential" },
            shards,
        ),
    );

    // BENCH_scale.json: the trajectory schema (median/p99 per point) plus a
    // throughput section with events/sec and peak RSS per point, and an
    // `engine_series` section with the sequential-vs-sharded wall clocks.
    // The body below is one run; `trajectory::append_run` adds it to the
    // tracked history instead of truncating it.
    let mut w = Writer::new();
    w.open_object();
    manifest.emit(&mut w);
    w.field("series");
    w.open_array();
    for (label, points) in &sweeps {
        w.open_object();
        w.field("label");
        w.string(label);
        w.field("points");
        w.open_array();
        for p in points {
            let tp = trajectory::point(p.n, &p.stats);
            w.open_object();
            w.field("n");
            w.uint(p.n as u64);
            w.field("mean_us");
            w.number(tp.mean_us);
            w.field("median_us");
            w.number(tp.median_us);
            w.field("p99_us");
            w.number(tp.p99_us);
            w.field("iters");
            w.uint(tp.iters as u64);
            w.field("events");
            w.uint(p.events);
            w.field("events_per_sec");
            w.number(p.events as f64 / p.run_s);
            w.field("wall_s");
            w.number(p.run_s);
            w.field("peak_rss_kb");
            w.uint(p.peak_rss_kb);
            w.close_object();
        }
        w.close_array();
        w.close_object();
    }
    w.close_array();
    w.field("engine_series");
    w.open_object();
    w.field("label");
    w.string("gm NIC-DS n=4096, sequential vs rank-sharded parallel");
    w.field("host_threads");
    w.uint(std::thread::available_parallelism().map_or(1, usize::from) as u64);
    w.field("points");
    w.open_array();
    let seq_wall = engines[0].wall_s;
    for p in &engines {
        w.open_object();
        w.field("engine");
        w.string(p.engine);
        w.field("shards");
        w.uint(p.shards as u64);
        w.field("wall_s");
        w.number(p.wall_s);
        w.field("mean_us");
        w.number(p.mean_us);
        w.field("events");
        w.uint(p.events);
        w.field("speedup");
        w.number(seq_wall / p.wall_s);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    w.close_object();
    trajectory::append_run("scale", &w.finish()).expect("write BENCH_scale.json");
    println!("[saved BENCH_scale.json]");

    // BENCH_par.json: the dedicated parallel-engine speedup trajectory —
    // one manifest-stamped run per invocation, append-only, so "when did
    // the 8-shard speedup move?" is answerable from the artifact alone.
    let mut w = Writer::new();
    w.open_object();
    manifest.emit(&mut w);
    w.field("label");
    w.string("gm NIC-DS n=4096, wall-clock speedup vs sequential");
    w.field("host_threads");
    w.uint(std::thread::available_parallelism().map_or(1, usize::from) as u64);
    w.field("points");
    w.open_array();
    for p in &engines {
        w.open_object();
        w.field("engine");
        w.string(p.engine);
        w.field("shards");
        w.uint(p.shards as u64);
        w.field("wall_s");
        w.number(p.wall_s);
        w.field("speedup");
        w.number(seq_wall / p.wall_s);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    trajectory::append_run("par", &w.finish()).expect("write BENCH_par.json");
    println!("[saved BENCH_par.json]");
}
