//! Beyond the paper: scalability of the NIC-based barrier to 4096 nodes.
//!
//! Sweeps N ∈ {16, 64, 256, 1024, 4096} for NIC-DS and NIC-PE on both
//! substrates (Myrinet LANai-XP, Quadrics Elan3), with per-point engine
//! throughput (events per wall-clock second) and process peak RSS — the
//! evidence that the protocol's steady state is allocation-free and the
//! simulator's memory stays flat enough to host a 4096-node cluster.
//!
//! The dissemination sweep is checked against the paper's analytical form
//! `T = A + (⌈log₂N⌉−1)·T_trig` (EXPERIMENTS.md refit): the binary exits
//! nonzero unless each substrate's DS curve fits the staircase at every
//! measured N. Writes `BENCH_scale.json` at the repo root. `--quick` caps
//! the sweep at 256 nodes for CI smoke runs.

use nicbar_bench::{fig_args, json::Writer, trajectory, Manifest};
use nicbar_core::{
    build_elan_nic_cluster, build_gm_nic_cluster, elan_nic_stats, gm_nic_stats, Algorithm,
    BarrierStats, RunCfg,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_model::fit;
use nicbar_sim::RunOutcome;
use std::time::Instant;

/// One sweep point's full measurement.
struct ScalePoint {
    n: usize,
    stats: BarrierStats,
    /// Engine events processed during the run (not the build).
    events: u64,
    /// Wall-clock seconds spent draining the engine.
    run_s: f64,
    /// Process peak RSS (VmHWM) after the point, KiB. Monotone across the
    /// sweep — the high-water mark, not a per-point footprint.
    peak_rss_kb: u64,
}

/// `VmHWM` from `/proc/self/status`, KiB (0 where unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Iteration counts per node count: large clusters cost ~N·log₂N events
/// per epoch, so scale the epoch count down to keep the whole sweep under
/// a minute while leaving enough steady-state epochs to time.
fn cfg_for(n: usize, quick: bool) -> RunCfg {
    let iters = match n {
        0..=64 => 400,
        65..=256 => 100,
        257..=1024 => 40,
        _ => 12,
    };
    let iters = if quick { iters.min(50) } else { iters };
    RunCfg {
        warmup: 10,
        iters,
        ..RunCfg::default()
    }
}

fn sweep(substrate: &str, algo: Algorithm, ns: &[usize], quick: bool) -> Vec<ScalePoint> {
    ns.iter()
        .map(|&n| {
            let cfg = cfg_for(n, quick);
            let (events, run_s, stats) = match substrate {
                "gm" => {
                    let mut cluster = build_gm_nic_cluster(
                        GmParams::lanai_xp(),
                        CollFeatures::paper(),
                        n,
                        algo,
                        &cfg,
                        false,
                    );
                    let t = Instant::now();
                    let outcome = cluster.run_until(cfg.deadline());
                    let run_s = t.elapsed().as_secs_f64();
                    assert_eq!(outcome, RunOutcome::Idle, "gm n={n} did not drain");
                    (
                        cluster.engine.events_processed(),
                        run_s,
                        gm_nic_stats(&cluster, n, &cfg),
                    )
                }
                _ => {
                    let mut cluster =
                        build_elan_nic_cluster(ElanParams::elan3(), n, algo, &cfg, false);
                    let t = Instant::now();
                    let outcome = cluster.run_until(cfg.deadline());
                    let run_s = t.elapsed().as_secs_f64();
                    assert_eq!(outcome, RunOutcome::Idle, "elan n={n} did not drain");
                    (
                        cluster.engine.events_processed(),
                        run_s,
                        elan_nic_stats(&cluster, n, &cfg),
                    )
                }
            };
            ScalePoint {
                n,
                stats,
                events,
                run_s,
                peak_rss_kb: peak_rss_kb(),
            }
        })
        .collect()
}

/// Assert the dissemination curve is the model's ⌈log₂N⌉ staircase: a
/// least-squares fit of `T = A + (⌈log₂N⌉−1)·T_trig` must explain the
/// sweep (R² ≥ 0.97) with every measured point within 15% of the line.
fn check_staircase(label: &str, points: &[ScalePoint]) {
    let sweep: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.stats.mean_us)).collect();
    let (model, quality) = fit(&sweep);
    println!(
        "{label}: T = {:.2} + (ceil(log2 N)-1) * {:.2}   (RMSE {:.2} µs, R² {:.4})",
        model.t_init, model.t_trig, quality.rmse_us, quality.r_squared
    );
    assert!(
        quality.r_squared >= 0.97,
        "{label}: DS sweep is not a log2 staircase (R² {:.4})",
        quality.r_squared
    );
    for &(n, measured) in &sweep {
        let predicted = model.predict(n);
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel <= 0.15,
            "{label}: n={n} off the staircase: measured {measured:.2} µs vs model {predicted:.2} µs ({:.1}%)",
            rel * 100.0
        );
    }
}

fn print_table(label: &str, points: &[ScalePoint]) {
    println!("\n== {label} ==");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>9} {:>12}",
        "nodes", "mean µs", "events", "Mev/s", "wall s", "peak RSS MB"
    );
    for p in points {
        println!(
            "{:>6} {:>10.2} {:>12} {:>10.2} {:>9.2} {:>12.1}",
            p.n,
            p.stats.mean_us,
            p.events,
            p.events as f64 / p.run_s / 1e6,
            p.run_s,
            p.peak_rss_kb as f64 / 1024.0
        );
    }
}

fn main() {
    let args = fig_args();
    let ns: Vec<usize> = if args.quick {
        vec![16, 64, 256]
    } else {
        vec![16, 64, 256, 1024, 4096]
    };

    let t_all = Instant::now();
    let sweeps: Vec<(&str, Vec<ScalePoint>)> = vec![
        (
            "gm NIC-DS",
            sweep("gm", Algorithm::Dissemination, &ns, args.quick),
        ),
        (
            "gm NIC-PE",
            sweep("gm", Algorithm::PairwiseExchange, &ns, args.quick),
        ),
        (
            "elan NIC-DS",
            sweep("elan", Algorithm::Dissemination, &ns, args.quick),
        ),
        (
            "elan NIC-PE",
            sweep("elan", Algorithm::PairwiseExchange, &ns, args.quick),
        ),
    ];

    for (label, points) in &sweeps {
        print_table(label, points);
    }
    println!(
        "\ntotal sweep wall clock: {:.1} s",
        t_all.elapsed().as_secs_f64()
    );

    println!();
    check_staircase("gm NIC-DS", &sweeps[0].1);
    check_staircase("elan NIC-DS", &sweeps[2].1);
    println!("staircase check: both DS curves fit the ceil(log2 N) model ✓");

    let manifest = Manifest::new(
        RunCfg::default().seed,
        format!(
            "gm lanai-xp + elan3, DS + PE, n={:?}, warmup=10, iters scaled by n, quick={}",
            ns, args.quick
        ),
    );

    // BENCH_scale.json: the trajectory schema (median/p99 per point) plus a
    // throughput section with events/sec and peak RSS per point.
    let mut w = Writer::new();
    w.open_object();
    w.field("bench");
    w.string("scale");
    manifest.emit(&mut w);
    w.field("series");
    w.open_array();
    for (label, points) in &sweeps {
        w.open_object();
        w.field("label");
        w.string(label);
        w.field("points");
        w.open_array();
        for p in points {
            let tp = trajectory::point(p.n, &p.stats);
            w.open_object();
            w.field("n");
            w.uint(p.n as u64);
            w.field("mean_us");
            w.number(tp.mean_us);
            w.field("median_us");
            w.number(tp.median_us);
            w.field("p99_us");
            w.number(tp.p99_us);
            w.field("iters");
            w.uint(tp.iters as u64);
            w.field("events");
            w.uint(p.events);
            w.field("events_per_sec");
            w.number(p.events as f64 / p.run_s);
            w.field("wall_s");
            w.number(p.run_s);
            w.field("peak_rss_kb");
            w.uint(p.peak_rss_kb);
            w.close_object();
        }
        w.close_array();
        w.close_object();
    }
    w.close_array();
    w.close_object();
    std::fs::write("BENCH_scale.json", w.finish()).expect("write BENCH_scale.json");
    println!("[saved BENCH_scale.json]");
}
