//! `why-slow` — explain where every nanosecond of a barrier goes.
//!
//! Runs a short instrumented window of the paper's NIC barrier with the
//! causal netdump on, extracts each barrier's critical path from the
//! packet DAG, and prints it edge by edge: host→NIC handoff, NIC compute,
//! wire time, port queuing, NACK/retransmission detours, plus the
//! per-rank completion slack and the aggregate attribution table.
//!
//! Options:
//!   --nodes N          group size (default 8)
//!   --substrate S      gm | elan (default gm)
//!   --drop P           GM fabric drop probability (default 0.0)
//!   --seed S           master seed (default 42)
//!   --iters N          recorded barriers (default 4)
//!   --jsonl PATH       also dump every packet record as JSONL to PATH
//!                      (the first line is a dump-level header carrying
//!                      the dropped-record count, so consumers can detect
//!                      truncated dumps)
//!   --engine E         sequential | parallel | auto (default auto)
//!   --shards K         parallel worker shards (default 1)
//!   --check            gate mode: exit nonzero unless every barrier has a
//!                      non-empty critical path with >= 95% wall-time
//!                      coverage and the dump dropped zero records
//!   --replay PATH      skip the simulation: re-ingest a JSONL netdump
//!                      (ours, or a `nicbar-verify --trace-out`
//!                      counterexample) and run the analysis on it
//!
//! The header stamps which engine produced the run; everything below it is
//! byte-identical across engines and shard counts.

use nicbar_bench::{critpath, flight, netdump};
use nicbar_core::{elan_nic_barrier_flight, gm_nic_barrier_flight, Algorithm, FlightData, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::EngineSel;

fn usage() -> ! {
    eprintln!(
        "usage: why-slow [--nodes N] [--substrate gm|elan] [--drop P] \
         [--seed S] [--iters N] [--jsonl PATH] \
         [--engine sequential|parallel|auto] [--shards K] [--check] \
         [--replay PATH]"
    );
    std::process::exit(2);
}

/// Re-ingest an exported JSONL netdump and run the causal analysis on it.
/// Counterexample traces from `nicbar-verify` usually end *at* the violating
/// transition — before any barrier completes — so when no span closes, the
/// replay prints the causal chain to the last event instead of a critical
/// path.
fn replay(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read {path}: {e}");
            return 1;
        }
    };
    let mut records = Vec::new();
    let mut header: Option<(u64, u64)> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // Our own exports lead with a dump-level header line; traces from
        // `nicbar-verify --trace-out` are headerless.
        if lineno == 0 {
            if let Some(h) = netdump::parse_header(line) {
                header = Some(h);
                continue;
            }
        }
        match netdump::parse_line(line) {
            Some(r) => records.push(r),
            None => {
                eprintln!("error: {path}:{}: unparseable record: {line}", lineno + 1);
                return 1;
            }
        }
    }
    println!(
        "== why-slow --replay: {} records from {path} ==",
        records.len()
    );
    if let Some((expected, dropped)) = header {
        if dropped > 0 {
            eprintln!(
                "warning: this dump is TRUNCATED — the capture dropped {dropped} records; \
                 critical paths may hit holes"
            );
        }
        if expected != records.len() as u64 {
            eprintln!(
                "error: header promises {expected} records but the file has {}",
                records.len()
            );
            return 1;
        }
    }
    if records.is_empty() {
        eprintln!("error: trace is empty");
        return 1;
    }

    let mut kind_counts: Vec<(&'static str, usize)> = Vec::new();
    let mut detours = 0usize;
    for r in &records {
        match kind_counts.iter_mut().find(|(n, _)| *n == r.kind.name()) {
            Some((_, c)) => *c += 1,
            None => kind_counts.push((r.kind.name(), 1)),
        }
        detours += usize::from(r.kind.is_detour());
    }
    let counts: Vec<String> = kind_counts
        .iter()
        .map(|(n, c)| format!("{n} x{c}"))
        .collect();
    println!("events: {}", counts.join(", "));
    println!("detour events (nack/retransmit/drop): {detours}");

    let paths = critpath::analyze(&records);
    if paths.is_empty() {
        println!(
            "no completed barrier span in this trace (it ends at the violating \
             transition); causal chain to the final event:"
        );
        let last = records.last().expect("nonempty").id;
        for r in nicbar_sim::chain_to(&records, last) {
            println!(
                "  t={:>6}ns  node {:>2}  {}",
                r.time.as_ns(),
                if r.src == nicbar_sim::NO_NODE {
                    "-".to_string()
                } else {
                    r.src.to_string()
                },
                r.kind.name()
            );
        }
    } else {
        print!("{}", critpath::render(&paths));
    }
    0
}

fn main() {
    let mut nodes = 8usize;
    let mut substrate = "gm".to_string();
    let mut drop_prob = 0.0f64;
    let mut seed = 42u64;
    let mut iters = 4u64;
    let mut jsonl_path: Option<String> = None;
    let mut engine = EngineSel::Auto;
    let mut shards = 1usize;
    let mut check = false;
    let mut replay_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => nodes = v,
                None => usage(),
            },
            "--substrate" => match args.next() {
                Some(v) if v == "gm" || v == "elan" => substrate = v,
                _ => usage(),
            },
            "--drop" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => drop_prob = v,
                None => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => usage(),
            },
            "--jsonl" => match args.next() {
                Some(v) => jsonl_path = Some(v),
                None => usage(),
            },
            "--engine" => match args.next().as_deref() {
                Some("sequential") => engine = EngineSel::Sequential,
                Some("parallel") => engine = EngineSel::Parallel,
                Some("auto") => engine = EngineSel::Auto,
                _ => usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => shards = v,
                _ => usage(),
            },
            "--check" => check = true,
            "--replay" => match args.next() {
                Some(v) => replay_path = Some(v),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if let Some(path) = replay_path {
        std::process::exit(replay(&path));
    }
    assert!(nodes >= 2, "a barrier needs at least 2 nodes");

    let cfg = RunCfg {
        warmup: 2,
        iters,
        seed,
        drop_prob,
        engine,
        shards,
        ..RunCfg::default()
    };
    let cap: FlightData = match substrate.as_str() {
        "gm" => gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            nodes,
            Algorithm::Dissemination,
            cfg,
        ),
        _ => elan_nic_barrier_flight(ElanParams::elan3(), nodes, Algorithm::Dissemination, cfg),
    };

    println!(
        "== why-slow: {} barrier, {} nodes, seed {}, drop {} ==",
        cap.substrate, nodes, seed, drop_prob
    );
    println!("engine: {}", flight::engine_stamp(&cap));
    println!(
        "netdump: {} records, {} dropped",
        cap.packets.len(),
        cap.packets_dropped
    );

    let paths = critpath::analyze(&cap.packets);
    print!("{}", critpath::render(&paths));

    if let Some(path) = jsonl_path {
        let text = netdump::jsonl_with_header(&cap.packets, cap.packets_dropped);
        match std::fs::write(&path, text) {
            Ok(()) => println!(
                "wrote {} packet records to {path} (header: {} dropped)",
                cap.packets.len(),
                cap.packets_dropped
            ),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if check {
        let mut failed = false;
        if paths.is_empty() {
            eprintln!("check FAILED: no completed barrier spans in the dump");
            failed = true;
        }
        if cap.packets_dropped > 0 {
            eprintln!(
                "check FAILED: netdump dropped {} records",
                cap.packets_dropped
            );
            failed = true;
        }
        for p in &paths {
            if p.edges.is_empty() {
                eprintln!(
                    "check FAILED: barrier (group {:#x}, seq {}) has an empty critical path",
                    p.group, p.seq
                );
                failed = true;
            }
            if p.coverage_pct() < 95.0 {
                eprintln!(
                    "check FAILED: barrier (group {:#x}, seq {}) coverage {:.1}% < 95%",
                    p.group,
                    p.seq,
                    p.coverage_pct()
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check OK: {} barriers, all critical paths non-empty with >= 95% coverage, \
             0 dropped records",
            paths.len()
        );
    }
}
