//! Latency breakdown: dissect single barrier operations event by event.
//!
//! Runs a short warm-up, then prints the per-iteration latency decomposition
//! of the steady-state barrier on each implementation — where the
//! microseconds actually go (host entry, NIC processing, wire, completion
//! delivery). Uses the engine's counters and the known per-operation costs
//! of the parameter sets.

use nicbar_core::ceil_log2;
use nicbar_core::{
    elan_gsync_barrier, elan_hw_barrier, elan_nic_barrier, gm_host_barrier, gm_nic_barrier,
    Algorithm, RunCfg,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let n = 8;
    let cfg = RunCfg {
        warmup: 50,
        iters: 500,
        ..RunCfg::default()
    };
    let rounds = ceil_log2(n) as u64;

    println!("== Latency breakdown, {n}-node dissemination barrier ==\n");

    // --- Myrinet NIC-based -------------------------------------------------
    let p = GmParams::lanai_xp();
    let s = gm_nic_barrier(
        p.clone(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        cfg.clone(),
    );
    println!("Myrinet LANai-XP, NIC-based: {:.2} µs total", s.mean_us);
    let host_side = (p.host_coll_call + p.pio_write + p.host_event_dma + p.host_recv_poll).as_us();
    let nic_work = (p.nic_coll_send + p.nic_coll_recv).as_us() * rounds as f64;
    let wire = p.link.latency(1, 20).as_us() * rounds as f64;
    println!("  host entry + completion delivery  {host_side:>6.2} µs");
    println!("  NIC collective processing (≈{rounds}×)  {nic_work:>6.2} µs");
    println!("  wire (≈{rounds} hops)                   {wire:>6.2} µs");
    println!(
        "  pipeline overlap / residual       {:>6.2} µs\n",
        s.mean_us - host_side - nic_work - wire
    );

    // --- Myrinet host-based -------------------------------------------------
    let s = gm_host_barrier(p.clone(), n, Algorithm::Dissemination, cfg.clone());
    println!("Myrinet LANai-XP, host-based: {:.2} µs total", s.mean_us);
    let per_round = (p.host_recv_poll
        + p.host_send_overhead
        + p.pio_write
        + p.nic_token_create
        + p.nic_sched_pass
        + p.nic_packet_claim
        + p.dma_time(20)
        + p.nic_inject
        + p.nic_record_create
        + p.nic_seq_check
        + p.nic_recv_match
        + p.dma_time(20)
        + p.host_event_dma)
        .as_us();
    println!(
        "  full p2p round trip per round     {per_round:>6.2} µs × {rounds} rounds = {:.2} µs",
        per_round * rounds as f64
    );
    println!(
        "  ACK load + serialization residual {:>6.2} µs\n",
        s.mean_us - per_round * rounds as f64
    );

    // --- Quadrics ------------------------------------------------------------
    let q = ElanParams::elan3();
    let s = elan_nic_barrier(q.clone(), n, Algorithm::Dissemination, cfg.clone());
    println!("Quadrics Elan3, chained RDMA: {:.2} µs total", s.mean_us);
    let entry = (q.host_doorbell + q.nic_event_proc).as_us();
    let link = (q.nic_desc_proc + q.nic_event_proc).as_us() * rounds as f64
        + q.link.latency(2, 32).as_us() * rounds as f64;
    let done = (q.host_event_visible + q.host_poll).as_us();
    println!("  host entry (set_event doorbell)   {entry:>6.2} µs");
    println!("  chain links (desc+event+wire ×{rounds}) {link:>6.2} µs");
    println!("  completion visibility + poll      {done:>6.2} µs");
    println!(
        "  pipeline overlap / residual       {:>6.2} µs\n",
        s.mean_us - entry - link - done
    );

    // --- Comparators -----------------------------------------------------------
    let tree = elan_gsync_barrier(q.clone(), n, 4, cfg.clone());
    let hw = elan_hw_barrier(q, n, cfg);
    println!(
        "Quadrics comparators: gsync tree {:.2} µs, hardware barrier {:.2} µs",
        tree.mean_us, hw.mean_us
    );
    println!("\n(The residual lines quantify how much of the naive serial sum the");
    println!(" pipeline hides — negative residual = overlap between stages.)");
}
