//! Ablation: which of the four collective-protocol features buys how much?
//!
//! The paper argues (§3) that the win comes from doing queuing,
//! packetization, bookkeeping and error control *collectively*. This
//! harness toggles each feature off independently (and all off = the
//! earlier "direct" scheme of Buntinas et al.) on the LANai-XP cluster and
//! reports the 8-node dissemination barrier latency and wire packets per
//! barrier.

use nicbar_bench::figure_cfg;
use nicbar_core::{gm_nic_barrier, Algorithm};
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let cfg = figure_cfg();
    let n = 8;
    let run = |label: &str, f: CollFeatures| {
        let s = gm_nic_barrier(
            GmParams::lanai_xp(),
            f,
            n,
            Algorithm::Dissemination,
            cfg.clone(),
        );
        println!(
            "{label:<34} {:>9.2}us {:>10.1} pkts/barrier",
            s.mean_us, s.wire_per_barrier
        );
        s.mean_us
    };

    println!("== Ablation — NIC-based barrier, LANai-XP cluster, 8 nodes, DS ==\n");
    let full = run("paper protocol (all features)", CollFeatures::paper());
    run(
        "- group queue (shared dest queues)",
        CollFeatures {
            group_queue: false,
            ..CollFeatures::paper()
        },
    );
    run(
        "- static packet (claim + fill)",
        CollFeatures {
            static_packet: false,
            ..CollFeatures::paper()
        },
    );
    run(
        "- bit vector (per-pkt records)",
        CollFeatures {
            bitvec_bookkeeping: false,
            ..CollFeatures::paper()
        },
    );
    run(
        "- recv-driven retx (ACK per pkt)",
        CollFeatures {
            recv_driven_retx: false,
            ..CollFeatures::paper()
        },
    );
    let direct = run("direct scheme (all features off)", CollFeatures::direct());
    println!(
        "\nseparate-protocol gain over the direct scheme: {:.2}x",
        direct / full
    );
    println!("(the paper reports 1.86x host-improvement for the direct scheme vs");
    println!(" 3.38x for the proposed scheme on the LANai-9.1 cluster — i.e. the");
    println!(" separate collective protocol roughly doubles the benefit)");
}
