//! Topology sensitivity of the 1024-node projection (supporting analysis
//! for the Fig. 8 deviation): the paper's closed-form model assumes a
//! constant per-round cost, but a real Clos deepens with scale — more
//! switch hops per message. This harness sweeps the crossbar radix to show
//! how much of the Myrinet large-N latency is network depth.

use nicbar_core::host_app::NicBarrierApp;
use nicbar_core::{Algorithm, GroupSpec, PaperCollective, RunCfg, BARRIER_GROUP};
use nicbar_gm::{GmApp, GmCluster, GmClusterSpec, GmParams, NicCollective};
use nicbar_net::{NodeId, Topology, WireModel, WormholeClos};
use nicbar_sim::{RunOutcome, SimTime};
use std::sync::Arc;

/// Like `gm_nic_barrier` but with an explicit crossbar radix.
fn barrier_with_radix(n: usize, radix: usize, cfg: RunCfg) -> (f64, u32) {
    let params = GmParams::lanai_xp();
    let timeout = params.coll_timeout;
    let link = params.link;
    let hotspot = params.hotspot_ns;
    let spec = GmClusterSpec::new(params, n).with_seed(cfg.seed);
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut apps: Vec<Box<dyn GmApp>> = Vec::new();
    let mut colls: Vec<Box<dyn NicCollective>> = Vec::new();
    for rank in 0..n {
        apps.push(Box::new(NicBarrierApp::new(
            BARRIER_GROUP,
            cfg.total(),
            0.0,
        )));
        colls.push(Box::new(PaperCollective::new(
            NodeId(rank),
            vec![GroupSpec::barrier(
                BARRIER_GROUP,
                members.clone(),
                rank,
                Algorithm::Dissemination,
                timeout,
            )],
        )));
    }
    let mut cluster = GmCluster::build(spec, apps, colls);
    // Swap every NIC onto a wire model with the requested radix.
    let topo = WormholeClos::new(n, radix);
    let diameter = topo.diameter();
    cluster.set_wire_model(Arc::new(WireModel::new(Box::new(topo), link, hotspot)));
    let outcome = cluster.engine.run_bounded(
        SimTime::from_us(cfg.total() as f64 * 10_000.0 + 1_000_000.0),
        2_000_000_000,
    );
    assert_eq!(outcome, RunOutcome::Idle);
    let logs: Vec<&[SimTime]> = (0..n)
        .map(|node| {
            cluster
                .app_ref::<NicBarrierApp>(node)
                .log
                .completions
                .as_slice()
        })
        .collect();
    let total = cfg.total() as usize;
    let w = cfg.warmup as usize;
    let last = logs.iter().map(|l| l[total - 1]).max().unwrap();
    let first = logs.iter().map(|l| l[w - 1]).max().unwrap();
    ((last - first).as_us() / cfg.iters as f64, diameter)
}

fn main() {
    let cfg = RunCfg {
        warmup: 10,
        iters: 100,
        ..RunCfg::default()
    };
    println!("1024-node NIC-DS barrier vs crossbar radix (Myrinet LANai-XP timing)\n");
    println!(
        "{:>7} {:>10} {:>12}   (paper model: 38.94 µs, radix-independent)",
        "radix", "diameter", "latency(µs)"
    );
    for radix in [8usize, 16, 32, 64] {
        let (latency, diameter) = barrier_with_radix(1024, radix, cfg.clone());
        println!("{radix:>7} {diameter:>10} {latency:>12.2}");
    }
    println!("\nShallower networks (bigger crossbars) close most of the gap between");
    println!("the simulated 1024-node latency and the paper's flat-T_trig model —");
    println!("the Fig. 8 deviation is network depth, not protocol behaviour.");
}
