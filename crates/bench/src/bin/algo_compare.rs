//! Algorithm comparison (§5.2): "the gather-broadcast algorithm requires
//! more steps for a barrier operation … the pairwise-exchange algorithm
//! generally performs better than the gather-broadcast algorithm. Thus …
//! we have chosen to implement and compare the pairwise-exchange and
//! dissemination algorithms."
//!
//! This harness runs all three NIC-based algorithms (plus GB at two tree
//! degrees) on both substrates so §5.2's dismissal is reproducible.
//!
//! Shares the figure-binary CLI (`fig_args`): `--quick` shrinks the sweep
//! for CI smoke runs, `--engine`/`--shards` select the execution engine.

use nicbar_bench::{fig_args, parallel_sweep, Figure, Manifest, Series};
use nicbar_core::{elan_nic_barrier, gm_nic_barrier, Algorithm};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let args = fig_args();
    let (quick, cfg) = (args.quick, args.cfg);
    // Keep a non-power-of-two point under --quick: that is where DS and PE
    // diverge and GB's tree shape matters.
    let ns: Vec<usize> = if quick {
        vec![2, 5, 8, 16]
    } else {
        (2..=16).collect()
    };

    let algos = [
        ("DS", Algorithm::Dissemination),
        ("PE", Algorithm::PairwiseExchange),
        ("GB-2", Algorithm::GatherBroadcast { degree: 2 }),
        ("GB-4", Algorithm::GatherBroadcast { degree: 4 }),
    ];

    let gm_series: Vec<Series> = algos
        .iter()
        .map(|&(label, algo)| {
            Series::new(
                label,
                parallel_sweep(&ns, |n| {
                    gm_nic_barrier(
                        GmParams::lanai_xp(),
                        CollFeatures::paper(),
                        n,
                        algo,
                        cfg.clone(),
                    )
                    .mean_us
                }),
            )
        })
        .collect();
    let fig = Figure::new(
        "algo_compare_gm",
        "§5.2 — NIC-based barrier algorithms, Myrinet LANai-XP (µs)",
        gm_series,
    )
    .with_manifest(Manifest::new(
        cfg.seed,
        format!(
            "gm lanai-xp, n=2..=16, warmup={}, iters={}, quick={}",
            cfg.warmup, cfg.iters, quick
        ),
    ));
    fig.print();
    // Quick (CI) sweeps must not downgrade the tracked full-fidelity
    // artifacts.
    if !quick {
        fig.save().expect("write results/algo_compare_gm.json");
    }

    let elan_series: Vec<Series> = algos
        .iter()
        .map(|&(label, algo)| {
            Series::new(
                label,
                parallel_sweep(&ns, |n| {
                    elan_nic_barrier(ElanParams::elan3(), n, algo, cfg.clone()).mean_us
                }),
            )
        })
        .collect();
    let fig = Figure::new(
        "algo_compare_elan",
        "§5.2 — NIC-based barrier algorithms, Quadrics Elan3 (µs)",
        elan_series,
    )
    .with_manifest(Manifest::new(
        cfg.seed,
        format!(
            "elan3, n=2..=16, warmup={}, iters={}, quick={}",
            cfg.warmup, cfg.iters, quick
        ),
    ));
    fig.print();
    if !quick {
        fig.save().expect("write results/algo_compare_elan.json");
    }

    println!("\nGather-broadcast pays ~2× the rounds (up the tree and back down);");
    println!("DS and PE coincide at powers of two, with PE's pre/post penalty at");
    println!("other sizes — the paper's §5.2 reasoning, measured.");
}
