//! Interference bench (extension): barrier latency under background bulk
//! traffic, across traffic intensities — the quantified version of §6.1's
//! queuing argument. Compares the paper protocol, the direct scheme and
//! the host-based barrier on the LANai-XP cluster.

use nicbar_bench::{Figure, Manifest, Series};
use nicbar_core::{
    gm_host_barrier_under_traffic, gm_nic_barrier_under_traffic, Algorithm, RunCfg, TrafficCfg,
};
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let n = 8;
    let cfg = RunCfg {
        warmup: 20,
        iters: 500,
        ..RunCfg::default()
    };
    let loads: Vec<usize> = vec![0, 1, 2, 4, 8];

    let run = |mode: &'static str, outstanding: usize| -> f64 {
        let traffic = TrafficCfg {
            msg_bytes: 4096,
            outstanding: outstanding as u32,
        };
        match (mode, outstanding) {
            ("paper", 0) => {
                nicbar_core::gm_nic_barrier(
                    GmParams::lanai_xp(),
                    CollFeatures::paper(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                )
                .mean_us
            }
            ("direct", 0) => {
                nicbar_core::gm_nic_barrier(
                    GmParams::lanai_xp(),
                    CollFeatures::direct(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                )
                .mean_us
            }
            ("host", 0) => {
                nicbar_core::gm_host_barrier(
                    GmParams::lanai_xp(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                )
                .mean_us
            }
            ("paper", _) => {
                gm_nic_barrier_under_traffic(
                    GmParams::lanai_xp(),
                    CollFeatures::paper(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                    traffic,
                )
                .mean_us
            }
            ("direct", _) => {
                gm_nic_barrier_under_traffic(
                    GmParams::lanai_xp(),
                    CollFeatures::direct(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                    traffic,
                )
                .mean_us
            }
            _ => {
                gm_host_barrier_under_traffic(
                    GmParams::lanai_xp(),
                    n,
                    Algorithm::Dissemination,
                    cfg.clone(),
                    traffic,
                )
                .mean_us
            }
        }
    };

    let series = |mode: &'static str| -> Vec<(usize, f64)> {
        loads.iter().map(|&o| (o, run(mode, o))).collect()
    };

    let fig = Figure::new(
        "interference",
        "Interference — 8-node barrier latency (µs) vs bulk messages in flight per process",
        vec![
            Series::new("NIC (paper)", series("paper")),
            Series::new("NIC (direct)", series("direct")),
            Series::new("Host-based", series("host")),
        ],
    )
    .with_manifest(Manifest::new(
        cfg.seed,
        format!(
            "gm lanai-xp, n={n}, loads=0..=8, warmup={}, iters={}",
            cfg.warmup, cfg.iters
        ),
    ));
    fig.print();
    fig.save().expect("write results/interference.json");

    let nic0 = fig.series[0].at(0).unwrap();
    let nic8 = fig.series[0].at(8).unwrap();
    let host0 = fig.series[2].at(0).unwrap();
    let host8 = fig.series[2].at(8).unwrap();
    println!(
        "\nslowdown at 8 in-flight: NIC (paper) {:.2}x, host-based {:.2}x",
        nic8 / nic0,
        host8 / host0
    );
}
