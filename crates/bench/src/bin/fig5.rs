//! Figure 5: NIC-based vs host-based barrier latency, 2–16 nodes, on the
//! LANai-9.1 / 700 MHz / 66 MHz-PCI cluster.
//!
//! Paper anchors: 25.72 µs NIC-based at 16 nodes; 3.38× improvement over
//! the host-based barrier; PE bumps above DS at non-powers of two.

use nicbar_bench::{figure_cfg, parallel_sweep, Figure, Series};
use nicbar_core::{gm_host_barrier, gm_nic_barrier, gm_nic_barrier_flight, Algorithm, RunCfg};
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let flight = std::env::args().any(|a| a == "--flight");
    let ns: Vec<usize> = (2..=16).collect();
    let cfg = figure_cfg();

    let curve = |mode: &'static str, algo: Algorithm| -> Vec<(usize, f64)> {
        parallel_sweep(&ns, |n| {
            let params = GmParams::lanai_9_1();
            match mode {
                "nic" => gm_nic_barrier(params, CollFeatures::paper(), n, algo, cfg).mean_us,
                _ => gm_host_barrier(params, n, algo, cfg).mean_us,
            }
        })
    };

    let fig = Figure::new(
        "fig5",
        "Fig. 5 — Barrier latency (µs), Myrinet LANai-9.1, 16-node 700 MHz cluster",
        vec![
            Series::new("NIC-DS", curve("nic", Algorithm::Dissemination)),
            Series::new("NIC-PE", curve("nic", Algorithm::PairwiseExchange)),
            Series::new("Host-DS", curve("host", Algorithm::Dissemination)),
            Series::new("Host-PE", curve("host", Algorithm::PairwiseExchange)),
        ],
    );
    fig.print();
    fig.save().expect("write results/fig5.json");

    let nic16 = fig.series[0].at(16).unwrap();
    let host16 = fig.series[2].at(16).unwrap();
    println!("\npaper anchors: NIC @16 = 25.72 µs (sim {nic16:.2}),");
    println!(
        "               improvement factor @16 = 3.38x (sim {:.2}x)",
        host16 / nic16
    );

    // Opt-in flight recording: a short instrumented window at 16 nodes,
    // showing where the NIC barrier's latency goes phase by phase.
    if flight {
        println!();
        let cap = gm_nic_barrier_flight(
            GmParams::lanai_9_1(),
            CollFeatures::paper(),
            16,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 2,
                iters: 8,
                ..RunCfg::default()
            },
        );
        nicbar_bench::flight::print_breakdown(&cap);
    }
}
