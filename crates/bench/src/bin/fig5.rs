//! Figure 5: NIC-based vs host-based barrier latency, 2–16 nodes, on the
//! LANai-9.1 / 700 MHz / 66 MHz-PCI cluster.
//!
//! Paper anchors: 25.72 µs NIC-based at 16 nodes; 3.38× improvement over
//! the host-based barrier; PE bumps above DS at non-powers of two.
//!
//! Writes `results/fig5.json` (the figure, mean latency per node count)
//! and `BENCH_fig5.json` at the repo root (the perf trajectory: median +
//! p99 per node count with the run manifest embedded). `--quick` shrinks
//! the sweep for CI smoke runs; `--flight` adds a phase-breakdown capture.

use nicbar_bench::{
    engineprof, fig_args, parallel_sweep_map, trajectory, Figure, Manifest, Series,
};
use nicbar_core::{
    build_gm_nic_cluster, gm_host_barrier, gm_nic_barrier, gm_nic_barrier_flight, Algorithm,
    BarrierStats, RunCfg,
};
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::EngineSel;

fn main() {
    let args = fig_args();
    let (quick, flight, cfg) = (args.quick, args.flight, args.cfg);
    let ns: Vec<usize> = if quick {
        vec![2, 4, 8, 16]
    } else {
        (2..=16).collect()
    };

    let curve = |mode: &'static str, algo: Algorithm| -> Vec<(usize, BarrierStats)> {
        parallel_sweep_map(&ns, |n| {
            let params = GmParams::lanai_9_1();
            match mode {
                "nic" => gm_nic_barrier(params, CollFeatures::paper(), n, algo, cfg.clone()),
                _ => gm_host_barrier(params, n, algo, cfg.clone()),
            }
        })
    };

    let sweeps: Vec<(&str, Vec<(usize, BarrierStats)>)> = vec![
        ("NIC-DS", curve("nic", Algorithm::Dissemination)),
        ("NIC-PE", curve("nic", Algorithm::PairwiseExchange)),
        ("Host-DS", curve("host", Algorithm::Dissemination)),
        ("Host-PE", curve("host", Algorithm::PairwiseExchange)),
    ];

    let manifest = Manifest::new(
        cfg.seed,
        format!(
            "gm lanai-9.1, n={}..={}, warmup={}, iters={}, quick={}",
            ns.first().copied().unwrap_or(0),
            ns.last().copied().unwrap_or(0),
            cfg.warmup,
            cfg.iters,
            quick
        ),
    );

    let fig = Figure::new(
        "fig5",
        "Fig. 5 — Barrier latency (µs), Myrinet LANai-9.1, 16-node 700 MHz cluster",
        sweeps
            .iter()
            .map(|(label, pts)| {
                Series::new(
                    *label,
                    pts.iter().map(|&(n, ref s)| (n, s.mean_us)).collect(),
                )
            })
            .collect(),
    )
    .with_manifest(manifest.clone());
    fig.print();
    // Quick (CI) sweeps refresh the BENCH trajectory below but must not
    // downgrade the tracked full-fidelity figure artifact.
    if !quick {
        fig.save().expect("write results/fig5.json");
    }

    // The tracked perf trajectory: median + p99 per node count.
    let traj: Vec<(&str, Vec<trajectory::TrajectoryPoint>)> = sweeps
        .iter()
        .map(|(label, pts)| {
            (
                *label,
                pts.iter()
                    .map(|&(n, ref s)| trajectory::point(n, s))
                    .collect(),
            )
        })
        .collect();
    trajectory::save("fig5", &traj, &manifest).expect("write BENCH_fig5.json");

    let top = *ns.last().expect("non-empty sweep");
    let nic16 = fig.series[0].at(top).expect("NIC point at top n");
    let host16 = fig.series[2].at(top).expect("host point at top n");
    if top == 16 {
        println!("\npaper anchors: NIC @16 = 25.72 µs (sim {nic16:.2}),");
        println!(
            "               improvement factor @16 = 3.38x (sim {:.2}x)",
            host16 / nic16
        );
    }

    // Opt-in flight recording: a short instrumented window at the top node
    // count, showing where the NIC barrier's latency goes phase by phase.
    if flight {
        println!();
        let cap = gm_nic_barrier_flight(
            GmParams::lanai_9_1(),
            CollFeatures::paper(),
            top,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 2,
                iters: 8,
                ..RunCfg::default()
            },
        );
        nicbar_bench::flight::print_breakdown(&cap);
    }

    // Opt-in engine self-profile: rerun the top point on the parallel
    // engine with the shard profiler armed and explain where the engine's
    // own wall time went.
    if args.prof {
        let shards = cfg.shards.max(2);
        let prof_cfg = RunCfg {
            engine: EngineSel::Parallel,
            shards,
            ..cfg.clone()
        };
        let mut cluster = build_gm_nic_cluster(
            GmParams::lanai_9_1(),
            CollFeatures::paper(),
            top,
            Algorithm::Dissemination,
            &prof_cfg,
            false,
        );
        if let Some((prof, wall_s)) =
            engineprof::profile_run(&mut cluster.engine, prof_cfg.deadline())
        {
            println!();
            print!(
                "{}",
                engineprof::report(&prof, &format!("fig5 NIC-DS, {top} nodes"), wall_s)
            );
        }
    }
}
