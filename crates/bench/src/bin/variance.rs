//! Variance study: the paper reports "only negligible variations" across
//! random node permutations and observes stable averages over 10 000
//! iterations. This harness quantifies both for the simulated clusters:
//! mean ± spread across seeds/permutations, plus per-iteration jitter
//! within one run.

use nicbar_core::{elan_nic_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};

fn stats(samples: &[f64]) -> (f64, f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    (mean, var.sqrt(), min, max)
}

fn main() {
    let n = 8;
    let seeds: Vec<u64> = (0..16).collect();

    println!("== Variance across 16 random node permutations, {n}-node DS barrier ==\n");
    for (name, f) in [
        (
            "Myrinet LANai-XP (NIC)",
            Box::new(|seed: u64| {
                gm_nic_barrier(
                    GmParams::lanai_xp(),
                    CollFeatures::paper(),
                    n,
                    Algorithm::Dissemination,
                    RunCfg {
                        warmup: 20,
                        iters: 300,
                        seed,
                        permute: true,
                        ..RunCfg::default()
                    },
                )
                .mean_us
            }) as Box<dyn Fn(u64) -> f64>,
        ),
        (
            "Quadrics Elan3 (NIC)",
            Box::new(|seed: u64| {
                elan_nic_barrier(
                    ElanParams::elan3(),
                    n,
                    Algorithm::Dissemination,
                    RunCfg {
                        warmup: 20,
                        iters: 300,
                        seed,
                        permute: true,
                        ..RunCfg::default()
                    },
                )
                .mean_us
            }),
        ),
    ] {
        let samples: Vec<f64> = seeds.iter().map(|&s| f(s)).collect();
        let (mean, sd, min, max) = stats(&samples);
        println!(
            "{name:<26} mean {mean:>6.2}µs  sd {sd:>5.3}  min {min:>6.2}  max {max:>6.2}  (cv {:.2}%)",
            sd / mean * 100.0
        );
    }

    println!("\n== Per-iteration jitter within one run (no skew, LANai-XP, NIC-DS) ==\n");
    let s = gm_nic_barrier(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        n,
        Algorithm::Dissemination,
        RunCfg {
            warmup: 100,
            iters: 2000,
            ..RunCfg::default()
        },
    );
    let (mean, sd, min, max) = stats(&s.per_iter_us);
    println!("mean {mean:.3}µs  sd {sd:.4}  min {min:.3}  max {max:.3}");
    println!("\nThe steady-state loop is deterministic: per-iteration spread collapses");
    println!("to (near) zero, matching the paper's observation that averaging 10 000");
    println!("iterations gives a stable number, and permutations move the mean only");
    println!("marginally on these symmetric topologies.");
}
