//! Engine-throughput regression harness.
//!
//! Measures raw scheduler throughput (events/second) and end-to-end figure
//! wall time on **all three** event-queue implementations — the hot-path
//! timing wheel (default), the indexed 4-ary heap, and the classic
//! `BinaryHeap` baseline — and verifies that they produce bit-identical
//! simulation results while doing so. Writes `results/engine_sweep.json`.
//!
//! Run with `cargo run --release -p nicbar-bench --bin engine_sweep`.
//!
//! `--quick [--baseline PATH]` runs only the timing-wheel micro workloads
//! and compares their throughput against a previously saved
//! `results/engine_sweep.json`, exiting non-zero on a >5% geomean
//! regression. This is the observability zero-overhead gate: the recorder
//! and trace ring stay disabled, so any slowdown here is hot-path damage.
//! Quick mode never overwrites the baseline. Quick mode also prints an
//! informational mutex-vs-SPSC mailbox throughput comparison (the same
//! contrast `cargo bench -p nicbar-sim --bench mailbox` measures under
//! criterion) — reported, not gated, because cross-thread throughput on a
//! loaded CI box is too noisy for a hard threshold.

use nicbar_bench::json::{Manifest, Writer};
use nicbar_bench::seed_engine::{SeedComponent, SeedCtx, SeedEngine};
use nicbar_core::{elan_nic_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::{Component, ComponentId, Ctx, Engine, EngineSel, SchedulerKind, SimTime};
use std::time::Instant;

const RING_EVENTS: u64 = 400_000;
const FANOUT_DEPTH: u32 = 9;
/// Concurrent tokens in the `flows` workload — the steady queue depth the
/// paper's figure simulations actually run at (nodes × in-flight messages).
const FLOW_TOKENS: usize = 64;
const REPEATS: usize = 5;

enum Msg {
    Hop(u64),
    Spawn(u32),
}

/// Bounces an event around a ring — pop-dominated scheduler load.
struct RingHop {
    next: ComponentId,
    stride: u64,
}

impl Component<Msg> for RingHop {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Hop(remaining) => {
                if remaining > 0 {
                    ctx.send(
                        SimTime::from_ns(self.stride),
                        self.next,
                        Msg::Hop(remaining - 1),
                    );
                }
            }
            Msg::Spawn(_) => unreachable!(),
        }
    }
}

/// Every event schedules four children — push/heap-pressure load.
struct FanOut;

impl Component<Msg> for FanOut {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Spawn(depth) => {
                if depth > 0 {
                    for k in 0..4u64 {
                        ctx.send_self(SimTime::from_ns(10 + k), Msg::Spawn(depth - 1));
                    }
                }
            }
            Msg::Hop(_) => unreachable!(),
        }
    }
}

fn ring_hop_run(kind: SchedulerKind) -> (u64, f64) {
    let mut engine: Engine<Msg> = Engine::with_scheduler(0, kind);
    let ids: Vec<ComponentId> = (0..16).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            RingHop {
                next: ids[(i + 1) % ids.len()],
                stride: 10,
            },
        );
    }
    engine.schedule_at(SimTime::ZERO, ids[0], Msg::Hop(RING_EVENTS));
    let start = Instant::now();
    engine.run();
    (engine.events_processed(), start.elapsed().as_secs_f64())
}

/// `FLOW_TOKENS` tokens circulating a ring at staggered strides: sustained
/// queue depth of `FLOW_TOKENS`, the profile the figure sims run at.
fn flows_run(kind: SchedulerKind) -> (u64, f64) {
    let mut engine: Engine<Msg> = Engine::with_scheduler(0, kind);
    let ids: Vec<ComponentId> = (0..FLOW_TOKENS).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            RingHop {
                next: ids[(i + 1) % ids.len()],
                stride: 5 + (i as u64 % 13),
            },
        );
    }
    let hops = RING_EVENTS / FLOW_TOKENS as u64;
    for (i, &id) in ids.iter().enumerate() {
        engine.schedule_at(SimTime::from_ns(i as u64), id, Msg::Hop(hops));
    }
    let start = Instant::now();
    engine.run();
    (engine.events_processed(), start.elapsed().as_secs_f64())
}

fn fanout_run(kind: SchedulerKind) -> (u64, f64) {
    let mut engine: Engine<Msg> = Engine::with_scheduler(0, kind);
    let id = engine.add(FanOut);
    engine.schedule_at(SimTime::ZERO, id, Msg::Spawn(FANOUT_DEPTH));
    let start = Instant::now();
    engine.run();
    (engine.events_processed(), start.elapsed().as_secs_f64())
}

// The same workloads on the seed engine replica — the original whole-entry
// `BinaryHeap` + pending-drain + `Option::take` hot path — so the sweep
// tracks the overhaul's full speedup, not just the queue swap.

struct SeedWorker {
    next: ComponentId,
    stride: u64,
}

impl SeedComponent<Msg> for SeedWorker {
    fn handle(&mut self, msg: Msg, ctx: &mut SeedCtx<'_, Msg>) {
        match msg {
            Msg::Hop(remaining) => {
                if remaining > 0 {
                    ctx.send(
                        SimTime::from_ns(self.stride),
                        self.next,
                        Msg::Hop(remaining - 1),
                    );
                }
            }
            Msg::Spawn(depth) => {
                if depth > 0 {
                    for k in 0..4u64 {
                        ctx.send_self(SimTime::from_ns(10 + k), Msg::Spawn(depth - 1));
                    }
                }
            }
        }
    }
}

fn seed_ring_hop_run() -> (u64, f64) {
    let mut engine: SeedEngine<Msg> = SeedEngine::new();
    let ids: Vec<ComponentId> = (0..16).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            SeedWorker {
                next: ids[(i + 1) % ids.len()],
                stride: 10,
            },
        );
    }
    engine.schedule_at(SimTime::ZERO, ids[0], Msg::Hop(RING_EVENTS));
    let start = Instant::now();
    engine.run();
    (engine.events_processed(), start.elapsed().as_secs_f64())
}

fn seed_flows_run() -> (u64, f64) {
    let mut engine: SeedEngine<Msg> = SeedEngine::new();
    let ids: Vec<ComponentId> = (0..FLOW_TOKENS).map(|_| engine.reserve_id()).collect();
    for (i, &id) in ids.iter().enumerate() {
        engine.install(
            id,
            SeedWorker {
                next: ids[(i + 1) % ids.len()],
                stride: 5 + (i as u64 % 13),
            },
        );
    }
    let hops = RING_EVENTS / FLOW_TOKENS as u64;
    for (i, &id) in ids.iter().enumerate() {
        engine.schedule_at(SimTime::from_ns(i as u64), id, Msg::Hop(hops));
    }
    let start = Instant::now();
    engine.run();
    (engine.events_processed(), start.elapsed().as_secs_f64())
}

fn seed_fanout_run() -> (u64, f64) {
    let mut engine: SeedEngine<Msg> = SeedEngine::new();
    let id = engine.add(SeedWorker {
        next: ComponentId(0),
        stride: 10,
    });
    engine.schedule_at(SimTime::ZERO, id, Msg::Spawn(FANOUT_DEPTH));
    let start = Instant::now();
    engine.run();
    (engine.events_processed(), start.elapsed().as_secs_f64())
}

fn sweep_cfg(kind: SchedulerKind) -> RunCfg {
    RunCfg {
        warmup: 50,
        iters: 1000,
        scheduler: kind,
        ..RunCfg::default()
    }
}

fn fig5_run(kind: SchedulerKind) -> (f64, f64) {
    let start = Instant::now();
    let stats = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        sweep_cfg(kind),
    );
    (stats.mean_us, start.elapsed().as_secs_f64())
}

/// The fig5 point under an explicit execution engine: simulated mean and
/// wall seconds.
fn fig5_engine_run(engine: EngineSel, shards: usize) -> (f64, f64) {
    // 5000 iterations ≈ 100 ms of wall per run: long enough that the
    // ±1 ms scheduling jitter of a shared single-CPU CI host cannot fake
    // a 5% overhead, short enough to keep the gate interactive.
    let cfg = RunCfg {
        warmup: 50,
        iters: 5000,
        engine,
        shards,
        ..RunCfg::default()
    };
    let start = Instant::now();
    let stats = gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        cfg,
    );
    (stats.mean_us, start.elapsed().as_secs_f64())
}

/// The parallel engine at one shard must be a cheap wrapper around the
/// sequential core: same simulated latency, and ≤5% wall-clock overhead on
/// the fig5 figure point. Each repeat times the two engines back to back
/// and the gate takes the *best pair ratio* — host-load drift (a shared CI
/// box that slows down mid-gate) hits both halves of a pair equally, where
/// independent min-of-N on each side can charge one engine for a slow
/// phase the other never saw. Returns `(seq_wall_s, par_wall_s)` (the best
/// pair) for the JSON report.
fn parallel_one_shard_gate() -> (f64, f64) {
    const GATE_REPEATS: usize = 7;
    let mut best: Option<(f64, f64)> = None;
    // Alternate which engine goes first each repeat, so same-pair ordering
    // cannot systematically favor one side either.
    for r in 0..GATE_REPEATS {
        let (seq, par) = if r % 2 == 0 {
            let s = fig5_engine_run(EngineSel::Sequential, 1);
            let p = fig5_engine_run(EngineSel::Parallel, 1);
            (s, p)
        } else {
            let p = fig5_engine_run(EngineSel::Parallel, 1);
            let s = fig5_engine_run(EngineSel::Sequential, 1);
            (s, p)
        };
        assert_eq!(
            seq.0, par.0,
            "parallel engine at 1 shard changed the simulated latency"
        );
        if best.is_none_or(|(bs, bp)| par.1 / seq.1 < bp / bs) {
            best = Some((seq.1, par.1));
        }
    }
    let (seq_s, par_s) = best.expect("at least one repeat");
    let overhead = par_s / seq_s - 1.0;
    println!(
        "parallel 1-shard overhead on fig5_n16: sequential {seq_s:.3} s, parallel {par_s:.3} s ({:+.1}%)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "parallel engine at 1 shard is {:.1}% slower than sequential (gate: 5%)",
        overhead * 100.0
    );
    println!("parallel 1-shard overhead within 5% ✓");
    (seq_s, par_s)
}

fn fig7_run(kind: SchedulerKind) -> (f64, f64) {
    let start = Instant::now();
    let stats = elan_nic_barrier(
        ElanParams::elan3(),
        8,
        Algorithm::Dissemination,
        sweep_cfg(kind),
    );
    (stats.mean_us, start.elapsed().as_secs_f64())
}

/// Best (fastest) of `REPEATS` timed runs; the events count must agree
/// across runs (the workload is deterministic).
fn best_of(run: impl Fn() -> (u64, f64)) -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..REPEATS {
        let (events, secs) = run();
        best = match best {
            Some((e, s)) => {
                assert_eq!(e, events, "non-deterministic event count");
                Some((e, s.min(secs)))
            }
            None => Some((events, secs)),
        };
    }
    best.expect("REPEATS >= 1")
}

/// Per-scheduler micro-benchmark row: (scheduler name, events processed,
/// best seconds).
type MicroRow = (&'static str, u64, f64);
/// Per-scheduler figure row: (kind, simulated mean µs, best wall seconds).
type FigRow = (SchedulerKind, f64, f64);

fn kind_name(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::TimingWheel => "timing_wheel",
        SchedulerKind::Indexed4 => "indexed4",
        SchedulerKind::ClassicBinaryHeap => "classic_binary_heap",
    }
}

/// Pull `"key": "value"` out of one JSON object's text.
fn json_str<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = chunk.find(&pat)? + pat.len();
    let rest = &chunk[start..];
    Some(&rest[..rest.find('"')?])
}

/// Pull `"key": number` out of one JSON object's text.
fn json_num(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = chunk.find(&pat)? + pat.len();
    let rest = &chunk[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Timing-wheel micro rows `(workload, events_per_sec)` from a saved
/// `engine_sweep.json`. The writer emits one flat object per row, so a
/// split on `{` isolates each row's fields.
fn baseline_rows(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {path}: {e} (run the full sweep first)"));
    let mut rows = Vec::new();
    for chunk in text.split('{') {
        if json_str(chunk, "scheduler") != Some("timing_wheel") {
            continue;
        }
        if let (Some(wl), Some(eps)) = (
            json_str(chunk, "workload"),
            json_num(chunk, "events_per_sec"),
        ) {
            rows.push((wl.to_string(), eps));
        }
    }
    rows
}

/// `--quick` gate: timing-wheel micro throughput vs the saved baseline.
/// Exits 1 on a >5% geomean regression; never writes the baseline.
/// Cross-thread mailbox path, mutex vs SPSC ring — the contrast that
/// motivated replacing `Mutex<Vec>` mailboxes in the parallel engine.
/// Each producer thread pushes `items` u64s to the consumer; the mutex
/// variant shares one `Mutex<Vec>`, the ring variant gives each producer
/// its own [`nicbar_sim::SpscRing`] (the engine's per-pair topology).
/// Returns (mutex_secs, ring_secs). Informational only: wall-clock on a
/// shared box is too noisy to gate, and on a 1-core host both variants
/// degenerate to context-switch benchmarks.
fn mailbox_transfer(producers: usize, items: u64) -> (f64, f64) {
    use std::sync::Mutex;

    let mutex_secs = {
        let shared: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let start = Instant::now();
        std::thread::scope(|s| {
            for p in 0..producers {
                let shared = &shared;
                s.spawn(move || {
                    for i in 0..items {
                        shared.lock().expect("mailbox mutex").push(p as u64 ^ i);
                    }
                });
            }
            let total = producers as u64 * items;
            let mut received = 0u64;
            let mut drained = Vec::new();
            while received < total {
                {
                    let mut guard = shared.lock().expect("mailbox mutex");
                    std::mem::swap(&mut *guard, &mut drained);
                }
                received += drained.len() as u64;
                drained.clear();
                if received < total {
                    std::thread::yield_now();
                }
            }
        });
        start.elapsed().as_secs_f64()
    };

    let ring_secs = {
        let rings: Vec<nicbar_sim::SpscRing<u64>> = (0..producers)
            .map(|_| nicbar_sim::SpscRing::new(1024))
            .collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for (p, ring) in rings.iter().enumerate() {
                s.spawn(move || {
                    for i in 0..items {
                        let mut v = p as u64 ^ i;
                        while let Err(back) = ring.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let total = producers as u64 * items;
            let mut received = 0u64;
            while received < total {
                let mut progressed = false;
                for ring in &rings {
                    while ring.pop().is_some() {
                        received += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    std::thread::yield_now();
                }
            }
        });
        start.elapsed().as_secs_f64()
    };

    (mutex_secs, ring_secs)
}

/// Print the mutex-vs-ring mailbox comparison at 1, 2, 4, 8 producers.
/// Not a gate — see [`mailbox_transfer`].
fn mailbox_report() {
    const ITEMS: u64 = 50_000;
    println!("== mailbox path: Mutex<Vec> vs SpscRing (informational, not gated) ==\n");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "producers", "mutex Kops/s", "ring Kops/s", "ratio"
    );
    for producers in [1usize, 2, 4, 8] {
        let (mutex_s, ring_s) = mailbox_transfer(producers, ITEMS);
        let total = (producers as u64 * ITEMS) as f64;
        println!(
            "{producers:<10} {:>14.0} {:>14.0} {:>7.2}x",
            total / mutex_s / 1e3,
            total / ring_s / 1e3,
            mutex_s / ring_s
        );
    }
    println!();
}

fn quick_gate(baseline_path: &str) -> ! {
    const TOLERANCE: f64 = 0.95;
    let baseline = baseline_rows(baseline_path);
    assert!(
        !baseline.is_empty(),
        "no timing_wheel micro rows in {baseline_path}"
    );
    println!("== engine_sweep --quick: timing wheel vs {baseline_path} ==\n");
    // Each micro run lasts ~10 ms, so quick mode can afford many repeats;
    // taking the minimum over 25 runs filters out transient machine load
    // (noise only ever slows a run down, never speeds it up).
    const QUICK_REPEATS: usize = 25;
    type MicroRun = fn(SchedulerKind) -> (u64, f64);
    let runs: [(&str, MicroRun); 3] = [
        ("ring_hop", ring_hop_run),
        ("flows_64", flows_run),
        ("fanout", fanout_run),
    ];
    let mut ratios = Vec::new();
    for (label, run) in runs {
        let Some(&(_, base_eps)) = baseline.iter().find(|(wl, _)| wl == label) else {
            println!("{label:<10} not in baseline, skipped");
            continue;
        };
        let mut events = 0;
        let mut secs = f64::INFINITY;
        for _ in 0..QUICK_REPEATS {
            let (e, s) = run(SchedulerKind::TimingWheel);
            events = e;
            secs = secs.min(s);
        }
        let eps = events as f64 / secs;
        let ratio = eps / base_eps;
        println!(
            "{label:<10} {:>10.1} Kevents/s   baseline {:>10.1}   ratio {ratio:>5.3}",
            eps / 1e3,
            base_eps / 1e3
        );
        ratios.push(ratio);
    }
    assert!(!ratios.is_empty(), "no workloads matched the baseline");
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("\ngeomean ratio: {geomean:.3} (gate: >= {TOLERANCE})");
    if geomean < TOLERANCE {
        eprintln!(
            "engine_sweep --quick: throughput regressed {:.1}% vs baseline",
            (1.0 - geomean) * 100.0
        );
        std::process::exit(1);
    }
    println!("engine_sweep --quick: within tolerance ✓\n");
    mailbox_report();
    parallel_one_shard_gate();
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--quick") {
        let baseline = argv
            .iter()
            .position(|a| a == "--baseline")
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
            .unwrap_or("results/engine_sweep.json");
        quick_gate(baseline);
    }

    let kinds = [
        SchedulerKind::TimingWheel,
        SchedulerKind::Indexed4,
        SchedulerKind::ClassicBinaryHeap,
    ];

    println!("== engine_sweep: scheduler throughput ==\n");
    // (workload, per-scheduler (events, best seconds)); the seed replica
    // rides along as the third row of each workload.
    let mut micro: Vec<(&str, Vec<MicroRow>)> = Vec::new();
    for (label, run, seed_run) in [
        (
            "ring_hop",
            ring_hop_run as fn(SchedulerKind) -> (u64, f64),
            seed_ring_hop_run as fn() -> (u64, f64),
        ),
        (
            "flows_64",
            flows_run as fn(SchedulerKind) -> (u64, f64),
            seed_flows_run as fn() -> (u64, f64),
        ),
        (
            "fanout",
            fanout_run as fn(SchedulerKind) -> (u64, f64),
            seed_fanout_run as fn() -> (u64, f64),
        ),
    ] {
        let mut rows = Vec::new();
        for kind in kinds {
            let (events, secs) = best_of(|| run(kind));
            rows.push((kind_name(kind), events, secs));
        }
        rows.push({
            let (events, secs) = best_of(seed_run);
            ("seed_binary_heap", events, secs)
        });
        for &(name, events, secs) in &rows {
            println!(
                "{label:<10} {name:<20} {events:>8} events  {:>10.1} Kevents/s",
                events as f64 / secs / 1e3
            );
        }
        assert!(
            rows.iter().all(|&(_, e, _)| e == rows[0].1),
            "{label}: event counts diverged across schedulers"
        );
        micro.push((label, rows));
    }

    println!("\n== engine_sweep: end-to-end figure points ==\n");
    // (figure point, per-kind (mean_us, best wall seconds))
    let mut figures: Vec<(&str, Vec<FigRow>)> = Vec::new();
    for (label, run) in [
        ("fig5_n16", fig5_run as fn(SchedulerKind) -> (f64, f64)),
        ("fig7_n8", fig7_run as fn(SchedulerKind) -> (f64, f64)),
    ] {
        let mut rows = Vec::new();
        for kind in kinds {
            let mut mean_us = f64::NAN;
            let mut best = f64::INFINITY;
            for _ in 0..REPEATS {
                let (us, secs) = run(kind);
                if !mean_us.is_nan() {
                    assert_eq!(us, mean_us, "{label}: non-deterministic latency");
                }
                mean_us = us;
                best = best.min(secs);
            }
            println!(
                "{label:<10} {:<20} mean {mean_us:>8.3} µs   wall {best:>7.3} s",
                kind_name(kind)
            );
            rows.push((kind, mean_us, best));
        }
        // Differential check: every scheduler must report the identical
        // simulated latency — same events, same order, same arithmetic.
        for row in &rows[1..] {
            assert_eq!(
                rows[0].1, row.1,
                "{label}: schedulers disagree on simulated latency"
            );
        }
        println!("{label:<10} latencies identical across schedulers ✓");
        figures.push((label, rows));
    }

    println!("\n== speedups (timing wheel vs baselines) ==\n");
    // Rows are ordered as `kinds` (wheel first, classic last), with the
    // seed replica appended on the micro workloads.
    let mut vs_classic: Vec<(&str, f64)> = Vec::new();
    let mut vs_seed: Vec<(&str, f64)> = Vec::new();
    let classic_row = kinds.len() - 1;
    for (label, rows) in &micro {
        let classic = rows[classic_row].2 / rows[0].2;
        let seed = rows[classic_row + 1].2 / rows[0].2;
        println!("{label:<10} vs classic {classic:>6.2}x   vs seed {seed:>6.2}x");
        vs_classic.push((label, classic));
        vs_seed.push((label, seed));
    }
    for (label, rows) in &figures {
        let s = rows[classic_row].2 / rows[0].2;
        println!("{label:<10} vs classic {s:>6.2}x");
        vs_classic.push((label, s));
    }
    let geomean_seed =
        (vs_seed.iter().map(|&(_, s)| s.ln()).sum::<f64>() / vs_seed.len() as f64).exp();
    println!("\nmicro geomean vs seed: {geomean_seed:.2}x\n");

    let (seq_wall, par1_wall) = parallel_one_shard_gate();

    let mut w = Writer::new();
    w.open_object();
    Manifest::new(
        nicbar_core::RunCfg::default().seed,
        "engine_sweep: scheduler micro-benchmarks + figure-point replays",
    )
    .emit(&mut w);
    w.field("micro");
    w.open_array();
    for (label, rows) in &micro {
        for &(name, events, secs) in rows {
            w.open_object();
            w.field("workload");
            w.string(label);
            w.field("scheduler");
            w.string(name);
            w.field("events");
            w.uint(events);
            w.field("seconds");
            w.number(secs);
            w.field("events_per_sec");
            w.number(events as f64 / secs);
            w.close_object();
        }
    }
    w.close_array();
    w.field("figures");
    w.open_array();
    for (label, rows) in &figures {
        for &(kind, mean_us, secs) in rows {
            w.open_object();
            w.field("point");
            w.string(label);
            w.field("scheduler");
            w.string(kind_name(kind));
            w.field("mean_us");
            w.number(mean_us);
            w.field("wall_seconds");
            w.number(secs);
            w.close_object();
        }
    }
    w.close_array();
    w.field("speedup_wheel_vs_classic");
    w.open_object();
    for (label, s) in &vs_classic {
        w.field(label);
        w.number(*s);
    }
    w.close_object();
    w.field("speedup_wheel_vs_seed");
    w.open_object();
    for (label, s) in &vs_seed {
        w.field(label);
        w.number(*s);
    }
    w.field("geomean");
    w.number(geomean_seed);
    w.close_object();
    w.field("parallel_one_shard");
    w.open_object();
    w.field("point");
    w.string("fig5_n16");
    w.field("sequential_wall_s");
    w.number(seq_wall);
    w.field("parallel_wall_s");
    w.number(par1_wall);
    w.field("overhead");
    w.number(par1_wall / seq_wall - 1.0);
    w.close_object();
    w.close_object();

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/engine_sweep.json";
    std::fs::write(path, w.finish()).expect("write engine_sweep.json");
    println!("\n[saved {path}]");

    // `--prof`: profile the fig5 point on the parallel engine so the sweep
    // can explain its own parallel wall times, not just report them.
    if argv.iter().any(|a| a == "--prof") {
        let cfg = RunCfg {
            warmup: 50,
            iters: 5000,
            engine: EngineSel::Parallel,
            shards: 2,
            ..RunCfg::default()
        };
        let mut cluster = nicbar_core::build_gm_nic_cluster(
            GmParams::lanai_9_1(),
            CollFeatures::paper(),
            16,
            Algorithm::Dissemination,
            &cfg,
            false,
        );
        if let Some((prof, wall_s)) =
            nicbar_bench::engineprof::profile_run(&mut cluster.engine, cfg.deadline())
        {
            println!();
            print!(
                "{}",
                nicbar_bench::engineprof::report(&prof, "fig5_n16 NIC-DS", wall_s)
            );
        }
    }
}
