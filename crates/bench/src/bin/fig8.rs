//! Figure 8: scalability of the NIC-based barrier to 1024 nodes —
//! simulated dissemination barrier vs the paper's analytical model
//! `T = T_init + (⌈log₂N⌉−1)·T_trig + T_adj`, for both networks, plus a
//! least-squares refit of the model against the simulated sweep.
//!
//! Paper anchors: 22.13 µs (Quadrics) and 38.94 µs (Myrinet) at 1024.
//!
//! Shares the figure-binary CLI (`fig_args`): `--quick` sub-samples the
//! sweep for CI smoke runs, `--engine`/`--shards` select the execution
//! engine (the large points are where the sharded engine pays off).

use nicbar_bench::{fig_args, parallel_sweep, Figure, Manifest, Series};
use nicbar_core::{elan_nic_barrier, gm_nic_barrier, Algorithm, RunCfg};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_model::{fit, BarrierModel};

fn main() {
    let args = fig_args();
    let (quick, base) = (args.quick, args.cfg);
    let ns: Vec<usize> = if quick {
        vec![2, 4, 16, 64, 256, 1024]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    };
    // Large clusters are expensive per epoch; scale iterations down with n
    // (the simulated steady state is reached within a few epochs). The
    // quick config is already below the large-n budget.
    let cfg_for = |n: usize| -> RunCfg {
        if n <= 64 || quick {
            base.clone()
        } else {
            RunCfg {
                warmup: 20,
                iters: 200,
                ..base.clone()
            }
        }
    };

    let quadrics_sim = parallel_sweep(&ns, |n| {
        elan_nic_barrier(ElanParams::elan3(), n, Algorithm::Dissemination, cfg_for(n)).mean_us
    });
    let myrinet_sim = parallel_sweep(&ns, |n| {
        gm_nic_barrier(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            n,
            Algorithm::Dissemination,
            cfg_for(n),
        )
        .mean_us
    });

    let q_paper = BarrierModel::paper_quadrics_elan3().predict_sweep(&ns);
    let m_paper = BarrierModel::paper_myrinet_xp().predict_sweep(&ns);
    let (q_fit, q_quality) = fit(&quadrics_sim);
    let (m_fit, m_quality) = fit(&myrinet_sim);

    let fig = Figure::new(
        "fig8",
        "Fig. 8 — Scalability of the NIC-based barrier (µs), model vs simulation",
        vec![
            Series::new("Quadrics (sim)", quadrics_sim.clone()),
            Series::new("Quadrics-Model (paper)", q_paper),
            Series::new("Quadrics-Model (refit)", q_fit.predict_sweep(&ns)),
            Series::new("Myrinet (sim)", myrinet_sim.clone()),
            Series::new("Myrinet-Model (paper)", m_paper),
            Series::new("Myrinet-Model (refit)", m_fit.predict_sweep(&ns)),
        ],
    )
    .with_manifest(Manifest::new(
        base.seed,
        format!(
            "elan3 + gm lanai-xp dissemination, n=2..=1024, iters scaled down past 64 nodes, quick={quick}"
        ),
    ));
    fig.print();
    // Quick (CI) sweeps must not downgrade the tracked full-fidelity
    // artifact.
    if !quick {
        fig.save().expect("write results/fig8.json");
    }

    println!(
        "\nrefit Quadrics: T = {:.2} + (ceil(log2 N)-1) * {:.2}   (RMSE {:.2} µs, R² {:.4})",
        q_fit.t_init, q_fit.t_trig, q_quality.rmse_us, q_quality.r_squared
    );
    println!(
        "refit Myrinet:  T = {:.2} + (ceil(log2 N)-1) * {:.2}   (RMSE {:.2} µs, R² {:.4})",
        m_fit.t_init, m_fit.t_trig, m_quality.rmse_us, m_quality.r_squared
    );
    println!(
        "\npaper anchors @1024: Quadrics 22.13 µs (sim {:.2}), Myrinet 38.94 µs (sim {:.2})",
        quadrics_sim.last().unwrap().1,
        myrinet_sim.last().unwrap().1
    );
}
