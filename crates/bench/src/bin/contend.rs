//! Contention scenario: M overlapping barrier groups plus background bulk
//! traffic over shared NICs, with the resource-occupancy ledger armed —
//! the interference-attribution companion of `why-slow`.
//!
//! Every wait on the critical path of every barrier is attributed to the
//! owner that held the contended resource meanwhile (same group, rival
//! group, bulk traffic, or fabric overhead), and the report names the top
//! interferer. Runs the scenario on both substrates (gm and elan) and on
//! both execution engines; the flight captures must be byte-identical
//! across engines modulo the engine stamp.
//!
//! Writes `results/contend.json` (full runs) and appends to
//! `BENCH_contend.json` (always). `--check` gates: zero dropped ledger
//! records, ≥95% of critical-path wait time attributed to a named owner, a
//! named top interferer, and sequential/parallel byte-parity.

use nicbar_bench::critpath::{self, Interference};
use nicbar_bench::{fig_args, json::Writer, trajectory, Manifest};
use nicbar_core::{
    elan_contend_flight, gm_contend_flight, Algorithm, FlightData, RunCfg, TrafficCfg,
    CONTEND_GROUP_BASE,
};
use nicbar_elan::ElanParams;
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::EngineSel;

/// Byte-exact projection of a capture, minus the engine stamp (the one
/// intentional difference between engines).
fn witness(f: &FlightData) -> String {
    format!(
        "substrate={}\nrecords={:?}\ntrace_dropped={}\nspans={:?}\nspans_dropped={}\norphaned={}\nhists={:?}\nstats={:?}\npackets={:?}\npackets_dropped={}\nledger={:?}\nledger_dropped={}\n",
        f.substrate,
        f.records,
        f.trace_dropped,
        f.spans,
        f.spans_dropped,
        f.orphaned,
        f.hists,
        f.stats,
        f.packets,
        f.packets_dropped,
        f.ledger,
        f.ledger_dropped,
    )
}

struct SubstrateReport {
    substrate: &'static str,
    flight: FlightData,
    summary: Interference,
    per_path: Vec<Interference>,
}

fn run_substrate(
    substrate: &'static str,
    n: usize,
    groups: usize,
    cfg: RunCfg,
    traffic: TrafficCfg,
    shards: usize,
    check: bool,
) -> SubstrateReport {
    let run = |engine: EngineSel, shards: usize| -> FlightData {
        let cfg = RunCfg {
            engine,
            shards,
            ..cfg.clone()
        };
        match substrate {
            "gm" => gm_contend_flight(
                GmParams::lanai_xp(),
                CollFeatures::paper(),
                n,
                groups,
                Algorithm::Dissemination,
                cfg.clone(),
                traffic,
            ),
            _ => elan_contend_flight(
                ElanParams::elan3(),
                n,
                groups,
                Algorithm::Dissemination,
                cfg.clone(),
                traffic,
            ),
        }
    };
    let seq = run(EngineSel::Sequential, 1);
    let par = run(EngineSel::Parallel, shards);
    assert_eq!(seq.engine, "sequential");
    assert_eq!(par.engine, "parallel");
    let (a, b) = (witness(&seq), witness(&par));
    if a != b {
        let at = a
            .bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len()));
        let lo = at.saturating_sub(120);
        eprintln!(
            "contend: {substrate} parallel({shards}) diverges from sequential at byte {at}\n\
             sequential: ...{}\nparallel:   ...{}",
            &a[lo..(at + 120).min(a.len())],
            &b[lo..(at + 120).min(b.len())],
        );
        if check {
            std::process::exit(1);
        }
    } else {
        println!("contend: {substrate} sequential/parallel({shards}) byte-identical");
    }

    // Attribute interference on the contend groups only (the analyzer sees
    // every keyed span in the dump).
    let paths: Vec<_> = critpath::analyze(&seq.packets)
        .into_iter()
        .filter(|p| {
            (u64::from(CONTEND_GROUP_BASE)..u64::from(CONTEND_GROUP_BASE) + groups as u64)
                .contains(&p.group)
        })
        .collect();
    let per_path = critpath::interference(&paths, &seq.ledger);
    let summary = critpath::interference_summary(&per_path);

    println!(
        "\n== contend [{substrate}]: {n} nodes, {groups} groups, traffic {}x{}B, {} barriers ==",
        traffic.outstanding,
        traffic.msg_bytes,
        paths.len()
    );
    println!(
        "mean barrier latency {:.2} µs; ledger {} records ({} dropped)",
        seq.stats.mean_us,
        seq.ledger.len(),
        seq.ledger_dropped
    );
    print!("{}", critpath::render_interference(&per_path));

    if check {
        let mut ok = true;
        if seq.ledger_dropped > 0 {
            eprintln!(
                "contend: {substrate} dropped {} ledger records",
                seq.ledger_dropped
            );
            ok = false;
        }
        if paths.is_empty() {
            eprintln!("contend: {substrate} produced no analyzable barrier spans");
            ok = false;
        }
        if summary.attributed_pct() < 95.0 {
            eprintln!(
                "contend: {substrate} attributed only {:.1}% of critical-path wait time (< 95%)",
                summary.attributed_pct()
            );
            ok = false;
        }
        if summary.top().is_none() {
            eprintln!("contend: {substrate} named no top interferer");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "contend: {substrate} check OK ({:.1}% attributed, top: {})",
            summary.attributed_pct(),
            summary
                .top()
                .map(|(o, _)| o.label())
                .unwrap_or_else(|| "none".into())
        );
    }

    SubstrateReport {
        substrate,
        flight: seq,
        summary,
        per_path,
    }
}

fn artifact_json(reports: &[SubstrateReport], n: usize, groups: usize, m: &Manifest) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("id");
    w.string("contend");
    m.emit(&mut w);
    w.field("nodes");
    w.uint(n as u64);
    w.field("groups");
    w.uint(groups as u64);
    w.field("substrates");
    w.open_array();
    for r in reports {
        let s = &r.summary;
        w.open_object();
        w.field("substrate");
        w.string(r.substrate);
        w.field("mean_us");
        w.number(r.flight.stats.mean_us);
        w.field("barriers");
        w.uint(r.per_path.len() as u64);
        w.field("ledger_records");
        w.uint(r.flight.ledger.len() as u64);
        w.field("wait_us");
        w.number(s.wait_total.as_us());
        w.field("self_us");
        w.number(s.self_time.as_us());
        w.field("other_group_us");
        w.number(s.other_group.as_us());
        w.field("traffic_us");
        w.number(s.traffic.as_us());
        w.field("fabric_us");
        w.number(s.fabric.as_us());
        w.field("unattributed_us");
        w.number(s.unattributed.as_us());
        w.field("attributed_pct");
        w.number(s.attributed_pct());
        w.field("top_interferer");
        match s.top() {
            Some((o, t)) => {
                w.string(&o.label());
                w.field("top_held_us");
                w.number(t.as_us());
            }
            None => w.string("none"),
        }
        w.close_object();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

fn main() {
    let args = fig_args();
    let argv: Vec<String> = std::env::args().collect();
    let check = argv.iter().any(|a| a == "--check");
    // The contend run keeps every observability stream on (the ledger
    // records every NIC charge), so the epoch counts stay deliberately
    // small; `--quick` shrinks them further for the CI smoke.
    let (n, groups, cfg) = if args.quick {
        (
            6,
            2,
            RunCfg {
                warmup: 2,
                iters: 8,
                skew_us: 1.0,
                ..args.cfg
            },
        )
    } else {
        (
            8,
            3,
            RunCfg {
                warmup: 5,
                iters: 24,
                skew_us: 1.0,
                ..args.cfg
            },
        )
    };
    let traffic = TrafficCfg {
        msg_bytes: 4096,
        outstanding: 2,
    };
    let shards = args.cfg.shards.max(2);

    let reports: Vec<SubstrateReport> = ["gm", "elan"]
        .into_iter()
        .map(|s| run_substrate(s, n, groups, cfg.clone(), traffic, shards, check))
        .collect();

    let manifest = Manifest::new(
        cfg.seed,
        format!(
            "contend n={n}, groups={groups}, traffic={}x{}B, warmup={}, iters={}, shards={}, quick={}",
            traffic.outstanding, traffic.msg_bytes, cfg.warmup, cfg.iters, shards, args.quick
        ),
    );

    // Quick (CI) runs refresh the BENCH trajectory but must not downgrade
    // the tracked full-fidelity artifact.
    if !args.quick {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir).expect("create results/");
        let path = dir.join("contend.json");
        std::fs::write(&path, artifact_json(&reports, n, groups, &manifest))
            .expect("write results/contend.json");
        println!("[saved {}]", path.display());
    }

    let traj: Vec<(&str, Vec<trajectory::TrajectoryPoint>)> = reports
        .iter()
        .map(|r| (r.substrate, vec![trajectory::point(n, &r.flight.stats)]))
        .collect();
    trajectory::save("contend", &traj, &manifest).expect("write BENCH_contend.json");
}
