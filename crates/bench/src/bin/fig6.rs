//! Figure 6: NIC-based vs host-based barrier latency, 2–8 nodes, on the
//! LANai-XP / 2.4 GHz Xeon / PCI-X cluster.
//!
//! Paper anchors: 14.20 µs NIC-based at 8 nodes; 2.64× improvement —
//! smaller than the 9.1 cluster's factor because the faster host CPU and
//! PCI-X bus leave less overhead for the NIC to remove.

use nicbar_bench::{figure_cfg, parallel_sweep, Figure, Manifest, Series};
use nicbar_core::{gm_host_barrier, gm_nic_barrier, Algorithm};
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let ns: Vec<usize> = (2..=8).collect();
    let cfg = figure_cfg();

    let curve = |mode: &'static str, algo: Algorithm| -> Vec<(usize, f64)> {
        parallel_sweep(&ns, |n| {
            let params = GmParams::lanai_xp();
            match mode {
                "nic" => gm_nic_barrier(params, CollFeatures::paper(), n, algo, cfg).mean_us,
                _ => gm_host_barrier(params, n, algo, cfg).mean_us,
            }
        })
    };

    let fig = Figure::new(
        "fig6",
        "Fig. 6 — Barrier latency (µs), Myrinet LANai-XP, 8-node 2.4 GHz cluster",
        vec![
            Series::new("NIC-DS", curve("nic", Algorithm::Dissemination)),
            Series::new("NIC-PE", curve("nic", Algorithm::PairwiseExchange)),
            Series::new("Host-DS", curve("host", Algorithm::Dissemination)),
            Series::new("Host-PE", curve("host", Algorithm::PairwiseExchange)),
        ],
    )
    .with_manifest(Manifest::new(
        cfg.seed,
        format!(
            "gm lanai-xp, n=2..=8, warmup={}, iters={}",
            cfg.warmup, cfg.iters
        ),
    ));
    fig.print();
    fig.save().expect("write results/fig6.json");

    let nic8 = fig.series[0].at(8).unwrap();
    let host8 = fig.series[2].at(8).unwrap();
    println!("\npaper anchors: NIC @8 = 14.20 µs (sim {nic8:.2}),");
    println!(
        "               improvement factor @8 = 2.64x (sim {:.2}x)",
        host8 / nic8
    );
}
