//! Figure 6: NIC-based vs host-based barrier latency, 2–8 nodes, on the
//! LANai-XP / 2.4 GHz Xeon / PCI-X cluster.
//!
//! Paper anchors: 14.20 µs NIC-based at 8 nodes; 2.64× improvement —
//! smaller than the 9.1 cluster's factor because the faster host CPU and
//! PCI-X bus leave less overhead for the NIC to remove.
//!
//! Shares the figure-binary CLI (`fig_args`): `--quick` shrinks the sweep
//! for CI smoke runs, `--engine`/`--shards` select the execution engine.

use nicbar_bench::{fig_args, parallel_sweep, Figure, Manifest, Series};
use nicbar_core::{gm_host_barrier, gm_nic_barrier, Algorithm};
use nicbar_gm::{CollFeatures, GmParams};

fn main() {
    let args = fig_args();
    let (quick, cfg) = (args.quick, args.cfg);
    let ns: Vec<usize> = if quick {
        vec![2, 4, 8]
    } else {
        (2..=8).collect()
    };

    let curve = |mode: &'static str, algo: Algorithm| -> Vec<(usize, f64)> {
        parallel_sweep(&ns, |n| {
            let params = GmParams::lanai_xp();
            match mode {
                "nic" => {
                    gm_nic_barrier(params, CollFeatures::paper(), n, algo, cfg.clone()).mean_us
                }
                _ => gm_host_barrier(params, n, algo, cfg.clone()).mean_us,
            }
        })
    };

    let fig = Figure::new(
        "fig6",
        "Fig. 6 — Barrier latency (µs), Myrinet LANai-XP, 8-node 2.4 GHz cluster",
        vec![
            Series::new("NIC-DS", curve("nic", Algorithm::Dissemination)),
            Series::new("NIC-PE", curve("nic", Algorithm::PairwiseExchange)),
            Series::new("Host-DS", curve("host", Algorithm::Dissemination)),
            Series::new("Host-PE", curve("host", Algorithm::PairwiseExchange)),
        ],
    )
    .with_manifest(Manifest::new(
        cfg.seed,
        format!(
            "gm lanai-xp, n=2..=8, warmup={}, iters={}, quick={}",
            cfg.warmup, cfg.iters, quick
        ),
    ));
    fig.print();
    // Quick (CI) sweeps must not downgrade the tracked full-fidelity
    // artifact.
    if !quick {
        fig.save().expect("write results/fig6.json");
    }

    let nic8 = fig.series[0].at(8).unwrap();
    let host8 = fig.series[2].at(8).unwrap();
    println!("\npaper anchors: NIC @8 = 14.20 µs (sim {nic8:.2}),");
    println!(
        "               improvement factor @8 = 2.64x (sim {:.2}x)",
        host8 / nic8
    );
}
