//! Event timeline: print the chronological trace of one steady-state
//! chained-RDMA barrier on a 4-node Quadrics cluster, plus the collective
//! dispatch trace of the GM protocol — a microscope on what the simulators
//! actually do per barrier.

use nicbar_core::elan_apps::ElanNicBarrierApp;
use nicbar_core::elan_chain::build_chains;
use nicbar_core::host_app::NicBarrierApp;
use nicbar_core::{Algorithm, GroupSpec, PaperCollective, BARRIER_GROUP};
use nicbar_elan::{ElanApp, ElanCluster, ElanClusterSpec, ElanParams};
use nicbar_gm::{GmApp, GmCluster, GmClusterSpec, GmParams, NicCollective};
use nicbar_net::NodeId;
use nicbar_sim::SimTime;

fn main() {
    let n = 4;

    // ---------------- Quadrics chained-RDMA timeline -----------------------
    println!("== One chained-RDMA barrier, 4 nodes, Quadrics/Elan3 ==");
    println!("   (steady state: trace of barrier #3 of 3)\n");
    let spec = ElanClusterSpec::new(ElanParams::elan3(), n).with_seed(1);
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let programs = build_chains(Algorithm::Dissemination, &members);
    let apps: Vec<Box<dyn ElanApp>> = (0..n)
        .map(|_| Box::new(ElanNicBarrierApp::new(3, 0.0)) as Box<dyn ElanApp>)
        .collect();
    let mut cluster = ElanCluster::build(spec, apps, programs);
    // Run two barriers untraced, then trace the third.
    loop {
        cluster.engine.step();
        let done = (0..n).all(|i| {
            cluster
                .app_ref::<ElanNicBarrierApp>(i)
                .log
                .completions
                .len()
                >= 2
        });
        if done {
            break;
        }
    }
    cluster.engine.enable_trace();
    let t0 = cluster.engine.now();
    cluster.run_until(SimTime::MAX);
    println!("     t(µs)   comp  event         detail");
    for r in cluster.engine.trace().iter() {
        let rel = r.time.saturating_sub(t0).as_us();
        // Decoding lives on the typed event itself (SpanEvent::describe).
        println!(
            "{rel:>10.3}  {:>5}  {:<12}  {}",
            r.component.0,
            r.label(),
            r.event.describe()
        );
    }
    if cluster.engine.trace().dropped() > 0 {
        println!(
            "warning: trace ring dropped {} records; timeline is truncated",
            cluster.engine.trace().dropped()
        );
    }
    let done_at = (0..n)
        .map(|i| {
            *cluster
                .app_ref::<ElanNicBarrierApp>(i)
                .log
                .completions
                .last()
                .unwrap()
        })
        .max()
        .unwrap();
    println!(
        "\nbarrier completed {:.3} µs after the traced window opened\n",
        done_at.saturating_sub(t0).as_us()
    );

    // ---------------- GM collective dispatch timeline -----------------------
    println!("== One NIC-protocol barrier, 4 nodes, Myrinet LANai-XP ==");
    println!("   (collective bypass trace: every coll send skips the queues)\n");
    let spec = GmClusterSpec::new(GmParams::lanai_xp(), n).with_seed(1);
    let apps: Vec<Box<dyn GmApp>> = (0..n)
        .map(|_| Box::new(NicBarrierApp::new(BARRIER_GROUP, 1, 0.0)) as Box<dyn GmApp>)
        .collect();
    let colls: Vec<Box<dyn NicCollective>> = (0..n)
        .map(|i| {
            Box::new(PaperCollective::new(
                NodeId(i),
                vec![GroupSpec::barrier(
                    BARRIER_GROUP,
                    members.clone(),
                    i,
                    Algorithm::Dissemination,
                    SimTime::from_us(400.0),
                )],
            )) as Box<dyn NicCollective>
        })
        .collect();
    let mut cluster = GmCluster::build(spec, apps, colls);
    cluster.engine.enable_trace();
    cluster.run_until(SimTime::from_us(1_000.0));
    println!("     t(µs)   comp  event         detail");
    for r in cluster.engine.trace().iter() {
        println!(
            "{:>10.3}  {:>5}  {:<12}  {}",
            r.time.as_us(),
            r.component.0,
            r.label(),
            r.event.describe()
        );
    }
    if cluster.engine.trace().dropped() > 0 {
        println!(
            "warning: trace ring dropped {} records; timeline is truncated",
            cluster.engine.trace().dropped()
        );
    }
    println!(
        "\n(component ids: 0..{} hosts, {}..{} NICs, {} fabric)",
        n - 1,
        n,
        2 * n - 1,
        2 * n
    );
}
