//! `engine_prof` — the parallel engine profiling itself.
//!
//! Arms the shard self-profiler ([`nicbar_sim::ShardProf`]) on a parallel
//! figure-scale barrier run and renders the three views of the capture:
//! the human `engine-prof` report (imbalance factor, cross-shard traffic,
//! window-efficiency percentiles, idle-time attribution), the Chrome-trace
//! shard-lane timeline (`--chrome PATH`), and the manifest-stamped
//! `results/engine_prof.json`.
//!
//! Flags:
//!
//! * `--quick` — CI smoke: 2 shards × 64 nodes instead of the full
//!   8 shards × 4096; never writes `results/`.
//! * `--check` — gate mode: assert the profile accounts for ≥95% of worker
//!   wall time and (full mode only) that the *disabled* profiler keeps the
//!   one-shard engine overhead within 2 percentage points of the committed
//!   `results/engine_sweep.json` baseline, and that the bottleneck the
//!   committed `results/engine_prof_pr7.json` capture named has a strictly
//!   smaller share of lost time today. On failure the report's top
//!   bottleneck attribution is printed before exiting non-zero.
//! * `--shards K`, `--nodes N` — override the run shape (shards clamp to
//!   the node count — excess shards would sit empty yet pay every window
//!   barrier).
//! * `--partition contiguous|profile=PATH` — partition strategy; `profile=`
//!   closes the loop by feeding a prior capture back into the partitioner.
//! * `--chrome PATH` — write the shard-lane timeline as Chrome trace JSON.
//!
//! Run with `cargo run --release -p nicbar-bench --bin engine_prof`.

use nicbar_bench::engineprof;
use nicbar_bench::json::Manifest;
use nicbar_core::{build_gm_nic_cluster, gm_nic_barrier, Algorithm, RunCfg};
use nicbar_gm::{CollFeatures, GmParams};
use nicbar_sim::{EngineProf, EngineSel, RunOutcome};
use std::time::Instant;

/// The profile must explain at least this fraction of worker wall time.
const ACCOUNTING_GATE: f64 = 0.95;
/// Allowed drift of the disabled-profiler one-shard overhead vs baseline.
const OVERHEAD_SLACK: f64 = 0.02;

/// Capture a profiled parallel run: build the cluster, arm the profiler,
/// run to the deadline, snapshot. Returns the profile and wall seconds.
fn capture(nodes: usize, shards: usize, cfg: &RunCfg) -> (EngineProf, f64) {
    let mut cluster = build_gm_nic_cluster(
        GmParams::lanai_xp(),
        CollFeatures::paper(),
        nodes,
        Algorithm::Dissemination,
        cfg,
        false,
    );
    cluster.engine.enable_prof();
    let start = Instant::now();
    let outcome = cluster.engine.run_until(cfg.deadline());
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(outcome, RunOutcome::Idle, "run hit the deadline, not idle");
    let prof = cluster
        .engine
        .prof_snapshot()
        .expect("parallel engine was built, profiler was armed");
    assert_eq!(
        prof.shards,
        shards.min(nodes),
        "builder clamps shards to nodes"
    );
    (prof, wall_s)
}

/// The fig5 figure point (n=16, gm, dissemination) under an explicit
/// engine, with the profiler left DISABLED — the same workload
/// `engine_sweep` committed its one-shard baseline from.
fn fig5_disabled_run(engine: EngineSel, shards: usize) -> f64 {
    let cfg = RunCfg {
        warmup: 50,
        iters: 5000,
        engine,
        shards,
        ..RunCfg::default()
    };
    let start = Instant::now();
    gm_nic_barrier(
        GmParams::lanai_9_1(),
        CollFeatures::paper(),
        16,
        Algorithm::Dissemination,
        cfg,
    );
    start.elapsed().as_secs_f64()
}

/// Disabled-path overhead gate: with the profiler never armed, the
/// parallel engine at one shard must stay within [`OVERHEAD_SLACK`] of the
/// committed baseline overhead. Paired back-to-back repeats with
/// alternating order, best pair wins — the same noise discipline as
/// `engine_sweep`'s gate.
fn disabled_overhead_gate() -> Result<(), String> {
    let baseline = engineprof::baseline_one_shard_overhead("results/engine_sweep.json");
    let Some(baseline) = baseline else {
        println!("no results/engine_sweep.json baseline; skipping overhead gate");
        return Ok(());
    };
    const GATE_REPEATS: usize = 7;
    let mut best: Option<(f64, f64)> = None;
    for r in 0..GATE_REPEATS {
        let (seq, par) = if r % 2 == 0 {
            let s = fig5_disabled_run(EngineSel::Sequential, 1);
            let p = fig5_disabled_run(EngineSel::Parallel, 1);
            (s, p)
        } else {
            let p = fig5_disabled_run(EngineSel::Parallel, 1);
            let s = fig5_disabled_run(EngineSel::Sequential, 1);
            (s, p)
        };
        if best.is_none_or(|(bs, bp)| par / seq < bp / bs) {
            best = Some((seq, par));
        }
    }
    let (seq_s, par_s) = best.expect("at least one repeat");
    let overhead = par_s / seq_s - 1.0;
    // The gate is against the committed baseline, floored at zero: a
    // baseline that happened to measure the parallel wrapper as *faster*
    // must not tighten the budget below "no regression + slack".
    let budget = baseline.max(0.0) + OVERHEAD_SLACK;
    println!(
        "profiler-disabled 1-shard overhead: {:+.2}% (baseline {:+.2}%, budget {:+.2}%)",
        overhead * 100.0,
        baseline * 100.0,
        budget * 100.0
    );
    if overhead > budget {
        return Err(format!(
            "disabled-profiler overhead {:+.2}% exceeds budget {:+.2}% — the \
             profiler hooks are not free when off",
            overhead * 100.0,
            budget * 100.0
        ));
    }
    println!(
        "profiler-disabled path within {:.0}% of baseline ✓",
        OVERHEAD_SLACK * 100.0
    );
    Ok(())
}

/// Bottleneck-delta gate: the bottleneck the committed PR-7 capture named
/// must hold a strictly smaller share of lost time in today's profile —
/// the check that this PR's adaptive lookahead / lock-free mailboxes /
/// profile-guided partition actually moved the number the profiler blamed.
fn bottleneck_delta_gate(prof: &EngineProf) -> Result<(), String> {
    const BASELINE: &str = "results/engine_prof_pr7.json";
    let Some((name, base_share)) = engineprof::baseline_bottleneck(BASELINE) else {
        println!("no {BASELINE} baseline; skipping bottleneck-delta gate");
        return Ok(());
    };
    let today = engineprof::bottleneck_share(prof, &name);
    println!(
        "'{name}' share of lost time: {:.1}% (committed baseline {:.1}%)",
        today * 100.0,
        base_share * 100.0
    );
    if today >= base_share {
        return Err(format!(
            "'{name}' still holds {:.1}% of lost time (baseline {:.1}%) — the \
             profile-guided loop did not shrink the named bottleneck",
            today * 100.0,
            base_share * 100.0
        ));
    }
    println!("named bottleneck's share shrank vs baseline ✓");
    Ok(())
}

/// Print the top idle-time attribution — the failure diagnosis `--check`
/// leaves behind so a red gate names its suspect.
fn print_attribution(prof: &EngineProf) {
    let att = prof.attribution();
    let (name, share) = att.dominant();
    eprintln!(
        "top bottleneck attribution: {name} ({:.1}% of lost time; \
         imbalance {} ns, lookahead stall {} ns, mailbox {} ns)",
        share * 100.0,
        att.imbalance_ns,
        att.stall_ns,
        att.mailbox_ns
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let check = argv.iter().any(|a| a == "--check");
    let value_of = |flag: &str| -> Option<&str> {
        argv.iter().position(|a| a == flag).map(|i| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .as_str()
        })
    };
    let (mut nodes, mut shards) = if quick { (64, 2) } else { (4096, 8) };
    if let Some(v) = value_of("--nodes") {
        nodes = v.parse().expect("--nodes must be an integer");
    }
    if let Some(v) = value_of("--shards") {
        shards = v.parse().expect("--shards must be an integer");
        assert!(shards >= 1, "--shards must be >= 1");
    }
    let chrome = value_of("--chrome").map(str::to_string);
    let partition = value_of("--partition")
        .map(nicbar_bench::parse_partition)
        .unwrap_or_default();
    // Excess shards would sit empty yet still pay every window barrier.
    shards = shards.min(nodes);

    // Figure-scale iteration counts: at 4096 nodes a handful of barrier
    // iterations already runs millions of events per shard, which is what
    // the profiler needs — statistics over windows, not over iterations.
    let cfg = RunCfg {
        warmup: 2,
        iters: if quick { 30 } else { 8 },
        engine: EngineSel::Parallel,
        shards,
        partition,
        ..RunCfg::default()
    };
    let label = format!("gm NIC-DS, {nodes} nodes");
    println!("== engine_prof: profiling {label}, {shards} shards ==\n");
    let (prof, wall_s) = capture(nodes, shards, &cfg);
    print!("{}", engineprof::report(&prof, &label, wall_s));

    if let Some(path) = chrome {
        std::fs::write(&path, engineprof::chrome_trace(&prof)).expect("write chrome trace");
        println!("\n[saved {path}]");
    }

    if !quick {
        let manifest = Manifest::new(
            cfg.seed,
            format!("engine_prof: {label}, {shards} shards, {} iters", cfg.iters),
        );
        std::fs::create_dir_all("results").expect("create results/");
        let path = "results/engine_prof.json";
        std::fs::write(path, engineprof::to_json(&prof, &label, wall_s, &manifest))
            .expect("write engine_prof.json");
        println!("\n[saved {path}]");
    }

    if !check {
        return;
    }

    println!("\n== engine_prof --check ==\n");
    let accounted = prof.accounted_fraction();
    println!(
        "wall accounting: {:.1}% of worker wall time (gate: >= {:.0}%)",
        accounted * 100.0,
        ACCOUNTING_GATE * 100.0
    );
    if accounted < ACCOUNTING_GATE {
        eprintln!(
            "engine_prof --check: profile accounts for only {:.1}% of worker wall time",
            accounted * 100.0
        );
        print_attribution(&prof);
        std::process::exit(1);
    }
    let (dom, dom_share) = prof.attribution().dominant();
    println!(
        "dominant bottleneck: {dom} ({:.1}% of lost time)",
        dom_share * 100.0
    );

    if !quick {
        if let Err(msg) = bottleneck_delta_gate(&prof) {
            eprintln!("engine_prof --check: {msg}");
            print_attribution(&prof);
            std::process::exit(1);
        }
        if let Err(msg) = disabled_overhead_gate() {
            eprintln!("engine_prof --check: {msg}");
            print_attribution(&prof);
            std::process::exit(1);
        }
    }
    println!("\nengine_prof --check: all gates passed ✓");
}
