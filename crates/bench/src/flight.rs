//! Exporters for flight-recorder captures ([`nicbar_core::FlightData`]).
//!
//! Two output formats share one capture:
//!
//! * [`chrome_trace`] renders the Chrome trace-event JSON that Perfetto /
//!   `chrome://tracing` loads directly — per-barrier spans as complete
//!   (`"X"`) events with the phase breakdown in `args`, every trace record
//!   as an instant (`"i"`) event on its component's track.
//! * [`breakdown`] renders the human-readable per-phase latency table with
//!   the histogram quantiles.
//!
//! Both formats always report the capture's drop counters, so a truncated
//! recording can never masquerade as a complete one.

use crate::json::Writer;
use nicbar_core::FlightData;
use nicbar_sim::Phase;

/// Nanoseconds → microseconds for display and Chrome timestamps.
fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// The producing engine, rendered for stamps: `"sequential"` or
/// `"parallel(K)"`. Simulation results are byte-identical across engines;
/// the stamp makes a cross-engine diff of exporter output self-describing
/// (the *only* line that may differ names the engine).
pub fn engine_stamp(cap: &FlightData) -> String {
    if cap.engine == "parallel" {
        format!("parallel({})", cap.shards)
    } else {
        cap.engine.to_string()
    }
}

/// Render one or more captures as Chrome trace-event JSON (the "JSON Object
/// Format": a `traceEvents` array plus metadata). Each capture gets its own
/// `pid`; barrier spans sit on a dedicated track, trace records on one
/// track per emitting component. Timestamps are microseconds of simulated
/// time, as the format requires.
pub fn chrome_trace(captures: &[FlightData]) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("traceEvents");
    w.open_array();
    for (pid, cap) in captures.iter().enumerate() {
        let pid = pid as u64;
        // Process metadata: name the capture after its substrate and size.
        w.open_object();
        w.field("name");
        w.string("process_name");
        w.field("ph");
        w.string("M");
        w.field("pid");
        w.uint(pid);
        w.field("args");
        w.open_object();
        w.field("name");
        w.string(&format!(
            "{} barrier ({} nodes)",
            cap.substrate, cap.stats.n
        ));
        w.close_object();
        w.close_object();

        // Track 0 carries the per-barrier spans.
        w.open_object();
        w.field("name");
        w.string("thread_name");
        w.field("ph");
        w.string("M");
        w.field("pid");
        w.uint(pid);
        w.field("tid");
        w.uint(0);
        w.field("args");
        w.open_object();
        w.field("name");
        w.string("barrier spans");
        w.close_object();
        w.close_object();

        for span in &cap.spans {
            w.open_object();
            w.field("name");
            w.string(&format!("barrier seq {}", span.seq));
            w.field("cat");
            w.string(cap.substrate);
            w.field("ph");
            w.string("X");
            w.field("pid");
            w.uint(pid);
            w.field("tid");
            w.uint(0);
            w.field("ts");
            w.number(span.begin.as_us());
            w.field("dur");
            w.number(span.total().as_us());
            w.field("args");
            w.open_object();
            w.field("group");
            w.uint(span.group);
            w.field("events");
            w.uint(span.events);
            for phase in Phase::ALL {
                let ns = span.phase(phase);
                if ns > 0 {
                    w.field(&format!("{}_us", phase.name()));
                    w.number(us(ns));
                }
            }
            w.close_object();
            w.close_object();
        }

        // Every retained trace record becomes an instant event on a track
        // named after its component (tid = component id + 1; 0 is spans).
        for r in &cap.records {
            w.open_object();
            w.field("name");
            w.string(r.label());
            w.field("cat");
            w.string(cap.substrate);
            w.field("ph");
            w.string("i");
            w.field("s");
            w.string("t");
            w.field("pid");
            w.uint(pid);
            w.field("tid");
            w.uint(r.component.0 as u64 + 1);
            w.field("ts");
            w.number(r.time.as_us());
            w.field("args");
            w.open_object();
            w.field("detail");
            w.string(&r.event.describe());
            w.close_object();
            w.close_object();
        }
    }
    w.close_array();
    w.field("displayTimeUnit");
    w.string("ns");
    // Drop counters ride in metadata so a lossy capture is self-describing.
    w.field("otherData");
    w.open_object();
    for (pid, cap) in captures.iter().enumerate() {
        w.field(&format!("{}:{}", pid, "trace_dropped"));
        w.uint(cap.trace_dropped);
        w.field(&format!("{}:{}", pid, "spans_dropped"));
        w.uint(cap.spans_dropped);
        w.field(&format!("{}:{}", pid, "orphaned"));
        w.uint(cap.orphaned);
        w.field(&format!("{}:{}", pid, "engine"));
        w.string(&engine_stamp(cap));
    }
    w.close_object();
    w.close_object();
    w.finish()
}

/// Render the human-readable breakdown: per-phase latency attribution
/// averaged over the captured spans, the histogram quantiles, and the
/// phase-sum-vs-end-to-end consistency check.
pub fn breakdown(cap: &FlightData) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== flight capture: {} barrier, {} nodes ==",
        cap.substrate, cap.stats.n
    );
    let _ = writeln!(out, "engine: {}", engine_stamp(cap));
    let _ = writeln!(
        out,
        "spans: {} captured, {} trace records retained",
        cap.spans.len(),
        cap.records.len()
    );
    if cap.trace_dropped > 0 {
        let _ = writeln!(
            out,
            "warning: trace ring dropped {} records; instants are truncated",
            cap.trace_dropped
        );
    }
    if cap.spans_dropped > 0 {
        let _ = writeln!(
            out,
            "warning: recorder dropped {} span summaries (histograms still saw them)",
            cap.spans_dropped
        );
    }
    if cap.orphaned > 0 {
        let _ = writeln!(
            out,
            "note: {} events arrived with no open span (unattributed)",
            cap.orphaned
        );
    }
    if cap.spans.is_empty() {
        let _ = writeln!(out, "(no spans captured)");
        return out;
    }

    // Phase attribution, averaged over spans. Per-span phase sums equal the
    // span's end-to-end latency by construction; the table re-derives the
    // totals independently as a cross-check.
    let n_spans = cap.spans.len() as f64;
    let total_ns: u64 = cap.spans.iter().map(|s| s.total().as_ns()).sum();
    let phase_sum_ns: u64 = cap
        .spans
        .iter()
        .flat_map(|s| Phase::ALL.iter().map(|&p| s.phase(p)))
        .sum();
    let _ = writeln!(out, "\n{:>12} {:>12} {:>8}", "phase", "mean (µs)", "share");
    for phase in Phase::ALL {
        let ns: u64 = cap.spans.iter().map(|s| s.phase(phase)).sum();
        if ns == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>12} {:>12.3} {:>7.1}%",
            phase.name(),
            us(ns) / n_spans,
            ns as f64 / total_ns as f64 * 100.0
        );
    }
    let _ = writeln!(out, "{:>12} {:>12.3}", "end-to-end", us(total_ns) / n_spans);
    let drift = (phase_sum_ns as f64 - total_ns as f64).abs() / total_ns as f64;
    let _ = writeln!(
        out,
        "phase sums cover {:.3}% of end-to-end latency",
        phase_sum_ns as f64 / total_ns as f64 * 100.0
    );
    debug_assert!(drift < 0.01, "phase attribution drifted {drift}");

    if !cap.hists.is_empty() {
        let _ = writeln!(
            out,
            "\n{:>24} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "histogram (µs)", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in &cap.hists {
            let _ = writeln!(
                out,
                "{:>24} {:>7} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                name,
                h.count(),
                us(h.p50()),
                us(h.p95()),
                us(h.p99()),
                us(h.max())
            );
        }
    }
    out
}

/// Print [`breakdown`] to stdout.
pub fn print_breakdown(cap: &FlightData) {
    print!("{}", breakdown(cap));
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicbar_core::{gm_nic_barrier_flight, Algorithm, RunCfg};
    use nicbar_gm::{CollFeatures, GmParams};

    fn capture() -> FlightData {
        gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            4,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 1,
                iters: 4,
                ..RunCfg::default()
            },
        )
    }

    #[test]
    fn chrome_trace_contains_spans_and_instants() {
        let cap = capture();
        assert_eq!(cap.spans.len(), 5, "one span per epoch");
        let json = chrome_trace(std::slice::from_ref(&cap));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""), "complete span events");
        assert!(json.contains("\"ph\": \"i\""), "instant events");
        assert!(json.contains("barrier seq 0"));
        assert!(json.contains("\"0:trace_dropped\": 0"));
    }

    #[test]
    fn breakdown_phases_sum_to_end_to_end() {
        let cap = capture();
        for s in &cap.spans {
            let sum: u64 = nicbar_sim::Phase::ALL.iter().map(|&p| s.phase(p)).sum();
            assert_eq!(sum, s.total().as_ns(), "exact attribution per span");
        }
        let text = breakdown(&cap);
        assert!(text.contains("end-to-end"));
        assert!(text.contains("100.000% of end-to-end"), "got:\n{text}");
        assert!(!text.contains("warning:"), "clean capture warns nothing");
    }

    /// Overflow a real engine's trace ring through `Ctx::span` and check
    /// the drop count rides into both exporter outputs.
    #[test]
    fn overflowing_the_ring_reports_the_drop_count() {
        use nicbar_core::BarrierStats;
        use nicbar_sim::{Component, Ctx, Engine, SimTime, SpanEvent, Trace};

        struct Chatter;
        impl Component<u32> for Chatter {
            fn handle(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
                ctx.span(SpanEvent::Fire { unit: 0, dst: 1 });
                if msg > 0 {
                    ctx.send_self(SimTime::from_ns(10), msg - 1);
                }
            }
        }

        let mut engine: Engine<u32> = Engine::new(1);
        let id = engine.add(Chatter);
        *engine.trace_mut() = Trace::with_capacity(4);
        engine.schedule_at(SimTime::ZERO, id, 9);
        engine.run();
        assert_eq!(engine.trace().dropped(), 6, "10 emits into a 4-slot ring");

        let cap = FlightData {
            substrate: "gm",
            engine: "sequential",
            shards: 1,
            stats: BarrierStats {
                n: 1,
                mean_us: 0.0,
                per_iter_us: Vec::new(),
                wire_per_barrier: 0.0,
                counters: Vec::new(),
            },
            records: engine.trace().iter().copied().collect(),
            trace_dropped: engine.trace().dropped(),
            spans: Vec::new(),
            spans_dropped: 0,
            orphaned: 0,
            hists: Vec::new(),
            packets: Vec::new(),
            packets_dropped: 0,
            ledger: Vec::new(),
            ledger_dropped: 0,
        };
        let json = chrome_trace(std::slice::from_ref(&cap));
        assert!(json.contains("\"0:trace_dropped\": 6"), "got:\n{json}");
        let text = breakdown(&cap);
        assert!(text.contains("dropped 6 records"), "got:\n{text}");
    }

    #[test]
    fn exporters_stamp_the_producing_engine() {
        let cap = capture();
        assert_eq!(cap.engine, "sequential");
        assert!(breakdown(&cap).contains("engine: sequential"));
        assert!(chrome_trace(std::slice::from_ref(&cap)).contains("\"0:engine\": \"sequential\""));

        let par = gm_nic_barrier_flight(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            4,
            Algorithm::Dissemination,
            RunCfg {
                warmup: 1,
                iters: 4,
                engine: nicbar_sim::EngineSel::Parallel,
                shards: 2,
                ..RunCfg::default()
            },
        );
        assert_eq!((par.engine, par.shards), ("parallel", 2));
        assert!(breakdown(&par).contains("engine: parallel(2)"));
        assert!(chrome_trace(std::slice::from_ref(&par)).contains("\"0:engine\": \"parallel(2)\""));
    }

    #[test]
    fn dropped_counts_surface_in_every_exporter() {
        let mut cap = capture();
        cap.trace_dropped = 7;
        cap.spans_dropped = 3;
        let json = chrome_trace(std::slice::from_ref(&cap));
        assert!(json.contains("\"0:trace_dropped\": 7"), "got:\n{json}");
        assert!(json.contains("\"0:spans_dropped\": 3"));
        let text = breakdown(&cap);
        assert!(text.contains("dropped 7 records"), "got:\n{text}");
        assert!(text.contains("dropped 3 span summaries"));
    }
}
