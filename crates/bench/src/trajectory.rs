//! Perf-trajectory artifacts (`BENCH_*.json`, at the repository root).
//!
//! A trajectory is the distribution-aware companion of a figure: per node
//! count it records the median and p99 barrier latency (from the full
//! per-iteration sample vector, not just the mean), with the run manifest
//! embedded so the artifact states which seed, config, and git revision
//! produced it. The `BENCH_` prefix marks the files the CI gate tracks
//! across commits; they live at the repo root (not under `results/`) so
//! the perf trajectory is visible at the top level of every checkout.

use crate::json::{Manifest, Writer};
use nicbar_core::BarrierStats;
use std::path::PathBuf;

/// One node count's latency summary.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Group size.
    pub n: usize,
    /// Mean latency over the measured window, µs.
    pub mean_us: f64,
    /// Median (p50) latency, µs.
    pub median_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Measured iterations behind the quantiles.
    pub iters: usize,
}

/// Summarize one sweep point from its full stats. Quantiles use the
/// nearest-rank method over the sorted per-iteration samples.
pub fn point(n: usize, stats: &BarrierStats) -> TrajectoryPoint {
    let mut v = stats.per_iter_us.clone();
    v.sort_by(f64::total_cmp);
    let q = |f: f64| -> f64 {
        if v.is_empty() {
            return stats.mean_us;
        }
        let idx = ((v.len() as f64 - 1.0) * f).round() as usize;
        v[idx.min(v.len() - 1)]
    };
    TrajectoryPoint {
        n,
        mean_us: stats.mean_us,
        median_us: q(0.5),
        p99_us: q(0.99),
        iters: v.len(),
    }
}

/// Render a trajectory artifact as JSON.
pub fn to_json(
    bench: &str,
    series: &[(&str, Vec<TrajectoryPoint>)],
    manifest: &Manifest,
) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("bench");
    w.string(bench);
    manifest.emit(&mut w);
    w.field("series");
    w.open_array();
    for (label, points) in series {
        w.open_object();
        w.field("label");
        w.string(label);
        w.field("points");
        w.open_array();
        for p in points {
            w.open_object();
            w.field("n");
            w.uint(p.n as u64);
            w.field("mean_us");
            w.number(p.mean_us);
            w.field("median_us");
            w.number(p.median_us);
            w.field("p99_us");
            w.number(p.p99_us);
            w.field("iters");
            w.uint(p.iters as u64);
            w.close_object();
        }
        w.close_array();
        w.close_object();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// Write `BENCH_<bench>.json` at the repository root (the working
/// directory of a `cargo run` invocation) and return its path.
pub fn save(
    bench: &str,
    series: &[(&str, Vec<TrajectoryPoint>)],
    manifest: &Manifest,
) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{bench}.json"));
    std::fs::write(&path, to_json(bench, series, manifest))?;
    println!("[saved {}]", path.display());
    Ok(path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;

    fn stats(samples: &[f64]) -> BarrierStats {
        BarrierStats {
            n: 4,
            mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
            per_iter_us: samples.to_vec(),
            wire_per_barrier: 0.0,
            counters: Vec::new(),
        }
    }

    #[test]
    fn quantiles_use_nearest_rank_over_sorted_samples() {
        let s = stats(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let p = point(4, &s);
        assert_eq!(p.median_us, 3.0);
        assert_eq!(p.p99_us, 5.0);
        assert_eq!(p.iters, 5);
    }

    #[test]
    fn artifact_embeds_the_manifest() {
        let m = Manifest::new(7, "test config");
        let pts = vec![point(2, &stats(&[1.0, 2.0]))];
        let json = to_json("figX", &[("NIC-DS", pts)], &m);
        assert!(json.contains("\"bench\": \"figX\""));
        assert!(json.contains("\"manifest\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"config\": \"test config\""));
        assert!(json.contains("\"median_us\""));
        assert!(json.contains("\"p99_us\""));
    }
}
