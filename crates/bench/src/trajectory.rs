//! Perf-trajectory artifacts (`BENCH_*.json`, at the repository root).
//!
//! A trajectory is the distribution-aware companion of a figure: per node
//! count it records the median and p99 barrier latency (from the full
//! per-iteration sample vector, not just the mean), with the run manifest
//! embedded so the artifact states which seed, config, and git revision
//! produced it. The `BENCH_` prefix marks the files the CI gate tracks
//! across commits; they live at the repo root (not under `results/`) so
//! the perf trajectory is visible at the top level of every checkout.
//!
//! The artifact is *append-only*: each regeneration adds one run object to
//! a `"runs"` array instead of truncating the file, so the trajectory is a
//! history — every entry carries its own manifest (seed, config hash, git
//! revision) and the file answers "when did this curve move?" without
//! spelunking CI logs. The history is capped at [`MAX_RUNS`] entries
//! (oldest dropped first), and a legacy single-run file (top-level
//! `"series"`) restarts the history rather than corrupting it.

use crate::json::{Manifest, Writer};
use nicbar_core::BarrierStats;
use std::path::PathBuf;

/// Most runs retained in one `BENCH_*.json` history; the oldest entries
/// are dropped first. 64 runs × a few KiB keeps the tracked artifact far
/// below anything a repository would notice.
pub const MAX_RUNS: usize = 64;

/// One node count's latency summary.
#[derive(Clone, Debug)]
pub struct TrajectoryPoint {
    /// Group size.
    pub n: usize,
    /// Mean latency over the measured window, µs.
    pub mean_us: f64,
    /// Median (p50) latency, µs.
    pub median_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Measured iterations behind the quantiles.
    pub iters: usize,
}

/// Summarize one sweep point from its full stats. Quantiles use the
/// nearest-rank method over the sorted per-iteration samples.
pub fn point(n: usize, stats: &BarrierStats) -> TrajectoryPoint {
    let mut v = stats.per_iter_us.clone();
    v.sort_by(f64::total_cmp);
    let q = |f: f64| -> f64 {
        if v.is_empty() {
            return stats.mean_us;
        }
        let idx = ((v.len() as f64 - 1.0) * f).round() as usize;
        v[idx.min(v.len() - 1)]
    };
    TrajectoryPoint {
        n,
        mean_us: stats.mean_us,
        median_us: q(0.5),
        p99_us: q(0.99),
        iters: v.len(),
    }
}

/// Render one run body: the manifest plus the series, as a standalone JSON
/// object ready for [`append_run`].
pub fn run_json(series: &[(&str, Vec<TrajectoryPoint>)], manifest: &Manifest) -> String {
    let mut w = Writer::new();
    w.open_object();
    manifest.emit(&mut w);
    w.field("series");
    w.open_array();
    for (label, points) in series {
        w.open_object();
        w.field("label");
        w.string(label);
        w.field("points");
        w.open_array();
        for p in points {
            w.open_object();
            w.field("n");
            w.uint(p.n as u64);
            w.field("mean_us");
            w.number(p.mean_us);
            w.field("median_us");
            w.number(p.median_us);
            w.field("p99_us");
            w.number(p.p99_us);
            w.field("iters");
            w.uint(p.iters as u64);
            w.close_object();
        }
        w.close_array();
        w.close_object();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// Split the `"runs"` array of an existing trajectory artifact back into
/// its run-object sources. Returns an empty vector when the text has no
/// `"runs"` array — including the legacy single-run schema (top-level
/// `"series"`), which deliberately restarts the history. The scanner is
/// string-aware (a `{` inside a manifest's config string is data, not
/// structure).
fn extract_runs(text: &str) -> Vec<String> {
    let Some(key) = text.find("\"runs\"") else {
        return Vec::new();
    };
    let Some(open) = text[key..].find('[') else {
        return Vec::new();
    };
    let mut runs = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = None;
    for (i, c) in text[key + open..].char_indices() {
        let at = key + open + i;
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(at);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        runs.push(text[s..=at].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    runs
}

/// Append `run_body` (one JSON object, e.g. from [`run_json`]) to the
/// `BENCH_<bench>.json` history at the repository root and return the
/// path. Existing runs are preserved (capped at [`MAX_RUNS`], oldest
/// dropped); a missing or legacy-schema file starts a fresh history.
pub fn append_run(bench: &str, run_body: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{bench}.json"));
    append_run_at(&path, bench, run_body)?;
    Ok(path)
}

/// [`append_run`] against an explicit file path (testable without touching
/// the process working directory).
pub fn append_run_at(path: &std::path::Path, bench: &str, run_body: &str) -> std::io::Result<()> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(text) => extract_runs(&text),
        Err(_) => Vec::new(),
    };
    runs.push(run_body.to_string());
    if runs.len() > MAX_RUNS {
        let drop = runs.len() - MAX_RUNS;
        runs.drain(..drop);
    }
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"");
    out.push_str(bench);
    out.push_str("\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        for line in run.trim().lines() {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
        // The indenter re-normalizes each retained run, so re-appending is
        // idempotent in shape; only the trailing comma distinguishes runs.
        if i + 1 < runs.len() {
            out.truncate(out.trim_end().len());
            out.push_str(",\n");
        }
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Append this run to `BENCH_<bench>.json` at the repository root (the
/// working directory of a `cargo run` invocation) and return its path.
pub fn save(
    bench: &str,
    series: &[(&str, Vec<TrajectoryPoint>)],
    manifest: &Manifest,
) -> std::io::Result<PathBuf> {
    let path = append_run(bench, &run_json(series, manifest))?;
    println!("[saved {}]", path.display());
    Ok(path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;

    fn stats(samples: &[f64]) -> BarrierStats {
        BarrierStats {
            n: 4,
            mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
            per_iter_us: samples.to_vec(),
            wire_per_barrier: 0.0,
            counters: Vec::new(),
        }
    }

    #[test]
    fn quantiles_use_nearest_rank_over_sorted_samples() {
        let s = stats(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let p = point(4, &s);
        assert_eq!(p.median_us, 3.0);
        assert_eq!(p.p99_us, 5.0);
        assert_eq!(p.iters, 5);
    }

    #[test]
    fn artifact_embeds_the_manifest() {
        let m = Manifest::new(7, "test config");
        let pts = vec![point(2, &stats(&[1.0, 2.0]))];
        let json = run_json(&[("NIC-DS", pts)], &m);
        assert!(json.contains("\"manifest\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"config\": \"test config\""));
        assert!(json.contains("\"median_us\""));
        assert!(json.contains("\"p99_us\""));
    }

    #[test]
    fn extract_runs_round_trips_and_ignores_string_braces() {
        let m = Manifest::new(1, "braces { in } config \"quoted\"");
        let body = run_json(&[("X", vec![point(2, &stats(&[1.0]))])], &m);
        let file = format!("{{\n  \"bench\": \"t\",\n  \"runs\": [\n{body},\n{body}\n  ]\n}}\n");
        let runs = extract_runs(&file);
        assert_eq!(runs.len(), 2);
        for r in &runs {
            assert!(r.contains("\"manifest\""));
            assert!(r.trim().starts_with('{') && r.trim().ends_with('}'));
        }
    }

    #[test]
    fn legacy_single_run_schema_restarts_the_history() {
        assert!(extract_runs("{\n  \"bench\": \"x\",\n  \"series\": [{}]\n}").is_empty());
        assert!(extract_runs("").is_empty());
    }

    #[test]
    fn history_is_append_only_and_capped() {
        let dir = std::env::temp_dir().join(format!("nicbar_traj_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_t.json");
        let m = Manifest::new(9, "traj test");
        let body = run_json(&[("X", vec![point(2, &stats(&[1.0, 2.0]))])], &m);

        // Legacy file: one run replaces it.
        std::fs::write(&path, "{\n  \"bench\": \"t\",\n  \"series\": []\n}").unwrap();
        append_run_at(&path, "t", &body).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(extract_runs(&text).len(), 1);
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"manifest\""));

        // Appends grow the history monotonically...
        for i in 0..MAX_RUNS + 5 {
            let n = extract_runs(&std::fs::read_to_string(&path).unwrap()).len();
            append_run_at(&path, "t", &body).unwrap();
            let after = extract_runs(&std::fs::read_to_string(&path).unwrap()).len();
            assert!(after >= n, "append {i} shrank the history: {n} -> {after}");
            // ...up to the cap.
            assert!(after <= MAX_RUNS);
        }
        let final_runs = extract_runs(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(final_runs.len(), MAX_RUNS);

        std::fs::remove_dir_all(&dir).ok();
    }
}
