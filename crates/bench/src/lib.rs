//! # nicbar-bench — the harness that regenerates the paper's evaluation
//!
//! One binary per figure (`fig5`, `fig6`, `fig7`, `fig8`), the headline
//! table (`table1`), the feature ablation (`ablation`), and the engine
//! throughput harness (`engine_sweep`). Each binary prints the paper's
//! series side by side with the simulated ones and writes machine-readable
//! JSON under `results/`.
//!
//! Criterion benches (`benches/figures.rs`, `benches/shm.rs`,
//! `benches/engine.rs`) exercise the same code paths under `cargo bench`.

#![warn(missing_docs)]

use std::io::Write;
use std::path::Path;

pub mod critpath;
pub mod engineprof;
pub mod flight;
pub mod json;
pub mod netdump;
pub mod seed_engine;
pub mod trajectory;

pub use json::{Manifest, MANIFEST_SCHEMA};

/// One labelled curve of `(n, latency_us)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Curve label (e.g. "NIC-DS").
    pub label: String,
    /// `(nodes, latency µs)` points.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Build from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(usize, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Latency at a given `n`, if present.
    pub fn at(&self, n: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(pn, _)| pn == n)
            .map(|&(_, v)| v)
    }
}

/// A complete figure: title plus series, serialized to `results/`.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure identifier ("fig5", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Run manifest embedded in the artifact (seed, config hash, git rev).
    pub manifest: Option<Manifest>,
}

impl Figure {
    /// Assemble a figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, series: Vec<Series>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            series,
            manifest: None,
        }
    }

    /// Attach a run manifest, embedded under `"manifest"` in the JSON.
    pub fn with_manifest(mut self, manifest: Manifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// Print as an aligned text table.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let ns: Vec<usize> = {
            let mut all: Vec<usize> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(n, _)| n))
                .collect();
            all.sort_unstable();
            all.dedup();
            all
        };
        print!("{:>6}", "nodes");
        for s in &self.series {
            print!("{:>16}", s.label);
        }
        println!();
        for n in ns {
            print!("{n:>6}");
            for s in &self.series {
                match s.at(n) {
                    Some(v) => print!("{v:>16.2}"),
                    None => print!("{:>16}", "-"),
                }
            }
            println!();
        }
    }

    /// Render as JSON (the same shape `serde_json` used to emit for the
    /// derive: `points` as arrays of `[n, latency]` pairs).
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.open_object();
        w.field("id");
        w.string(&self.id);
        w.field("title");
        w.string(&self.title);
        if let Some(m) = &self.manifest {
            m.emit(&mut w);
        }
        w.field("series");
        w.open_array();
        for s in &self.series {
            w.open_object();
            w.field("label");
            w.string(&s.label);
            w.field("points");
            w.open_array();
            for &(n, v) in &s.points {
                w.compact_array(&[n as f64, v]);
            }
            w.close_array();
            w.close_object();
        }
        w.close_array();
        w.close_object();
        w.finish()
    }

    /// Write JSON to `results/<id>.json` (creating the directory).
    pub fn save(&self) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        println!("[saved {}]", path.display());
        Ok(())
    }
}

/// Run `f` for every `n` in parallel. Each point is an independent
/// deterministic simulation, so the work is shared across at most
/// `available_parallelism` OS threads pulling indices from an atomic work
/// queue — a 40-point sweep no longer spawns 40 threads.
pub fn parallel_sweep<F>(ns: &[usize], f: F) -> Vec<(usize, f64)>
where
    F: Fn(usize) -> f64 + Sync,
{
    parallel_sweep_map(ns, f)
}

/// Generic [`parallel_sweep`]: collect any `Send` result per point, in
/// `n` order. Used where a sweep needs the full [`nicbar_core::BarrierStats`]
/// (per-iteration samples for median/p99), not just the mean.
pub fn parallel_sweep_map<T, F>(ns: &[usize], f: F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if ns.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(ns.len());
    let next = AtomicUsize::new(0);
    let merged = std::sync::Mutex::new(Vec::with_capacity(ns.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&n) = ns.get(i) else { break };
                    local.push((n, f(n)));
                }
                merged.lock().expect("sweep worker panicked").extend(local);
            });
        }
    });
    let mut out = merged.into_inner().expect("sweep worker panicked");
    out.sort_by_key(|&(n, _)| n);
    out
}

/// The benchmark iteration counts used by the figure binaries. The paper
/// uses 100 warm-up + 10 000 measured iterations on hardware; the simulated
/// fabric is deterministic, so 100 + 2 000 reaches the identical steady
/// state at a fraction of the wall time (changing this only narrows the
/// already-negligible variance).
pub fn figure_cfg() -> nicbar_core::RunCfg {
    nicbar_core::RunCfg {
        warmup: 100,
        iters: 2000,
        ..nicbar_core::RunCfg::default()
    }
}

/// Reduced iteration counts for Criterion benches (wall-time bounded).
pub fn criterion_cfg() -> nicbar_core::RunCfg {
    nicbar_core::RunCfg {
        warmup: 20,
        iters: 200,
        ..nicbar_core::RunCfg::default()
    }
}

/// CI-smoke iteration counts used by the figure binaries under `--quick`.
pub fn quick_cfg() -> nicbar_core::RunCfg {
    nicbar_core::RunCfg {
        warmup: 10,
        iters: 100,
        ..nicbar_core::RunCfg::default()
    }
}

/// The command-line options every figure binary understands, parsed once.
#[derive(Clone, Debug)]
pub struct FigArgs {
    /// `--quick`: CI smoke mode — shrink the sweep and iteration counts.
    pub quick: bool,
    /// `--flight`: opt into a flight-recorded capture after the sweep.
    pub flight: bool,
    /// `--prof`: arm the engine self-profiler and print an `engine-prof`
    /// report for one parallel run after the sweep.
    pub prof: bool,
    /// [`quick_cfg`] under `--quick`, [`figure_cfg`] otherwise, with
    /// `--engine`/`--shards`/`--partition` already threaded in.
    pub cfg: nicbar_core::RunCfg,
}

/// Parse a `--partition` flag value: `contiguous` (the default even split)
/// or `profile=<path>` (profile-guided, reading a prior
/// `results/engine_prof.json`-shaped capture).
pub fn parse_partition(value: &str) -> nicbar_sim::PartitionSel {
    match value {
        "contiguous" => nicbar_sim::PartitionSel::Contiguous,
        other => match other.strip_prefix("profile=") {
            Some(path) => engineprof::partition_from_profile(path).unwrap_or_else(|| {
                panic!("--partition profile={path}: not a readable engine_prof capture")
            }),
            None => panic!("--partition must be contiguous|profile=<path>, got {other}"),
        },
    }
}

/// Parse the figure binaries' shared flags from `std::env::args`:
/// `--quick`, `--flight`, `--prof`, `--engine <auto|sequential|parallel>`,
/// `--shards <K>` and `--partition <contiguous|profile=PATH>`.
pub fn fig_args() -> FigArgs {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flight = args.iter().any(|a| a == "--flight");
    let prof = args.iter().any(|a| a == "--prof");
    let mut cfg = if quick { quick_cfg() } else { figure_cfg() };
    let value_of = |flag: &str| -> Option<&str> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .as_str()
        })
    };
    if let Some(engine) = value_of("--engine") {
        cfg.engine = match engine {
            "auto" => nicbar_sim::EngineSel::Auto,
            "sequential" => nicbar_sim::EngineSel::Sequential,
            "parallel" => nicbar_sim::EngineSel::Parallel,
            other => panic!("--engine must be auto|sequential|parallel, got {other}"),
        };
    }
    if let Some(shards) = value_of("--shards") {
        cfg.shards = shards
            .parse()
            .unwrap_or_else(|_| panic!("--shards must be a positive integer, got {shards}"));
        assert!(cfg.shards >= 1, "--shards must be >= 1");
    }
    if let Some(partition) = value_of("--partition") {
        cfg.partition = parse_partition(partition);
    }
    FigArgs {
        quick,
        flight,
        prof,
        cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let s = Series::new("x", vec![(2, 1.0), (4, 2.0)]);
        assert_eq!(s.at(4), Some(2.0));
        assert_eq!(s.at(8), None);
    }

    #[test]
    fn parallel_sweep_is_ordered_and_complete() {
        let pts = parallel_sweep(&[8, 2, 4], |n| n as f64 * 1.5);
        assert_eq!(pts, vec![(2, 3.0), (4, 6.0), (8, 12.0)]);
    }

    #[test]
    fn parallel_sweep_handles_more_points_than_cores() {
        let ns: Vec<usize> = (1..=97).collect();
        let pts = parallel_sweep(&ns, |n| n as f64);
        assert_eq!(pts.len(), 97);
        assert!(pts.iter().all(|&(n, v)| v == n as f64));
    }

    #[test]
    fn figure_print_does_not_panic() {
        let fig = Figure::new(
            "t",
            "test figure",
            vec![
                Series::new("a", vec![(2, 1.0)]),
                Series::new("b", vec![(2, 2.0), (4, 3.0)]),
            ],
        );
        fig.print();
    }

    #[test]
    fn figure_json_shape() {
        let fig = Figure::new("t", "ti\"tle", vec![Series::new("a", vec![(2, 1.5)])]);
        let j = fig.to_json();
        assert!(j.contains("\"id\": \"t\""));
        assert!(j.contains("\"ti\\\"tle\""));
        assert!(j.contains("[2, 1.5]"), "got: {j}");
    }
}
