//! # nicbar-bench — the harness that regenerates the paper's evaluation
//!
//! One binary per figure (`fig5`, `fig6`, `fig7`, `fig8`), the headline
//! table (`table1`), and the feature ablation (`ablation`). Each binary
//! prints the paper's series side by side with the simulated ones and
//! writes machine-readable JSON under `results/`.
//!
//! Criterion benches (`benches/figures.rs`, `benches/shm.rs`) exercise the
//! same code paths under `cargo bench`.

#![warn(missing_docs)]

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// One labelled curve of `(n, latency_us)` points.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// Curve label (e.g. "NIC-DS").
    pub label: String,
    /// `(nodes, latency µs)` points.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Build from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(usize, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Latency at a given `n`, if present.
    pub fn at(&self, n: usize) -> Option<f64> {
        self.points.iter().find(|&&(pn, _)| pn == n).map(|&(_, v)| v)
    }
}

/// A complete figure: title plus series, serialized to `results/`.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Figure identifier ("fig5", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Assemble a figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, series: Vec<Series>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            series,
        }
    }

    /// Print as an aligned text table.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let ns: Vec<usize> = {
            let mut all: Vec<usize> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(n, _)| n))
                .collect();
            all.sort_unstable();
            all.dedup();
            all
        };
        print!("{:>6}", "nodes");
        for s in &self.series {
            print!("{:>16}", s.label);
        }
        println!();
        for n in ns {
            print!("{n:>6}");
            for s in &self.series {
                match s.at(n) {
                    Some(v) => print!("{v:>16.2}"),
                    None => print!("{:>16}", "-"),
                }
            }
            println!();
        }
    }

    /// Write JSON to `results/<id>.json` (creating the directory).
    pub fn save(&self) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(self).expect("figure serializes");
        f.write_all(json.as_bytes())?;
        println!("[saved {}]", path.display());
        Ok(())
    }
}

/// Run `f` for every `n` in parallel (one OS thread per point — each point
/// is an independent deterministic simulation).
pub fn parallel_sweep<F>(ns: &[usize], f: F) -> Vec<(usize, f64)>
where
    F: Fn(usize) -> f64 + Sync,
{
    let mut out: Vec<(usize, f64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = ns
            .iter()
            .map(|&n| {
                let f = &f;
                scope.spawn(move |_| (n, f(n)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    out.sort_by_key(|&(n, _)| n);
    out
}

/// The benchmark iteration counts used by the figure binaries. The paper
/// uses 100 warm-up + 10 000 measured iterations on hardware; the simulated
/// fabric is deterministic, so 100 + 2 000 reaches the identical steady
/// state at a fraction of the wall time (changing this only narrows the
/// already-negligible variance).
pub fn figure_cfg() -> nicbar_core::RunCfg {
    nicbar_core::RunCfg {
        warmup: 100,
        iters: 2000,
        ..nicbar_core::RunCfg::default()
    }
}

/// Reduced iteration counts for Criterion benches (wall-time bounded).
pub fn criterion_cfg() -> nicbar_core::RunCfg {
    nicbar_core::RunCfg {
        warmup: 20,
        iters: 200,
        ..nicbar_core::RunCfg::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let s = Series::new("x", vec![(2, 1.0), (4, 2.0)]);
        assert_eq!(s.at(4), Some(2.0));
        assert_eq!(s.at(8), None);
    }

    #[test]
    fn parallel_sweep_is_ordered_and_complete() {
        let pts = parallel_sweep(&[8, 2, 4], |n| n as f64 * 1.5);
        assert_eq!(pts, vec![(2, 3.0), (4, 6.0), (8, 12.0)]);
    }

    #[test]
    fn figure_print_does_not_panic() {
        let fig = Figure::new(
            "t",
            "test figure",
            vec![
                Series::new("a", vec![(2, 1.0)]),
                Series::new("b", vec![(2, 2.0), (4, 3.0)]),
            ],
        );
        fig.print();
    }
}
