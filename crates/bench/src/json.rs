//! A tiny pretty-printing JSON writer.
//!
//! The build environment is offline, so `serde_json` is unavailable; the
//! bench outputs are flat figure/series records, for which a push-down
//! writer is entirely sufficient. Output is valid JSON with two-space
//! indentation.

/// Incremental JSON writer. Call the `open_*`/`close_*`/value methods in
/// document order; commas and indentation are inserted automatically.
#[derive(Default)]
pub struct Writer {
    out: String,
    depth: usize,
    /// Whether a value has already been written at the current nesting level
    /// (controls comma insertion).
    has_item: Vec<bool>,
    /// A field name was just written; the next value goes on the same line.
    after_field: bool,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    fn pre_value(&mut self) {
        if self.after_field {
            self.after_field = false;
            return;
        }
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn close_container(&mut self, close: char) {
        self.depth -= 1;
        if self.has_item.pop() == Some(true) {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
        self.out.push(close);
    }

    /// Begin an object (`{`).
    pub fn open_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// End the current object (`}`).
    pub fn close_object(&mut self) {
        self.close_container('}');
    }

    /// Begin an array (`[`).
    pub fn open_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// End the current array (`]`). Short arrays of plain numbers stay on
    /// one line.
    pub fn close_array(&mut self) {
        self.close_container(']');
    }

    /// Write an object field name; the next write supplies its value.
    pub fn field(&mut self, name: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, name);
        self.out.push_str("\": ");
        self.after_field = true;
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
    }

    /// Write a numeric value. Integral floats print without an exponent or
    /// trailing fraction noise; non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn number(&mut self, v: f64) {
        self.pre_value();
        self.out.push_str(&render_number(v));
    }

    /// Write an array of numbers inline on one line: `[2, 1.5]`.
    pub fn compact_array(&mut self, values: &[f64]) {
        self.pre_value();
        self.out.push('[');
        for (i, &v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&render_number(v));
        }
        self.out.push(']');
    }

    /// Write an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&format!("{v}"));
    }

    /// Finish, returning the document (with a trailing newline).
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

fn render_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_fields() {
        let mut w = Writer::new();
        w.open_object();
        w.field("a");
        w.number(1.0);
        w.field("b");
        w.string("x\"y");
        w.close_object();
        let doc = w.finish();
        assert_eq!(doc, "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\"\n}\n");
    }

    #[test]
    fn compact_array_stays_inline() {
        let mut w = Writer::new();
        w.open_array();
        w.compact_array(&[2.0, 1.5]);
        w.compact_array(&[4.0, 3.25]);
        w.close_array();
        let doc = w.finish();
        assert!(doc.contains("[2, 1.5]"), "got: {doc}");
        assert!(doc.contains("[4, 3.25]"), "got: {doc}");
    }

    #[test]
    fn non_finite_becomes_null() {
        let mut w = Writer::new();
        w.open_array();
        w.number(f64::NAN);
        w.close_array();
        assert!(w.finish().contains("null"));
    }

    #[test]
    fn empty_object() {
        let mut w = Writer::new();
        w.open_object();
        w.close_object();
        assert_eq!(w.finish(), "{}\n");
    }
}
