//! A tiny pretty-printing JSON writer.
//!
//! The build environment is offline, so `serde_json` is unavailable; the
//! bench outputs are flat figure/series records, for which a push-down
//! writer is entirely sufficient. Output is valid JSON with two-space
//! indentation.

/// A run manifest embedded in every `results/*.json` artifact: enough to
/// reproduce the run (seed, config summary + hash) and to tell which build
/// produced it (git revision, schema version).
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Artifact schema version; bump when the JSON shape changes.
    pub schema: u32,
    /// Master seed of the runs behind the artifact.
    pub seed: u64,
    /// Human-readable configuration summary.
    pub config: String,
    /// FNV-1a hash of `config` (quick equality check across artifacts).
    pub config_hash: u64,
    /// Git revision of the producing tree ("unknown" outside a checkout).
    pub git_rev: String,
}

/// Current manifest schema version.
pub const MANIFEST_SCHEMA: u32 = 1;

impl Manifest {
    /// Build a manifest for `seed` and a config summary string.
    pub fn new(seed: u64, config: impl Into<String>) -> Self {
        let config = config.into();
        Manifest {
            schema: MANIFEST_SCHEMA,
            seed,
            config_hash: fnv1a(config.as_bytes()),
            config,
            git_rev: git_rev(),
        }
    }

    /// Emit as a `"manifest": {...}` field on the writer's current object.
    pub fn emit(&self, w: &mut Writer) {
        w.field("manifest");
        w.open_object();
        w.field("schema");
        w.uint(self.schema as u64);
        w.field("seed");
        w.uint(self.seed);
        w.field("config");
        w.string(&self.config);
        w.field("config_hash");
        w.string(&format!("{:016x}", self.config_hash));
        w.field("git_rev");
        w.string(&self.git_rev);
        w.close_object();
    }
}

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The producing git revision, resolved once per process ("unknown" when
/// git or the repository is unavailable).
fn git_rev() -> String {
    use std::sync::OnceLock;
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
    .clone()
}

/// Incremental JSON writer. Call the `open_*`/`close_*`/value methods in
/// document order; commas and indentation are inserted automatically.
#[derive(Default)]
pub struct Writer {
    out: String,
    depth: usize,
    /// Whether a value has already been written at the current nesting level
    /// (controls comma insertion).
    has_item: Vec<bool>,
    /// A field name was just written; the next value goes on the same line.
    after_field: bool,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    fn pre_value(&mut self) {
        if self.after_field {
            self.after_field = false;
            return;
        }
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn close_container(&mut self, close: char) {
        self.depth -= 1;
        if self.has_item.pop() == Some(true) {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
        self.out.push(close);
    }

    /// Begin an object (`{`).
    pub fn open_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// End the current object (`}`).
    pub fn close_object(&mut self) {
        self.close_container('}');
    }

    /// Begin an array (`[`).
    pub fn open_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.depth += 1;
        self.has_item.push(false);
    }

    /// End the current array (`]`). Short arrays of plain numbers stay on
    /// one line.
    pub fn close_array(&mut self) {
        self.close_container(']');
    }

    /// Write an object field name; the next write supplies its value.
    pub fn field(&mut self, name: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, name);
        self.out.push_str("\": ");
        self.after_field = true;
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, s);
        self.out.push('"');
    }

    /// Write a numeric value. Integral floats print without an exponent or
    /// trailing fraction noise; non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn number(&mut self, v: f64) {
        self.pre_value();
        self.out.push_str(&render_number(v));
    }

    /// Write an array of numbers inline on one line: `[2, 1.5]`.
    pub fn compact_array(&mut self, values: &[f64]) {
        self.pre_value();
        self.out.push('[');
        for (i, &v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(&render_number(v));
        }
        self.out.push(']');
    }

    /// Write an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&format!("{v}"));
    }

    /// Finish, returning the document (with a trailing newline).
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

fn render_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_fields() {
        let mut w = Writer::new();
        w.open_object();
        w.field("a");
        w.number(1.0);
        w.field("b");
        w.string("x\"y");
        w.close_object();
        let doc = w.finish();
        assert_eq!(doc, "{\n  \"a\": 1,\n  \"b\": \"x\\\"y\"\n}\n");
    }

    #[test]
    fn compact_array_stays_inline() {
        let mut w = Writer::new();
        w.open_array();
        w.compact_array(&[2.0, 1.5]);
        w.compact_array(&[4.0, 3.25]);
        w.close_array();
        let doc = w.finish();
        assert!(doc.contains("[2, 1.5]"), "got: {doc}");
        assert!(doc.contains("[4, 3.25]"), "got: {doc}");
    }

    #[test]
    fn non_finite_becomes_null() {
        let mut w = Writer::new();
        w.open_array();
        w.number(f64::NAN);
        w.close_array();
        assert!(w.finish().contains("null"));
    }

    #[test]
    fn empty_object() {
        let mut w = Writer::new();
        w.open_object();
        w.close_object();
        assert_eq!(w.finish(), "{}\n");
    }
}
