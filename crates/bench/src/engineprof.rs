//! Exporters for the parallel engine's self-profile ([`nicbar_sim::EngineProf`]).
//!
//! Three views share one capture:
//!
//! * [`report`] — the human `engine-prof` summary: imbalance factor,
//!   cross-shard traffic fraction, window-efficiency percentiles, the
//!   per-shard time table and the idle-time attribution that names the
//!   dominant bottleneck (imbalance / lookahead stall / mailbox contention).
//! * [`chrome_trace`] — a shard-lane timeline in Chrome trace-event JSON:
//!   one track per worker shard, one complete (`"X"`) slice per conservative
//!   window, and flow (`"s"`/`"f"`) arrows for every cross-shard mailbox
//!   crossing. Open in Perfetto or `chrome://tracing`.
//! * [`to_json`] — the manifest-stamped machine-readable profile written to
//!   `results/engine_prof.json`.
//!
//! [`baseline_one_shard_overhead`] reads the committed
//! `results/engine_sweep.json` baseline the `engine_prof --check` overhead
//! gate compares against.

use crate::json::{Manifest, Writer};
use nicbar_sim::{EngineProf, Histogram, MetricValue};

/// Nanoseconds → microseconds for Chrome timestamps.
fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Nanoseconds → milliseconds for the human tables.
fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// The window-utilization distribution merged across every shard (all
/// windows, including those past the per-window detail cap — the registry
/// histogram observed them all).
pub fn util_hist(prof: &EngineProf) -> Histogram {
    let mut merged = Histogram::new();
    for d in &prof.data {
        for (name, value) in &d.metrics {
            if *name == nicbar_sim::telemetry::metric::WINDOW_UTIL {
                if let MetricValue::Hist(h) = value {
                    merged.merge(h);
                }
            }
        }
    }
    merged
}

/// Render the human `engine-prof` report for a profiled run of `label`
/// (e.g. `"gm NIC-DS, 4096 nodes"`) that took `wall_s` wall-clock seconds.
pub fn report(prof: &EngineProf, label: &str, wall_s: f64) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== engine-prof: {label}, {} shards, lookahead {} ns ==",
        prof.shards, prof.lookahead_ns
    );
    let windows = prof.data.iter().map(|d| d.window_count).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "events: {}  windows: {} per shard  wall: {:.3} s",
        prof.total_events(),
        windows,
        wall_s
    );
    let _ = writeln!(
        out,
        "imbalance factor (max/mean shard busy): {:.3}",
        prof.imbalance_factor()
    );
    let _ = writeln!(
        out,
        "cross-shard traffic: {:.1}% of delivered events",
        prof.traffic_fraction() * 100.0
    );
    let util = util_hist(prof);
    if !util.is_empty() {
        let _ = writeln!(
            out,
            "window efficiency (advance/span): p50 {}% p95 {}% p99 {}%",
            util.p50(),
            util.p95(),
            util.p99()
        );
    }
    let _ = writeln!(
        out,
        "wall accounting: {:.1}% of worker wall time attributed",
        prof.accounted_fraction() * 100.0
    );

    let _ = writeln!(
        out,
        "\n{:>5} {:>6} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8} {:>7}",
        "shard", "comps", "busy ms", "idle ms", "drain ms", "events", "recv", "sent", "q hwm"
    );
    for d in &prof.data {
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>10} {:>8} {:>8} {:>7}",
            d.shard,
            d.components,
            ms(d.busy_ns),
            ms(d.idle_ns),
            ms(d.drain_ns),
            d.events,
            d.recv,
            d.sent,
            d.queue_hwm
        );
    }

    let att = prof.attribution();
    let lost = att.idle_ns + att.mailbox_ns;
    let share = |ns: u64| -> f64 {
        if lost == 0 {
            0.0
        } else {
            ns as f64 / lost as f64 * 100.0
        }
    };
    let _ = writeln!(out, "\nidle-time attribution:");
    let _ = writeln!(
        out,
        "{:>20} {:>9.2} ms  ({:>4.1}% of lost time)",
        "imbalance",
        ms(att.imbalance_ns),
        share(att.imbalance_ns)
    );
    let _ = writeln!(
        out,
        "{:>20} {:>9.2} ms  ({:>4.1}% of lost time)",
        "lookahead stall",
        ms(att.stall_ns),
        share(att.stall_ns)
    );
    let _ = writeln!(
        out,
        "{:>20} {:>9.2} ms  ({:>4.1}% of lost time)",
        "mailbox contention",
        ms(att.mailbox_ns),
        share(att.mailbox_ns)
    );
    let (name, frac) = att.dominant();
    let _ = writeln!(
        out,
        "dominant bottleneck: {name} ({:.1}% of lost time)",
        frac * 100.0
    );
    out
}

/// Render the shard-lane timeline as Chrome trace-event JSON: one track
/// (`tid`) per shard, one `"X"` slice per window's busy phase, and an
/// `"s"`/`"f"` flow pair for every cross-shard mailbox crossing (events a
/// shard deposited in window `w` arrive at the destination in window
/// `w + 1`'s drain).
pub fn chrome_trace(prof: &EngineProf) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("traceEvents");
    w.open_array();

    w.open_object();
    w.field("name");
    w.string("process_name");
    w.field("ph");
    w.string("M");
    w.field("pid");
    w.uint(0);
    w.field("args");
    w.open_object();
    w.field("name");
    w.string(&format!(
        "parallel engine ({} shards, lookahead {} ns)",
        prof.shards, prof.lookahead_ns
    ));
    w.close_object();
    w.close_object();

    for d in &prof.data {
        w.open_object();
        w.field("name");
        w.string("thread_name");
        w.field("ph");
        w.string("M");
        w.field("pid");
        w.uint(0);
        w.field("tid");
        w.uint(d.shard as u64);
        w.field("args");
        w.open_object();
        w.field("name");
        w.string(&format!("shard {} ({} components)", d.shard, d.components));
        w.close_object();
        w.close_object();

        for (i, win) in d.windows.iter().enumerate() {
            w.open_object();
            w.field("name");
            w.string(&format!("window {i}"));
            w.field("cat");
            w.string("window");
            w.field("ph");
            w.string("X");
            w.field("pid");
            w.uint(0);
            w.field("tid");
            w.uint(d.shard as u64);
            w.field("ts");
            w.number(us(win.busy_start_ns));
            w.field("dur");
            w.number(us(win.busy_ns));
            w.field("args");
            w.open_object();
            w.field("events");
            w.uint(win.events);
            w.field("queue_depth");
            w.uint(win.queue_depth);
            w.field("util_pct");
            w.uint(win.util_pct());
            w.field("recv");
            w.uint(win.recv);
            w.field("sent");
            w.uint(win.sent);
            w.close_object();
            w.close_object();
        }
    }

    // Mailbox-crossing flows: deposit at the source's window end, arrival
    // at the destination's next window open.
    let k = prof.shards;
    for d in &prof.data {
        for (wi, win) in d.windows.iter().enumerate() {
            for dst in 0..k {
                let n = d.sent_to(wi, dst);
                if n == 0 {
                    continue;
                }
                let Some(arrive) = prof
                    .data
                    .get(dst)
                    .and_then(|dd| dd.windows.get(wi + 1))
                    .map(|dw| dw.t0_ns)
                else {
                    continue;
                };
                let id = ((wi * k + d.shard as usize) * k + dst) as u64;
                w.open_object();
                w.field("name");
                w.string("mailbox");
                w.field("cat");
                w.string("mailbox");
                w.field("ph");
                w.string("s");
                w.field("id");
                w.uint(id);
                w.field("pid");
                w.uint(0);
                w.field("tid");
                w.uint(d.shard as u64);
                w.field("ts");
                w.number(us(win.end_ns.max(win.busy_start_ns)));
                w.field("args");
                w.open_object();
                w.field("events");
                w.uint(n);
                w.close_object();
                w.close_object();

                w.open_object();
                w.field("name");
                w.string("mailbox");
                w.field("cat");
                w.string("mailbox");
                w.field("ph");
                w.string("f");
                w.field("bp");
                w.string("e");
                w.field("id");
                w.uint(id);
                w.field("pid");
                w.uint(0);
                w.field("tid");
                w.uint(dst as u64);
                w.field("ts");
                w.number(us(arrive));
                w.close_object();
            }
        }
    }

    w.close_array();
    w.field("displayTimeUnit");
    w.string("ns");
    w.field("otherData");
    w.open_object();
    for d in &prof.data {
        w.field(&format!("shard{}:dropped_windows", d.shard));
        w.uint(d.dropped_windows);
    }
    w.close_object();
    w.close_object();
    w.finish()
}

/// The `shards × shards` cross-shard traffic matrix (row = source shard,
/// column = destination shard): events deposited into each mailbox, summed
/// over the per-window detail records. Windows past the detail cap are not
/// counted — the matrix is a sampled shape, not an exact total — which is
/// fine for the cost model that consumes it.
pub fn traffic_matrix(prof: &EngineProf) -> Vec<u64> {
    let k = prof.shards;
    let mut m = vec![0u64; k * k];
    for d in &prof.data {
        let src = d.shard as usize;
        for wi in 0..d.windows.len() {
            for dst in 0..k {
                m[src * k + dst] += d.sent_to(wi, dst);
            }
        }
    }
    m
}

/// Render the manifest-stamped machine-readable profile
/// (`results/engine_prof.json`).
pub fn to_json(prof: &EngineProf, label: &str, wall_s: f64, manifest: &Manifest) -> String {
    let att = prof.attribution();
    let (dom, dom_share) = att.dominant();
    let util = util_hist(prof);
    let mut w = Writer::new();
    w.open_object();
    w.field("bench");
    w.string("engine_prof");
    w.field("label");
    w.string(label);
    manifest.emit(&mut w);
    w.field("shards");
    w.uint(prof.shards as u64);
    w.field("lookahead_ns");
    w.uint(prof.lookahead_ns);
    w.field("wall_s");
    w.number(wall_s);
    w.field("events");
    w.uint(prof.total_events());
    w.field("imbalance_factor");
    w.number(prof.imbalance_factor());
    w.field("traffic_fraction");
    w.number(prof.traffic_fraction());
    w.field("accounted_fraction");
    w.number(prof.accounted_fraction());
    if !util.is_empty() {
        w.field("window_util_pct");
        w.open_object();
        w.field("p50");
        w.uint(util.p50());
        w.field("p95");
        w.uint(util.p95());
        w.field("p99");
        w.uint(util.p99());
        w.close_object();
    }
    w.field("attribution");
    w.open_object();
    w.field("imbalance_ns");
    w.uint(att.imbalance_ns);
    w.field("stall_ns");
    w.uint(att.stall_ns);
    w.field("mailbox_ns");
    w.uint(att.mailbox_ns);
    w.field("idle_ns");
    w.uint(att.idle_ns);
    w.field("dominant");
    w.string(dom);
    w.field("dominant_share");
    w.number(dom_share);
    w.close_object();
    let traffic = traffic_matrix(prof);
    w.field("traffic_matrix");
    w.open_array();
    for row in traffic.chunks(prof.shards.max(1)) {
        let vals: Vec<f64> = row.iter().map(|&v| v as f64).collect();
        w.compact_array(&vals);
    }
    w.close_array();
    w.field("shards_detail");
    w.open_array();
    for d in &prof.data {
        w.open_object();
        w.field("shard");
        w.uint(d.shard as u64);
        w.field("components");
        w.uint(d.components as u64);
        w.field("wall_ns");
        w.uint(d.wall_ns);
        w.field("busy_ns");
        w.uint(d.busy_ns);
        w.field("idle_ns");
        w.uint(d.idle_ns);
        w.field("drain_ns");
        w.uint(d.drain_ns);
        w.field("events");
        w.uint(d.events);
        w.field("recv");
        w.uint(d.recv);
        w.field("sent");
        w.uint(d.sent);
        w.field("queue_hwm");
        w.uint(d.queue_hwm);
        w.field("windows");
        w.uint(d.window_count);
        w.field("dropped_windows");
        w.uint(d.dropped_windows);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// Arm the profiler on `engine`, run it to `deadline`, and return the
/// captured profile plus the measured wall-clock seconds. Returns `None`
/// when the engine is sequential (the self-profiler only exists on the
/// parallel executor); callers print a notice in that case. This is the
/// shared `--prof` path of the figure binaries.
pub fn profile_run<M: Send + 'static>(
    engine: &mut nicbar_sim::ExecEngine<M>,
    deadline: nicbar_sim::SimTime,
) -> Option<(EngineProf, f64)> {
    engine.enable_prof();
    let t0 = std::time::Instant::now();
    engine.run_until(deadline);
    let wall_s = t0.elapsed().as_secs_f64();
    engine.prof_snapshot().map(|p| (p, wall_s))
}

/// The committed one-shard engine overhead from a saved
/// `results/engine_sweep.json` (`parallel_one_shard.overhead`), or `None`
/// if the baseline is missing or unreadable. The `engine_prof --check`
/// overhead gate asserts today's profiler-disabled overhead stays within
/// two percentage points of this.
pub fn baseline_one_shard_overhead(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let start = text.find("\"parallel_one_shard\"")?;
    let chunk = &text[start..];
    let pat = "\"overhead\": ";
    let v = chunk.find(pat)? + pat.len();
    let rest = &chunk[v..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The named attribution bucket's share of lost (non-busy) worker time:
/// `0.0` for unknown names or when nothing was lost. Shares use the same
/// denominator as [`nicbar_sim::ProfAttribution::dominant`], so a share
/// read back from a saved capture's `dominant_share` is directly
/// comparable.
pub fn bottleneck_share(prof: &EngineProf, name: &str) -> f64 {
    let att = prof.attribution();
    let lost = att.idle_ns + att.mailbox_ns;
    if lost == 0 {
        return 0.0;
    }
    let ns = match name {
        "imbalance" => att.imbalance_ns,
        "lookahead stall" => att.stall_ns,
        "mailbox contention" => att.mailbox_ns,
        _ => 0,
    };
    ns as f64 / lost as f64
}

/// The dominant bottleneck a committed `engine_prof` capture named, and
/// its share of lost time, or `None` when the file is missing or
/// malformed. `engine_prof --check` compares today's share of that same
/// bucket against this.
pub fn baseline_bottleneck(path: &str) -> Option<(String, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let pat = "\"dominant\": \"";
    let start = text.find(pat)? + pat.len();
    let rest = &text[start..];
    let name = rest[..rest.find('"')?].to_string();
    let pat = "\"dominant_share\": ";
    let v = rest.find(pat)? + pat.len();
    let rest = &rest[v..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    let share: f64 = rest[..end].trim().parse().ok()?;
    Some((name, share))
}

/// A prior run's per-shard load summary parsed back out of a
/// `results/engine_prof.json`-shaped capture — enough to drive
/// profile-guided repartitioning without a JSON dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadProfile {
    /// Component count per prior shard (`shards_detail[].components`).
    pub components: Vec<u64>,
    /// Busy nanoseconds per prior shard (`shards_detail[].busy_ns`).
    pub busy_ns: Vec<u64>,
    /// Row-major `k × k` cross-shard event counts; empty when the capture
    /// predates the traffic matrix.
    pub traffic: Vec<u64>,
}

/// Every unsigned integer that directly follows a `"key": ` occurrence in
/// `chunk`, in order.
fn uints_after(chunk: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut rest = chunk;
    while let Some(i) = rest.find(&pat) {
        let v = &rest[i + pat.len()..];
        let end = v.find(|c: char| !c.is_ascii_digit()).unwrap_or(v.len());
        if let Ok(n) = v[..end].parse() {
            out.push(n);
        }
        rest = v;
    }
    out
}

/// Parse a [`LoadProfile`] back out of a saved `engine_prof` capture.
/// Returns `None` when the file is missing or does not carry a coherent
/// `shards_detail` table. A missing `traffic_matrix` (pre-cost-model
/// captures) degrades to an empty matrix, not a failure.
pub fn load_profile(path: &str) -> Option<LoadProfile> {
    let text = std::fs::read_to_string(path).ok()?;
    let detail_at = text.find("\"shards_detail\"")?;
    let detail = &text[detail_at..];
    let components = uints_after(detail, "components");
    let busy_ns = uints_after(detail, "busy_ns");
    if components.is_empty() || components.len() != busy_ns.len() {
        return None;
    }
    let k = components.len();
    let traffic: Vec<u64> = match text.find("\"traffic_matrix\"") {
        Some(t) if t < detail_at => text[t..detail_at]
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.parse().ok())
            .collect(),
        _ => Vec::new(),
    };
    let traffic = if traffic.len() == k * k {
        traffic
    } else {
        Vec::new()
    };
    Some(LoadProfile {
        components,
        busy_ns,
        traffic,
    })
}

/// Turn a saved capture into a profile-guided [`nicbar_sim::PartitionSel`].
///
/// Cost model: the prior run's contiguous layout puts `components / 2`
/// nodes on each shard (host + NIC per node), so each node inherits its
/// old shard's mean busy time as its weight. Cut costs come from the
/// traffic matrix: a node interior to old shard `s` costs `s`'s mean
/// per-node outgoing traffic to cut before, while an old shard boundary
/// costs exactly the traffic measured across that pair — so the
/// repartitioner keeps low-traffic cuts and slides high-traffic ones,
/// subject to the load bound staying primary. Returns `None` when the
/// capture is unreadable or empty.
pub fn partition_from_profile(path: &str) -> Option<nicbar_sim::PartitionSel> {
    let p = load_profile(path)?;
    let k = p.components.len();
    let nodes_per: Vec<usize> = p.components.iter().map(|&c| (c / 2) as usize).collect();
    let total: usize = nodes_per.iter().sum();
    if total == 0 {
        return None;
    }
    let have_traffic = p.traffic.len() == k * k;
    let mut weights: Vec<u64> = Vec::with_capacity(total);
    let mut boundary: Vec<u64> = vec![0; total];
    let mut start = 0usize;
    for (s, &n_s) in nodes_per.iter().enumerate() {
        if n_s == 0 {
            continue;
        }
        let w = (p.busy_ns[s] / n_s as u64).max(1);
        weights.extend(std::iter::repeat_n(w, n_s));
        if have_traffic {
            let row: u64 = p.traffic[s * k..(s + 1) * k].iter().sum();
            let interior = row / n_s as u64;
            for b in boundary.iter_mut().skip(start).take(n_s) {
                *b = interior;
            }
            if s > 0 {
                boundary[start] =
                    p.traffic[(s - 1) * k + s].saturating_add(p.traffic[s * k + (s - 1)]);
            }
        }
        start += n_s;
    }
    let boundary_cost: Vec<u64> = if have_traffic { boundary } else { Vec::new() };
    Some(nicbar_sim::PartitionSel::Weighted {
        weights: weights.into(),
        boundary_cost: boundary_cost.into(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;
    use nicbar_core::{build_gm_nic_cluster, Algorithm, RunCfg};
    use nicbar_gm::{CollFeatures, GmParams};
    use nicbar_sim::{EngineSel, RunOutcome};

    fn profiled_run() -> EngineProf {
        let cfg = RunCfg {
            warmup: 2,
            iters: 20,
            engine: EngineSel::Parallel,
            shards: 3,
            ..RunCfg::default()
        };
        let mut cluster = build_gm_nic_cluster(
            GmParams::lanai_xp(),
            CollFeatures::paper(),
            12,
            Algorithm::Dissemination,
            &cfg,
            false,
        );
        cluster.engine.enable_prof();
        let outcome = cluster.engine.run_until(cfg.deadline());
        assert_eq!(outcome, RunOutcome::Idle);
        cluster.engine.prof_snapshot().unwrap()
    }

    #[test]
    fn report_names_a_bottleneck_and_tables_every_shard() {
        let prof = profiled_run();
        let text = report(&prof, "gm NIC-DS, 12 nodes", 0.5);
        assert!(text.contains("engine-prof: gm NIC-DS, 12 nodes, 3 shards"));
        assert!(text.contains("imbalance factor"));
        assert!(text.contains("cross-shard traffic"));
        assert!(text.contains("window efficiency"));
        assert!(text.contains("dominant bottleneck:"), "got:\n{text}");
        for shard in 0..3 {
            assert!(
                text.contains(&format!("\n{shard:>5} ")),
                "shard {shard} row"
            );
        }
    }

    #[test]
    fn chrome_trace_has_one_lane_per_shard_and_flow_pairs() {
        let prof = profiled_run();
        let json = chrome_trace(&prof);
        assert!(json.contains("\"traceEvents\""));
        for shard in 0..3 {
            assert!(json.contains(&format!("shard {shard} (")), "lane {shard}");
        }
        assert!(json.contains("\"ph\": \"X\""), "window slices");
        // The dissemination barrier always crosses shard boundaries at
        // 12 nodes / 3 shards, so flow arrows must exist, in pairs.
        let starts = json.matches("\"ph\": \"s\"").count();
        let finishes = json.matches("\"ph\": \"f\"").count();
        assert!(starts > 0, "no mailbox flow events");
        assert_eq!(starts, finishes, "unpaired flow events");
        assert!(json.contains("shard0:dropped_windows"));
    }

    #[test]
    fn json_profile_embeds_manifest_and_attribution() {
        let prof = profiled_run();
        let m = Manifest::new(42, "engine_prof test");
        let json = to_json(&prof, "gm NIC-DS, 12 nodes", 0.5, &m);
        assert!(json.contains("\"bench\": \"engine_prof\""));
        assert!(json.contains("\"manifest\""));
        assert!(json.contains("\"imbalance_factor\""));
        assert!(json.contains("\"dominant\""));
        assert!(json.contains("\"shards_detail\""));
        assert!(json.matches("\"shard\":").count() == 3);
        assert!(json.contains("\"traffic_matrix\""));
    }

    #[test]
    fn traffic_matrix_is_square_with_empty_diagonal() {
        let prof = profiled_run();
        let m = traffic_matrix(&prof);
        assert_eq!(m.len(), 9);
        for s in 0..3 {
            assert_eq!(m[s * 3 + s], 0, "no self-mailbox traffic");
        }
        // The dissemination barrier at 12 nodes / 3 shards must cross
        // shard boundaries somewhere.
        assert!(m.iter().sum::<u64>() > 0);
    }

    #[test]
    fn profile_round_trips_through_json_to_a_weighted_partition() {
        let prof = profiled_run();
        let m = Manifest::new(42, "engine_prof test");
        let json = to_json(&prof, "gm NIC-DS, 12 nodes", 0.5, &m);
        let dir = std::env::temp_dir().join("nicbar_engineprof_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine_prof.json");
        std::fs::write(&path, &json).unwrap();

        let p = load_profile(path.to_str().unwrap()).unwrap();
        assert_eq!(p.components.len(), 3);
        assert_eq!(p.busy_ns.len(), 3);
        assert_eq!(p.traffic, traffic_matrix(&prof));
        assert_eq!(
            p.components.iter().sum::<u64>(),
            24,
            "12 nodes × (host + NIC)"
        );

        let sel = partition_from_profile(path.to_str().unwrap()).unwrap();
        let nicbar_sim::PartitionSel::Weighted {
            weights,
            boundary_cost,
        } = &sel
        else {
            panic!("expected a weighted partition, got {sel:?}");
        };
        assert_eq!(weights.len(), 12, "one weight per prior node");
        assert_eq!(boundary_cost.len(), 12);
        assert!(weights.iter().all(|&w| w >= 1));
        // The selection must build a valid map for a differently-sized run.
        let map = sel.map(16, 8, 2, |c| c % 8);
        assert_eq!(map.shards(), 2);

        // A capture without the traffic matrix still loads (empty matrix,
        // no boundary costs).
        let stripped = {
            let t = json.find("\"traffic_matrix\"").unwrap();
            let d = json.find("\"shards_detail\"").unwrap();
            format!("{}{}", &json[..t], &json[d..])
        };
        let legacy = dir.join("engine_prof_legacy.json");
        std::fs::write(&legacy, stripped).unwrap();
        let p2 = load_profile(legacy.to_str().unwrap()).unwrap();
        assert!(p2.traffic.is_empty());
        let sel2 = partition_from_profile(legacy.to_str().unwrap()).unwrap();
        let nicbar_sim::PartitionSel::Weighted { boundary_cost, .. } = &sel2 else {
            panic!("expected weighted");
        };
        assert!(boundary_cost.is_empty());

        assert!(load_profile("/nonexistent/engine_prof.json").is_none());
        assert!(partition_from_profile("/nonexistent/engine_prof.json").is_none());
    }

    #[test]
    fn bottleneck_share_matches_dominant_and_baseline_parses() {
        let prof = profiled_run();
        let (dom, dom_share) = prof.attribution().dominant();
        assert!((bottleneck_share(&prof, dom) - dom_share).abs() < 1e-12);
        assert_eq!(bottleneck_share(&prof, "no such bucket"), 0.0);
        let att = prof.attribution();
        if att.idle_ns + att.mailbox_ns > 0 {
            let shares: f64 = ["imbalance", "lookahead stall", "mailbox contention"]
                .iter()
                .map(|n| bottleneck_share(&prof, n))
                .sum();
            // imbalance + stall == idle, so the buckets tile lost time.
            assert!((shares - 1.0).abs() < 1e-9, "shares sum to {shares}");
        }

        let m = Manifest::new(7, "delta gate test");
        let json = to_json(&prof, "x", 0.1, &m);
        let dir = std::env::temp_dir().join("nicbar_engineprof_baseline");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine_prof_pr7.json");
        std::fs::write(&path, json).unwrap();
        let (name, share) = baseline_bottleneck(path.to_str().unwrap()).unwrap();
        assert_eq!(name, dom);
        assert!((share - dom_share).abs() < 1e-9);
        assert!(baseline_bottleneck("/nonexistent/prof.json").is_none());
    }

    #[test]
    fn baseline_reader_parses_the_sweep_schema() {
        let dir = std::env::temp_dir().join("nicbar_engineprof_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine_sweep.json");
        std::fs::write(
            &path,
            "{\n  \"parallel_one_shard\": {\n    \"point\": \"fig5_n16\",\n    \
             \"sequential_wall_s\": 0.1,\n    \"parallel_wall_s\": 0.11,\n    \
             \"overhead\": -0.0129\n  }\n}\n",
        )
        .unwrap();
        let v = baseline_one_shard_overhead(path.to_str().unwrap()).unwrap();
        assert!((v - (-0.0129)).abs() < 1e-12);
        assert!(baseline_one_shard_overhead("/nonexistent/engine_sweep.json").is_none());
    }
}
