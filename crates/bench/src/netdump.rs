//! Pcap-style JSONL exporter for causal netdumps.
//!
//! One JSON object per line, one line per [`PacketRecord`], id-ordered —
//! the streaming-friendly shape external tools (jq, pandas) ingest
//! directly. Sentinel fields (`NO_NODE` nodes, `NO_KEY` keys) are omitted
//! rather than emitted as magic numbers.

use crate::json::Writer;
use nicbar_sim::{CausalKind, CauseId, ComponentId, PacketRecord, SimTime, NO_KEY, NO_NODE};

/// Render one record as a single-line JSON object (no trailing newline).
pub fn record_line(r: &PacketRecord) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("id");
    w.uint(r.id.0);
    if r.parent.is_some() {
        w.field("parent");
        w.uint(r.parent.0);
    }
    w.field("t_ns");
    w.uint(r.time.as_ns());
    w.field("comp");
    w.uint(r.component.0 as u64);
    w.field("kind");
    w.string(r.kind.name());
    if r.src != NO_NODE {
        w.field("src");
        w.uint(r.src as u64);
    }
    if r.dst != NO_NODE {
        w.field("dst");
        w.uint(r.dst as u64);
    }
    if r.group != NO_KEY {
        w.field("group");
        w.uint(r.group);
        w.field("seq");
        w.uint(r.seq);
    }
    if r.a != 0 {
        w.field("a");
        w.uint(r.a);
    }
    if r.b != 0 {
        w.field("b");
        w.uint(r.b);
    }
    w.close_object();
    // The shared writer pretty-prints; JSONL wants one record per line.
    w.finish().replace(['\n'], "").replace("  ", " ")
}

/// Render a whole dump as JSONL (one record per line, id order).
pub fn jsonl(records: &[PacketRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&record_line(r));
        out.push('\n');
    }
    out
}

/// Render the dump-level header line of a JSONL export: the record count
/// and — crucially — how many records the capture *dropped*, so a
/// downstream consumer can tell a complete dump from a truncated one
/// without trusting the producer's stdout.
pub fn header_line(records: usize, dropped: u64) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("netdump");
    w.uint(1);
    w.field("records");
    w.uint(records as u64);
    w.field("dropped");
    w.uint(dropped);
    w.close_object();
    w.finish().replace(['\n'], "").replace("  ", " ")
}

/// Parse a [`header_line`] back into `(records, dropped)`. Returns `None`
/// for anything else — including packet-record lines, so a reader can
/// probe the first line and fall back to headerless ingestion (traces from
/// `nicbar-verify --trace-out` carry no header).
pub fn parse_header(line: &str) -> Option<(u64, u64)> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let (mut tagged, mut records, mut dropped) = (false, None, None);
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let n: u64 = value.trim().parse().ok()?;
        match key {
            "netdump" => tagged = n == 1,
            "records" => records = Some(n),
            "dropped" => dropped = Some(n),
            _ => return None,
        }
    }
    if !tagged {
        return None;
    }
    Some((records?, dropped?))
}

/// [`jsonl`] preceded by the [`header_line`] — the shape `why-slow --jsonl`
/// writes.
pub fn jsonl_with_header(records: &[PacketRecord], dropped: u64) -> String {
    let mut out = header_line(records.len(), dropped);
    out.push('\n');
    out.push_str(&jsonl(records));
    out
}

/// Parse one [`record_line`]-shaped JSONL line back into a [`PacketRecord`]
/// (the inverse used by `why-slow --replay`). Omitted optional fields come
/// back as their sentinels. Returns `None` on anything malformed — the
/// schema is flat (no nested objects, no strings containing `,` or `"`),
/// so splitting on commas is exact, not approximate.
pub fn parse_line(line: &str) -> Option<PacketRecord> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut r = PacketRecord {
        id: CauseId::NONE,
        parent: CauseId::NONE,
        time: SimTime::ZERO,
        component: ComponentId(0),
        kind: CausalKind::HostEnter,
        src: NO_NODE,
        dst: NO_NODE,
        group: NO_KEY,
        seq: NO_KEY,
        a: 0,
        b: 0,
    };
    let mut saw_id = false;
    let mut saw_kind = false;
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        if key == "kind" {
            let name = value.strip_prefix('"')?.strip_suffix('"')?;
            r.kind = CausalKind::from_name(name)?;
            saw_kind = true;
            continue;
        }
        let n: u64 = value.parse().ok()?;
        match key {
            "id" => {
                r.id = CauseId(n);
                saw_id = true;
            }
            "parent" => r.parent = CauseId(n),
            "t_ns" => r.time = SimTime::from_ns(n),
            "comp" => r.component = ComponentId(n as usize),
            "src" => r.src = n as u32,
            "dst" => r.dst = n as u32,
            "group" => r.group = n,
            "seq" => r.seq = n,
            "a" => r.a = n,
            "b" => r.b = n,
            _ => return None,
        }
    }
    (saw_id && saw_kind).then_some(r)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;
    use nicbar_sim::{CausalKind, CauseId, ComponentId, NetDump, PacketLog, SimTime};

    #[test]
    fn lines_are_one_object_each_and_omit_sentinels() {
        let mut d = NetDump::disabled();
        d.enable();
        let root = d.record(
            SimTime::from_ns(5),
            ComponentId(2),
            PacketLog::new(CauseId::NONE, CausalKind::HostEnter).key(0xba, 3),
        );
        d.record(
            SimTime::from_ns(9),
            ComponentId(3),
            PacketLog::new(root, CausalKind::Fire)
                .nodes(0, 1)
                .detail(4, 0),
        );
        let text = jsonl(d.records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"kind\": \"host-enter\""),
            "{}",
            lines[0]
        );
        assert!(
            !lines[0].contains("\"parent\""),
            "root has no parent field: {}",
            lines[0]
        );
        assert!(
            !lines[0].contains("\"src\""),
            "sentinel omitted: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"group\": 186"));
        assert!(lines[1].contains("\"parent\": 1"), "{}", lines[1]);
        assert!(lines[1].contains("\"src\": 0"));
        assert!(lines[1].contains("\"dst\": 1"));
        // Every line parses as a standalone object: starts `{`, ends `}`.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not JSONL: {l}");
        }
    }

    #[test]
    fn parse_line_round_trips_every_kind_and_sentinel() {
        let mut d = NetDump::disabled();
        d.enable();
        let root = d.record(
            SimTime::from_ns(5),
            ComponentId(2),
            PacketLog::new(CauseId::NONE, CausalKind::HostEnter).key(0xba, 3),
        );
        let mut parent = root;
        for kind in [
            CausalKind::NicDispatch,
            CausalKind::DmaStart,
            CausalKind::DmaDone,
            CausalKind::Fire,
            CausalKind::Wire,
            CausalKind::Drop,
            CausalKind::Arrive,
            CausalKind::Nack,
            CausalKind::Retransmit,
            CausalKind::Notify,
            CausalKind::HostExit,
        ] {
            parent = d.record(
                SimTime::from_ns(parent.0 * 10),
                ComponentId(1),
                PacketLog::new(parent, kind).nodes(0, 1).detail(7, 9),
            );
        }
        for r in d.records() {
            let parsed = parse_line(&record_line(r)).unwrap();
            assert_eq!(&parsed, r, "round-trip must be exact");
        }
    }

    #[test]
    fn header_round_trips_and_is_not_a_record() {
        let h = header_line(12, 3);
        assert_eq!(parse_header(&h), Some((12, 3)));
        assert!(parse_line(&h).is_none(), "header is not a packet record");
        // A packet-record line is not a header.
        assert!(parse_header("{\"id\": 1, \"kind\": \"fire\"}").is_none());
        assert!(parse_header("{\"records\": 2, \"dropped\": 0}").is_none());
        assert!(parse_header("").is_none());
    }

    #[test]
    fn jsonl_with_header_leads_with_the_drop_count() {
        let mut d = NetDump::disabled();
        d.enable();
        d.record(
            SimTime::from_ns(5),
            ComponentId(0),
            PacketLog::new(CauseId::NONE, CausalKind::HostEnter),
        );
        let text = jsonl_with_header(d.records(), 7);
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert_eq!(parse_header(header), Some((1, 7)));
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn parse_line_rejects_malformed_input() {
        assert!(parse_line("").is_none());
        assert!(parse_line("not json").is_none());
        assert!(parse_line("{\"id\": 1}").is_none(), "kind is mandatory");
        assert!(
            parse_line("{\"kind\": \"fire\"}").is_none(),
            "id is mandatory"
        );
        assert!(parse_line("{\"id\": 1, \"kind\": \"no-such-kind\"}").is_none());
        assert!(parse_line("{\"id\": 1, \"kind\": \"fire\", \"mystery\": 2}").is_none());
    }
}
