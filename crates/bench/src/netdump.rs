//! Pcap-style JSONL exporter for causal netdumps.
//!
//! One JSON object per line, one line per [`PacketRecord`], id-ordered —
//! the streaming-friendly shape external tools (jq, pandas) ingest
//! directly. Sentinel fields (`NO_NODE` nodes, `NO_KEY` keys) are omitted
//! rather than emitted as magic numbers.

use crate::json::Writer;
use nicbar_sim::{PacketRecord, NO_KEY, NO_NODE};

/// Render one record as a single-line JSON object (no trailing newline).
pub fn record_line(r: &PacketRecord) -> String {
    let mut w = Writer::new();
    w.open_object();
    w.field("id");
    w.uint(r.id.0);
    if r.parent.is_some() {
        w.field("parent");
        w.uint(r.parent.0);
    }
    w.field("t_ns");
    w.uint(r.time.as_ns());
    w.field("comp");
    w.uint(r.component.0 as u64);
    w.field("kind");
    w.string(r.kind.name());
    if r.src != NO_NODE {
        w.field("src");
        w.uint(r.src as u64);
    }
    if r.dst != NO_NODE {
        w.field("dst");
        w.uint(r.dst as u64);
    }
    if r.group != NO_KEY {
        w.field("group");
        w.uint(r.group);
        w.field("seq");
        w.uint(r.seq);
    }
    if r.a != 0 {
        w.field("a");
        w.uint(r.a);
    }
    if r.b != 0 {
        w.field("b");
        w.uint(r.b);
    }
    w.close_object();
    // The shared writer pretty-prints; JSONL wants one record per line.
    w.finish().replace(['\n'], "").replace("  ", " ")
}

/// Render a whole dump as JSONL (one record per line, id order).
pub fn jsonl(records: &[PacketRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&record_line(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;
    use nicbar_sim::{CausalKind, CauseId, ComponentId, NetDump, PacketLog, SimTime};

    #[test]
    fn lines_are_one_object_each_and_omit_sentinels() {
        let mut d = NetDump::disabled();
        d.enable();
        let root = d.record(
            SimTime::from_ns(5),
            ComponentId(2),
            PacketLog::new(CauseId::NONE, CausalKind::HostEnter).key(0xba, 3),
        );
        d.record(
            SimTime::from_ns(9),
            ComponentId(3),
            PacketLog::new(root, CausalKind::Fire)
                .nodes(0, 1)
                .detail(4, 0),
        );
        let text = jsonl(d.records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"kind\": \"host-enter\""),
            "{}",
            lines[0]
        );
        assert!(
            !lines[0].contains("\"parent\""),
            "root has no parent field: {}",
            lines[0]
        );
        assert!(
            !lines[0].contains("\"src\""),
            "sentinel omitted: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"group\": 186"));
        assert!(lines[1].contains("\"parent\": 1"), "{}", lines[1]);
        assert!(lines[1].contains("\"src\": 0"));
        assert!(lines[1].contains("\"dst\": 1"));
        // Every line parses as a standalone object: starts `{`, ends `}`.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not JSONL: {l}");
        }
    }
}
