//! Critical-path extraction over causal netdumps.
//!
//! A netdump ([`nicbar_sim::NetDump`]) is a DAG: every wire-visible record
//! carries the id of the record that caused it, and emitters thread the
//! *last-enabling* stimulus as the parent at every join (the packet that
//! completed a round, the set that tripped a counting event). Walking
//! parents back from the last rank's `host-exit` therefore yields the
//! critical path of the barrier exactly — every nanosecond of the span's
//! wall time lands on one edge of the chain, plus a leading "entry skew"
//! edge from the first rank's `host-enter` to the chain's root.
//!
//! Per barrier the analyzer reports the chain edge by edge (with per-edge
//! attribution: host→NIC handoff, NIC compute, wire time, NACK/retransmit
//! detours), the per-rank completion slack, and the coverage residual —
//! which is zero for a complete dump and explicitly non-zero when records
//! were dropped and the walk hit a hole.

use nicbar_sim::{
    chain_to, CausalKind, LedgerOp, LedgerRecord, Owner, OwnerKind, PacketRecord, ResKind, SimTime,
    NO_KEY, NO_NODE,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One edge of a barrier's critical path: the step that produced `kind` at
/// `at`, taking `dur` since its parent record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathEdge {
    /// What happened at the downstream end of the edge.
    pub kind: CausalKind,
    /// Attribution bucket (`host->nic`, `wire`, `nack-detour`, ...).
    pub label: &'static str,
    /// Source node of the step (`NO_NODE` if not node-specific).
    pub src: u32,
    /// Destination node of the step (`NO_NODE` for local steps).
    pub dst: u32,
    /// Simulated time at which the edge completes.
    pub at: SimTime,
    /// Time attributed to this edge (downstream time − upstream time).
    pub dur: SimTime,
    /// Destination-port queuing wait, for `wire` edges (the link-occupancy
    /// tag; distinguishes "slow link" from "busy port").
    pub port_wait: SimTime,
}

/// The critical path of one barrier span, keyed `(group, seq)`.
#[derive(Clone, Debug)]
pub struct BarrierPath {
    /// Collective group id.
    pub group: u64,
    /// Operation sequence (epoch) within the group.
    pub seq: u64,
    /// First `host-enter` of the span (wall-clock start).
    pub begin: SimTime,
    /// Last `host-exit` of the span (wall-clock end).
    pub end: SimTime,
    /// Node whose `host-enter` roots the critical chain.
    pub root_node: u32,
    /// Node whose `host-exit` ends the chain (the last rank out).
    pub end_node: u32,
    /// Time between the first rank's entry and the chain root's entry —
    /// the part of the wall time spent waiting for the critical rank to
    /// even start.
    pub entry_skew: SimTime,
    /// The chain, root first.
    pub edges: Vec<PathEdge>,
    /// Wall time not covered by `entry_skew + Σ edges`. Zero on a complete
    /// dump; positive when the parent walk hit a dropped record.
    pub residual: SimTime,
    /// True when the walk stopped at a hole instead of a `host-enter`.
    pub truncated: bool,
    /// Per-rank slack `(node, last_exit − own_exit)`, node-ordered. The
    /// critical rank has slack 0.
    pub slack: Vec<(u32, SimTime)>,
}

impl BarrierPath {
    /// End-to-end wall time of the span.
    pub fn wall(&self) -> SimTime {
        self.end.saturating_sub(self.begin)
    }

    /// Fraction of the wall time attributed to critical-path edges (plus
    /// entry skew), in percent. 100.0 for a complete dump.
    pub fn coverage_pct(&self) -> f64 {
        let wall = self.wall().as_ns();
        if wall == 0 {
            return 100.0;
        }
        let covered = wall.saturating_sub(self.residual.as_ns());
        covered as f64 / wall as f64 * 100.0
    }

    /// Number of detour edges (NACK, retransmission, drop) on the path.
    pub fn detour_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.kind.is_detour()).count()
    }

    /// Total time spent on detour edges.
    pub fn detour_time(&self) -> SimTime {
        self.edges
            .iter()
            .filter(|e| e.kind.is_detour())
            .fold(SimTime::ZERO, |acc, e| acc + e.dur)
    }

    /// Total destination-port queuing wait along the path's wire edges.
    pub fn port_wait(&self) -> SimTime {
        self.edges
            .iter()
            .fold(SimTime::ZERO, |acc, e| acc + e.port_wait)
    }

    /// Sum of `entry_skew` and all edge durations.
    pub fn covered(&self) -> SimTime {
        self.edges
            .iter()
            .fold(self.entry_skew, |acc, e| acc + e.dur)
    }
}

/// Extract the critical path of every completed barrier span in `records`.
/// Spans are keyed `(group, seq)` off their `host-exit` records and
/// returned in key order. Records must be in id order (as
/// [`nicbar_sim::NetDump`] emits them).
pub fn analyze(records: &[PacketRecord]) -> Vec<BarrierPath> {
    // Group the span boundary records by key.
    let mut enters: BTreeMap<(u64, u64), Vec<&PacketRecord>> = BTreeMap::new();
    let mut exits: BTreeMap<(u64, u64), Vec<&PacketRecord>> = BTreeMap::new();
    for r in records {
        if r.group == NO_KEY {
            continue;
        }
        match r.kind {
            CausalKind::HostEnter => enters.entry((r.group, r.seq)).or_default().push(r),
            CausalKind::HostExit => exits.entry((r.group, r.seq)).or_default().push(r),
            CausalKind::HostPost
            | CausalKind::NicDispatch
            | CausalKind::DmaStart
            | CausalKind::DmaDone
            | CausalKind::Fire
            | CausalKind::Wire
            | CausalKind::Drop
            | CausalKind::Arrive
            | CausalKind::Nack
            | CausalKind::Retransmit
            | CausalKind::Notify => {}
        }
    }
    let mut out = Vec::new();
    for (&(group, seq), span_exits) in &exits {
        let Some(span_enters) = enters.get(&(group, seq)) else {
            continue; // exit without any recorded entry: not analyzable
        };
        let begin = span_enters
            .iter()
            .map(|r| r.time)
            .min()
            .expect("non-empty by construction");
        // The last rank out ends the barrier; ties break on record id so
        // the choice is deterministic.
        let last = span_exits
            .iter()
            .copied()
            .max_by_key(|r| (r.time, r.id))
            .expect("non-empty by construction");
        let chain = chain_to(records, last.id);
        let root = chain
            .first()
            .copied()
            .expect("chain includes `last` itself");
        let truncated = root.parent.is_some() || root.kind != CausalKind::HostEnter;
        let entry_skew = if truncated {
            SimTime::ZERO
        } else {
            root.time.saturating_sub(begin)
        };
        let edges: Vec<PathEdge> = chain
            .windows(2)
            .map(|w| {
                let (p, c) = (w[0], w[1]);
                PathEdge {
                    kind: c.kind,
                    label: c.kind.edge_label(),
                    src: c.src,
                    dst: c.dst,
                    at: c.time,
                    dur: c.time.saturating_sub(p.time),
                    port_wait: if c.kind == CausalKind::Wire {
                        SimTime::from_ns(c.b)
                    } else {
                        SimTime::ZERO
                    },
                }
            })
            .collect();
        let mut slack: Vec<(u32, SimTime)> = span_exits
            .iter()
            .map(|r| (r.src, last.time.saturating_sub(r.time)))
            .collect();
        slack.sort_unstable();
        let wall = last.time.saturating_sub(begin);
        let covered = edges.iter().fold(entry_skew, |acc, e| acc + e.dur);
        out.push(BarrierPath {
            group,
            seq,
            begin,
            end: last.time,
            root_node: root.src,
            end_node: last.src,
            entry_skew,
            edges,
            residual: wall.saturating_sub(covered),
            truncated,
            slack,
        });
    }
    out
}

/// Aggregate attribution across many paths: `(label, total, edges)` in
/// descending total-time order (ties broken by label for determinism).
pub fn attribution(paths: &[BarrierPath]) -> Vec<(&'static str, SimTime, usize)> {
    let mut by_label: BTreeMap<&'static str, (SimTime, usize)> = BTreeMap::new();
    for p in paths {
        if p.entry_skew > SimTime::ZERO {
            let e = by_label.entry("entry-skew").or_default();
            e.0 += p.entry_skew;
            e.1 += 1;
        }
        for e in &p.edges {
            let a = by_label.entry(e.label).or_default();
            a.0 += e.dur;
            a.1 += 1;
        }
    }
    let mut out: Vec<(&'static str, SimTime, usize)> = by_label
        .into_iter()
        .map(|(label, (t, n))| (label, t, n))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    out
}

/// Per-barrier interference breakdown: for every wait interval on the
/// critical path, who actually held the contended resource.
///
/// Built by [`interference`] from a [`BarrierPath`] and the occupancy
/// ledger. Wait time is attributed by intersecting each critical-path wait
/// interval with the [`LedgerOp::Hold`] records on the same
/// `(resource, node, unit)`; the holder's [`Owner`] decides the bucket:
/// same-group collective → `self_time`, different group → `other_group`,
/// traffic/p2p → `traffic`, fabric/protocol → `fabric`. Wait time no hold
/// covers lands in `unattributed` (and counts against the ≥95% gate).
#[derive(Clone, Debug, Default)]
pub struct Interference {
    /// Collective group id of the barrier (or [`NO_KEY`] for a summary).
    pub group: u64,
    /// Operation sequence within the group (or [`NO_KEY`] for a summary).
    pub seq: u64,
    /// Total critical-path wait time considered.
    pub wait_total: SimTime,
    /// Wait time caused by this barrier's own group (pipelining with
    /// itself: earlier rounds, other ranks of the same operation).
    pub self_time: SimTime,
    /// Wait time caused by a *different* collective group.
    pub other_group: SimTime,
    /// Wait time caused by background bulk traffic or p2p messages.
    pub traffic: SimTime,
    /// Wait time caused by fabric/protocol overhead (ACK generation,
    /// retransmit sweeps).
    pub fabric: SimTime,
    /// Wait time no hold record covers.
    pub unattributed: SimTime,
    /// Wait time per resource kind, descending.
    pub by_res: Vec<(ResKind, SimTime)>,
    /// Non-self interferers aggregated by `(kind, group, rank)`,
    /// descending by held-while-we-waited time. The first entry is the top
    /// interferer.
    pub interferers: Vec<(Owner, SimTime)>,
}

impl Interference {
    /// Wait time covered by a named owner's hold.
    pub fn attributed(&self) -> SimTime {
        self.wait_total.saturating_sub(self.unattributed)
    }

    /// Fraction of the wait time attributed to a named owner, in percent.
    /// 100.0 when the path never waited.
    pub fn attributed_pct(&self) -> f64 {
        let total = self.wait_total.as_ns();
        if total == 0 {
            return 100.0;
        }
        self.attributed().as_ns() as f64 / total as f64 * 100.0
    }

    /// The single owner (excluding this barrier's own group) that caused
    /// the most wait time, if any.
    pub fn top(&self) -> Option<&(Owner, SimTime)> {
        self.interferers.first()
    }
}

/// Stable sort key for owners (ties in held time break deterministically).
fn owner_key(o: &Owner) -> (OwnerKind, u64, u32) {
    (o.kind, o.group, o.rank)
}

/// Hold intervals indexed by `(resource, node, unit)`, each sorted by start
/// time so wait clipping can binary-search.
type HoldIndex = BTreeMap<(ResKind, u32, u64), Vec<(SimTime, SimTime, Owner)>>;

/// Attribute every critical-path wait interval of every path to the owner
/// that held the resource meanwhile. Returns one [`Interference`] per path,
/// in path order.
///
/// A ledger wait record belongs to a path when its owner is that path's
/// collective `(group, seq)` and its node lies on a path edge whose time
/// window overlaps the wait; the overlap is then clipped to the edge. Holds
/// are matched on exact `(resource, node, unit)`.
pub fn interference(paths: &[BarrierPath], ledger: &[LedgerRecord]) -> Vec<Interference> {
    // Index holds by (resource, node, unit). Emission order is
    // nondecreasing in t0 per serial resource, but sort defensively so the
    // binary search below is always valid.
    let mut holds: HoldIndex = BTreeMap::new();
    for r in ledger {
        if r.op == LedgerOp::Hold && r.t1 > r.t0 {
            holds
                .entry((r.res, r.node, r.unit))
                .or_default()
                .push((r.t0, r.t1, r.owner));
        }
    }
    for v in holds.values_mut() {
        v.sort_by_key(|h| h.0);
    }

    paths
        .iter()
        .map(|p| {
            let mut inf = Interference {
                group: p.group,
                seq: p.seq,
                ..Interference::default()
            };
            let mut by_res: BTreeMap<ResKind, SimTime> = BTreeMap::new();
            let mut by_owner: BTreeMap<(OwnerKind, u64, u32), (Owner, SimTime)> = BTreeMap::new();
            for w in ledger {
                if w.op != LedgerOp::Wait
                    || w.owner.kind != OwnerKind::Collective
                    || w.owner.group != p.group
                    || w.owner.seq != p.seq
                {
                    continue;
                }
                for e in &p.edges {
                    if w.node != e.src && w.node != e.dst {
                        continue;
                    }
                    // Clip the wait to this edge's window. Edges tile time
                    // contiguously, so clips against distinct edges are
                    // disjoint and summing them never double-counts.
                    let a = w.t0.max(e.at.saturating_sub(e.dur));
                    let b = w.t1.min(e.at);
                    if b <= a {
                        continue;
                    }
                    let span = b.saturating_sub(a);
                    inf.wait_total += span;
                    *by_res.entry(w.res).or_default() += span;
                    let mut covered = SimTime::ZERO;
                    if let Some(hs) = holds.get(&(w.res, w.node, w.unit)) {
                        let start = hs.partition_point(|h| h.1 <= a);
                        for &(h0, h1, owner) in &hs[start..] {
                            if h0 >= b {
                                break;
                            }
                            let ov = h1.min(b).saturating_sub(h0.max(a));
                            if ov == SimTime::ZERO {
                                continue;
                            }
                            covered += ov;
                            let is_self =
                                owner.kind == OwnerKind::Collective && owner.group == p.group;
                            match owner.kind {
                                OwnerKind::Collective if is_self => inf.self_time += ov,
                                OwnerKind::Collective => inf.other_group += ov,
                                OwnerKind::Traffic | OwnerKind::P2p => inf.traffic += ov,
                                OwnerKind::Fabric => inf.fabric += ov,
                            }
                            if !is_self {
                                let slot = by_owner
                                    .entry(owner_key(&owner))
                                    .or_insert((owner, SimTime::ZERO));
                                slot.1 += ov;
                            }
                        }
                    }
                    // Serial-resource holds tile busy periods, so covered
                    // never exceeds the clip; clamp anyway so a malformed
                    // ledger cannot produce negative unattributed time.
                    inf.unattributed += span.saturating_sub(covered.min(span));
                }
            }
            inf.by_res = by_res.into_iter().collect();
            inf.by_res.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            inf.interferers = by_owner.into_values().collect();
            inf.interferers
                .sort_by(|x, y| y.1.cmp(&x.1).then(owner_key(&x.0).cmp(&owner_key(&y.0))));
            inf
        })
        .collect()
}

/// Aggregate many per-path breakdowns into one summary (group/seq are
/// [`NO_KEY`]). Interferers are re-merged across paths, so the summary's
/// top interferer is the overall worst offender.
pub fn interference_summary(infs: &[Interference]) -> Interference {
    let mut sum = Interference {
        group: NO_KEY,
        seq: NO_KEY,
        ..Interference::default()
    };
    let mut by_res: BTreeMap<ResKind, SimTime> = BTreeMap::new();
    let mut by_owner: BTreeMap<(OwnerKind, u64, u32), (Owner, SimTime)> = BTreeMap::new();
    for i in infs {
        sum.wait_total += i.wait_total;
        sum.self_time += i.self_time;
        sum.other_group += i.other_group;
        sum.traffic += i.traffic;
        sum.fabric += i.fabric;
        sum.unattributed += i.unattributed;
        for &(res, t) in &i.by_res {
            *by_res.entry(res).or_default() += t;
        }
        for &(owner, t) in &i.interferers {
            let slot = by_owner
                .entry(owner_key(&owner))
                .or_insert((owner, SimTime::ZERO));
            slot.1 += t;
        }
    }
    sum.by_res = by_res.into_iter().collect();
    sum.by_res.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    sum.interferers = by_owner.into_values().collect();
    sum.interferers
        .sort_by(|x, y| y.1.cmp(&x.1).then(owner_key(&x.0).cmp(&owner_key(&y.0))));
    sum
}

/// Render an interference summary (plus per-path lines for paths that
/// actually waited) as a deterministic transcript.
pub fn render_interference(infs: &[Interference]) -> String {
    let mut out = String::new();
    let sum = interference_summary(infs);
    let _ = writeln!(
        out,
        "== interference over {} barriers: {:.3} µs critical-path wait, {:.1}% attributed ==",
        infs.len(),
        sum.wait_total.as_us(),
        sum.attributed_pct()
    );
    let total = sum.wait_total.as_ns();
    let pct = |t: SimTime| {
        if total == 0 {
            0.0
        } else {
            t.as_ns() as f64 / total as f64 * 100.0
        }
    };
    for (label, t) in [
        ("self", sum.self_time),
        ("other-group", sum.other_group),
        ("background-traffic", sum.traffic),
        ("fabric", sum.fabric),
        ("unattributed", sum.unattributed),
    ] {
        let _ = writeln!(
            out,
            "  {:>18} {:>10.3} µs {:>6.1}%",
            label,
            t.as_us(),
            pct(t)
        );
    }
    if !sum.by_res.is_empty() {
        let by_res: Vec<String> = sum
            .by_res
            .iter()
            .map(|(res, t)| format!("{} {:.3} µs", res.name(), t.as_us()))
            .collect();
        let _ = writeln!(out, "  waited on: {}", by_res.join(", "));
    }
    match sum.top() {
        Some((owner, t)) => {
            let _ = writeln!(
                out,
                "  top interferer: {} — {:.3} µs held while we waited",
                owner.label(),
                t.as_us()
            );
        }
        None => {
            let _ = writeln!(out, "  top interferer: none (no cross-owner contention)");
        }
    }
    for i in infs {
        if i.wait_total == SimTime::ZERO {
            continue;
        }
        let top = match i.top() {
            Some((owner, t)) => format!("{} ({:.3} µs)", owner.label(), t.as_us()),
            None => "none".to_string(),
        };
        let _ = writeln!(
            out,
            "  (group {:#x}, seq {}): wait {:.3} µs, {:.1}% attributed, top {}",
            i.group,
            i.seq,
            i.wait_total.as_us(),
            i.attributed_pct(),
            top
        );
    }
    out
}

fn fmt_node(n: u32) -> String {
    if n == NO_NODE {
        "-".to_string()
    } else {
        format!("{n}")
    }
}

/// Render one path as a deterministic, human-readable transcript.
pub fn render_one(p: &BarrierPath) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "barrier (group {:#x}, seq {}): {:.3} µs wall, critical path {} edges, \
         coverage {:.1}% (residual {:.3} µs)",
        p.group,
        p.seq,
        p.wall().as_us(),
        p.edges.len(),
        p.coverage_pct(),
        p.residual.as_us(),
    );
    if p.truncated {
        let _ = writeln!(out, "  WARNING: chain truncated at a dropped record");
    }
    if p.entry_skew > SimTime::ZERO {
        let _ = writeln!(
            out,
            "  {:>10} {:>9.3} µs  node {} entered last",
            "entry-skew",
            p.entry_skew.as_us(),
            p.root_node
        );
    }
    for e in &p.edges {
        let route = match (e.src, e.dst) {
            (s, d) if s != NO_NODE && d != NO_NODE && s != d => {
                format!("{} -> {}", fmt_node(s), fmt_node(d))
            }
            (s, _) => format!("node {}", fmt_node(s)),
        };
        let mut note = String::new();
        if e.kind.is_detour() {
            note.push_str("  [detour]");
        }
        if e.port_wait > SimTime::ZERO {
            let _ = write!(note, "  (port wait {:.3} µs)", e.port_wait.as_us());
        }
        let _ = writeln!(
            out,
            "  {:>14} {:>9.3} µs  {:<14} {}{}",
            e.kind.name(),
            e.dur.as_us(),
            e.label,
            route,
            note
        );
    }
    let laggards: Vec<String> = p
        .slack
        .iter()
        .map(|(node, s)| format!("{}:{:.3}", node, s.as_us()))
        .collect();
    let _ = writeln!(
        out,
        "  slack (µs by rank): {}  [critical rank {}]",
        laggards.join(" "),
        p.end_node
    );
    if p.detour_edges() > 0 {
        let _ = writeln!(
            out,
            "  detours: {} edges, {:.3} µs (NACK/retransmit/drop on the critical path)",
            p.detour_edges(),
            p.detour_time().as_us()
        );
    }
    out
}

/// Render every path plus the aggregate attribution table.
pub fn render(paths: &[BarrierPath]) -> String {
    let mut out = String::new();
    for p in paths {
        out.push_str(&render_one(p));
    }
    if paths.is_empty() {
        out.push_str("(no completed barrier spans in the dump)\n");
        return out;
    }
    let total_wall: u64 = paths.iter().map(|p| p.wall().as_ns()).sum();
    let _ = writeln!(
        out,
        "\n== attribution over {} barriers ({:.3} µs total wall) ==",
        paths.len(),
        total_wall as f64 / 1_000.0
    );
    let _ = writeln!(
        out,
        "{:>14} {:>12} {:>8} {:>7}",
        "bucket", "total µs", "share", "edges"
    );
    for (label, t, n) in attribution(paths) {
        let _ = writeln!(
            out,
            "{:>14} {:>12.3} {:>7.1}% {:>7}",
            label,
            t.as_us(),
            if total_wall > 0 {
                t.as_ns() as f64 / total_wall as f64 * 100.0
            } else {
                0.0
            },
            n
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code
mod tests {
    use super::*;
    use nicbar_sim::{CauseId, ComponentId, NetDump, PacketLog};

    fn rec(
        dump: &mut NetDump,
        t: u64,
        parent: CauseId,
        kind: CausalKind,
        node: u32,
        key: Option<(u64, u64)>,
    ) -> CauseId {
        let mut log = PacketLog::new(parent, kind).at_node(node);
        if let Some((g, s)) = key {
            log = log.key(g, s);
        }
        dump.record(SimTime::from_ns(t), ComponentId(0), log)
    }

    /// Two ranks; rank 1 enters late and its chain dominates.
    #[test]
    fn critical_path_follows_parents_and_covers_wall() {
        let mut d = NetDump::disabled();
        d.enable();
        let k = Some((7, 0));
        let e0 = rec(&mut d, 0, CauseId::NONE, CausalKind::HostEnter, 0, k);
        let _x0 = rec(&mut d, 500, e0, CausalKind::HostExit, 0, k);
        let e1 = rec(&mut d, 100, CauseId::NONE, CausalKind::HostEnter, 1, k);
        let f1 = rec(&mut d, 300, e1, CausalKind::Fire, 1, k);
        let x1 = rec(&mut d, 900, f1, CausalKind::HostExit, 1, k);
        let paths = analyze(d.records());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!((p.group, p.seq), (7, 0));
        assert_eq!(p.begin, SimTime::from_ns(0));
        assert_eq!(p.end, SimTime::from_ns(900));
        assert_eq!(p.root_node, 1);
        assert_eq!(p.end_node, 1);
        assert_eq!(p.entry_skew, SimTime::from_ns(100));
        assert_eq!(p.edges.len(), 2, "fire + host-exit");
        assert_eq!(p.residual, SimTime::ZERO);
        assert!((p.coverage_pct() - 100.0).abs() < 1e-9);
        assert!(!p.truncated);
        // rank 0 finished 400 ns early; rank 1 is critical.
        assert_eq!(
            p.slack,
            vec![(0, SimTime::from_ns(400)), (1, SimTime::ZERO),]
        );
        let _ = x1;
    }

    #[test]
    fn truncated_chain_reports_residual() {
        let mut d = NetDump::disabled();
        d.enable();
        let k = Some((7, 0));
        let _e = rec(&mut d, 0, CauseId::NONE, CausalKind::HostEnter, 0, k);
        // Exit whose parent id was never recorded (simulates a dropped
        // record / capacity overflow).
        let hole = CauseId(999);
        let _x = rec(&mut d, 1_000, hole, CausalKind::HostExit, 0, k);
        let paths = analyze(d.records());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert!(p.truncated);
        assert!(p.residual > SimTime::ZERO);
        assert!(p.coverage_pct() < 100.0);
        let text = render_one(p);
        assert!(text.contains("truncated"), "got: {text}");
    }

    #[test]
    fn attribution_groups_by_label() {
        let mut d = NetDump::disabled();
        d.enable();
        let k = Some((1, 0));
        let e = rec(&mut d, 0, CauseId::NONE, CausalKind::HostEnter, 0, k);
        let n = rec(&mut d, 10, e, CausalKind::Nack, 0, k);
        let r = rec(&mut d, 30, n, CausalKind::Retransmit, 0, k);
        let _x = rec(&mut d, 100, r, CausalKind::HostExit, 0, k);
        let paths = analyze(d.records());
        let attr = attribution(&paths);
        let labels: Vec<&str> = attr.iter().map(|&(l, _, _)| l).collect();
        assert!(labels.contains(&"nack-detour"));
        assert!(labels.contains(&"retransmit-detour"));
        assert_eq!(paths[0].detour_edges(), 2);
        assert_eq!(paths[0].detour_time(), SimTime::from_ns(30));
    }

    fn lrec(
        op: LedgerOp,
        res: ResKind,
        t0: u64,
        t1: u64,
        node: u32,
        unit: u64,
        owner: Owner,
    ) -> LedgerRecord {
        LedgerRecord {
            t0: SimTime::from_ns(t0),
            t1: SimTime::from_ns(t1),
            component: ComponentId(0),
            op,
            res,
            node,
            unit,
            owner,
        }
    }

    /// One barrier on nodes 0/1; node 1's chain is critical with edges
    /// covering [0, 400) and [400, 900).
    fn contended_path() -> Vec<BarrierPath> {
        let mut d = NetDump::disabled();
        d.enable();
        let k = Some((0xC0, 0));
        let e0 = rec(&mut d, 0, CauseId::NONE, CausalKind::HostEnter, 0, k);
        let _x0 = rec(&mut d, 500, e0, CausalKind::HostExit, 0, k);
        let e1 = rec(&mut d, 0, CauseId::NONE, CausalKind::HostEnter, 1, k);
        let f1 = rec(&mut d, 400, e1, CausalKind::Fire, 1, k);
        let _x1 = rec(&mut d, 900, f1, CausalKind::HostExit, 1, k);
        analyze(d.records())
    }

    #[test]
    fn interference_attributes_waits_to_holders() {
        use nicbar_sim::NO_UNIT;
        let paths = contended_path();
        let us = Owner::coll(0xC0, 0, 1);
        let rival = Owner::coll(0xC1, 5, 0);
        let ledger = vec![
            // 200 ns engine wait inside the first edge, held 150 ns by a
            // rival group and 50 ns by bulk traffic.
            lrec(
                LedgerOp::Wait,
                ResKind::ElanEngine,
                100,
                300,
                1,
                NO_UNIT,
                us,
            ),
            lrec(
                LedgerOp::Hold,
                ResKind::ElanEngine,
                100,
                250,
                1,
                NO_UNIT,
                rival,
            ),
            lrec(
                LedgerOp::Hold,
                ResKind::ElanEngine,
                250,
                300,
                1,
                NO_UNIT,
                Owner::traffic(2),
            ),
            // 100 ns port wait inside the second edge, 80 ns covered by a
            // fabric hold; the remaining 20 ns stay unattributed.
            lrec(LedgerOp::Wait, ResKind::LinkPort, 500, 600, 1, 1, us),
            lrec(
                LedgerOp::Hold,
                ResKind::LinkPort,
                500,
                580,
                1,
                1,
                Owner::fabric(3),
            ),
            // Wrong seq: not this barrier's wait.
            lrec(
                LedgerOp::Wait,
                ResKind::ElanEngine,
                100,
                300,
                1,
                NO_UNIT,
                Owner::coll(0xC0, 9, 1),
            ),
            // Right owner, but on a node the path never visits.
            lrec(
                LedgerOp::Wait,
                ResKind::ElanEngine,
                100,
                300,
                5,
                NO_UNIT,
                us,
            ),
            // Hold on a different unit must not cover the port wait.
            lrec(
                LedgerOp::Hold,
                ResKind::LinkPort,
                580,
                600,
                1,
                7,
                Owner::fabric(3),
            ),
        ];
        let infs = interference(&paths, &ledger);
        assert_eq!(infs.len(), 1);
        let i = &infs[0];
        assert_eq!((i.group, i.seq), (0xC0, 0));
        assert_eq!(i.wait_total, SimTime::from_ns(300));
        assert_eq!(i.self_time, SimTime::ZERO);
        assert_eq!(i.other_group, SimTime::from_ns(150));
        assert_eq!(i.traffic, SimTime::from_ns(50));
        assert_eq!(i.fabric, SimTime::from_ns(80));
        assert_eq!(i.unattributed, SimTime::from_ns(20));
        assert!((i.attributed_pct() - 280.0 / 3.0).abs() < 1e-9);
        let (top, t) = i.top().unwrap();
        assert_eq!(
            (top.kind, top.group, top.rank),
            (OwnerKind::Collective, 0xC1, 0)
        );
        assert_eq!(*t, SimTime::from_ns(150));
        assert_eq!(
            i.by_res,
            vec![
                (ResKind::ElanEngine, SimTime::from_ns(200)),
                (ResKind::LinkPort, SimTime::from_ns(100)),
            ]
        );
        let text = render_interference(&infs);
        assert!(
            text.contains("top interferer: group 0xc1 collective (rank 0)"),
            "got: {text}"
        );
        assert!(text.contains("other-group"), "got: {text}");
    }

    #[test]
    fn self_holds_do_not_name_an_interferer() {
        use nicbar_sim::NO_UNIT;
        let paths = contended_path();
        let us = Owner::coll(0xC0, 0, 1);
        let ledger = vec![
            lrec(LedgerOp::Wait, ResKind::NicCpu, 100, 200, 1, NO_UNIT, us),
            // Same group, earlier epoch, another rank: still "self".
            lrec(
                LedgerOp::Hold,
                ResKind::NicCpu,
                50,
                200,
                1,
                NO_UNIT,
                Owner::coll(0xC0, 4, 0),
            ),
        ];
        let infs = interference(&paths, &ledger);
        let i = &infs[0];
        assert_eq!(i.wait_total, SimTime::from_ns(100));
        assert_eq!(i.self_time, SimTime::from_ns(100));
        assert_eq!(i.unattributed, SimTime::ZERO);
        assert!(i.top().is_none());
        assert!((i.attributed_pct() - 100.0).abs() < 1e-9);
        let text = render_interference(&infs);
        assert!(text.contains("none"), "got: {text}");
    }

    #[test]
    fn summary_merges_interferers_across_paths() {
        use nicbar_sim::NO_UNIT;
        let paths = contended_path();
        let us = Owner::coll(0xC0, 0, 1);
        let rival = Owner::coll(0xC1, 2, 0);
        let ledger = vec![
            lrec(LedgerOp::Wait, ResKind::NicCpu, 0, 100, 1, NO_UNIT, us),
            lrec(LedgerOp::Hold, ResKind::NicCpu, 0, 100, 1, NO_UNIT, rival),
        ];
        let infs = interference(&paths, &ledger);
        // Duplicate the per-path breakdown to simulate two barriers with
        // the same rival; the summary must merge them.
        let both = vec![infs[0].clone(), infs[0].clone()];
        let sum = interference_summary(&both);
        assert_eq!((sum.group, sum.seq), (NO_KEY, NO_KEY));
        assert_eq!(sum.wait_total, SimTime::from_ns(200));
        assert_eq!(sum.other_group, SimTime::from_ns(200));
        assert_eq!(sum.interferers.len(), 1);
        assert_eq!(sum.interferers[0].1, SimTime::from_ns(200));
    }
}
