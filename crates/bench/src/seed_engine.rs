//! A faithful replica of the original (seed) discrete-event engine's hot
//! path, kept **only** as the benchmark baseline for the "≥2× events/sec"
//! claim in the engine overhaul.
//!
//! The production engine in `nicbar-sim` was rewritten around an indexed
//! 4-ary heap, split-borrow dispatch and interned counters; its retained
//! `ClassicBinaryHeap` scheduler swaps only the queue back. This module
//! instead reproduces the *whole* original per-event cost structure, taken
//! line-for-line from the seed `Engine::step`:
//!
//! * one `BinaryHeap` of full event entries (time + seq + target + payload
//!   all moved on every sift),
//! * handler sends buffered in a `pending: Vec` and drained into the heap
//!   after every event (the extra per-event copy the `push_batch` path
//!   removed),
//! * the component boxed out of its slot (`Option::take`) and reinstalled
//!   around every delivery,
//! * `peek` + `pop` touching the heap root twice per loop iteration.
//!
//! Do not use this for simulations — it exists so `benches/engine.rs` and
//! `engine_sweep` can measure the seed baseline on today's toolchain.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

use nicbar_sim::{ComponentId, SimRng, SimTime};

/// A component in the replica engine (same shape as the seed trait).
pub trait SeedComponent<M> {
    /// Process one event addressed to this component.
    fn handle(&mut self, msg: M, ctx: &mut SeedCtx<'_, M>);
}

struct Entry<M> {
    time: SimTime,
    seq: u64,
    target: ComponentId,
    msg: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first — exactly the seed's ordering.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The seed's trace ring (shape only — the per-event cost is the disabled
/// check, which the replica must still pay to be a fair baseline).
#[derive(Default)]
pub struct SeedTrace {
    enabled: bool,
    records: Vec<(SimTime, ComponentId, &'static str, u64, u64)>,
}

impl SeedTrace {
    /// Record a trace event if tracing is enabled (it never is in the
    /// benches, same as the seed runs).
    #[inline]
    pub fn emit(&mut self, time: SimTime, component: ComponentId, label: &'static str) {
        if self.enabled {
            self.records.push((time, component, label, 0, 0));
        }
    }
}

/// Handler context: buffers sends into the engine's pending vector, as the
/// seed engine did. Carries the full set of references the seed `Ctx` had
/// (rng, trace, string-keyed counters, halt flag) so constructing it per
/// event costs what the seed paid.
pub struct SeedCtx<'a, M> {
    now: SimTime,
    self_id: ComponentId,
    pending: &'a mut Vec<(SimTime, ComponentId, M)>,
    rng: &'a mut SimRng,
    trace: &'a mut SeedTrace,
    counters: &'a mut BTreeMap<&'static str, u64>,
    halt: &'a mut bool,
}

impl<M> SeedCtx<'_, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `msg` for `target` after `delay`.
    #[inline]
    pub fn send(&mut self, delay: SimTime, target: ComponentId, msg: M) {
        self.pending.push((self.now + delay, target, msg));
    }

    /// Schedule `msg` for this component after `delay`.
    #[inline]
    pub fn send_self(&mut self, delay: SimTime, msg: M) {
        self.send(delay, self.self_id, msg);
    }

    /// The deterministic RNG (seed signature).
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Add to a string-keyed counter — the seed's `BTreeMap` lookup.
    #[inline]
    pub fn count(&mut self, key: &'static str, amount: u64) {
        *self.counters.entry(key).or_insert(0) += amount;
    }

    /// Emit a trace record (disabled-check cost included).
    #[inline]
    pub fn trace(&mut self, label: &'static str) {
        self.trace.emit(self.now, self.self_id, label);
    }

    /// Stop the run after this event.
    #[inline]
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// The replica engine. API subset: build, schedule, run, count events.
pub struct SeedEngine<M> {
    components: Vec<Option<Box<dyn SeedComponent<M>>>>,
    queue: BinaryHeap<Entry<M>>,
    pending: Vec<(SimTime, ComponentId, M)>,
    rng: SimRng,
    trace: SeedTrace,
    counters: BTreeMap<&'static str, u64>,
    halted: bool,
    seq: u64,
    now: SimTime,
    events_processed: u64,
}

impl<M> Default for SeedEngine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SeedEngine<M> {
    /// An empty engine.
    pub fn new() -> Self {
        SeedEngine {
            components: Vec::new(),
            queue: BinaryHeap::new(),
            pending: Vec::new(),
            rng: SimRng::new(0),
            trace: SeedTrace::default(),
            counters: BTreeMap::new(),
            halted: false,
            seq: 0,
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Reserve a component slot.
    pub fn reserve_id(&mut self) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(None);
        id
    }

    /// Install a component into a reserved slot.
    pub fn install<C: SeedComponent<M> + 'static>(&mut self, id: ComponentId, component: C) {
        assert!(self.components[id.0].is_none(), "slot occupied");
        self.components[id.0] = Some(Box::new(component));
    }

    /// Reserve + install in one step.
    pub fn add<C: SeedComponent<M> + 'static>(&mut self, component: C) -> ComponentId {
        let id = self.reserve_id();
        self.install(id, component);
        id
    }

    /// Inject an event at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        assert!(at >= self.now, "scheduling into the past");
        self.push(at, target, msg);
    }

    fn push(&mut self, time: SimTime, target: ComponentId, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time,
            seq,
            target,
            msg,
        });
    }

    /// Total events delivered.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Deliver the single earliest event (the seed's `step`, verbatim minus
    /// rng/trace/counter plumbing that the bench workloads never touched).
    fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        self.now = entry.time;
        self.events_processed += 1;
        let mut component = self.components[entry.target.0]
            .take()
            .unwrap_or_else(|| panic!("event for uninstalled component {}", entry.target));
        {
            let mut ctx = SeedCtx {
                now: self.now,
                self_id: entry.target,
                pending: &mut self.pending,
                rng: &mut self.rng,
                trace: &mut self.trace,
                counters: &mut self.counters,
                halt: &mut self.halted,
            };
            component.handle(entry.msg, &mut ctx);
        }
        self.components[entry.target.0] = Some(component);
        // Drain handler-scheduled events into the heap in FIFO order.
        let mut pending = std::mem::take(&mut self.pending);
        for (time, target, msg) in pending.drain(..) {
            self.push(time, target, msg);
        }
        self.pending = pending;
        true
    }

    /// Run until the queue drains; returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        // The seed's run loop peeked before every step (deadline check), so
        // the replica touches the heap root twice per event too.
        loop {
            let Some(next) = self.queue.peek() else {
                return self.now;
            };
            let _deadline_check = next.time;
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ring {
        next: ComponentId,
    }
    impl SeedComponent<u64> for Ring {
        fn handle(&mut self, msg: u64, ctx: &mut SeedCtx<'_, u64>) {
            if msg > 0 {
                ctx.send(SimTime::from_ns(10), self.next, msg - 1);
            }
        }
    }

    #[test]
    fn replica_runs_a_ring() {
        let mut e: SeedEngine<u64> = SeedEngine::new();
        let a = e.reserve_id();
        let b = e.reserve_id();
        e.install(a, Ring { next: b });
        e.install(b, Ring { next: a });
        e.schedule_at(SimTime::ZERO, a, 100);
        let end = e.run();
        assert_eq!(e.events_processed(), 101);
        assert_eq!(end, SimTime::from_ns(1000));
    }
}
