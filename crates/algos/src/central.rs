//! Sense-reversing central counter barrier.
//!
//! Every arrival increments one shared counter; the last arrival flips the
//! global sense and resets the counter, releasing the spinners. O(1) space,
//! but all N threads contend on two cache lines — the baseline the
//! log-depth barriers beat as N grows.

use crate::pad::CachePadded;
use crate::{spin_wait, ShmBarrier};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The classic central barrier with sense reversal.
pub struct CentralSenseBarrier {
    n: usize,
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    /// Each thread's private sense (only its owner writes it).
    local_sense: Vec<CachePadded<AtomicBool>>,
}

impl CentralSenseBarrier {
    /// Build for `n` threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty barrier");
        CentralSenseBarrier {
            n,
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            local_sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }
}

impl ShmBarrier for CentralSenseBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        let my_sense = !self.local_sense[tid].load(Ordering::Relaxed);
        self.local_sense[tid].store(my_sense, Ordering::Relaxed);
        // AcqRel: the increment both publishes this thread's pre-barrier
        // writes and, for the releasing thread, acquires everyone else's.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            spin_wait(|| self.sense.load(Ordering::Acquire) == my_sense);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::exercise;

    #[test]
    fn single_thread_is_a_noop() {
        let b = CentralSenseBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
    }

    #[test]
    fn synchronizes_various_thread_counts() {
        for n in [2usize, 3, 4, 7, 8] {
            exercise(&CentralSenseBarrier::new(n), 300).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "empty barrier")]
    fn zero_threads_rejected() {
        CentralSenseBarrier::new(0);
    }
}
