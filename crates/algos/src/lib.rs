//! # nicbar-algos — shared-memory analogues of the paper's barrier
//! algorithms
//!
//! The cluster barrier algorithms of §5 descend from the classic
//! shared-memory barriers of Mellor-Crummey & Scott (the paper's ref \[12\]).
//! This crate implements them with real atomics so that (a) the algorithmic
//! step counts can be validated on actual hardware, and (b) the Criterion
//! harness can report genuine wall-clock numbers alongside the simulated
//! ones:
//!
//! * [`central::CentralSenseBarrier`] — sense-reversing central counter
//!   (the contended baseline),
//! * [`dissemination::DisseminationBarrier`] — ⌈log₂N⌉ rounds, parity +
//!   sense flags (the `DS` curves),
//! * [`pairwise::PairwiseBarrier`] — recursive doubling with the paper's
//!   pre/post steps for non-powers of two (the `PE` curves),
//! * [`tournament::TournamentBarrier`] — statically paired tournament with
//!   a binary wakeup,
//! * [`mcs_tree::McsTreeBarrier`] — MCS 4-ary arrival / binary wakeup tree.
//!
//! All barriers implement [`ShmBarrier`] and are exercised by the shared
//! [`harness`], which checks the fundamental barrier property: no thread
//! observes a peer's epoch counter behind its own after the wait returns.

#![warn(missing_docs)]

pub mod central;
pub mod dissemination;
pub mod harness;
pub mod mcs_tree;
pub mod pad;
pub mod pairwise;
pub mod tournament;

pub use central::CentralSenseBarrier;
pub use dissemination::DisseminationBarrier;
pub use mcs_tree::McsTreeBarrier;
pub use pairwise::PairwiseBarrier;
pub use tournament::TournamentBarrier;

/// A reusable N-thread spinning barrier.
///
/// `wait(tid)` blocks thread `tid` (0-based, each id used by exactly one
/// thread) until all `num_threads` threads of the current episode arrive.
/// Implementations are reusable across consecutive episodes without
/// re-initialization.
pub trait ShmBarrier: Send + Sync {
    /// Number of participating threads.
    fn num_threads(&self) -> usize;
    /// Block until every thread has entered this episode.
    fn wait(&self, tid: usize);
}

/// Spin politely: busy-spin with a processor hint, yielding to the OS
/// periodically so oversubscribed test runs still make progress.
#[inline]
pub(crate) fn spin_wait<F: Fn() -> bool>(ready: F) {
    let mut spins = 0u32;
    while !ready() {
        std::hint::spin_loop();
        spins += 1;
        if spins.is_multiple_of(256) {
            std::thread::yield_now();
        }
    }
}

/// ⌈log₂ n⌉ (0 for n ≤ 1).
pub(crate) fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// ⌊log₂ n⌋ (0 for n ≤ 1).
pub(crate) fn floor_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - 1 - n.leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(floor_log2(5), 2);
    }
}
