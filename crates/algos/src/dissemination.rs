//! The dissemination barrier (Hensgen/Finkel/Manber; MCS presentation) —
//! the shared-memory original of the paper's `DS` cluster algorithm.
//!
//! ⌈log₂N⌉ rounds; in round `r` thread `i` sets a flag at `(i + 2^r) mod N`
//! and spins on its own round-`r` flag. Flags are double-buffered by
//! *parity* and sense-reversed so the structure is reusable while
//! neighbours race one episode ahead — the same banked-progress idea the
//! NIC protocol implements with event counters.

use crate::pad::CachePadded;
use crate::{ceil_log2, spin_wait, ShmBarrier};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

struct ThreadState {
    /// flags[parity][round]
    flags: [Vec<CachePadded<AtomicBool>>; 2],
    /// 0 or 1; only the owning thread mutates.
    parity: AtomicU8,
    /// Current sense for parity 0 episodes; flipped after odd parities.
    sense: AtomicBool,
}

/// The dissemination barrier.
///
/// ```
/// use nicbar_algos::{DisseminationBarrier, ShmBarrier};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = DisseminationBarrier::new(4);
/// let turns = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for tid in 0..4 {
///         let (barrier, turns) = (&barrier, &turns);
///         s.spawn(move || {
///             turns.fetch_add(1, Ordering::SeqCst);
///             barrier.wait(tid);
///             // Everyone has incremented by the time anyone returns.
///             assert_eq!(turns.load(Ordering::SeqCst), 4);
///         });
///     }
/// });
/// ```
pub struct DisseminationBarrier {
    n: usize,
    rounds: usize,
    threads: Vec<ThreadState>,
}

impl DisseminationBarrier {
    /// Build for `n` threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty barrier");
        let rounds = ceil_log2(n);
        let mk_flags = || {
            (0..rounds)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect::<Vec<_>>()
        };
        DisseminationBarrier {
            n,
            rounds,
            threads: (0..n)
                .map(|_| ThreadState {
                    flags: [mk_flags(), mk_flags()],
                    parity: AtomicU8::new(0),
                    sense: AtomicBool::new(true),
                })
                .collect(),
        }
    }

    /// Rounds per episode (⌈log₂N⌉ — the paper's step-count claim).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl ShmBarrier for DisseminationBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        let me = &self.threads[tid];
        let parity = me.parity.load(Ordering::Relaxed) as usize;
        let sense = me.sense.load(Ordering::Relaxed);
        for r in 0..self.rounds {
            let partner = (tid + (1 << r)) % self.n;
            self.threads[partner].flags[parity][r].store(sense, Ordering::Release);
            spin_wait(|| me.flags[parity][r].load(Ordering::Acquire) == sense);
        }
        if parity == 1 {
            me.sense.store(!sense, Ordering::Relaxed);
        }
        me.parity.store(1 - parity as u8, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::exercise;

    #[test]
    fn round_count_matches_paper_formula() {
        assert_eq!(DisseminationBarrier::new(1).rounds(), 0);
        assert_eq!(DisseminationBarrier::new(2).rounds(), 1);
        assert_eq!(DisseminationBarrier::new(5).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(8).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(9).rounds(), 4);
    }

    #[test]
    fn synchronizes_powers_of_two() {
        for n in [2usize, 4, 8] {
            exercise(&DisseminationBarrier::new(n), 500).unwrap();
        }
    }

    #[test]
    fn synchronizes_non_powers_of_two() {
        for n in [3usize, 5, 6, 7] {
            exercise(&DisseminationBarrier::new(n), 500).unwrap();
        }
    }

    #[test]
    fn single_thread_is_a_noop() {
        let b = DisseminationBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
    }
}
