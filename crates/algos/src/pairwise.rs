//! The pairwise-exchange barrier (recursive doubling, as in MPICH) — the
//! shared-memory original of the paper's `PE` cluster algorithm.
//!
//! For powers of two: `log₂N` rounds where thread `i` exchanges flags with
//! `i XOR 2^r`. Otherwise (`M` = largest power of two ≤ `N`): the paper's
//! pre-step (threads `≥ M` announce to `i − M`), the `M`-thread exchange,
//! and a post-step releasing the high threads — `⌊log₂N⌋ + 2` steps.

use crate::pad::CachePadded;
use crate::{floor_log2, spin_wait, ShmBarrier};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

struct ThreadState {
    /// flags[parity][slot]: slot 0 = pre, 1..=rounds = exchanges,
    /// rounds+1 = post.
    flags: [Vec<CachePadded<AtomicBool>>; 2],
    parity: AtomicU8,
    sense: AtomicBool,
}

/// The pairwise-exchange barrier with non-power-of-two pre/post steps.
pub struct PairwiseBarrier {
    n: usize,
    /// Largest power of two ≤ n.
    m: usize,
    rounds: usize,
    threads: Vec<ThreadState>,
}

impl PairwiseBarrier {
    /// Build for `n` threads.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty barrier");
        let rounds = floor_log2(n);
        let m = 1usize << rounds;
        let slots = rounds + 2;
        let mk = || {
            (0..slots)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect::<Vec<_>>()
        };
        PairwiseBarrier {
            n,
            m,
            rounds,
            threads: (0..n)
                .map(|_| ThreadState {
                    flags: [mk(), mk()],
                    parity: AtomicU8::new(0),
                    sense: AtomicBool::new(true),
                })
                .collect(),
        }
    }

    /// Steps per episode: `log₂N` exactly for powers of two, `⌊log₂N⌋ + 2`
    /// otherwise (the paper's formula).
    pub fn steps(&self) -> usize {
        if self.n == 1 {
            0
        } else if self.n == self.m {
            self.rounds
        } else {
            self.rounds + 2
        }
    }
}

impl ShmBarrier for PairwiseBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        let me = &self.threads[tid];
        let parity = me.parity.load(Ordering::Relaxed) as usize;
        let sense = me.sense.load(Ordering::Relaxed);
        let pre = 0;
        let post = self.rounds + 1;

        if tid >= self.m {
            // Extra thread: announce, then wait for the release.
            let partner = tid - self.m;
            self.threads[partner].flags[parity][pre].store(sense, Ordering::Release);
            spin_wait(|| me.flags[parity][post].load(Ordering::Acquire) == sense);
        } else {
            if tid + self.m < self.n {
                // Absorb the extra's announcement before the exchange.
                spin_wait(|| me.flags[parity][pre].load(Ordering::Acquire) == sense);
            }
            for r in 0..self.rounds {
                let partner = tid ^ (1 << r);
                self.threads[partner].flags[parity][r + 1].store(sense, Ordering::Release);
                spin_wait(|| me.flags[parity][r + 1].load(Ordering::Acquire) == sense);
            }
            if tid + self.m < self.n {
                self.threads[tid + self.m].flags[parity][post].store(sense, Ordering::Release);
            }
        }

        if parity == 1 {
            me.sense.store(!sense, Ordering::Relaxed);
        }
        me.parity.store(1 - parity as u8, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::exercise;

    #[test]
    fn step_count_matches_paper_formula() {
        assert_eq!(PairwiseBarrier::new(1).steps(), 0);
        assert_eq!(PairwiseBarrier::new(2).steps(), 1);
        assert_eq!(PairwiseBarrier::new(8).steps(), 3);
        assert_eq!(PairwiseBarrier::new(6).steps(), 4); // ⌊log₂6⌋+2
        assert_eq!(PairwiseBarrier::new(9).steps(), 5); // ⌊log₂9⌋+2
    }

    #[test]
    fn synchronizes_powers_of_two() {
        for n in [2usize, 4, 8] {
            exercise(&PairwiseBarrier::new(n), 500).unwrap();
        }
    }

    #[test]
    fn synchronizes_non_powers_of_two() {
        for n in [3usize, 5, 6, 7] {
            exercise(&PairwiseBarrier::new(n), 500).unwrap();
        }
    }

    #[test]
    fn single_thread_is_a_noop() {
        let b = PairwiseBarrier::new(1);
        for _ in 0..10 {
            b.wait(0);
        }
    }
}
